#!/usr/bin/env bash
# Determinism lint.
#
# The campaign engine (flh-exec) and the fault tools (flh-atpg) promise
# bit-identical results at any FLH_THREADS width, and `scripts/ci.sh`
# diffs test logs across pool widths to hold them to it. Iterating a std
# HashMap/HashSet is the classic way to silently break that promise: the
# iteration order varies per process (RandomState), so any result built by
# walking one is nondeterministic.
#
# This pass greps those crates for hash-collection uses. Every use must
# carry a `det-ok:` justification — on the same line or the line above —
# stating why iteration order cannot leak into results (e.g. the set is
# only probed for membership, or the map is only indexed by key).
#
#     // det-ok: membership test only; the set is never iterated.
#     let mut seen = std::collections::HashSet::new();
#
# Order-preserving alternatives (BTreeMap/BTreeSet, dense Vec indexed by
# CellId) need no annotation.
set -euo pipefail
cd "$(dirname "$0")/.."

# Whole determinism-critical crates, plus single result-bearing files of
# crates that otherwise keep legacy HashMap cost-model caches (the frozen
# benchmark baselines in flh-netlist's analysis module).
TARGETS=(
    crates/exec/src crates/atpg/src crates/obs/src crates/sim/src
    crates/lint/src crates/serve/src
    crates/netlist/src/bytecode.rs
    crates/bench/src/replay64.rs
)

fail=0
for dir in "${TARGETS[@]}"; do
    while IFS= read -r hit; do
        file="${hit%%:*}"
        rest="${hit#*:}"
        line="${rest%%:*}"
        text="${rest#*:}"
        prev=""
        if (( line > 1 )); then
            prev="$(sed -n "$((line - 1))p" "$file")"
        fi
        if [[ "$text" == *"det-ok:"* || "$prev" == *"det-ok:"* ]]; then
            continue
        fi
        echo "determinism lint: $file:$line: unannotated hash collection in a determinism-critical crate" >&2
        echo "    $text" >&2
        fail=1
    done < <(grep -rn --include='*.rs' -E 'Hash(Map|Set)' "$dir" || true)
done

if (( fail )); then
    cat >&2 <<'EOF'
Hash collections have per-process iteration order. Either switch to an
order-preserving structure (BTreeMap/BTreeSet, dense Vec) or add a
`det-ok:` comment on the use (or the line above) justifying why iteration
order cannot reach any result.
EOF
    exit 1
fi
echo "determinism lint OK"
