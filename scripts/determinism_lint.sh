#!/usr/bin/env bash
# Determinism lint.
#
# The campaign engine (flh-exec) and the fault tools (flh-atpg) promise
# bit-identical results at any FLH_THREADS width, and `scripts/ci.sh`
# diffs test logs across pool widths to hold them to it. Iterating a std
# HashMap/HashSet is the classic way to silently break that promise: the
# iteration order varies per process (RandomState), so any result built by
# walking one is nondeterministic.
#
# This pass greps those crates for hash-collection uses. Every use must
# carry a `det-ok:` justification — on the same line or the line above —
# stating why iteration order cannot leak into results (e.g. the set is
# only probed for membership, or the map is only indexed by key).
#
#     // det-ok: membership test only; the set is never iterated.
#     let mut seen = std::collections::HashSet::new();
#
# Order-preserving alternatives (BTreeMap/BTreeSet, dense Vec indexed by
# CellId) need no annotation.
set -euo pipefail
cd "$(dirname "$0")/.."

# Whole determinism-critical crates, plus single result-bearing files of
# crates that otherwise keep legacy HashMap cost-model caches (the frozen
# benchmark baselines in flh-netlist's analysis module).
TARGETS=(
    crates/exec/src crates/atpg/src crates/obs/src crates/sim/src
    crates/lint/src crates/serve/src crates/bist/src
    crates/netlist/src/bytecode.rs
    crates/netlist/src/static_analysis.rs
    crates/bench/src/replay64.rs
    src/bin
)

# The span layer is the *declared* wall-clock side of flh-obs — every
# number it produces lands in the nondeterministic metrics section by
# construction, so clock reads there need no per-line justification.
TIME_EXEMPT=(
    crates/obs/src/span.rs
)

is_time_exempt() {
    local file="$1"
    for exempt in "${TIME_EXEMPT[@]}"; do
        [[ "$file" == "$exempt" ]] && return 0
    done
    return 1
}

# Scan one pattern over the targets, requiring a `$tag:` justification on
# the hit line or the line above.
scan() {
    local pattern="$1" tag="$2" what="$3"
    local found=0
    for dir in "${TARGETS[@]}"; do
        while IFS= read -r hit; do
            file="${hit%%:*}"
            rest="${hit#*:}"
            line="${rest%%:*}"
            text="${rest#*:}"
            if [[ "$tag" == "time-ok" ]] && is_time_exempt "$file"; then
                continue
            fi
            prev=""
            if (( line > 1 )); then
                prev="$(sed -n "$((line - 1))p" "$file")"
            fi
            if [[ "$text" == *"$tag:"* || "$prev" == *"$tag:"* ]]; then
                continue
            fi
            echo "determinism lint: $file:$line: unannotated $what in a determinism-critical crate" >&2
            echo "    $text" >&2
            found=1
        done < <(grep -rn --include='*.rs' -E "$pattern" "$dir" || true)
    done
    return "$found"
}

fail=0
scan 'Hash(Map|Set)' 'det-ok' 'hash collection' || fail=1
# Clock reads are the other classic determinism leak: any `Instant` /
# `SystemTime` outside the span layer must justify — with a `time-ok:`
# comment — why the measured duration can only reach the nondeterministic
# metrics section, never a result.
scan 'std::time|\bInstant\b|\bSystemTime\b' 'time-ok' 'clock read' || fail=1

if (( fail )); then
    cat >&2 <<'EOF'
Hash collections have per-process iteration order, and clock reads vary
per run. Either switch to a deterministic alternative (BTreeMap/BTreeSet,
dense Vec; counters instead of durations) or add a `det-ok:` / `time-ok:`
comment on the use (or the line above) justifying why it cannot reach any
deterministic result.
EOF
    exit 1
fi
echo "determinism lint OK"
