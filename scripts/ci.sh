#!/usr/bin/env bash
# Offline CI gate: build, test (twice, at two pool widths), format check,
# and a perf-report smoke run. No network access is required — the
# workspace has no external crate dependencies (see flh-rng for the
# in-tree PRNG).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all crates) =="
cargo build --release --workspace --offline

# Strips everything timing- or build-dependent from a `cargo test` log so
# two runs can be diffed: wall-clock suffixes and cargo's compile chatter.
normalize() {
    sed -E -e 's/; finished in [0-9.]+s//' \
        -e '/^ *(Compiling|Finished|Running|Doc-tests) /d'
}

echo "== tests (all crates, FLH_THREADS=1) =="
FLH_THREADS=1 cargo test -q --workspace --offline 2>&1 | tee /tmp/flh_ci_t1.log

echo "== tests (all crates, FLH_THREADS=4) =="
FLH_THREADS=4 cargo test -q --workspace --offline 2>&1 | tee /tmp/flh_ci_t4.log

echo "== determinism gate (FLH_THREADS=1 vs 4) =="
if ! diff <(normalize </tmp/flh_ci_t1.log) <(normalize </tmp/flh_ci_t4.log); then
    echo "DETERMINISM GATE FAILED: test output depends on FLH_THREADS" >&2
    exit 1
fi
echo "identical test output at both pool widths"

echo "== formatting =="
cargo fmt --all --check

echo "== clippy (guarded: workspace deny set on opted-in crates) =="
# The [workspace.lints] deny set (clippy::unwrap_used, dbg_macro, todo;
# rustc unused_must_use) applies to the crates with `[lints] workspace =
# true`. Clippy ships with the toolchain here, but minimal toolchains may
# lack it — skip with a notice rather than fail the whole gate.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline -p flh-netlist -p flh-sim -p flh-lint -p flh-serve \
        -p flh-atpg -p flh-exec -p flh-obs --all-targets
else
    echo "NOTICE: cargo clippy unavailable in this toolchain; skipping the lint step"
fi

echo "== determinism lint (hash collections in determinism-critical crates) =="
./scripts/determinism_lint.sh

bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT

echo "== static netlist verification (flh_lint, 11 profiles x 3 holding styles) =="
# Zero error-severity diagnostics across the whole generated grid; the
# JSON summary is the machine-readable record of the gate.
cargo run -q --release --offline -p flh-lint --bin flh_lint -- \
    --profiles all --quiet --json "$bench_tmp/lint_summary.json"
if ! grep -q '"total_errors":0' "$bench_tmp/lint_summary.json"; then
    echo "LINT GATE FAILED: error diagnostics on the profile grid" >&2
    exit 1
fi
# The bytecode verifier (FLH015-023) and the X-taint cross-check (FLH026)
# run inside the same grid; none of their codes may fire on any profile.
if grep -qE '"FLH01[5-9]"|"FLH02[0-3]"|"FLH026"' "$bench_tmp/lint_summary.json"; then
    echo "LINT GATE FAILED: bytecode verifier violations on the profile grid" >&2
    exit 1
fi

echo "== static analysis gate (flh analyze, verifier + prune consistency) =="
# `analyze` exits nonzero on any verifier violation; `--check-sim` cross-
# checks the static untestability classifier against random stuck-at and
# transition fault simulation on the largest mid-size profile. The report
# must also be byte-identical at any pool width.
FLH_THREADS=1 cargo run -q --release --offline --bin flh -- \
    analyze s9234 --check-sim | tee "$bench_tmp/analyze_w1.txt"
if ! grep -q '^prune-consistency: OK$' "$bench_tmp/analyze_w1.txt"; then
    echo "ANALYZE GATE FAILED: static filter pruned a simulated-detectable fault" >&2
    exit 1
fi
FLH_THREADS=4 cargo run -q --release --offline --bin flh -- \
    analyze s9234 --check-sim > "$bench_tmp/analyze_w4.txt"
if ! diff "$bench_tmp/analyze_w1.txt" "$bench_tmp/analyze_w4.txt"; then
    echo "ANALYZE GATE FAILED: analyze report depends on FLH_THREADS" >&2
    exit 1
fi
echo "verifier clean, prune-consistent, pool-width invariant"

echo "== metrics gate (deterministic counters, FLH_THREADS=1 vs 4) =="
# The flh-obs deterministic section must be byte-identical at any pool
# width: same campaign, two widths, diff the deterministic-metrics JSON.
FLH_THREADS=1 cargo run -q --release --offline --bin flh -- \
    campaign s9234 --pairs 192 --seed 7 \
    --metrics-det-json "$bench_tmp/metrics_w1.json" >/dev/null
FLH_THREADS=4 cargo run -q --release --offline --bin flh -- \
    campaign s9234 --pairs 192 --seed 7 \
    --metrics-det-json "$bench_tmp/metrics_w4.json" >/dev/null
if ! diff "$bench_tmp/metrics_w1.json" "$bench_tmp/metrics_w4.json"; then
    echo "METRICS GATE FAILED: deterministic metrics depend on FLH_THREADS" >&2
    exit 1
fi
echo "identical deterministic metrics at both pool widths"

echo "== serve smoke (scripted session, cache hit, FLH_THREADS=1 vs 4) =="
# Three jobs — the third an exact duplicate of the first — through the
# line protocol. The duplicate must be served from the compiled-circuit
# cache, and the whole transcript must be byte-identical at both widths.
cat > "$bench_tmp/serve_script.jsonl" <<'EOF'
{"op":"submit","circuit":"s298","pairs":96,"seed":7}
{"op":"submit","circuit":"s420","pairs":96,"seed":7}
{"op":"submit","circuit":"s298","pairs":96,"seed":7}
{"op":"status"}
{"op":"stats"}
{"op":"wait"}
{"op":"stats"}
{"op":"shutdown"}
EOF
FLH_THREADS=1 cargo run -q --release --offline --bin flh -- serve \
    < "$bench_tmp/serve_script.jsonl" > "$bench_tmp/serve_w1.jsonl"
FLH_THREADS=4 cargo run -q --release --offline --bin flh -- serve \
    < "$bench_tmp/serve_script.jsonl" > "$bench_tmp/serve_w4.jsonl"
if ! diff "$bench_tmp/serve_w1.jsonl" "$bench_tmp/serve_w4.jsonl"; then
    echo "SERVE GATE FAILED: protocol transcript depends on FLH_THREADS" >&2
    exit 1
fi
if ! grep -q '"cache":"hit"' "$bench_tmp/serve_w1.jsonl"; then
    echo "SERVE GATE FAILED: duplicate submission missed the compiled-circuit cache" >&2
    exit 1
fi
if ! grep -q '"hits":1' "$bench_tmp/serve_w1.jsonl"; then
    echo "SERVE GATE FAILED: farewell summary does not report one cache hit" >&2
    exit 1
fi
# The campaign jobs must stream per-batch progress events, clock-free by
# default (pairs_per_s/eta_ms appear only under `serve --timings`).
if ! grep -q '"event":"progress"' "$bench_tmp/serve_w1.jsonl"; then
    echo "SERVE GATE FAILED: campaign jobs streamed no progress events" >&2
    exit 1
fi
if grep -q '"pairs_per_s"' "$bench_tmp/serve_w1.jsonl"; then
    echo "SERVE GATE FAILED: default transcript carries wall-clock progress fields" >&2
    exit 1
fi
# The stats verb answered mid-script; its deterministic metrics document
# (ledger, gauges, per-job latency histograms, coverage series) must be
# byte-identical at both widths. The full-transcript diff above covers
# this too — the explicit diff attributes a failure to the stats verb.
if ! grep '"event":"stats"' "$bench_tmp/serve_w1.jsonl" > "$bench_tmp/stats_w1.jsonl"; then
    echo "SERVE GATE FAILED: no stats responses in the transcript" >&2
    exit 1
fi
grep '"event":"stats"' "$bench_tmp/serve_w4.jsonl" > "$bench_tmp/stats_w4.jsonl" || true
if ! diff "$bench_tmp/stats_w1.jsonl" "$bench_tmp/stats_w4.jsonl"; then
    echo "SERVE GATE FAILED: stats document depends on FLH_THREADS" >&2
    exit 1
fi
if ! grep -q 'serve.queue.depth' "$bench_tmp/stats_w1.jsonl" \
    || ! grep -q 'serve.cache.hit_ratio_bp' "$bench_tmp/stats_w1.jsonl" \
    || ! grep -q 'serve.job.bytecode_insts' "$bench_tmp/stats_w1.jsonl"; then
    echo "SERVE GATE FAILED: stats document lacks the queue/cache gauges or latency histograms" >&2
    exit 1
fi
echo "identical serve transcript (incl. stats documents) at both pool widths; duplicate job hit the cache"

echo "== codegen equivalence gate (bytecode vs event-driven reference) =="
# The lowered bytecode must agree with the event-driven simulator on every
# profile x style cell, for the packed kernels and both replay engines.
# The suite already ran inside the workspace pass above; this names it as
# its own gate so a failure is attributed to codegen, not "tests".
cargo test -q --offline -p flh-bench --test codegen_equivalence

echo "== replay superword gate (256-lane vs four 64-lane replays) =="
# The 256-lane production replay must detect exactly what four 64-lane
# replays of the same generic engine detect, on every profile x style,
# and its early exit must stay sound. Named so a failure is attributed
# to the superword rebuild, not "tests".
cargo test -q --offline -p flh-bench --test replay_superword_equivalence

echo "== perf report smoke (--quick, temp outputs, recorder on) =="
# Quick-mode reports go to a temp dir so the committed full-run
# BENCH_*.json files are never clobbered by a smoke run. The recorder is
# on here so check_bench below sees both schema shapes: the committed
# reports carry {"recorded": false}, the quick ones a full section.
cargo run -q --release --offline -p flh-bench --bin perf_report -- --quick \
    --out "$bench_tmp/BENCH_compiled_ir.json" \
    --out-parallel "$bench_tmp/BENCH_parallel_fsim.json" \
    --out-transition "$bench_tmp/BENCH_transition_fsim.json" \
    --metrics-json "$bench_tmp/perf_metrics.json" \
    | tee "$bench_tmp/perf_report.log"
if ! grep -q '^codegen_v2' "$bench_tmp/perf_report.log"; then
    echo "PERF SMOKE FAILED: perf_report printed no codegen_v2 section" >&2
    exit 1
fi
if ! grep -q '"codegen_v2"' "$bench_tmp/BENCH_compiled_ir.json"; then
    echo "PERF SMOKE FAILED: BENCH_compiled_ir.json lacks the codegen_v2 section" >&2
    exit 1
fi
if ! grep -q '"replay_superword"' "$bench_tmp/BENCH_parallel_fsim.json"; then
    echo "PERF SMOKE FAILED: BENCH_parallel_fsim.json lacks the replay_superword section" >&2
    exit 1
fi
if ! grep -q '"replay_superword"' "$bench_tmp/BENCH_transition_fsim.json"; then
    echo "PERF SMOKE FAILED: BENCH_transition_fsim.json lacks the replay_superword section" >&2
    exit 1
fi

echo "== bench report schema (committed + quick outputs) =="
cargo run -q --release --offline -p flh-bench --bin check_bench -- \
    BENCH_*.json "$bench_tmp"/BENCH_*.json

echo "== bench trend gate (committed baselines vs quick run) =="
# Quick mode runs a scaled-down workload on a possibly loaded CI host, so
# the tolerances are generous: this gate catches collapses (superword path
# off, parallel replay gone), not noise. The transition report's headline
# speedup shrinks legitimately under quick's small workload — the naive
# baseline amortizes better — hence its wider tolerance.
cargo run -q --release --offline -p flh-bench --bin check_bench -- \
    --trend BENCH_compiled_ir.json "$bench_tmp/BENCH_compiled_ir.json" --tol 0.5
cargo run -q --release --offline -p flh-bench --bin check_bench -- \
    --trend BENCH_parallel_fsim.json "$bench_tmp/BENCH_parallel_fsim.json" --tol 0.5
cargo run -q --release --offline -p flh-bench --bin check_bench -- \
    --trend BENCH_transition_fsim.json "$bench_tmp/BENCH_transition_fsim.json" --tol 0.8
# Negative check: a synthetically degraded copy must trip the gate, or the
# trend comparison is decorative.
sed -E 's/"([a-z_0-9]*speedup[a-z_0-9]*)": *[0-9.]+/"\1": 0.001/' \
    BENCH_compiled_ir.json > "$bench_tmp/BENCH_degraded.json"
if cargo run -q --release --offline -p flh-bench --bin check_bench -- \
    --trend BENCH_compiled_ir.json "$bench_tmp/BENCH_degraded.json" >/dev/null 2>&1; then
    echo "TREND GATE FAILED: synthetically degraded report passed the trend check" >&2
    exit 1
fi

echo "CI OK"
