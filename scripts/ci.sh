#!/usr/bin/env bash
# Offline CI gate: build, test (twice, at two pool widths), format check,
# and a perf-report smoke run. No network access is required — the
# workspace has no external crate dependencies (see flh-rng for the
# in-tree PRNG).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all crates) =="
cargo build --release --workspace --offline

# Strips everything timing- or build-dependent from a `cargo test` log so
# two runs can be diffed: wall-clock suffixes and cargo's compile chatter.
normalize() {
    sed -E -e 's/; finished in [0-9.]+s//' \
        -e '/^ *(Compiling|Finished|Running|Doc-tests) /d'
}

echo "== tests (all crates, FLH_THREADS=1) =="
FLH_THREADS=1 cargo test -q --workspace --offline 2>&1 | tee /tmp/flh_ci_t1.log

echo "== tests (all crates, FLH_THREADS=4) =="
FLH_THREADS=4 cargo test -q --workspace --offline 2>&1 | tee /tmp/flh_ci_t4.log

echo "== determinism gate (FLH_THREADS=1 vs 4) =="
if ! diff <(normalize </tmp/flh_ci_t1.log) <(normalize </tmp/flh_ci_t4.log); then
    echo "DETERMINISM GATE FAILED: test output depends on FLH_THREADS" >&2
    exit 1
fi
echo "identical test output at both pool widths"

echo "== formatting =="
cargo fmt --all --check

echo "== perf report smoke (--quick, temp outputs) =="
# Quick-mode reports go to a temp dir so the committed full-run
# BENCH_*.json files are never clobbered by a smoke run.
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT
cargo run -q --release --offline -p flh-bench --bin perf_report -- --quick \
    --out "$bench_tmp/BENCH_compiled_ir.json" \
    --out-parallel "$bench_tmp/BENCH_parallel_fsim.json" \
    --out-transition "$bench_tmp/BENCH_transition_fsim.json"

echo "== bench report schema (committed + quick outputs) =="
cargo run -q --release --offline -p flh-bench --bin check_bench -- \
    BENCH_*.json "$bench_tmp"/BENCH_*.json

echo "CI OK"
