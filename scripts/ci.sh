#!/usr/bin/env bash
# Offline CI gate: build, test, format check, and a perf-report smoke run.
# No network access is required — the workspace has no external crate
# dependencies (see flh-rng for the in-tree PRNG).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all crates) =="
cargo build --release --workspace --offline

echo "== tests (all crates) =="
cargo test -q --workspace --offline

echo "== formatting =="
cargo fmt --all --check

echo "== perf report smoke (s13207, --quick) =="
cargo run -q --release --offline -p flh-bench --bin perf_report -- --quick

echo "CI OK"
