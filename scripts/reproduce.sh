#!/usr/bin/env sh
# Regenerates every table, figure and extension experiment of the FLH
# reproduction (see EXPERIMENTS.md for the expected shapes).
set -e
cd "$(dirname "$0")/.."

run() {
    echo; echo "================================================================"
    echo "== $1"; echo "================================================================"
    cargo run --quiet --release -p flh-bench --bin "$1"
}

cargo build --release --workspace

run fig2_floating_decay      # Fig. 2  (E1)
run fig4_flh_hold            # Fig. 4  (E2)
run table1_area              # Table I (E3)
run table2_delay             # Table II (E4)
run table3_power             # Table III (E5)
run table4_fanout_opt        # Table IV (E6)
run coverage_invariance      # §IV invariance (E7) — slowest (deterministic ATPG x2)
run coverage_styles          # §I styles (E8) + deterministic ceilings
run testmode_power           # §IV test-mode power (E9)
run bist_coverage            # §IV BIST (E11)
run path_delay_critical      # §IV path delay (E12)
run test_time                # tester economics (E13)
run ablation_sizing          # §III/§V ablations (E14)
run variation_robustness     # process variation (E15)
run lowpower_fill            # X-fill (E16)

echo; echo "E10 (Fig. 5(b) schedule) is exercised by:"
echo "  cargo run --release --example delay_test_campaign"
