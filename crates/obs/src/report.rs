//! Exporters: a text report and hand-rolled JSON in the workspace house
//! style (fixed key order, compact objects, trailing newline on full
//! documents — the same discipline as `flh-lint`'s summary emitter).
//!
//! The deterministic and nondeterministic sections are rendered by
//! separate functions so callers can diff the former byte-for-byte across
//! pool widths ([`det_document`]) while still shipping the latter for
//! humans ([`full_json`]).

use std::fmt::Write;

use crate::registry::Snapshot;

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn gauge_entries(gauges: &[(String, i64)]) -> String {
    let entries: Vec<String> = gauges
        .iter()
        .map(|(name, v)| format!("\"{}\":{v}", escape(name)))
        .collect();
    entries.join(",")
}

/// The deterministic section as one compact JSON object (no trailing
/// newline): fixed counters, named counters, histograms, gauges and
/// windowed time series. **Byte-identical across pool widths** for a
/// deterministic workload — this is the object the CI metrics gate diffs.
pub fn deterministic_json(snap: &Snapshot) -> String {
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(name, v)| format!("\"{}\":{v}", escape(name)))
        .collect();
    let named: Vec<String> = snap
        .named_counters
        .iter()
        .map(|(name, v)| format!("\"{}\":{v}", escape(name)))
        .collect();
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .map(|h| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(b, n)| format!("{{\"bucket\":{b},\"count\":{n}}}"))
                .collect();
            format!(
                "{{\"name\":\"{}\",\"count\":{},\"total\":{},\"buckets\":[{}]}}",
                escape(h.name),
                h.count,
                h.total,
                buckets.join(",")
            )
        })
        .collect();
    let series: Vec<String> = snap
        .series
        .iter()
        .map(|s| {
            let points: Vec<String> = s
                .points
                .iter()
                .map(|&(tick, v)| format!("[{tick},{v}]"))
                .collect();
            format!(
                "{{\"name\":\"{}\",\"capacity\":{},\"points\":[{}]}}",
                escape(&s.name),
                s.capacity,
                points.join(",")
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"named_counters\":{{{}}},\"histograms\":[{}],\"gauges\":{{{}}},\"series\":[{}]}}",
        counters.join(","),
        named.join(","),
        hists.join(","),
        gauge_entries(&snap.gauges),
        series.join(",")
    )
}

/// The nondeterministic section as one compact JSON object (no trailing
/// newline): span wall-clock aggregates, per-worker busy stats and
/// scheduling counters. Never diffed — wall clock and scheduling shape
/// vary run to run and with pool width.
pub fn nondeterministic_json(snap: &Snapshot) -> String {
    let spans: Vec<String> = snap
        .spans
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_ms\":{},\"max_ms\":{}}}",
                escape(s.name),
                s.count,
                ms(s.total_ns),
                ms(s.max_ns)
            )
        })
        .collect();
    let workers: Vec<String> = snap
        .workers
        .iter()
        .map(|w| {
            format!(
                "{{\"pool\":\"{}\",\"worker\":{},\"runs\":{},\"jobs\":{},\"busy_ms\":{}}}",
                escape(w.pool),
                w.worker,
                w.runs,
                w.jobs,
                ms(w.busy_ns)
            )
        })
        .collect();
    let sched: Vec<String> = snap
        .sched
        .iter()
        .map(|(name, v)| format!("\"{}\":{v}", escape(name)))
        .collect();
    format!(
        "{{\"spans\":[{}],\"workers\":[{}],\"sched\":{{{}}},\"gauges\":{{{}}}}}",
        spans.join(","),
        workers.join(","),
        sched.join(","),
        gauge_entries(&snap.nondet_gauges)
    )
}

/// The full metrics document: both sections, explicitly labelled, with a
/// trailing newline.
pub fn full_json(snap: &Snapshot) -> String {
    format!(
        "{{\"deterministic\":{},\"nondeterministic\":{}}}\n",
        deterministic_json(snap),
        nondeterministic_json(snap)
    )
}

/// The deterministic section as a standalone document (trailing newline) —
/// what `--metrics-det-json` writes and `scripts/ci.sh` diffs across
/// `FLH_THREADS` settings.
pub fn det_document(snap: &Snapshot) -> String {
    let mut doc = deterministic_json(snap);
    doc.push('\n');
    doc
}

/// Human-readable report: deterministic counters and histograms first,
/// then the wall-clock section clearly marked as nondeterministic.
pub fn render_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("metrics (deterministic)\n");
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "  {name:<36} {v}");
    }
    for (name, v) in &snap.named_counters {
        let _ = writeln!(out, "  {name:<36} {v}");
    }
    for h in &snap.histograms {
        let _ = writeln!(out, "  {:<36} count {} total {}", h.name, h.count, h.total);
        for &(b, n) in &h.buckets {
            let range = if b == 0 {
                "0".to_string()
            } else {
                format!("{}..{}", 1u128 << (b - 1), (1u128 << b) - 1)
            };
            let _ = writeln!(out, "    [{range:>24}] {n}");
        }
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "  {name:<36} {v} (gauge)");
    }
    for s in &snap.series {
        let last = s.points.last().map_or(0, |&(_, v)| v);
        let _ = writeln!(
            out,
            "  {:<36} {} point(s), last {}",
            s.name,
            s.points.len(),
            last
        );
    }
    out.push_str("timing (nondeterministic: wall clock, varies per run)\n");
    for s in &snap.spans {
        let _ = writeln!(
            out,
            "  {:<36} x{:<6} total {} ms, max {} ms",
            s.name,
            s.count,
            ms(s.total_ns),
            ms(s.max_ns)
        );
    }
    for w in &snap.workers {
        let _ = writeln!(
            out,
            "  {}[{}]: {} run(s), {} job(s), busy {} ms",
            w.pool,
            w.worker,
            w.runs,
            w.jobs,
            ms(w.busy_ns)
        );
    }
    for (name, v) in &snap.sched {
        let _ = writeln!(out, "  {name:<36} {v}");
    }
    for (name, v) in &snap.nondet_gauges {
        let _ = writeln!(out, "  {name:<36} {v} (gauge)");
    }
    out
}
