//! Wall-clock spans: RAII guards, per-name aggregation and the Chrome
//! trace-event buffer. Everything here is **nondeterministic** by
//! definition and only ever reported in the nondeterministic section.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::registry::SpanSnapshot;
use crate::{enabled, tracing};

#[derive(Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

static AGGREGATES: Mutex<BTreeMap<&'static str, SpanAgg>> = Mutex::new(BTreeMap::new());
static TRACE: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// One completed span, as a Chrome "complete" (`ph:"X"`) event.
/// Timestamps are microseconds since the recorder's epoch; `ts` and the
/// end are floored independently so a child interval always stays inside
/// its parent's after truncation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TraceEvent {
    pub name: &'static str,
    pub tid: u64,
    pub ts_us: u64,
    pub dur_us: u64,
    pub depth: u32,
}

fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn init_epoch() {
    let _ = EPOCH.set(Instant::now());
}

pub(crate) fn reset_storage() {
    lock(&AGGREGATES).clear();
    lock(&TRACE).clear();
}

fn thread_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// RAII wall-clock span. Inert (zero work on drop) unless a recorder is
/// installed at creation time.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    depth: u32,
}

/// Opens a named span; the guard's drop records the elapsed wall clock
/// into the per-name aggregate and — when tracing — the trace buffer.
/// Spans nest: depth is tracked per thread.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start: None,
            depth: 0,
        };
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        name,
        start: Some(Instant::now()),
        depth,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let end = Instant::now();
        let elapsed_ns = end.duration_since(start).as_nanos() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        {
            let mut aggs = lock(&AGGREGATES);
            let agg = aggs.entry(self.name).or_default();
            agg.count += 1;
            agg.total_ns += elapsed_ns;
            agg.max_ns = agg.max_ns.max(elapsed_ns);
        }
        if tracing() {
            let epoch = *EPOCH.get_or_init(Instant::now);
            let ts_us = start.duration_since(epoch).as_micros() as u64;
            let end_us = end.duration_since(epoch).as_micros() as u64;
            lock(&TRACE).push(TraceEvent {
                name: self.name,
                tid: thread_tid(),
                ts_us,
                dur_us: end_us - ts_us,
                depth: self.depth,
            });
        }
    }
}

pub(crate) fn span_snapshots() -> Vec<SpanSnapshot> {
    lock(&AGGREGATES)
        .iter()
        .map(|(&name, agg)| SpanSnapshot {
            name,
            count: agg.count,
            total_ns: agg.total_ns,
            max_ns: agg.max_ns,
        })
        .collect()
}

#[cfg(test)]
pub(crate) fn trace_events() -> Vec<TraceEvent> {
    lock(&TRACE).clone()
}

/// Writes the buffered trace events as a Chrome trace-event JSON file
/// (load in `chrome://tracing` or Perfetto). Each span becomes one
/// complete event (`ph:"X"`) with its nesting depth under `args`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    let events = lock(&TRACE).clone();
    let mut out = Vec::with_capacity(events.len() * 96 + 64);
    out.extend_from_slice(b"{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"flh\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            crate::report::escape(e.name),
            e.tid,
            e.ts_us,
            e.dur_us,
            e.depth
        )?;
    }
    out.extend_from_slice(b"],\"displayTimeUnit\":\"ms\"}\n");
    std::fs::write(path, out)
}
