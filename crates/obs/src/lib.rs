//! Observability for the FLH workspace: deterministic counters, wall-clock
//! spans and Chrome trace export — with a hard line between the two kinds
//! of number.
//!
//! # The determinism contract
//!
//! Every metric in this crate is classified once, at its declaration:
//!
//! * **Deterministic** ([`Counter`], [`Hist`], named counters, the
//!   [`gauge_set`] bank and [`series_record`] time series) — quantities
//!   that depend only on the inputs of the computation, never on pool
//!   width, dispatch count, scheduling or wall clock: replay events
//!   processed, dedup hits, early exits, undo-log depth, faults dropped,
//!   PODEM backtracks, packed-word ops, lint findings. The campaign
//!   engine's contract (bit-identical results at any `FLH_THREADS`)
//!   extends to these: the deterministic JSON section is **byte-identical
//!   at pool widths 1/2/4/8**, which `crates/bench/tests/
//!   metrics_determinism.rs` and the `scripts/ci.sh` metrics gate enforce.
//!   Width-dependent work (per-shard good-machine evaluations, partition
//!   shapes, jobs per worker) must never feed a deterministic metric.
//! * **Nondeterministic** ([`span`] timings, per-worker busy stats,
//!   scheduling counters, the [`nondet_gauge_set`] bank) — wall clock and
//!   scheduling shape. These are kept in a separate section of every
//!   report and never diffed.
//!
//! Gauges are *levels* with set/add/max semantics; a gauge belongs in the
//! deterministic bank only when its level at every read point is a pure
//! function of the inputs (the service's logical job ledger), and in the
//! nondeterministic bank when it samples live execution state (a queue
//! observed from a producer mid-flight). Time series are fixed-capacity
//! ring buffers indexed by caller-supplied **logical ticks** (batch index,
//! protocol step) — never a clock — so replays are byte-identical.
//!
//! Counters are relaxed atomics sharded into per-worker banks
//! ([`bind_worker_shard`]); a snapshot merges the banks in shard-index
//! order. Merging is a commutative sum, so shard assignment can never
//! change a total — the fixed order just makes the walk itself
//! deterministic.
//!
//! # Cost when off
//!
//! Nothing is recorded until [`install`] flips the global `ENABLED` flag —
//! the same recorder-style gate the `log` crate uses. Instrumented hot
//! loops accumulate plain locals and do one `if enabled()` flush at the
//! end, so the disabled cost is a branch on a static (verified empirically:
//! `perf_report` numbers are unchanged within noise).
//!
//! # Exporters
//!
//! * [`render_text`] — human-readable report;
//! * [`full_json`] / [`det_document`] — hand-rolled JSON (no serde in this
//!   workspace), fixed key order, byte-stable;
//! * [`write_trace`] — a Chrome trace-event file (`chrome://tracing` /
//!   Perfetto loadable), written when `FLH_TRACE=<path>` is set.

#![cfg_attr(test, allow(clippy::unwrap_used))]

mod registry;
mod report;
mod span;

pub use registry::{
    add, bind_worker_shard, gauge_add, gauge_max, gauge_set, named_add, nondet_gauge_add,
    nondet_gauge_max, nondet_gauge_set, record, sched_add, series_record, snapshot, worker_busy,
    Counter, Hist, HistogramSnapshot, SeriesSnapshot, Snapshot, SpanSnapshot, WorkerSnapshot,
    HIST_BUCKETS, SERIES_CAPACITY,
};
pub use report::{det_document, deterministic_json, full_json, nondeterministic_json, render_text};
pub use span::{span, write_trace, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

/// Environment variable naming the Chrome trace output file. Setting it
/// makes the instrumented binaries install the recorder with tracing on.
pub const TRACE_ENV: &str = "FLH_TRACE";

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);

/// True once a recorder is installed. Instrumented code gates every flush
/// on this — a single relaxed load, the whole cost of the crate when off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True when the installed recorder also buffers trace events.
#[inline]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Installs the global recorder: counters, histograms and spans start
/// recording; with `trace` also buffers per-span trace events for
/// [`write_trace`]. Idempotent (a later call may still upgrade a
/// non-tracing install to a tracing one).
pub fn install(trace: bool) {
    span::init_epoch();
    ENABLED.store(true, Ordering::Relaxed);
    if trace {
        TRACING.store(true, Ordering::Relaxed);
    }
}

/// Zeroes every counter, histogram, span aggregate, worker stat and
/// buffered trace event. The installed/tracing flags are left as they are
/// — `reset` separates runs, it does not uninstall.
pub fn reset() {
    registry::reset_storage();
    span::reset_storage();
}

/// The Chrome trace destination from the environment (`FLH_TRACE=<path>`),
/// if set and non-empty.
pub fn trace_path_from_env() -> Option<String> {
    std::env::var(TRACE_ENV).ok().filter(|p| !p.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; every test in this binary serializes
    // on one lock and resets before use.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _g = locked();
        // `add`/`record` are themselves gated, so even an ungated caller
        // leaves no trace before install.
        ENABLED.store(false, Ordering::Relaxed);
        reset();
        add(Counter::ReplayEvents, 5);
        record(Hist::ReplayUndoDepth, 9);
        named_add("lint.pass.structure.findings", 2);
        let snap = snapshot();
        assert!(snap.counters.iter().all(|&(_, v)| v == 0));
        assert!(snap.named_counters.is_empty());
        assert!(snap.histograms.iter().all(|h| h.count == 0));
    }

    #[test]
    fn counters_merge_across_shards() {
        let _g = locked();
        install(false);
        reset();
        add(Counter::ReplayEvents, 3);
        std::thread::scope(|s| {
            for w in 0..4 {
                s.spawn(move || {
                    bind_worker_shard(w);
                    add(Counter::ReplayEvents, 10);
                    record(Hist::ReplayUndoDepth, 4);
                });
            }
        });
        let snap = snapshot();
        let events = snap
            .counters
            .iter()
            .find(|(n, _)| *n == "replay.events")
            .map(|&(_, v)| v);
        assert_eq!(events, Some(43));
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "replay.undo_depth")
            .expect("histogram present");
        assert_eq!(hist.count, 4);
        assert_eq!(hist.total, 16);
        // 4 falls in the 2^2..2^3 bucket (index 3).
        assert_eq!(hist.buckets, vec![(3, 4)]);
        ENABLED.store(false, Ordering::Relaxed);
    }

    #[test]
    fn spans_aggregate_and_never_enter_the_deterministic_section() {
        let _g = locked();
        install(false);
        reset();
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        add(Counter::PodemBacktracks, 2);
        let snap = snapshot();
        assert!(snap.spans.iter().any(|s| s.name == "test.outer"));
        assert!(snap.spans.iter().any(|s| s.name == "test.inner"));
        let det = deterministic_json(&snap);
        assert!(!det.contains("test.outer"), "span leaked into {det}");
        assert!(det.contains("\"podem.backtracks\":2"));
        let nondet = nondeterministic_json(&snap);
        assert!(nondet.contains("test.outer"));
        ENABLED.store(false, Ordering::Relaxed);
    }

    #[test]
    fn named_counters_and_sched_are_separated() {
        let _g = locked();
        install(false);
        reset();
        named_add("lint.pass.cycles.findings", 1);
        named_add("lint.pass.cycles.findings", 2);
        sched_add("pool.partition.calls", 1);
        let snap = snapshot();
        assert_eq!(
            snap.named_counters,
            vec![("lint.pass.cycles.findings".to_string(), 3)]
        );
        assert_eq!(snap.sched, vec![("pool.partition.calls".to_string(), 1)]);
        let det = deterministic_json(&snap);
        assert!(det.contains("lint.pass.cycles.findings"));
        assert!(!det.contains("pool.partition.calls"));
        ENABLED.store(false, Ordering::Relaxed);
    }

    #[test]
    fn json_documents_are_well_formed_and_stable() {
        let _g = locked();
        install(false);
        reset();
        add(Counter::ReplayCalls, 7);
        record(Hist::ReplayEventsPerCall, 0);
        let snap = snapshot();
        let a = full_json(&snap);
        let b = full_json(&snap);
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.starts_with("{\"deterministic\":{\"counters\":{"));
        assert!(a.contains("\"nondeterministic\":{"));
        // Zero-valued fixed counters stay in the schema.
        assert!(a.contains("\"drops.faults_dropped\":0"));
        let det = det_document(&snap);
        assert!(det.ends_with('\n'));
        assert!(!det.contains("nondeterministic"));
        let text = render_text(&snap);
        assert!(text.contains("replay.calls"));
        assert!(text.contains("nondeterministic"));
        ENABLED.store(false, Ordering::Relaxed);
    }

    #[test]
    fn det_delta_scopes_metrics_between_snapshots() {
        let _g = locked();
        install(false);
        reset();
        add(Counter::ReplayEvents, 10);
        named_add("serve.cache.hits", 2);
        record(Hist::ReplayUndoDepth, 4);
        let before = snapshot();
        {
            let _span = span("job.run");
            add(Counter::ReplayEvents, 7);
            named_add("serve.cache.hits", 1);
            named_add("serve.cache.misses", 3);
            record(Hist::ReplayUndoDepth, 4);
            record(Hist::ReplayUndoDepth, 100);
        }
        let after = snapshot();
        let delta = after.det_delta(&before);
        let events = delta
            .counters
            .iter()
            .find(|(n, _)| *n == "replay.events")
            .map(|&(_, v)| v);
        assert_eq!(events, Some(7));
        assert!(delta
            .named_counters
            .contains(&("serve.cache.hits".to_string(), 1)));
        assert!(delta
            .named_counters
            .contains(&("serve.cache.misses".to_string(), 3)));
        let hist = delta
            .histograms
            .iter()
            .find(|h| h.name == "replay.undo_depth")
            .expect("histogram present");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.total, 104);
        // One more 4 (bucket 3) and the new 100 (bucket 7).
        assert_eq!(hist.buckets, vec![(3, 1), (7, 1)]);
        // The delta renders as a pure deterministic document: the span
        // recorded inside the scope never appears.
        assert!(delta.spans.is_empty() && delta.sched.is_empty());
        let doc = det_document(&delta);
        assert!(doc.contains("\"replay.events\":7"));
        assert!(!doc.contains("job.run"));
        ENABLED.store(false, Ordering::Relaxed);
    }

    #[test]
    fn gauges_have_set_add_max_semantics_and_stay_in_their_bank() {
        let _g = locked();
        install(false);
        reset();
        gauge_set("serve.queue.depth", 3);
        gauge_set("serve.queue.depth", 2);
        gauge_add("serve.jobs.in_flight", 1);
        gauge_add("serve.jobs.in_flight", 2);
        gauge_max("serve.queue.depth_peak", 5);
        gauge_max("serve.queue.depth_peak", 4);
        nondet_gauge_set("exec.queue.depth", 7);
        nondet_gauge_max("exec.queue.depth_peak", 7);
        let snap = snapshot();
        assert_eq!(
            snap.gauges,
            vec![
                ("serve.jobs.in_flight".to_string(), 3),
                ("serve.queue.depth".to_string(), 2),
                ("serve.queue.depth_peak".to_string(), 5),
            ]
        );
        assert_eq!(
            snap.nondet_gauges,
            vec![
                ("exec.queue.depth".to_string(), 7),
                ("exec.queue.depth_peak".to_string(), 7),
            ]
        );
        let det = deterministic_json(&snap);
        assert!(det.contains("\"serve.queue.depth\":2"));
        assert!(!det.contains("exec.queue.depth"), "nondet gauge leaked");
        let nondet = nondeterministic_json(&snap);
        assert!(nondet.contains("\"exec.queue.depth\":7"));
        // det_delta drops both gauge banks: levels are not interval
        // growth, and a concurrent publisher would race a scoped delta.
        let delta = snap.det_delta(&snapshot());
        assert!(delta.gauges.is_empty());
        assert!(delta.nondet_gauges.is_empty());
        ENABLED.store(false, Ordering::Relaxed);
    }

    #[test]
    fn series_ring_keeps_the_newest_window_in_tick_order() {
        let _g = locked();
        install(false);
        reset();
        for tick in 0..(SERIES_CAPACITY as u64 + 8) {
            series_record("serve.coverage.arbitrary", tick, tick as i64 * 10);
        }
        series_record("serve.queue.depth", 1, 2);
        let snap = snapshot();
        assert_eq!(snap.series.len(), 2);
        let cov = &snap.series[0];
        assert_eq!(cov.name, "serve.coverage.arbitrary");
        assert_eq!(cov.capacity, SERIES_CAPACITY);
        // The window holds exactly the newest SERIES_CAPACITY points.
        assert_eq!(cov.points.len(), SERIES_CAPACITY);
        assert_eq!(cov.points.first(), Some(&(8, 80)));
        assert_eq!(
            cov.points.last(),
            Some(&(
                SERIES_CAPACITY as u64 + 7,
                (SERIES_CAPACITY as i64 + 7) * 10
            ))
        );
        let det = deterministic_json(&snap);
        assert!(det.contains("\"series\":[{\"name\":\"serve.coverage.arbitrary\""));
        assert!(det.contains("[8,80]"));
        // Series are windows, not monotonic sums: deltas drop them.
        let delta = snap.det_delta(&snap);
        assert!(delta.series.is_empty());
        ENABLED.store(false, Ordering::Relaxed);
    }

    #[test]
    fn trace_events_nest_like_spans() {
        let _g = locked();
        install(true);
        reset();
        {
            let _a = span("trace.outer");
            // time-ok: test-only sleep to give the spans nonzero width.
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = span("trace.inner");
                // time-ok: test-only sleep to give the spans nonzero width.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let events = span::trace_events();
        // Drop order: inner first, outer second.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "trace.inner");
        assert_eq!(events[1].name, "trace.outer");
        assert_eq!(events[0].depth, events[1].depth + 1);
        assert!(events[1].ts_us <= events[0].ts_us);
        assert!(events[0].ts_us + events[0].dur_us <= events[1].ts_us + events[1].dur_us);

        let dir = std::env::temp_dir().join("flh_obs_unit_trace.json");
        write_trace(&dir).expect("trace written");
        let text = std::fs::read_to_string(&dir).expect("trace readable");
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"name\":\"trace.outer\""));
        let _ = std::fs::remove_file(&dir);
        TRACING.store(false, Ordering::Relaxed);
        ENABLED.store(false, Ordering::Relaxed);
    }
}
