//! The metric registry: fixed deterministic counters and histograms in
//! sharded relaxed-atomic banks, plus cold named/sched counters and
//! per-worker stats behind mutexes.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration; // time-ok: import only; durations stay in the nondet section

use crate::enabled;

/// Fixed deterministic counters. Every entry is a quantity that depends
/// only on the computation's inputs — per-fault replay work, detections,
/// drops, search backtracks, packed kernel work, lint findings — never on
/// pool width or scheduling (see the crate-level determinism contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Deviation replays performed (one per fault × batch actually replayed).
    ReplayCalls,
    /// Cells evaluated from the replay's level buckets.
    ReplayEvents,
    /// Readers skipped because the generation stamp says they are already
    /// queued in this replay.
    ReplayDedupHits,
    /// Replays aborted on the first active-lane miscompare.
    ReplayEarlyExits,
    /// Writes recorded in (and reverted from) the undo log.
    ReplayUndoWrites,
    /// Pattern-lane evaluations performed by replay (bucket-cell
    /// evaluations × the engine's lane width) — the width-normalized work
    /// measure that stays comparable between the 64-lane and 256-lane
    /// engines.
    ReplayLaneEvals,
    /// Replays executed at superword width (more than 64 pattern lanes
    /// per word).
    ReplaySuperwordCalls,
    /// Stuck-at faults skipped in a batch because no lane activates them.
    StuckActivationSkips,
    /// Stuck-at faults newly detected.
    StuckDetections,
    /// Transition faults skipped in a batch because no lane launches them.
    TransitionActivationSkips,
    /// Transition faults newly detected.
    TransitionDetections,
    /// Fault flags newly flipped `false → true` by `DropMask::merge_shard`.
    FaultsDropped,
    /// PODEM decision backtracks.
    PodemBacktracks,
    /// Cells evaluated by `CompiledSim::settle` (scalar three-valued).
    SimCellEvals,
    /// Bytecode instructions executed by the compiled-program engines
    /// (scalar, packed and superword settles, fault-free good machines).
    SimBytecodeInsts,
    /// Micro-ops eliminated by bytecode fusion, recorded when a circuit is
    /// lowered (`Program::lower`).
    CodegenFusedOps,
    /// Lint diagnostics produced across all passes.
    LintFindings,
    /// Individual assertions evaluated by the bytecode verifier pass.
    LintVerifierChecks,
    /// Faults classified statically untestable by the testability pass.
    LintStaticUntestable,
}

impl Counter {
    /// Every counter, in the fixed report order.
    pub const ALL: [Counter; 19] = [
        Counter::ReplayCalls,
        Counter::ReplayEvents,
        Counter::ReplayDedupHits,
        Counter::ReplayEarlyExits,
        Counter::ReplayUndoWrites,
        Counter::ReplayLaneEvals,
        Counter::ReplaySuperwordCalls,
        Counter::StuckActivationSkips,
        Counter::StuckDetections,
        Counter::TransitionActivationSkips,
        Counter::TransitionDetections,
        Counter::FaultsDropped,
        Counter::PodemBacktracks,
        Counter::SimCellEvals,
        Counter::SimBytecodeInsts,
        Counter::CodegenFusedOps,
        Counter::LintFindings,
        Counter::LintVerifierChecks,
        Counter::LintStaticUntestable,
    ];

    /// Stable dotted report key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ReplayCalls => "replay.calls",
            Counter::ReplayEvents => "replay.events",
            Counter::ReplayDedupHits => "replay.dedup_hits",
            Counter::ReplayEarlyExits => "replay.early_exits",
            Counter::ReplayUndoWrites => "replay.undo_writes",
            Counter::ReplayLaneEvals => "replay.lane_evals",
            Counter::ReplaySuperwordCalls => "replay.superword_calls",
            Counter::StuckActivationSkips => "fsim.stuck.activation_skips",
            Counter::StuckDetections => "fsim.stuck.detections",
            Counter::TransitionActivationSkips => "fsim.transition.activation_skips",
            Counter::TransitionDetections => "fsim.transition.detections",
            Counter::FaultsDropped => "drops.faults_dropped",
            Counter::PodemBacktracks => "podem.backtracks",
            Counter::SimCellEvals => "sim.cell_evals",
            Counter::SimBytecodeInsts => "sim.bytecode_insts",
            Counter::CodegenFusedOps => "codegen.fused_ops",
            Counter::LintFindings => "lint.findings",
            Counter::LintVerifierChecks => "lint.verifier_checks",
            Counter::LintStaticUntestable => "lint.static_untestable",
        }
    }
}

/// Fixed deterministic histograms (log2 buckets, see [`HIST_BUCKETS`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Undo-log depth at the end of each replay.
    ReplayUndoDepth,
    /// Bucket-cell evaluations per replay call.
    ReplayEventsPerCall,
    /// Pattern-lane width of each replay call (64 for the word engine,
    /// 256 for the superword engine) — the mix shows which engine served
    /// a campaign without depending on pool width.
    ReplayLanesPerCall,
    /// Bytecode instructions executed per service job — the deterministic
    /// "latency" of a job in units of simulator work, recorded by the
    /// job engine from each job's metrics delta.
    ServeJobBytecodeInsts,
    /// Replay bucket-cell events per service job (the fault-simulation
    /// side of the per-job cost ledger).
    ServeJobReplayEvents,
}

impl Hist {
    /// Every histogram, in the fixed report order.
    pub const ALL: [Hist; 5] = [
        Hist::ReplayUndoDepth,
        Hist::ReplayEventsPerCall,
        Hist::ReplayLanesPerCall,
        Hist::ServeJobBytecodeInsts,
        Hist::ServeJobReplayEvents,
    ];

    /// Stable dotted report key.
    pub fn name(self) -> &'static str {
        match self {
            Hist::ReplayUndoDepth => "replay.undo_depth",
            Hist::ReplayEventsPerCall => "replay.events_per_call",
            Hist::ReplayLanesPerCall => "replay.lanes_per_call",
            Hist::ServeJobBytecodeInsts => "serve.job.bytecode_insts",
            Hist::ServeJobReplayEvents => "serve.job.replay_events",
        }
    }
}

/// Histogram bucket count: bucket 0 holds exact zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`; bucket 64 catches the top of the u64
/// range.
pub const HIST_BUCKETS: usize = 65;

const NUM_COUNTERS: usize = Counter::ALL.len();
const NUM_HISTS: usize = Hist::ALL.len();
/// Shard-bank count. Workers bind to `1 + index % (NUM_SHARDS - 1)`
/// ([`bind_worker_shard`]); unbound threads (the main thread, serial
/// paths) use shard 0. Collisions only cost contention — sums are
/// commutative, so totals never depend on the binding.
const NUM_SHARDS: usize = 32;

struct ShardBank {
    counters: [AtomicU64; NUM_COUNTERS],
    hist_buckets: [[AtomicU64; HIST_BUCKETS]; NUM_HISTS],
    hist_totals: [AtomicU64; NUM_HISTS],
}

impl ShardBank {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        #[allow(clippy::declare_interior_mutable_const)]
        const ROW: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];
        ShardBank {
            counters: [ZERO; NUM_COUNTERS],
            hist_buckets: [ROW; NUM_HISTS],
            hist_totals: [ZERO; NUM_HISTS],
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_BANK: ShardBank = ShardBank::new();
static BANKS: [ShardBank; NUM_SHARDS] = [EMPTY_BANK; NUM_SHARDS];

static NAMED: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static SCHED: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, i64>> = Mutex::new(BTreeMap::new());
static NONDET_GAUGES: Mutex<BTreeMap<String, i64>> = Mutex::new(BTreeMap::new());
static SERIES: Mutex<BTreeMap<String, VecDeque<(u64, i64)>>> = Mutex::new(BTreeMap::new());
#[allow(clippy::type_complexity)]
static WORKERS: Mutex<BTreeMap<(&'static str, usize), WorkerAgg>> = Mutex::new(BTreeMap::new());

#[derive(Clone, Copy, Default)]
struct WorkerAgg {
    runs: u64,
    jobs: u64,
    busy_ns: u64,
}

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(0) };
}

fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    // A poisoned metrics mutex must never take the workload down with it.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Binds the calling thread to a counter shard. `ThreadPool::run` calls
/// this with the worker index so concurrent workers do not contend on one
/// cache line; correctness never depends on it.
pub fn bind_worker_shard(worker: usize) {
    SHARD.with(|s| s.set(1 + worker % (NUM_SHARDS - 1)));
}

#[inline]
fn shard() -> usize {
    SHARD.with(|s| s.get())
}

/// Adds `n` to a deterministic counter. No-op unless a recorder is
/// installed (instrumented hot loops additionally gate their whole flush
/// on [`enabled`] so arguments are not even computed).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if n == 0 || !enabled() {
        return;
    }
    BANKS[shard()].counters[counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// Bucket index of a value: 0 for 0, otherwise its bit length.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Records one observation into a deterministic histogram.
#[inline]
pub fn record(hist: Hist, value: u64) {
    if !enabled() {
        return;
    }
    let bank = &BANKS[shard()];
    bank.hist_buckets[hist as usize][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    bank.hist_totals[hist as usize].fetch_add(value, Ordering::Relaxed);
}

/// Adds `n` to a dynamically named deterministic counter (cold paths with
/// an open key set — per-pass lint findings). Zero adds still create the
/// key, keeping the report schema stable across runs.
pub fn named_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut named = lock(&NAMED);
    match named.get_mut(name) {
        Some(slot) => *slot += n,
        None => {
            named.insert(name.to_string(), n);
        }
    }
}

/// Adds `n` to a scheduling counter — partition shapes, shard counts,
/// anything that legitimately varies with pool width. Reported only in the
/// nondeterministic section.
pub fn sched_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut sched = lock(&SCHED);
    match sched.get_mut(name) {
        Some(slot) => *slot += n,
        None => {
            sched.insert(name.to_string(), n);
        }
    }
}

/// A gauge update: the three level semantics a gauge supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GaugeOp {
    Set,
    Add,
    Max,
}

fn gauge_apply(bank: &'static Mutex<BTreeMap<String, i64>>, name: &str, op: GaugeOp, value: i64) {
    if !enabled() {
        return;
    }
    let mut gauges = lock(bank);
    match gauges.get_mut(name) {
        Some(slot) => match op {
            GaugeOp::Set => *slot = value,
            GaugeOp::Add => *slot += value,
            GaugeOp::Max => *slot = (*slot).max(value),
        },
        None => {
            gauges.insert(name.to_string(), value);
        }
    }
}

/// Sets a **deterministic** gauge to a level. Only quantities that are a
/// pure function of the computation's inputs may use this bank — the
/// service publishes its logical ledger here (queue depth at a protocol
/// step, cache hit ratio), never anything sampled off a running thread.
pub fn gauge_set(name: &str, value: i64) {
    gauge_apply(&GAUGES, name, GaugeOp::Set, value);
}

/// Adds a delta to a deterministic gauge (creates it at `value`).
pub fn gauge_add(name: &str, value: i64) {
    gauge_apply(&GAUGES, name, GaugeOp::Add, value);
}

/// Raises a deterministic gauge to at least `value` (high-watermark).
pub fn gauge_max(name: &str, value: i64) {
    gauge_apply(&GAUGES, name, GaugeOp::Max, value);
}

/// Sets a **nondeterministic** gauge — levels sampled from live execution
/// state (a queue observed mid-flight, a thread's instantaneous depth).
/// Reported only in the nondeterministic section, never diffed.
pub fn nondet_gauge_set(name: &str, value: i64) {
    gauge_apply(&NONDET_GAUGES, name, GaugeOp::Set, value);
}

/// Adds a delta to a nondeterministic gauge.
pub fn nondet_gauge_add(name: &str, value: i64) {
    gauge_apply(&NONDET_GAUGES, name, GaugeOp::Add, value);
}

/// Raises a nondeterministic gauge to at least `value`.
pub fn nondet_gauge_max(name: &str, value: i64) {
    gauge_apply(&NONDET_GAUGES, name, GaugeOp::Max, value);
}

/// Points kept per time series — a fixed window so a long campaign's
/// telemetry stays bounded and a snapshot is O(1) per series.
pub const SERIES_CAPACITY: usize = 64;

/// Appends one `(tick, value)` point to a windowed time series, evicting
/// the oldest point once the window is full. Ticks are **logical** —
/// supplied by the caller from its own monotonic sequence (batch index,
/// protocol step), never a clock — so a deterministic replay produces a
/// byte-identical series at any pool width.
pub fn series_record(name: &str, tick: u64, value: i64) {
    if !enabled() {
        return;
    }
    let mut series = lock(&SERIES);
    let ring = series.entry(name.to_string()).or_default();
    if ring.len() == SERIES_CAPACITY {
        ring.pop_front();
    }
    ring.push_back((tick, value));
}

/// Records one worker's busy time and claimed-job count for a pool run.
/// Wall clock: nondeterministic section only.
pub fn worker_busy(pool: &'static str, worker: usize, busy: Duration, jobs: u64) {
    if !enabled() {
        return;
    }
    let mut workers = lock(&WORKERS);
    let agg = workers.entry((pool, worker)).or_default();
    agg.runs += 1;
    agg.jobs += jobs;
    agg.busy_ns += busy.as_nanos() as u64;
}

pub(crate) fn reset_storage() {
    for bank in &BANKS {
        for c in &bank.counters {
            c.store(0, Ordering::Relaxed);
        }
        for row in &bank.hist_buckets {
            for b in row {
                b.store(0, Ordering::Relaxed);
            }
        }
        for t in &bank.hist_totals {
            t.store(0, Ordering::Relaxed);
        }
    }
    lock(&NAMED).clear();
    lock(&SCHED).clear();
    lock(&WORKERS).clear();
    lock(&GAUGES).clear();
    lock(&NONDET_GAUGES).clear();
    lock(&SERIES).clear();
}

/// One histogram in a [`Snapshot`]: observation count, value sum and the
/// occupied log2 buckets as `(bucket index, count)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub total: u64,
    pub buckets: Vec<(u32, u64)>,
}

/// One windowed time series in a [`Snapshot`]: the retained `(tick,
/// value)` points, oldest first. `capacity` is the window size
/// ([`SERIES_CAPACITY`]), so a reader can tell a short series from a
/// saturated window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesSnapshot {
    pub name: String,
    pub capacity: usize,
    pub points: Vec<(u64, i64)>,
}

/// One span aggregate in a [`Snapshot`] (nondeterministic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// One worker's aggregate in a [`Snapshot`] (nondeterministic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerSnapshot {
    pub pool: &'static str,
    pub worker: usize,
    pub runs: u64,
    pub jobs: u64,
    pub busy_ns: u64,
}

/// A point-in-time copy of every metric, deterministic and not.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Fixed counters in [`Counter::ALL`] order (zeros included — the
    /// schema never shrinks).
    pub counters: Vec<(&'static str, u64)>,
    /// Named counters in key order.
    pub named_counters: Vec<(String, u64)>,
    /// Fixed histograms in [`Hist::ALL`] order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Deterministic gauges in key order (logical levels — queue depth at
    /// a protocol step, cache hit ratio in basis points).
    pub gauges: Vec<(String, i64)>,
    /// Windowed time series in key order (deterministic: logical ticks).
    pub series: Vec<SeriesSnapshot>,
    /// Nondeterministic gauges in key order (levels sampled from live
    /// execution state).
    pub nondet_gauges: Vec<(String, i64)>,
    /// Span aggregates in name order (nondeterministic).
    pub spans: Vec<SpanSnapshot>,
    /// Worker stats in (pool, worker) order (nondeterministic).
    pub workers: Vec<WorkerSnapshot>,
    /// Scheduling counters in key order (nondeterministic).
    pub sched: Vec<(String, u64)>,
}

impl Snapshot {
    /// Deterministic delta `self − earlier`: the metric growth between two
    /// snapshots of one process, the scoping primitive behind per-job
    /// metrics documents (`flh-serve` takes a snapshot around each job and
    /// renders `det_document` of the delta).
    ///
    /// Only the deterministic monotonic sections are subtracted — fixed
    /// counters, named counters and histograms. Gauges are *levels*, not
    /// interval growth, and another thread may republish a level while
    /// this scope runs (the serve protocol thread updates the queue-depth
    /// gauge at each retire while the executor snapshots around a job),
    /// so deltas drop them — levels belong to full snapshots, where the
    /// publisher and the reader are the same thread. Series are windows,
    /// not monotonic accumulators, and come back empty. Spans, worker
    /// stats, scheduling counters and nondeterministic gauges are
    /// wall-clock/scheduling shape and come back empty, so a delta
    /// snapshot renders cleanly through `det_document` and never leaks
    /// nondeterminism into a diffable document. All deterministic
    /// counters/histograms are monotonic within a process, so saturating
    /// subtraction only guards against misuse (swapped arguments).
    pub fn det_delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|&(name, after)| {
                let before = earlier
                    .counters
                    .iter()
                    .find(|&&(n, _)| n == name)
                    .map_or(0, |&(_, v)| v);
                (name, after.saturating_sub(before))
            })
            .collect();
        let named_counters = self
            .named_counters
            .iter()
            .map(|(name, after)| {
                let before = earlier
                    .named_counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0, |&(_, v)| v);
                (name.clone(), after.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|after| {
                let before = earlier.histograms.iter().find(|h| h.name == after.name);
                let mut buckets = Vec::new();
                for &(bucket, n) in &after.buckets {
                    let prior = before
                        .and_then(|h| h.buckets.iter().find(|&&(b, _)| b == bucket))
                        .map_or(0, |&(_, n)| n);
                    let delta = n.saturating_sub(prior);
                    if delta > 0 {
                        buckets.push((bucket, delta));
                    }
                }
                HistogramSnapshot {
                    name: after.name,
                    count: after.count.saturating_sub(before.map_or(0, |h| h.count)),
                    total: after.total.saturating_sub(before.map_or(0, |h| h.total)),
                    buckets,
                }
            })
            .collect();
        Snapshot {
            counters,
            named_counters,
            histograms,
            gauges: Vec::new(),
            series: Vec::new(),
            nondet_gauges: Vec::new(),
            spans: Vec::new(),
            workers: Vec::new(),
            sched: Vec::new(),
        }
    }
}

/// Takes a snapshot, merging the counter banks **in shard-index order**.
/// The merge is a commutative sum, so the totals are independent of how
/// threads were bound to shards; deterministic counters are therefore
/// byte-identical across pool widths once rendered.
pub fn snapshot() -> Snapshot {
    let counters = Counter::ALL
        .iter()
        .map(|&c| {
            let total: u64 = BANKS
                .iter()
                .map(|b| b.counters[c as usize].load(Ordering::Relaxed))
                .sum();
            (c.name(), total)
        })
        .collect();
    let histograms = Hist::ALL
        .iter()
        .map(|&h| {
            let mut buckets = Vec::new();
            let mut count = 0u64;
            for bucket in 0..HIST_BUCKETS {
                let n: u64 = BANKS
                    .iter()
                    .map(|b| b.hist_buckets[h as usize][bucket].load(Ordering::Relaxed))
                    .sum();
                if n > 0 {
                    buckets.push((bucket as u32, n));
                    count += n;
                }
            }
            let total: u64 = BANKS
                .iter()
                .map(|b| b.hist_totals[h as usize].load(Ordering::Relaxed))
                .sum();
            HistogramSnapshot {
                name: h.name(),
                count,
                total,
                buckets,
            }
        })
        .collect();
    let named_counters = lock(&NAMED).iter().map(|(k, &v)| (k.clone(), v)).collect();
    let sched = lock(&SCHED).iter().map(|(k, &v)| (k.clone(), v)).collect();
    let gauges = lock(&GAUGES).iter().map(|(k, &v)| (k.clone(), v)).collect();
    let nondet_gauges = lock(&NONDET_GAUGES)
        .iter()
        .map(|(k, &v)| (k.clone(), v))
        .collect();
    let series = lock(&SERIES)
        .iter()
        .map(|(k, ring)| SeriesSnapshot {
            name: k.clone(),
            capacity: SERIES_CAPACITY,
            points: ring.iter().copied().collect(),
        })
        .collect();
    let workers = lock(&WORKERS)
        .iter()
        .map(|(&(pool, worker), agg)| WorkerSnapshot {
            pool,
            worker,
            runs: agg.runs,
            jobs: agg.jobs,
            busy_ns: agg.busy_ns,
        })
        .collect();
    Snapshot {
        counters,
        named_counters,
        histograms,
        gauges,
        series,
        nondet_gauges,
        spans: crate::span::span_snapshots(),
        workers,
        sched,
    }
}
