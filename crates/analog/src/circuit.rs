//! Circuit description: nodes, driven waveforms, MOSFETs and coupling
//! capacitors, plus builder helpers for inverters, transmission gates and
//! supply-gated stages.

use flh_tech::{Mosfet, Technology};

/// Index of a circuit node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A piecewise-linear voltage source waveform: `(time_ns, volts)` knots,
/// held constant before the first and after the last knot.
#[derive(Clone, Debug, PartialEq)]
pub struct Waveform {
    knots: Vec<(f64, f64)>,
}

impl Waveform {
    /// Constant voltage.
    pub fn constant(volts: f64) -> Self {
        Waveform {
            knots: vec![(0.0, volts)],
        }
    }

    /// Builds from explicit knots.
    ///
    /// # Panics
    ///
    /// Panics if `knots` is empty or times are not non-decreasing.
    pub fn piecewise(knots: Vec<(f64, f64)>) -> Self {
        assert!(!knots.is_empty(), "waveform needs at least one knot");
        assert!(
            knots.windows(2).all(|w| w[0].0 <= w[1].0),
            "waveform knots must be time-ordered"
        );
        Waveform { knots }
    }

    /// A single step from `v0` to `v1` at `t_ns` with the given rise time.
    pub fn step(v0: f64, v1: f64, t_ns: f64, rise_ns: f64) -> Self {
        Waveform::piecewise(vec![(0.0, v0), (t_ns, v0), (t_ns + rise_ns, v1)])
    }

    /// A square pulse train: starts at `v0`, toggling between `v0`/`v1`
    /// every `half_period_ns` starting at `start_ns`, for `n_edges` edges.
    pub fn clock(v0: f64, v1: f64, start_ns: f64, half_period_ns: f64, n_edges: usize) -> Self {
        let edge_ns = (half_period_ns * 0.05).clamp(0.005, 0.05);
        let mut knots = vec![(0.0, v0)];
        let mut level = v0;
        for k in 0..n_edges {
            let t = start_ns + k as f64 * half_period_ns;
            knots.push((t, level));
            level = if level == v0 { v1 } else { v0 };
            knots.push((t + edge_ns, level));
        }
        Waveform::piecewise(knots)
    }

    /// Voltage at time `t_ns` (binary search over the knots, so long pulse
    /// trains stay cheap to sample).
    pub fn at(&self, t_ns: f64) -> f64 {
        let ks = &self.knots;
        if t_ns <= ks[0].0 {
            return ks[0].1;
        }
        if t_ns >= ks[ks.len() - 1].0 {
            return ks[ks.len() - 1].1;
        }
        // First knot with time > t_ns; its predecessor starts the segment.
        let hi = ks.partition_point(|&(t, _)| t <= t_ns);
        let (t0, v0) = ks[hi - 1];
        let (t1, v1) = ks[hi];
        if t1 == t0 {
            return v1;
        }
        let f = (t_ns - t0) / (t1 - t0);
        v0 + f * (v1 - v0)
    }

    /// Knot times (used by the integrator to not step over edges).
    pub fn breakpoints(&self) -> impl Iterator<Item = f64> + '_ {
        self.knots.iter().map(|&(t, _)| t)
    }
}

/// What drives a node.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeKind {
    /// Free node integrated by the simulator; field is its lumped
    /// capacitance to ground (fF).
    Internal(f64),
    /// Ideal source following a waveform.
    Driven(Waveform),
}

#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub name: String,
    pub kind: NodeKind,
}

#[derive(Clone, Debug)]
pub(crate) struct DeviceInst {
    pub mosfet: Mosfet,
    pub gate: NodeId,
    pub source: NodeId,
    pub drain: NodeId,
}

#[derive(Clone, Debug)]
pub(crate) struct Coupling {
    pub a: NodeId,
    pub b: NodeId,
    pub cap_ff: f64,
}

/// A flat transistor-level circuit.
///
/// # Example
///
/// ```
/// use flh_analog::{Circuit, Waveform};
/// use flh_tech::Technology;
///
/// let tech = Technology::bptm70();
/// let mut c = Circuit::new(tech.clone());
/// let vdd = c.add_driven("vdd", Waveform::constant(tech.vdd));
/// let gnd = c.add_driven("gnd", Waveform::constant(0.0));
/// let inp = c.add_driven("in", Waveform::step(0.0, tech.vdd, 1.0, 0.05));
/// let out = c.add_internal("out", 0.5);
/// c.inverter(inp, out, vdd, gnd, 1.0, 2.0);
/// assert_eq!(c.node_count(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Circuit {
    tech: Technology,
    pub(crate) nodes: Vec<Node>,
    pub(crate) devices: Vec<DeviceInst>,
    pub(crate) couplings: Vec<Coupling>,
}

impl Circuit {
    /// Empty circuit over a technology.
    pub fn new(tech: Technology) -> Self {
        Circuit {
            tech,
            nodes: Vec::new(),
            devices: Vec::new(),
            couplings: Vec::new(),
        }
    }

    /// The device model in use.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Node name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Finds a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Adds a free node with a base capacitance to ground (fF); device
    /// parasitics are added automatically as devices connect.
    pub fn add_internal(&mut self, name: impl Into<String>, cap_ff: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            kind: NodeKind::Internal(cap_ff),
        });
        id
    }

    /// Adds an ideal driven source.
    pub fn add_driven(&mut self, name: impl Into<String>, waveform: Waveform) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            kind: NodeKind::Driven(waveform),
        });
        id
    }

    fn add_node_cap(&mut self, node: NodeId, extra_ff: f64) {
        if let NodeKind::Internal(c) = &mut self.nodes[node.0].kind {
            *c += extra_ff;
        }
    }

    /// Places a MOSFET, accumulating its diffusion capacitance on source and
    /// drain, its gate capacitance on the gate node, and a gate–drain
    /// overlap coupling capacitor (the crosstalk path of Section II).
    pub fn add_mosfet(&mut self, mosfet: Mosfet, gate: NodeId, source: NodeId, drain: NodeId) {
        let w = mosfet.w_um;
        let diff = self.tech.diff_cap_ff(w);
        let gcap = self.tech.gate_cap_ff(w);
        let ov = self.tech.gd_overlap_ff(w);
        self.add_node_cap(source, diff);
        self.add_node_cap(drain, diff);
        self.add_node_cap(gate, gcap);
        self.couplings.push(Coupling {
            a: gate,
            b: drain,
            cap_ff: ov,
        });
        self.devices.push(DeviceInst {
            mosfet,
            gate,
            source,
            drain,
        });
    }

    /// Static CMOS inverter with NMOS/PMOS width multipliers, between the
    /// given rails.
    pub fn inverter(
        &mut self,
        input: NodeId,
        output: NodeId,
        rail_vdd: NodeId,
        rail_gnd: NodeId,
        wn_mult: f64,
        wp_mult: f64,
    ) {
        let tech = self.tech.clone();
        self.add_mosfet(Mosfet::pmos(&tech, wp_mult), input, rail_vdd, output);
        self.add_mosfet(Mosfet::nmos(&tech, wn_mult), input, rail_gnd, output);
    }

    /// Transmission gate between `a` and `b`: NMOS gated by `ctl`, PMOS by
    /// `ctl_bar`.
    pub fn transmission_gate(
        &mut self,
        a: NodeId,
        b: NodeId,
        ctl: NodeId,
        ctl_bar: NodeId,
        wn_mult: f64,
        wp_mult: f64,
    ) {
        let tech = self.tech.clone();
        self.add_mosfet(Mosfet::nmos(&tech, wn_mult), ctl, a, b);
        self.add_mosfet(Mosfet::pmos(&tech, wp_mult), ctl_bar, a, b);
    }

    /// Explicit coupling capacitor (crosstalk aggressor modelling).
    pub fn couple(&mut self, a: NodeId, b: NodeId, cap_ff: f64) {
        self.couplings.push(Coupling { a, b, cap_ff });
    }

    /// Applies a local threshold-voltage shift to device `index` (by
    /// placement order) — the Monte Carlo process-variation knob.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_vth_shift(&mut self, index: usize, volts: f64) {
        self.devices[index].mosfet.vth_shift_v = volts;
    }

    /// Conduction current of device `index` (by placement order) at the
    /// given node voltages — positive into the drain terminal. Used by the
    /// experiments to probe e.g. the static short-circuit current of a
    /// stage (the paper's Idd2/Idd3 in Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `volts` is shorter than the
    /// node count.
    pub fn device_current(&self, index: usize, volts: &[f64]) -> f64 {
        let d = &self.devices[index];
        d.mosfet.current(
            &self.tech,
            volts[d.gate.index()],
            volts[d.source.index()],
            volts[d.drain.index()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_interpolation() {
        let w = Waveform::piecewise(vec![(0.0, 0.0), (10.0, 0.0), (11.0, 1.0)]);
        assert_eq!(w.at(-5.0), 0.0);
        assert_eq!(w.at(5.0), 0.0);
        assert!((w.at(10.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.at(20.0), 1.0);
    }

    #[test]
    fn step_waveform() {
        let w = Waveform::step(0.0, 1.0, 2.0, 0.1);
        assert_eq!(w.at(1.9), 0.0);
        assert_eq!(w.at(2.1), 1.0);
    }

    #[test]
    fn clock_waveform_toggles() {
        let w = Waveform::clock(0.0, 1.0, 1.0, 2.0, 4);
        assert_eq!(w.at(0.5), 0.0);
        assert_eq!(w.at(2.0), 1.0);
        assert_eq!(w.at(4.0), 0.0);
        assert_eq!(w.at(6.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_knots_panic() {
        Waveform::piecewise(vec![(5.0, 1.0), (1.0, 0.0)]);
    }

    #[test]
    fn mosfet_parasitics_accumulate() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech.clone());
        let vdd = c.add_driven("vdd", Waveform::constant(tech.vdd));
        let gnd = c.add_driven("gnd", Waveform::constant(0.0));
        let inp = c.add_driven("in", Waveform::constant(0.0));
        let out = c.add_internal("out", 0.0);
        c.inverter(inp, out, vdd, gnd, 1.0, 2.0);
        match &c.nodes[out.0].kind {
            NodeKind::Internal(cap) => {
                // Two diffusion caps: (0.15 + 0.30) µm × 0.8 fF/µm.
                let expect = 0.45 * 0.8;
                assert!((cap - expect).abs() < 1e-9, "out cap {cap}");
            }
            other => panic!("unexpected kind {other:?}"),
        }
        // Gate–drain overlaps registered for crosstalk.
        assert_eq!(c.couplings.len(), 2);
        assert_eq!(c.device_count(), 2);
    }

    #[test]
    fn find_by_name() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech);
        let n = c.add_internal("x1", 1.0);
        assert_eq!(c.find("x1"), Some(n));
        assert_eq!(c.find("nope"), None);
        assert_eq!(c.node_name(n), "x1");
    }
}
