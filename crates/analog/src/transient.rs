//! Explicit adaptive-step transient integration and waveform traces.

use crate::circuit::{Circuit, NodeId, NodeKind};

/// Integration controls.
#[derive(Clone, Debug, PartialEq)]
pub struct TransientConfig {
    /// Stop time (ns).
    pub t_stop_ns: f64,
    /// Maximum per-step voltage change on any node (V); the step size
    /// adapts to respect it.
    pub dv_max: f64,
    /// Smallest allowed step (ns).
    pub dt_min_ns: f64,
    /// Largest allowed step (ns).
    pub dt_max_ns: f64,
    /// Sampling interval for the recorded trace (ns).
    pub sample_ns: f64,
}

impl TransientConfig {
    /// A configuration suitable for the Fig. 2 / Fig. 4 experiments.
    pub fn for_window_ns(t_stop_ns: f64) -> Self {
        TransientConfig {
            t_stop_ns,
            dv_max: 0.01,
            dt_min_ns: 1e-6,
            dt_max_ns: 0.5,
            sample_ns: (t_stop_ns / 2000.0).max(1e-3),
        }
    }
}

/// Recorded node voltages over time.
#[derive(Clone, Debug)]
pub struct Trace {
    time_ns: Vec<f64>,
    /// `data[sample][node]` in volts.
    data: Vec<Vec<f64>>,
    names: Vec<String>,
}

impl Trace {
    /// Sample times (ns).
    pub fn time_ns(&self) -> &[f64] {
        &self.time_ns
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time_ns.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.time_ns.is_empty()
    }

    /// Voltage series of one node.
    pub fn series(&self, node: NodeId) -> Vec<f64> {
        self.data.iter().map(|s| s[node.index()]).collect()
    }

    /// Voltage of `node` at the sample nearest to `t_ns`.
    pub fn voltage_at(&self, node: NodeId, t_ns: f64) -> f64 {
        let idx = match self
            .time_ns
            .binary_search_by(|t| t.partial_cmp(&t_ns).expect("finite times"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.time_ns.len() - 1),
        };
        self.data[idx][node.index()]
    }

    /// Earliest sample time at which `node` drops below `threshold` volts,
    /// searching from `from_ns` on.
    pub fn first_time_below(&self, node: NodeId, threshold: f64, from_ns: f64) -> Option<f64> {
        self.time_ns
            .iter()
            .zip(self.data.iter())
            .find(|(t, s)| **t >= from_ns && s[node.index()] < threshold)
            .map(|(t, _)| *t)
    }

    /// Minimum voltage of `node` in `[from_ns, to_ns]`.
    pub fn min_in_window(&self, node: NodeId, from_ns: f64, to_ns: f64) -> f64 {
        self.time_ns
            .iter()
            .zip(self.data.iter())
            .filter(|(t, _)| **t >= from_ns && **t <= to_ns)
            .map(|(_, s)| s[node.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum voltage of `node` in `[from_ns, to_ns]`.
    pub fn max_in_window(&self, node: NodeId, from_ns: f64, to_ns: f64) -> f64 {
        self.time_ns
            .iter()
            .zip(self.data.iter())
            .filter(|(t, _)| **t >= from_ns && **t <= to_ns)
            .map(|(_, s)| s[node.index()])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Node names, indexed like the data columns.
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    /// Full voltage snapshot of sample `index`, indexed by
    /// [`NodeId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn snapshot(&self, index: usize) -> &[f64] {
        &self.data[index]
    }

    /// Index of the first sample at or after `t_ns` (last sample if past
    /// the end).
    pub fn sample_at(&self, t_ns: f64) -> usize {
        self.time_ns
            .iter()
            .position(|&t| t >= t_ns)
            .unwrap_or(self.time_ns.len() - 1)
    }
}

/// Runs a transient simulation.
///
/// `initial` sets starting voltages of internal nodes (unlisted internal
/// nodes start at 0 V; driven nodes follow their waveform).
///
/// # Panics
///
/// Panics if the configuration is degenerate (`t_stop_ns <= 0`,
/// `dt_min_ns <= 0`).
pub fn simulate(circuit: &Circuit, config: &TransientConfig, initial: &[(NodeId, f64)]) -> Trace {
    assert!(config.t_stop_ns > 0.0, "t_stop must be positive");
    assert!(config.dt_min_ns > 0.0, "dt_min must be positive");
    let tech = circuit.technology().clone();
    let n = circuit.node_count();

    // Effective capacitance per internal node: lumped + coupling caps.
    let mut cap_ff = vec![0.0f64; n];
    let mut internal = vec![false; n];
    for (i, node) in circuit.nodes.iter().enumerate() {
        if let NodeKind::Internal(c) = node.kind {
            // Floor to keep the integrator well-conditioned on bare nodes.
            cap_ff[i] = c.max(0.05);
            internal[i] = true;
        }
    }
    for c in &circuit.couplings {
        if internal[c.a.index()] {
            cap_ff[c.a.index()] += c.cap_ff;
        }
        if internal[c.b.index()] {
            cap_ff[c.b.index()] += c.cap_ff;
        }
    }

    // Waveform breakpoints, so steps never jump across an edge.
    let mut breakpoints: Vec<f64> = circuit
        .nodes
        .iter()
        .filter_map(|node| match &node.kind {
            NodeKind::Driven(w) => Some(w.breakpoints().collect::<Vec<_>>()),
            NodeKind::Internal(_) => None,
        })
        .flatten()
        .filter(|&t| t > 0.0 && t < config.t_stop_ns)
        .collect();
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    breakpoints.dedup();

    let mut volts = vec![0.0f64; n];
    for (i, node) in circuit.nodes.iter().enumerate() {
        if let NodeKind::Driven(w) = &node.kind {
            volts[i] = w.at(0.0);
        }
    }
    for &(node, v) in initial {
        volts[node.index()] = v;
    }

    let mut prev_dv = vec![0.0f64; n];
    let mut trace = Trace {
        time_ns: Vec::new(),
        data: Vec::new(),
        names: circuit.nodes.iter().map(|node| node.name.clone()).collect(),
    };

    let mut t = 0.0f64;
    let mut next_sample = 0.0f64;
    let mut bp_cursor = 0usize;
    let mut currents = vec![0.0f64; n];

    while t < config.t_stop_ns {
        if t >= next_sample {
            trace.time_ns.push(t);
            trace.data.push(volts.clone());
            next_sample += config.sample_ns;
        }

        // Conduction currents into each node.
        currents.iter_mut().for_each(|c| *c = 0.0);
        for d in &circuit.devices {
            let i = d.mosfet.current(
                &tech,
                volts[d.gate.index()],
                volts[d.source.index()],
                volts[d.drain.index()],
            );
            // `i` flows into the drain terminal and out of the source
            // terminal, i.e. it removes charge from the drain node and
            // adds charge to the source node.
            currents[d.drain.index()] -= i;
            currents[d.source.index()] += i;
        }

        // Step selection: respect dv_max, breakpoints and stop time.
        let mut dt = config.dt_max_ns;
        for i in 0..n {
            if internal[i] && currents[i].abs() > 1e-18 {
                // dv = I·dt/C × 1e6  (A, ns, fF) — bound it by dv_max.
                let limit = config.dv_max * cap_ff[i] / (currents[i].abs() * 1e6);
                dt = dt.min(limit);
            }
        }
        dt = dt.max(config.dt_min_ns);
        while bp_cursor < breakpoints.len() && breakpoints[bp_cursor] <= t + 1e-12 {
            bp_cursor += 1;
        }
        if bp_cursor < breakpoints.len() {
            dt = dt.min(breakpoints[bp_cursor] - t);
        }
        dt = dt.min(config.t_stop_ns - t).max(config.dt_min_ns * 1e-3);

        // Advance driven nodes; record their deltas for coupling injection.
        let t_next = t + dt;
        let mut dv = vec![0.0f64; n];
        for (i, node) in circuit.nodes.iter().enumerate() {
            if let NodeKind::Driven(w) = &node.kind {
                let v_new = w.at(t_next);
                dv[i] = v_new - volts[i];
            }
        }

        // Charge update on internal nodes: conduction + capacitive
        // injection from neighbours (driven neighbours use this step's
        // delta; internal neighbours the previous step's, a standard weak-
        // coupling approximation).
        let mut injected = vec![0.0f64; n];
        for c in &circuit.couplings {
            let (ai, bi) = (c.a.index(), c.b.index());
            let dva = if internal[ai] { prev_dv[ai] } else { dv[ai] };
            let dvb = if internal[bi] { prev_dv[bi] } else { dv[bi] };
            if internal[ai] {
                injected[ai] += c.cap_ff * dvb;
            }
            if internal[bi] {
                injected[bi] += c.cap_ff * dva;
            }
        }
        for i in 0..n {
            if internal[i] {
                let dq_dv = currents[i] * dt / cap_ff[i] * 1e6 + injected[i] / cap_ff[i];
                dv[i] = dq_dv;
            }
        }
        for i in 0..n {
            volts[i] = (volts[i] + dv[i]).clamp(-0.2, tech.vdd + 0.2);
        }
        prev_dv = dv;
        t = t_next;
    }
    trace.time_ns.push(t);
    trace.data.push(volts);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;
    use flh_tech::Technology;

    fn rails(c: &mut Circuit) -> (NodeId, NodeId) {
        let vdd_v = c.technology().vdd;
        let vdd = c.add_driven("vdd", Waveform::constant(vdd_v));
        let gnd = c.add_driven("gnd", Waveform::constant(0.0));
        (vdd, gnd)
    }

    #[test]
    fn inverter_switches() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech.clone());
        let (vdd, gnd) = rails(&mut c);
        let inp = c.add_driven("in", Waveform::step(0.0, tech.vdd, 1.0, 0.05));
        let out = c.add_internal("out", 1.0);
        c.inverter(inp, out, vdd, gnd, 1.0, 2.0);
        let trace = simulate(&c, &TransientConfig::for_window_ns(5.0), &[(out, tech.vdd)]);
        // Before the input step the output stays high; after, it falls.
        assert!(trace.voltage_at(out, 0.8) > 0.9 * tech.vdd);
        assert!(trace.voltage_at(out, 4.5) < 0.1 * tech.vdd);
    }

    #[test]
    fn inverter_output_rises_too() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech.clone());
        let (vdd, gnd) = rails(&mut c);
        let inp = c.add_driven("in", Waveform::step(tech.vdd, 0.0, 1.0, 0.05));
        let out = c.add_internal("out", 1.0);
        c.inverter(inp, out, vdd, gnd, 1.0, 2.0);
        let trace = simulate(&c, &TransientConfig::for_window_ns(5.0), &[(out, 0.0)]);
        assert!(trace.voltage_at(out, 0.8) < 0.1 * tech.vdd);
        assert!(trace.voltage_at(out, 4.5) > 0.9 * tech.vdd);
    }

    #[test]
    fn inverter_chain_propagates() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech.clone());
        let (vdd, gnd) = rails(&mut c);
        let inp = c.add_driven("in", Waveform::step(0.0, tech.vdd, 1.0, 0.05));
        let n1 = c.add_internal("n1", 0.5);
        let n2 = c.add_internal("n2", 0.5);
        c.inverter(inp, n1, vdd, gnd, 1.0, 2.0);
        c.inverter(n1, n2, vdd, gnd, 1.0, 2.0);
        let trace = simulate(
            &c,
            &TransientConfig::for_window_ns(5.0),
            &[(n1, tech.vdd), (n2, 0.0)],
        );
        assert!(trace.voltage_at(n1, 4.5) < 0.1);
        assert!(trace.voltage_at(n2, 4.5) > 0.9);
    }

    #[test]
    fn switching_delay_is_picoseconds_scale() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech.clone());
        let (vdd, gnd) = rails(&mut c);
        let inp = c.add_driven("in", Waveform::step(0.0, tech.vdd, 1.0, 0.01));
        let out = c.add_internal("out", 2.0);
        c.inverter(inp, out, vdd, gnd, 1.0, 2.0);
        let mut cfg = TransientConfig::for_window_ns(2.0);
        cfg.sample_ns = 0.001;
        let trace = simulate(&c, &cfg, &[(out, tech.vdd)]);
        let t_fall = trace
            .first_time_below(out, 0.5 * tech.vdd, 1.0)
            .expect("output must fall");
        let delay_ps = (t_fall - 1.0) * 1e3;
        assert!(
            (1.0..100.0).contains(&delay_ps),
            "inverter delay {delay_ps} ps"
        );
    }

    #[test]
    fn transmission_gate_conducts_when_on() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech.clone());
        let (vdd, gnd) = rails(&mut c);
        let src = c.add_driven("src", Waveform::constant(tech.vdd));
        let out = c.add_internal("out", 1.0);
        // TG on: nmos gate at vdd, pmos gate at gnd.
        c.transmission_gate(src, out, vdd, gnd, 1.0, 2.0);
        let trace = simulate(&c, &TransientConfig::for_window_ns(3.0), &[(out, 0.0)]);
        assert!(trace.voltage_at(out, 2.5) > 0.9 * tech.vdd);
    }

    #[test]
    fn transmission_gate_blocks_when_off() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech.clone());
        let (vdd, gnd) = rails(&mut c);
        let src = c.add_driven("src", Waveform::constant(tech.vdd));
        let out = c.add_internal("out", 1.0);
        // TG off: nmos gate at gnd, pmos gate at vdd.
        c.transmission_gate(src, out, gnd, vdd, 1.0, 2.0);
        let trace = simulate(&c, &TransientConfig::for_window_ns(3.0), &[(out, 0.0)]);
        // Only leakage charges the node: it must stay well below VDD/2
        // within a few ns.
        assert!(trace.voltage_at(out, 2.5) < 0.3 * tech.vdd);
    }

    #[test]
    fn trace_utilities() {
        let tech = Technology::bptm70();
        let mut c = Circuit::new(tech.clone());
        let (vdd, gnd) = rails(&mut c);
        let inp = c.add_driven("in", Waveform::step(0.0, tech.vdd, 1.0, 0.05));
        let out = c.add_internal("out", 1.0);
        c.inverter(inp, out, vdd, gnd, 1.0, 2.0);
        let trace = simulate(&c, &TransientConfig::for_window_ns(5.0), &[(out, tech.vdd)]);
        assert!(!trace.is_empty());
        assert!(trace.len() > 100);
        assert!(trace.max_in_window(out, 0.0, 0.9) > 0.9);
        assert!(trace.min_in_window(out, 3.0, 5.0) < 0.1);
        assert!(trace.first_time_below(out, 0.5, 0.0).is_some());
        assert_eq!(trace.node_names()[out.index()], "out");
        assert_eq!(trace.series(out).len(), trace.len());
    }
}
