//! Transient circuit simulation at the transistor level.
//!
//! Stands in for the paper's HSPICE runs: a nonlinear, explicit,
//! adaptive-step transient simulator over the compact MOSFET model of
//! `flh-tech`. It exists to reproduce the two electrical experiments of
//! Section II:
//!
//! * **Fig. 2** — a supply-gated first-stage inverter *without* a keeper:
//!   when the input switches during sleep, the floating output node decays
//!   through the off gating transistor's subthreshold leakage, dropping
//!   below 600 mV in well under the 1 µs scan window and drawing static
//!   short-circuit current in the second stage;
//! * **Fig. 4** — the same stage with the FLH keeper (cross-coupled
//!   inverters closed through a transmission gate in sleep mode): the
//!   output holds its level indefinitely despite input switching, charge
//!   sharing and the gate–drain coupling (crosstalk) path.
//!
//! The numerical core is deliberately simple — explicit integration with a
//! per-step voltage-change limit — because the circuits of interest are a
//! handful of nodes and the behaviours depend on on/off current ratios,
//! not on matrix-solver accuracy.

pub mod circuit;
pub mod experiments;
pub mod transient;

pub use circuit::{Circuit, NodeId, NodeKind, Waveform};
pub use experiments::{
    gated_chain, gated_nand_charge_sharing, monte_carlo_hold_robustness, steady_state_initial,
    ChargeSharingProbes, GatedChainConfig, GatedChainProbes, InputStimulus, VariationSample,
};
pub use transient::{simulate, Trace, TransientConfig};
