//! Canned experiment circuits: the supply-gated three-inverter chain of
//! Fig. 2, with or without the FLH keeper of Fig. 3.

use flh_tech::{FlhConfig, Technology};

use crate::circuit::{Circuit, NodeId, Waveform};

/// Input stimulus for the gated chain.
#[derive(Clone, Debug, PartialEq)]
pub enum InputStimulus {
    /// One 0→1 step at `at_ns` (the Fig. 2 scenario: IN switches to 1 in
    /// the sleep mode and stays there).
    Step {
        /// Step time (ns).
        at_ns: f64,
    },
    /// A pulse train (the Fig. 4 scenario: IN toggles at the scan rate
    /// while the stage must hold).
    Toggle {
        /// First edge (ns).
        start_ns: f64,
        /// Half period (ns); 0.5 ns models a 1 GHz scan clock.
        half_period_ns: f64,
        /// Number of edges.
        edges: usize,
    },
}

/// Configuration of the gated-chain experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct GatedChainConfig {
    /// Install the FLH keeper (Fig. 3)? `false` reproduces Fig. 2's
    /// floating-node decay.
    pub with_keeper: bool,
    /// Sleep assertion time (ns); before this the chain operates normally
    /// and establishes `OUT1 = VDD` for `IN = 0`.
    pub sleep_start_ns: f64,
    /// Input stimulus applied during sleep.
    pub input: InputStimulus,
    /// Explicit crosstalk aggressor: a neighbouring net toggling at the
    /// scan rate, coupled to OUT1 with this capacitance (fF). Zero disables
    /// it. Models the Section II warning that "crosstalk noise or transient
    /// effects … can also easily change the voltage of a floated output".
    pub aggressor_cap_ff: f64,
    /// FLH sizing (gating transistors + keeper).
    pub flh: FlhConfig,
}

impl GatedChainConfig {
    /// The Fig. 2 scenario: no keeper, input steps high 5 ns into sleep.
    pub fn fig2() -> Self {
        GatedChainConfig {
            with_keeper: false,
            sleep_start_ns: 2.0,
            input: InputStimulus::Step { at_ns: 7.0 },
            aggressor_cap_ff: 0.0,
            flh: FlhConfig::paper_default(),
        }
    }

    /// The Fig. 4 scenario: keeper installed, input toggles at the 1 GHz
    /// scan rate during sleep.
    pub fn fig4(edges: usize) -> Self {
        GatedChainConfig {
            with_keeper: true,
            sleep_start_ns: 2.0,
            input: InputStimulus::Toggle {
                start_ns: 7.0,
                half_period_ns: 0.5,
                edges,
            },
            aggressor_cap_ff: 0.0,
            flh: FlhConfig::paper_default(),
        }
    }

    /// The Section II crosstalk scenario: the input stays quiet (so the
    /// gated stage would hold if undisturbed) while an aggressor net
    /// toggles at the scan rate, coupled into OUT1.
    pub fn crosstalk(with_keeper: bool, cap_ff: f64) -> Self {
        GatedChainConfig {
            with_keeper,
            sleep_start_ns: 2.0,
            // Input parked low for the whole window.
            input: InputStimulus::Step { at_ns: 1e9 },
            aggressor_cap_ff: cap_ff,
            flh: FlhConfig::paper_default(),
        }
    }
}

/// Probe handles into the generated circuit.
#[derive(Clone, Debug)]
pub struct GatedChainProbes {
    /// Input source node.
    pub input: NodeId,
    /// Sleep control node (high = sleep).
    pub sleep: NodeId,
    /// First-stage (gated) output — the node at risk of floating.
    pub out1: NodeId,
    /// Second-stage output.
    pub out2: NodeId,
    /// Third-stage output.
    pub out3: NodeId,
    /// Virtual VDD rail of the gated stage.
    pub virt_vdd: NodeId,
    /// Virtual GND rail of the gated stage.
    pub virt_gnd: NodeId,
    /// Device index of the second stage's PMOS (probe for Idd2, the static
    /// short-circuit current of Fig. 2).
    pub stage2_pmos: usize,
    /// Device index of the second stage's NMOS.
    pub stage2_nmos: usize,
}

/// Builds the supply-gated three-inverter chain of Fig. 2 (optionally with
/// the Fig. 3 keeper) and returns the circuit plus probes.
///
/// Structure: `IN → [gated INV1] → OUT1 → INV2 → OUT2 → INV3 → OUT3`, with
/// header/footer gating transistors on INV1's rails controlled by SLEEP,
/// and (optionally) the cross-coupled keeper closed through a transmission
/// gate during sleep.
pub fn gated_chain(tech: &Technology, config: &GatedChainConfig) -> (Circuit, GatedChainProbes) {
    let mut c = Circuit::new(tech.clone());
    let vdd = c.add_driven("vdd", Waveform::constant(tech.vdd));
    let gnd = c.add_driven("gnd", Waveform::constant(0.0));

    // Sleep control and complement (ideal drivers).
    let t0 = config.sleep_start_ns;
    let sleep = c.add_driven("sleep", Waveform::step(0.0, tech.vdd, t0, 0.05));
    let sleep_bar = c.add_driven("sleep_bar", Waveform::step(tech.vdd, 0.0, t0, 0.05));

    let input_wave = match &config.input {
        InputStimulus::Step { at_ns } => Waveform::step(0.0, tech.vdd, *at_ns, 0.05),
        InputStimulus::Toggle {
            start_ns,
            half_period_ns,
            edges,
        } => Waveform::clock(0.0, tech.vdd, *start_ns, *half_period_ns, *edges),
    };
    let input = c.add_driven("in", input_wave);

    // Gated first stage on virtual rails.
    let virt_vdd = c.add_internal("virt_vdd", 0.3);
    let virt_gnd = c.add_internal("virt_gnd", 0.3);
    let out1 = c.add_internal("out1", 0.2);
    c.inverter(input, out1, virt_vdd, virt_gnd, 1.0, 2.0);
    // Header PMOS: on in normal mode (gate = sleep).
    {
        let tech_c = c.technology().clone();
        c.add_mosfet(
            flh_tech::Mosfet::pmos(&tech_c, config.flh.gating_p_mult),
            sleep,
            vdd,
            virt_vdd,
        );
        // Footer NMOS: on in normal mode (gate = sleep_bar).
        c.add_mosfet(
            flh_tech::Mosfet::nmos(&tech_c, config.flh.gating_n_mult),
            sleep_bar,
            gnd,
            virt_gnd,
        );
    }

    // Keeper (Fig. 3): INV1k out1→k1, INV2k k1→k2, TG k2↔out1 closed in
    // sleep.
    if config.with_keeper {
        let k1 = c.add_internal("keep1", 0.1);
        let k2 = c.add_internal("keep2", 0.1);
        c.inverter(
            out1,
            k1,
            vdd,
            gnd,
            config.flh.keeper_n_mult,
            config.flh.keeper_p_mult,
        );
        c.inverter(
            k1,
            k2,
            vdd,
            gnd,
            config.flh.keeper_n_mult,
            config.flh.keeper_p_mult,
        );
        c.transmission_gate(
            k2,
            out1,
            sleep,
            sleep_bar,
            config.flh.tg_n_mult,
            config.flh.tg_p_mult,
        );
    }

    // Optional crosstalk aggressor: a driven neighbour toggling at the
    // 1 GHz scan rate, capacitively coupled to OUT1.
    if config.aggressor_cap_ff > 0.0 {
        let aggressor = c.add_driven("aggressor", Waveform::clock(0.0, tech.vdd, 7.0, 0.5, 4000));
        c.couple(aggressor, out1, config.aggressor_cap_ff);
    }

    // Ungated second and third stages.
    let out2 = c.add_internal("out2", 0.2);
    let out3 = c.add_internal("out3", 0.2);
    let stage2_pmos = c.device_count();
    c.inverter(out1, out2, vdd, gnd, 1.0, 2.0);
    let stage2_nmos = stage2_pmos + 1;
    c.inverter(out2, out3, vdd, gnd, 1.0, 2.0);

    (
        c,
        GatedChainProbes {
            input,
            sleep,
            out1,
            out2,
            out3,
            virt_vdd,
            virt_gnd,
            stage2_pmos,
            stage2_nmos,
        },
    )
}

/// Probes for the charge-sharing experiment.
#[derive(Clone, Debug)]
pub struct ChargeSharingProbes {
    /// Input `a` (bottom of the NMOS stack is `b`).
    pub in_a: NodeId,
    /// Input `b`.
    pub in_b: NodeId,
    /// The gated NAND2 output.
    pub out: NodeId,
    /// The internal node of the NMOS stack (between the two transistors).
    pub mid: NodeId,
}

/// Builds the Section II *charge sharing* scenario: a supply-gated NAND2
/// whose output holds logic 1 while its internal stack node sits at 0.
/// When input `a` rises during sleep (with `b` still low, so no DC path
/// opens), the on NMOS connects the floated output to the discharged
/// internal node and the charges redistribute — "switching of the inputs
/// can result in charge sharing between the floated output node and
/// intermediate nodes of the NMOS or PMOS network in complex gates". The
/// optional keeper restores the level.
pub fn gated_nand_charge_sharing(
    tech: &Technology,
    with_keeper: bool,
    flh: &FlhConfig,
) -> (Circuit, ChargeSharingProbes) {
    let mut c = Circuit::new(tech.clone());
    let vdd = c.add_driven("vdd", Waveform::constant(tech.vdd));
    let gnd = c.add_driven("gnd", Waveform::constant(0.0));
    let sleep = c.add_driven("sleep", Waveform::step(0.0, tech.vdd, 2.0, 0.05));
    let sleep_bar = c.add_driven("sleep_bar", Waveform::step(tech.vdd, 0.0, 2.0, 0.05));
    // a rises at 7 ns; b stays low (so the stack never opens a DC path).
    let in_a = c.add_driven("a", Waveform::step(0.0, tech.vdd, 7.0, 0.05));
    let in_b = c.add_driven("b", Waveform::constant(0.0));

    let virt_vdd = c.add_internal("virt_vdd", 0.3);
    let virt_gnd = c.add_internal("virt_gnd", 0.3);
    let out = c.add_internal("out", 0.2);
    // Enlarged internal node (wide stack devices share a big diffusion).
    let mid = c.add_internal("mid", 0.6);
    let tech_c = c.technology().clone();
    // Pull-up pair.
    c.add_mosfet(flh_tech::Mosfet::pmos(&tech_c, 2.0), in_a, virt_vdd, out);
    c.add_mosfet(flh_tech::Mosfet::pmos(&tech_c, 2.0), in_b, virt_vdd, out);
    // Pull-down stack: out —a— mid —b— virt_gnd.
    c.add_mosfet(flh_tech::Mosfet::nmos(&tech_c, 2.0), in_a, mid, out);
    c.add_mosfet(flh_tech::Mosfet::nmos(&tech_c, 2.0), in_b, virt_gnd, mid);
    // Gating devices.
    c.add_mosfet(
        flh_tech::Mosfet::pmos(&tech_c, flh.gating_p_mult),
        sleep,
        vdd,
        virt_vdd,
    );
    c.add_mosfet(
        flh_tech::Mosfet::nmos(&tech_c, flh.gating_n_mult),
        sleep_bar,
        gnd,
        virt_gnd,
    );
    if with_keeper {
        let k1 = c.add_internal("keep1", 0.1);
        let k2 = c.add_internal("keep2", 0.1);
        c.inverter(out, k1, vdd, gnd, flh.keeper_n_mult, flh.keeper_p_mult);
        c.inverter(k1, k2, vdd, gnd, flh.keeper_n_mult, flh.keeper_p_mult);
        c.transmission_gate(k2, out, sleep, sleep_bar, flh.tg_n_mult, flh.tg_p_mult);
    }
    (
        c,
        ChargeSharingProbes {
            in_a,
            in_b,
            out,
            mid,
        },
    )
}

/// One Monte Carlo outcome of [`monte_carlo_hold_robustness`].
#[derive(Clone, Debug, PartialEq)]
pub struct VariationSample {
    /// Keeperless floating-node decay time below 600 mV (ns after the
    /// input switch), or `None` if it survived the window.
    pub keeperless_decay_ns: Option<f64>,
    /// Worst OUT1 voltage with the keeper installed (V).
    pub kept_min_v: f64,
}

/// Monte Carlo robustness of the FLH hold under local process variation —
/// the very phenomenon the paper gives as the reason delay testing is
/// becoming mandatory ("with growing impact of process variation in
/// sub-100nm technology regime … delay faults become more likely"). Every
/// transistor's threshold is perturbed by an independent
/// `N(0, sigma_v)` shift; each sample simulates the Fig. 2 stage without
/// and with the keeper over `window_ns`.
pub fn monte_carlo_hold_robustness(
    tech: &Technology,
    sigma_v: f64,
    samples: usize,
    seed: u64,
    window_ns: f64,
) -> Vec<VariationSample> {
    use flh_rng::Rng;
    let mut rng = Rng::seed_from_u64(seed);
    let gaussian = move |rng: &mut Rng| -> f64 {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };

    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let run = |with_keeper: bool, rng: &mut Rng| {
            let mut cfg = if with_keeper {
                let mut c = GatedChainConfig::fig4(1);
                c.input = InputStimulus::Step { at_ns: 7.0 };
                c
            } else {
                GatedChainConfig::fig2()
            };
            cfg.sleep_start_ns = 2.0;
            let (mut c, p) = gated_chain(tech, &cfg);
            for d in 0..c.device_count() {
                c.set_vth_shift(d, sigma_v * gaussian(rng));
            }
            let init = steady_state_initial(tech, &p, &c);
            let trace = crate::transient::simulate(
                &c,
                &crate::transient::TransientConfig::for_window_ns(window_ns),
                &init,
            );
            (
                trace.first_time_below(p.out1, 0.6, 7.0).map(|t| t - 7.0),
                trace.min_in_window(p.out1, 2.0, window_ns),
            )
        };
        let (decay, _) = run(false, &mut rng);
        let (_, kept_min) = run(true, &mut rng);
        out.push(VariationSample {
            keeperless_decay_ns: decay,
            kept_min_v: kept_min,
        });
    }
    out
}

/// Initial conditions establishing the pre-sleep steady state for `IN = 0`:
/// `OUT1 = VDD`, `OUT2 = 0`, `OUT3 = VDD`, virtual rails at their supplies.
pub fn steady_state_initial(
    tech: &Technology,
    probes: &GatedChainProbes,
    circuit: &Circuit,
) -> Vec<(NodeId, f64)> {
    let mut init = vec![
        (probes.out1, tech.vdd),
        (probes.out2, 0.0),
        (probes.out3, tech.vdd),
        (probes.virt_vdd, tech.vdd),
        (probes.virt_gnd, 0.0),
    ];
    if let Some(k1) = circuit.find("keep1") {
        init.push((k1, 0.0));
    }
    if let Some(k2) = circuit.find("keep2") {
        init.push((k2, tech.vdd));
    }
    init
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{simulate, TransientConfig};

    #[test]
    fn fig2_floating_node_decays_below_600mv_within_100ns() {
        let tech = Technology::bptm70();
        let cfg = GatedChainConfig::fig2();
        let (c, p) = gated_chain(&tech, &cfg);
        let init = steady_state_initial(&tech, &p, &c);
        let trace = simulate(&c, &TransientConfig::for_window_ns(150.0), &init);
        // Before sleep: OUT1 solid high.
        assert!(trace.voltage_at(p.out1, 1.0) > 0.9 * tech.vdd);
        // After IN switches (7 ns) the floated node decays below 600 mV in
        // less than 100 ns (paper: "falls below 600mV in less than 100ns").
        let t_fall = trace
            .first_time_below(p.out1, 0.6, 7.0)
            .expect("OUT1 must decay");
        assert!(
            t_fall - 7.0 < 100.0,
            "decay took {} ns, paper expects < 100 ns",
            t_fall - 7.0
        );
    }

    #[test]
    fn fig2_second_stage_draws_static_current() {
        let tech = Technology::bptm70();
        let cfg = GatedChainConfig::fig2();
        let (c, p) = gated_chain(&tech, &cfg);
        let init = steady_state_initial(&tech, &p, &c);
        let trace = simulate(&c, &TransientConfig::for_window_ns(150.0), &init);
        // Sample a moment when OUT1 has decayed to mid-rail: both stage-2
        // devices conduct (short-circuit current orders above leakage).
        let t_mid = trace
            .first_time_below(p.out1, 0.5, 7.0)
            .expect("OUT1 reaches mid-rail");
        let idx = trace
            .time_ns()
            .iter()
            .position(|&t| t >= t_mid)
            .expect("sample exists");
        let volts: Vec<f64> = (0..c.node_count())
            .map(|i| trace.series(crate::circuit::NodeId(i))[idx])
            .collect();
        let i_pmos = c.device_current(p.stage2_pmos, &volts).abs();
        let leak_scale = tech.i0_leak_na_per_um * 1e-9;
        assert!(
            i_pmos > 20.0 * leak_scale,
            "stage-2 current {i_pmos} A is not static short-circuit"
        );
    }

    #[test]
    fn fig4_keeper_holds_through_input_toggling() {
        let tech = Technology::bptm70();
        let cfg = GatedChainConfig::fig4(40); // 20 ns of 1 GHz toggling
        let (c, p) = gated_chain(&tech, &cfg);
        let init = steady_state_initial(&tech, &p, &c);
        let trace = simulate(&c, &TransientConfig::for_window_ns(40.0), &init);
        // OUT1 must stay solidly high for the whole window.
        let worst = trace.min_in_window(p.out1, 2.0, 40.0);
        assert!(worst > 0.8 * tech.vdd, "OUT1 sagged to {worst} V");
        // And the downstream stages stay stable too.
        assert!(trace.max_in_window(p.out2, 10.0, 40.0) < 0.2 * tech.vdd);
        assert!(trace.min_in_window(p.out3, 10.0, 40.0) > 0.8 * tech.vdd);
    }

    #[test]
    fn fig4_keeper_holds_a_long_quiet_sleep() {
        // 1 µs window (the paper's 1000-bit / 1 GHz scan time) with the
        // input parked high: the keeper must not lose the state.
        let tech = Technology::bptm70();
        let mut cfg = GatedChainConfig::fig4(1);
        cfg.input = InputStimulus::Step { at_ns: 7.0 };
        let (c, p) = gated_chain(&tech, &cfg);
        let init = steady_state_initial(&tech, &p, &c);
        let trace = simulate(&c, &TransientConfig::for_window_ns(1000.0), &init);
        assert!(trace.min_in_window(p.out1, 2.0, 1000.0) > 0.8 * tech.vdd);
    }

    #[test]
    fn crosstalk_disturbs_the_floated_node_more_than_the_kept_one() {
        let tech = Technology::bptm70();
        // 1.5 fF aggressor coupling — a strong neighbour. The capacitive
        // dip at each aggressor edge hits both circuits instantaneously;
        // the keeper's value is that it *restores* the node between edges,
        // so far less noise reaches the next stage.
        let window = TransientConfig::for_window_ns(300.0);
        let run = |with_keeper: bool| -> (f64, f64) {
            let cfg = GatedChainConfig::crosstalk(with_keeper, 1.5);
            let (c, p) = gated_chain(&tech, &cfg);
            let init = steady_state_initial(&tech, &p, &c);
            let trace = simulate(&c, &window, &init);
            (
                trace.min_in_window(p.out1, 7.0, 300.0),
                trace.max_in_window(p.out2, 7.0, 300.0),
            )
        };
        let (floated_out1, floated_noise) = run(false);
        let (kept_out1, kept_noise) = run(true);
        assert!(
            floated_out1 < 0.6 * tech.vdd,
            "aggressor failed to disturb the floated node ({floated_out1} V)"
        );
        assert!(kept_out1 > floated_out1, "keeper must reduce the worst sag");
        assert!(
            kept_noise < 0.05 * tech.vdd,
            "too much noise passes the kept stage ({kept_noise} V)"
        );
        assert!(
            floated_noise > 3.0 * kept_noise,
            "floated {floated_noise} V vs kept {kept_noise} V downstream noise"
        );
    }

    #[test]
    fn charge_sharing_dips_the_floated_output_and_the_keeper_restores_it() {
        let tech = Technology::bptm70();
        let flh = FlhConfig::paper_default();
        let run = |with_keeper: bool| {
            let (c, p) = gated_nand_charge_sharing(&tech, with_keeper, &flh);
            // Pre-sleep steady state: a=0, b=0 => out=1, mid follows out
            // minus a threshold... conservatively start it discharged, the
            // pre-sleep window settles it.
            let init = vec![
                (p.out, tech.vdd),
                (p.mid, 0.0),
                (c.find("virt_vdd").unwrap(), tech.vdd),
                (c.find("virt_gnd").unwrap(), 0.0),
            ];
            let mut init = init;
            if let Some(k1) = c.find("keep1") {
                init.push((k1, 0.0));
            }
            if let Some(k2) = c.find("keep2") {
                init.push((k2, tech.vdd));
            }
            let trace = simulate(&c, &TransientConfig::for_window_ns(60.0), &init);
            (
                trace.min_in_window(p.out, 7.0, 12.0), // dip right after a rises
                trace.voltage_at(p.out, 55.0),         // where it ends up
            )
        };
        let (dip_floated, end_floated) = run(false);
        let (dip_kept, end_kept) = run(true);
        assert!(
            dip_floated < 0.9 * tech.vdd,
            "no charge-sharing dip observed ({dip_floated} V)"
        );
        assert!(
            end_kept > 0.9 * tech.vdd,
            "keeper failed to restore after charge sharing ({end_kept} V)"
        );
        assert!(end_kept > end_floated - 1e-9);
        assert!(
            dip_kept >= dip_floated - 0.05,
            "keeper should not worsen the dip"
        );
    }

    #[test]
    fn monte_carlo_hold_is_robust_at_realistic_sigma() {
        let tech = Technology::bptm70();
        // 30 mV local Vth sigma — aggressive for 70 nm minimum devices.
        let scan_window_ns = 1000.0; // the paper's 1000-bit / 1 GHz argument
        let samples = monte_carlo_hold_robustness(&tech, 0.030, 12, 9, 1500.0);
        assert_eq!(samples.len(), 12);
        let mut decays: Vec<f64> = Vec::new();
        let mut died_in_window = 0;
        for s in &samples {
            if let Some(d) = s.keeperless_decay_ns {
                decays.push(d);
                if d < scan_window_ns {
                    died_in_window += 1;
                }
            }
            // The kept node holds in every corner.
            assert!(
                s.kept_min_v > 0.75 * tech.vdd,
                "keeper lost the state at {} V",
                s.kept_min_v
            );
        }
        // A lucky high-Vth corner may survive one scan window, but the
        // typical die does not — which is exactly why the keeper exists.
        assert!(
            died_in_window as f64 >= 0.75 * samples.len() as f64,
            "only {died_in_window}/12 keeperless corners failed in the scan window"
        );
        // Variation must actually spread the decay times.
        let min = decays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = decays.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.15, "no spread: {min}..{max}");
    }

    #[test]
    fn vth_shift_changes_device_behaviour() {
        let tech = Technology::bptm70();
        let slow = flh_tech::Mosfet::nmos(&tech, 1.0).with_vth_shift(0.05);
        let fast = flh_tech::Mosfet::nmos(&tech, 1.0).with_vth_shift(-0.05);
        let nominal = flh_tech::Mosfet::nmos(&tech, 1.0);
        let i = |m: &flh_tech::Mosfet| m.current(&tech, 0.0, 0.0, tech.vdd);
        // Leakage: higher Vth leaks less.
        assert!(i(&slow) < i(&nominal));
        assert!(i(&fast) > i(&nominal));
    }

    #[test]
    fn normal_mode_operates_through_gating_transistors() {
        // Before sleep starts, the gated stage must act as a working
        // inverter: step the input at 1 ns with sleep at 50 ns.
        let tech = Technology::bptm70();
        let cfg = GatedChainConfig {
            with_keeper: true,
            sleep_start_ns: 50.0,
            input: InputStimulus::Step { at_ns: 1.0 },
            aggressor_cap_ff: 0.0,
            flh: FlhConfig::paper_default(),
        };
        let (c, p) = gated_chain(&tech, &cfg);
        let init = steady_state_initial(&tech, &p, &c);
        let trace = simulate(&c, &TransientConfig::for_window_ns(20.0), &init);
        assert!(trace.voltage_at(p.out1, 15.0) < 0.15 * tech.vdd);
        assert!(trace.voltage_at(p.out2, 15.0) > 0.85 * tech.vdd);
        assert!(trace.voltage_at(p.out3, 15.0) < 0.15 * tech.vdd);
    }
}
