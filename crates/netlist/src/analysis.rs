//! Structural analysis: topological order, levelization, fanout maps,
//! first-level-gate identification and circuit statistics.

use std::collections::HashMap;

use crate::cell::{CellId, CellKind};
use crate::error::NetlistError;
use crate::graph::Netlist;
use crate::Result;

/// True for cells evaluated inside a clock cycle (everything except the
/// stateful sources: primary inputs and flip-flop outputs). Constants are
/// evaluable — they have no fanin and simply compute their fixed value, so
/// every simulator initializes them correctly.
fn is_evaluable(kind: CellKind) -> bool {
    !matches!(kind, CellKind::Input | CellKind::Dff | CellKind::ScanDff)
}

/// Computes a topological order of the evaluable (combinational + boundary +
/// holding) cells, treating primary inputs, constants and flip-flop outputs
/// as sources.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational part of
/// the netlist is cyclic.
pub fn combinational_order(netlist: &Netlist) -> Result<Vec<CellId>> {
    let n = netlist.cell_count();
    let mut pending = vec![0usize; n];
    let mut readers: Vec<Vec<CellId>> = vec![Vec::new(); n];
    let mut frontier = Vec::new();

    for (id, cell) in netlist.iter() {
        if !is_evaluable(cell.kind()) {
            continue;
        }
        let mut unresolved = 0;
        for &f in cell.fanin() {
            if is_evaluable(netlist.cell(f).kind()) {
                unresolved += 1;
                readers[f.index()].push(id);
            }
        }
        pending[id.index()] = unresolved;
        if unresolved == 0 {
            frontier.push(id);
        }
    }

    let evaluable_total = netlist
        .iter()
        .filter(|(_, c)| is_evaluable(c.kind()))
        .count();
    let mut order = Vec::with_capacity(evaluable_total);
    while let Some(id) = frontier.pop() {
        order.push(id);
        for &r in &readers[id.index()] {
            pending[r.index()] -= 1;
            if pending[r.index()] == 0 {
                frontier.push(r);
            }
        }
    }

    if order.len() != evaluable_total {
        // Some evaluable cell never reached zero pending fanins: cycle.
        let cell = netlist
            .iter()
            .find(|(id, c)| is_evaluable(c.kind()) && pending[id.index()] > 0)
            .map(|(id, _)| id)
            .expect("cycle detected but no pending cell found");
        return Err(NetlistError::CombinationalCycle { cell });
    }
    Ok(order)
}

/// Per-cell logic level and a level-consistent evaluation order.
///
/// Sources (primary inputs, constants, flip-flop outputs) sit at level 0;
/// every evaluable cell is one level above its deepest fanin. The maximum
/// level of any gate equals the paper's "critical-path logic levels" figure
/// (Table II, column 2) up to the structural-vs-sensitizable distinction.
#[derive(Clone, Debug)]
pub struct Levelization {
    levels: Vec<u32>,
    order: Vec<CellId>,
    depth: u32,
}

impl Levelization {
    /// Levelizes a netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`] from the topological
    /// sort.
    pub fn compute(netlist: &Netlist) -> Result<Self> {
        let order = combinational_order(netlist)?;
        let mut levels = vec![0u32; netlist.cell_count()];
        let mut depth = 0;
        for &id in &order {
            let cell = netlist.cell(id);
            let lvl = cell
                .fanin()
                .iter()
                .map(|&f| levels[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
            levels[id.index()] = lvl;
            // Output markers are free; don't let them inflate depth.
            if cell.kind() != CellKind::Output {
                depth = depth.max(lvl);
            }
        }
        Ok(Levelization {
            levels,
            order,
            depth,
        })
    }

    /// Logic level of a cell (0 for sources).
    pub fn level(&self, id: CellId) -> u32 {
        self.levels[id.index()]
    }

    /// Evaluation order (every cell after all of its evaluable fanins).
    pub fn order(&self) -> &[CellId] {
        &self.order
    }

    /// Deepest gate level — the structural critical-path logic depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

/// Reverse-edge (reader) map of a netlist.
#[derive(Clone, Debug)]
pub struct FanoutMap {
    readers: Vec<Vec<CellId>>,
}

impl FanoutMap {
    /// Builds the fanout map.
    pub fn compute(netlist: &Netlist) -> Self {
        let mut readers: Vec<Vec<CellId>> = vec![Vec::new(); netlist.cell_count()];
        for (id, cell) in netlist.iter() {
            for &f in cell.fanin() {
                readers[f.index()].push(id);
            }
        }
        FanoutMap { readers }
    }

    /// Cells reading the output of `id` (a reader appears once per pin it
    /// connects, so a gate using a signal twice is listed twice).
    pub fn readers(&self, id: CellId) -> &[CellId] {
        &self.readers[id.index()]
    }

    /// Fanout count (number of reading pins) of `id`.
    pub fn fanout_count(&self, id: CellId) -> usize {
        self.readers[id.index()].len()
    }
}

/// Identifies the *first level gates*: the distinct combinational cells that
/// read at least one flip-flop output. These are exactly the gates the FLH
/// technique supply-gates (Section II-A of the paper).
///
/// A flip-flop output wired straight to a primary output or to another
/// flip-flop's D pin contributes no first-level gate. The returned list is
/// sorted by id and duplicate-free.
pub fn first_level_gates(netlist: &Netlist, fanouts: &FanoutMap) -> Vec<CellId> {
    first_level_gates_of(netlist, fanouts, netlist.flip_flops())
}

/// Identifies the distinct combinational cells reading any of the given
/// source cells — the generalization of [`first_level_gates`] the paper's
/// Section IV BIST discussion needs ("FLH … can be equally used to the
/// fanout logic gates for the primary inputs"). The returned list is sorted
/// and duplicate-free.
pub fn first_level_gates_of(
    netlist: &Netlist,
    fanouts: &FanoutMap,
    sources: &[CellId],
) -> Vec<CellId> {
    let mut seen = vec![false; netlist.cell_count()];
    let mut gates = Vec::new();
    for &src in sources {
        for &reader in fanouts.readers(src) {
            let kind = netlist.cell(reader).kind();
            if kind.is_combinational() && !seen[reader.index()] {
                seen[reader.index()] = true;
                gates.push(reader);
            }
        }
    }
    gates.sort();
    gates
}

/// Total number of flip-flop output fanout pins into combinational logic
/// (the paper's "Total fanouts" column in Table I). Direct FF→FF and FF→PO
/// connections are not state inputs of the combinational block and are
/// excluded.
pub fn total_ff_fanouts(netlist: &Netlist, fanouts: &FanoutMap) -> usize {
    netlist
        .flip_flops()
        .iter()
        .map(|&ff| {
            fanouts
                .readers(ff)
                .iter()
                .filter(|&&r| netlist.cell(r).kind().is_combinational())
                .count()
        })
        .sum()
}

/// Transitive fanout cone of a set of seed cells (excluding the seeds
/// themselves unless reachable again), as a sorted id list.
pub fn fanout_cone(netlist: &Netlist, fanouts: &FanoutMap, seeds: &[CellId]) -> Vec<CellId> {
    let mut in_cone = vec![false; netlist.cell_count()];
    let mut stack: Vec<CellId> = seeds.to_vec();
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        for &r in fanouts.readers(id) {
            if !in_cone[r.index()] {
                in_cone[r.index()] = true;
                cone.push(r);
                // Stop at sequential boundaries: a FF's D pin is in the cone
                // but its output belongs to the next cycle.
                if !netlist.cell(r).kind().is_flip_flop() {
                    stack.push(r);
                }
            }
        }
    }
    cone.sort();
    cone
}

/// Transitive fanin cone of a cell (stopping at sources and sequential
/// boundaries), as a sorted id list including the seed.
pub fn fanin_cone(netlist: &Netlist, seed: CellId) -> Vec<CellId> {
    let mut in_cone = vec![false; netlist.cell_count()];
    let mut stack = vec![seed];
    in_cone[seed.index()] = true;
    let mut cone = vec![seed];
    while let Some(id) = stack.pop() {
        let cell = netlist.cell(id);
        if cell.kind().is_flip_flop() && id != seed {
            continue;
        }
        for &f in cell.fanin() {
            if !in_cone[f.index()] {
                in_cone[f.index()] = true;
                cone.push(f);
                stack.push(f);
            }
        }
    }
    cone.sort();
    cone
}

/// Combinational cells whose output can reach no observation point — no
/// primary-output marker and no flip-flop D pin — by any forward path. Such
/// *dead cones* are legal but wasted silicon: the fault simulator skips
/// them and `flh-lint` reports them as `FLH005` warnings.
///
/// Primary inputs that drive nothing observable are included (a floating
/// input is a dead cone of depth zero). Boundary markers, flip-flops and
/// holding cells are never reported. The returned list is sorted by id.
///
/// Robust against cyclic netlists (plain reverse reachability, no
/// topological order needed), so the lint can run it even when the cycle
/// check has already failed.
pub fn unobservable_cells(netlist: &Netlist) -> Vec<CellId> {
    let n = netlist.cell_count();
    // Reverse reachability from the observation roots along fanin edges.
    let mut live = vec![false; n];
    let mut stack: Vec<CellId> = Vec::new();
    for (id, cell) in netlist.iter() {
        if cell.kind() == CellKind::Output || cell.kind().is_flip_flop() {
            stack.push(id);
        }
    }
    while let Some(id) = stack.pop() {
        for &f in netlist.cell(id).fanin() {
            if f.index() < n && !live[f.index()] {
                live[f.index()] = true;
                stack.push(f);
            }
        }
    }
    netlist
        .iter()
        .filter(|(id, cell)| {
            let kind = cell.kind();
            let reportable = kind.is_combinational() || kind == CellKind::Input;
            reportable && !live[id.index()]
        })
        .map(|(id, _)| id)
        .collect()
}

/// Aggregate structural statistics of a circuit, mirroring the columns the
/// paper reports per benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitStats {
    /// Primary-input count.
    pub primary_inputs: usize,
    /// Primary-output count.
    pub primary_outputs: usize,
    /// Flip-flop count.
    pub flip_flops: usize,
    /// Combinational gate count (buffers/inverters included).
    pub gates: usize,
    /// Structural critical-path logic depth.
    pub logic_depth: u32,
    /// Total flip-flop output fanout pins (Table I "Total fanouts").
    pub total_ff_fanouts: usize,
    /// Distinct first-level gates (Table I "Unique fanouts").
    pub unique_first_level_gates: usize,
    /// Histogram of gate kinds by display name.
    pub kind_histogram: HashMap<String, usize>,
}

impl CircuitStats {
    /// Computes the statistics for a netlist.
    ///
    /// # Errors
    ///
    /// Propagates levelization failures on cyclic netlists.
    pub fn compute(netlist: &Netlist) -> Result<Self> {
        let lv = Levelization::compute(netlist)?;
        let fo = FanoutMap::compute(netlist);
        let flg = first_level_gates(netlist, &fo);
        let mut hist = HashMap::new();
        for (_, cell) in netlist.iter() {
            if cell.kind().is_combinational() {
                *hist.entry(cell.kind().to_string()).or_insert(0) += 1;
            }
        }
        Ok(CircuitStats {
            primary_inputs: netlist.inputs().len(),
            primary_outputs: netlist.outputs().len(),
            flip_flops: netlist.flip_flops().len(),
            gates: netlist.gate_count(),
            logic_depth: lv.depth(),
            total_ff_fanouts: total_ff_fanouts(netlist, &fo),
            unique_first_level_gates: flg.len(),
            kind_histogram: hist,
        })
    }

    /// Average flip-flop fanout (Table I derives ≈ 2.3 across ISCAS89).
    pub fn avg_ff_fanout(&self) -> f64 {
        if self.flip_flops == 0 {
            0.0
        } else {
            self.total_ff_fanouts as f64 / self.flip_flops as f64
        }
    }

    /// Ratio of unique first-level gates to flip-flops (Table I "Ratio",
    /// ≈ 1.8 on average in the paper).
    pub fn unique_fanout_ratio(&self) -> f64 {
        if self.flip_flops == 0 {
            0.0
        } else {
            self.unique_first_level_gates as f64 / self.flip_flops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-FF circuit where both FFs share a first-level gate.
    fn shared_flg_circuit() -> Netlist {
        let mut n = Netlist::new("shared");
        let a = n.add_input("a");
        let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
        let f2 = n.add_cell("f2", CellKind::Dff, vec![a]);
        let g1 = n.add_cell("g1", CellKind::Nand2, vec![f1, f2]); // shared FLG
        let g2 = n.add_cell("g2", CellKind::Inv, vec![f1]); // private FLG
        let g3 = n.add_cell("g3", CellKind::Nor2, vec![g1, g2]);
        n.add_output("y", g3);
        n
    }

    #[test]
    fn levelization_depth() {
        let n = shared_flg_circuit();
        let lv = Levelization::compute(&n).unwrap();
        assert_eq!(lv.depth(), 2); // g1/g2 at level 1, g3 at level 2
        let g3 = n.find("g3").unwrap();
        assert_eq!(lv.level(g3), 2);
        let f1 = n.find("f1").unwrap();
        assert_eq!(lv.level(f1), 0);
    }

    #[test]
    fn order_respects_dependencies() {
        let n = shared_flg_circuit();
        let lv = Levelization::compute(&n).unwrap();
        let pos: HashMap<CellId, usize> = lv
            .order()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for &id in lv.order() {
            for &f in n.cell(id).fanin() {
                if let Some(&fp) = pos.get(&f) {
                    assert!(fp < pos[&id], "fanin {f} after {id}");
                }
            }
        }
    }

    #[test]
    fn fanout_map_counts() {
        let n = shared_flg_circuit();
        let fo = FanoutMap::compute(&n);
        let f1 = n.find("f1").unwrap();
        assert_eq!(fo.fanout_count(f1), 2); // g1 and g2
        let f2 = n.find("f2").unwrap();
        assert_eq!(fo.fanout_count(f2), 1);
    }

    #[test]
    fn first_level_gates_are_unique() {
        let n = shared_flg_circuit();
        let fo = FanoutMap::compute(&n);
        let flg = first_level_gates(&n, &fo);
        assert_eq!(flg.len(), 2); // g1 (shared) + g2
        assert_eq!(total_ff_fanouts(&n, &fo), 3);
    }

    #[test]
    fn ff_to_ff_direct_path_contributes_no_flg() {
        let mut n = Netlist::new("ff2ff");
        let a = n.add_input("a");
        let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
        let _f2 = n.add_cell("f2", CellKind::Dff, vec![f1]);
        n.add_output("y", f1);
        let fo = FanoutMap::compute(&n);
        assert!(first_level_gates(&n, &fo).is_empty());
        // f1 feeds f2.D and the PO: neither is a combinational state input.
        assert_eq!(total_ff_fanouts(&n, &fo), 0);
    }

    #[test]
    fn stats_aggregate() {
        let n = shared_flg_circuit();
        let st = CircuitStats::compute(&n).unwrap();
        assert_eq!(st.flip_flops, 2);
        assert_eq!(st.gates, 3);
        assert_eq!(st.logic_depth, 2);
        assert_eq!(st.total_ff_fanouts, 3);
        assert_eq!(st.unique_first_level_gates, 2);
        assert!((st.avg_ff_fanout() - 1.5).abs() < 1e-12);
        assert!((st.unique_fanout_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(st.kind_histogram["NAND2"], 1);
    }

    #[test]
    fn cones() {
        let n = shared_flg_circuit();
        let fo = FanoutMap::compute(&n);
        let f1 = n.find("f1").unwrap();
        let cone = fanout_cone(&n, &fo, &[f1]);
        let names: Vec<&str> = cone.iter().map(|&id| n.cell(id).name()).collect();
        assert!(names.contains(&"g1"));
        assert!(names.contains(&"g2"));
        assert!(names.contains(&"g3"));
        assert!(names.contains(&"y"));

        let g3 = n.find("g3").unwrap();
        let fic = fanin_cone(&n, g3);
        let names: Vec<&str> = fic.iter().map(|&id| n.cell(id).name()).collect();
        assert!(names.contains(&"g1"));
        assert!(names.contains(&"f1"));
        // The fanin cone stops at flip-flops; `a` is behind f1/f2.
        assert!(!names.contains(&"a"));
    }

    #[test]
    fn dead_cones_are_unobservable() {
        let mut n = Netlist::new("dead");
        let a = n.add_input("a");
        let b = n.add_input("b"); // floating input
        let g1 = n.add_cell("g1", CellKind::Inv, vec![a]);
        let d1 = n.add_cell("d1", CellKind::Inv, vec![a]); // dead cone root
        let d2 = n.add_cell("d2", CellKind::Buf, vec![d1]); // dead cone tail
        n.add_output("y", g1);
        let dead = unobservable_cells(&n);
        assert_eq!(dead, vec![b, d1, d2]);

        // A FF D pin is an observation point: logic feeding only state is
        // live.
        let mut n = Netlist::new("state");
        let a = n.add_input("a");
        let g = n.add_cell("g", CellKind::Inv, vec![a]);
        let ff = n.add_cell("ff", CellKind::Dff, vec![g]);
        n.add_output("y", ff);
        assert!(unobservable_cells(&n).is_empty());
    }

    #[test]
    fn cycle_is_reported() {
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::And2, vec![a, a]);
        let g2 = n.add_cell("g2", CellKind::Inv, vec![g1]);
        n.set_fanin_pin(g1, 1, g2);
        assert!(combinational_order(&n).is_err());
    }
}
