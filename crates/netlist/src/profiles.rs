//! Calibrated ISCAS89 benchmark profiles.
//!
//! The original ISCAS89 `.bench` files are not redistributable inside this
//! workspace, so the evaluation runs on synthetic circuits generated from
//! these profiles (see `DESIGN.md` §1 for the substitution rationale). Each
//! profile records the published structural statistics of the benchmark —
//! primary input/output counts, flip-flop count, post-mapping gate count and
//! critical-path logic depth — plus the flip-flop fanout shape the paper
//! reports in Table I (≈ 2.3 total fanouts and ≈ 1.8 unique first-level
//! gates per flip-flop on average, with s838 called out as unusually high).

use crate::generate::GeneratorConfig;

/// Structural profile of one ISCAS89 benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitProfile {
    /// Benchmark name (e.g. `"s5378"`).
    pub name: &'static str,
    /// Primary inputs.
    pub primary_inputs: usize,
    /// Primary outputs.
    pub primary_outputs: usize,
    /// Flip-flops.
    pub flip_flops: usize,
    /// Combinational gate count after technology mapping.
    pub gates: usize,
    /// Critical-path logic depth (Table II column 2).
    pub logic_depth: usize,
    /// Target average flip-flop fanout into logic (Table I derives ≈ 2.3).
    pub avg_ff_fanout: f64,
    /// Target ratio of unique first-level gates to flip-flops (Table I
    /// "Ratio" column, ≈ 1.8 average).
    pub unique_flg_ratio: f64,
    /// Fanout assigned to one deliberately hot flip-flop, for circuits the
    /// paper notes have large state-input fanout (s838).
    pub hot_ff_fanout: Option<usize>,
}

impl CircuitProfile {
    /// Deterministic generator seed derived from the benchmark name.
    pub fn seed(&self) -> u64 {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Generator configuration reproducing this profile.
    pub fn generator_config(&self) -> GeneratorConfig {
        GeneratorConfig {
            name: self.name.to_string(),
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            flip_flops: self.flip_flops,
            gates: self.gates,
            logic_depth: self.logic_depth,
            avg_ff_fanout: self.avg_ff_fanout,
            unique_flg_ratio: self.unique_flg_ratio,
            hot_ff_fanout: self.hot_ff_fanout,
            seed: self.seed(),
        }
    }
}

/// The benchmark set used in Tables I–III of the paper (eleven circuits; the
/// table text in the available copy is garbled, but s838, s5378 and s13207
/// are named explicitly and the set size is eleven).
pub fn iscas89_profiles() -> Vec<CircuitProfile> {
    #[allow(clippy::too_many_arguments)]
    fn p(
        name: &'static str,
        pi: usize,
        po: usize,
        ff: usize,
        gates: usize,
        depth: usize,
        avg_fo: f64,
        uniq: f64,
        hot: Option<usize>,
    ) -> CircuitProfile {
        CircuitProfile {
            name,
            primary_inputs: pi,
            primary_outputs: po,
            flip_flops: ff,
            gates,
            logic_depth: depth,
            avg_ff_fanout: avg_fo,
            unique_flg_ratio: uniq,
            hot_ff_fanout: hot,
        }
    }
    vec![
        p("s298", 3, 6, 14, 119, 9, 2.5, 2.1, None),
        p("s344", 9, 11, 15, 160, 14, 2.6, 2.1, None),
        p("s420", 18, 1, 16, 218, 13, 2.2, 1.6, None),
        p("s526", 3, 6, 21, 193, 9, 2.6, 2.2, None),
        p("s641", 35, 24, 19, 379, 74, 2.4, 2.0, None),
        p("s838", 34, 1, 32, 446, 25, 3.4, 3.0, Some(12)),
        p("s1196", 14, 14, 18, 529, 24, 2.8, 2.5, None),
        p("s1423", 17, 5, 74, 657, 59, 2.3, 1.8, None),
        p("s5378", 35, 49, 179, 2779, 25, 2.1, 1.5, None),
        p("s9234", 36, 39, 211, 5597, 38, 2.2, 1.6, None),
        p("s13207", 62, 152, 638, 7951, 31, 1.9, 1.3, None),
    ]
}

/// Looks up one profile by benchmark name.
pub fn iscas89_profile(name: &str) -> Option<CircuitProfile> {
    iscas89_profiles().into_iter().find(|p| p.name == name)
}

/// The higher-flip-flop-count subset used for the Section V fanout
/// optimization study (Table IV).
pub fn table4_profiles() -> Vec<CircuitProfile> {
    const SET: [&str; 8] = [
        "s420", "s526", "s641", "s838", "s1423", "s5378", "s9234", "s13207",
    ];
    SET.iter()
        .map(|n| iscas89_profile(n).expect("table4 profile present"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_profiles_for_tables_1_to_3() {
        assert_eq!(iscas89_profiles().len(), 11);
    }

    #[test]
    fn eight_profiles_for_table_4() {
        assert_eq!(table4_profiles().len(), 8);
    }

    #[test]
    fn lookup_by_name() {
        let p = iscas89_profile("s5378").unwrap();
        assert_eq!(p.flip_flops, 179);
        assert!(iscas89_profile("s999").is_none());
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = iscas89_profile("s298").unwrap().seed();
        let b = iscas89_profile("s298").unwrap().seed();
        let c = iscas89_profile("s344").unwrap().seed();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn population_fanout_averages_match_paper() {
        let ps = iscas89_profiles();
        let avg_fo: f64 = ps.iter().map(|p| p.avg_ff_fanout).sum::<f64>() / ps.len() as f64;
        let avg_uniq: f64 = ps.iter().map(|p| p.unique_flg_ratio).sum::<f64>() / ps.len() as f64;
        // Paper: 2.3 total fanouts / FF and 1.8 unique first-level gates /
        // FF on average (circuit-weighted).
        assert!((avg_fo - 2.3).abs() < 0.25, "avg fanout {avg_fo}");
        assert!((avg_uniq - 1.8).abs() < 0.25, "avg unique ratio {avg_uniq}");
    }

    #[test]
    fn s838_is_the_hot_fanout_case() {
        let p = iscas89_profile("s838").unwrap();
        assert!(p.hot_ff_fanout.is_some());
        assert!(p.unique_flg_ratio > 2.5);
    }
}
