//! Graphviz `dot` export for netlist visualization.

use std::fmt::Write as _;

use crate::cell::{CellId, CellKind};
use crate::graph::Netlist;

/// Options for [`to_dot`].
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Cells to highlight (e.g. the FLH-gated first-level gates); rendered
    /// filled.
    pub highlight: Vec<CellId>,
    /// Left-to-right layout instead of top-down.
    pub left_to_right: bool,
}

fn shape(kind: CellKind) -> &'static str {
    use CellKind::*;
    match kind {
        Input => "invtriangle",
        Output => "triangle",
        Dff | ScanDff => "box",
        HoldLatch | HoldMux => "component",
        Const0 | Const1 => "plaintext",
        _ => "ellipse",
    }
}

/// Renders the netlist as a Graphviz digraph. Edge direction follows
/// signal flow (driver → reader); node labels carry the instance name and
/// kind.
///
/// # Example
///
/// ```
/// use flh_netlist::{dot, CellKind, Netlist};
///
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let g = n.add_cell("g", CellKind::Inv, vec![a]);
/// n.add_output("y", g);
/// let text = dot::to_dot(&n, &dot::DotOptions::default());
/// assert!(text.starts_with("digraph"));
/// assert!(text.contains("\"a\" -> \"g\""));
/// ```
pub fn to_dot(netlist: &Netlist, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", netlist.name());
    if options.left_to_right {
        let _ = writeln!(out, "  rankdir=LR;");
    }
    let _ = writeln!(out, "  node [fontsize=10];");
    for (id, cell) in netlist.iter() {
        let fill = if options.highlight.contains(&id) {
            ", style=filled, fillcolor=\"#ffd27f\""
        } else if cell.kind().is_flip_flop() {
            ", style=filled, fillcolor=\"#d7e3ff\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\n{}\", shape={}{}];",
            cell.name(),
            cell.name(),
            cell.kind(),
            shape(cell.kind()),
            fill
        );
    }
    for (_, cell) in netlist.iter() {
        for &f in cell.fanin() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\";",
                netlist.cell(f).name(),
                cell.name()
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Netlist {
        let mut n = Netlist::new("dot_toy");
        let a = n.add_input("a");
        let ff = n.add_cell("ff", CellKind::Dff, vec![a]);
        let g = n.add_cell("g", CellKind::Nand2, vec![a, ff]);
        n.add_output("y", g);
        n
    }

    #[test]
    fn contains_all_nodes_and_edges() {
        let n = toy();
        let text = to_dot(&n, &DotOptions::default());
        for name in ["a", "ff", "g", "y"] {
            assert!(text.contains(&format!("\"{name}\" [label=")), "{name}");
        }
        assert!(text.contains("\"a\" -> \"g\""));
        assert!(text.contains("\"ff\" -> \"g\""));
        assert!(text.contains("\"g\" -> \"y\""));
        // Balanced braces make it at least structurally valid dot.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn highlight_and_layout_options() {
        let n = toy();
        let g = n.find("g").unwrap();
        let text = to_dot(
            &n,
            &DotOptions {
                highlight: vec![g],
                left_to_right: true,
            },
        );
        assert!(text.contains("rankdir=LR"));
        assert!(text.contains("#ffd27f"));
        // Flip-flops get their own tint.
        assert!(text.contains("#d7e3ff"));
    }
}
