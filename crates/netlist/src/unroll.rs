//! Two-timeframe unrolling for sequential (broadside) test generation.
//!
//! Broadside (launch-on-capture) delay testing constrains the second
//! pattern's state part to be the circuit's own response to the first
//! pattern. Deterministic test generation under that constraint needs a
//! *time-frame expansion*: two copies of the combinational logic where
//! frame 2's state inputs are wired to frame 1's next-state functions.
//! A plain combinational ATPG engine run on the unrolled netlist then
//! solves the sequential justification for free.

use crate::cell::{CellId, CellKind};
use crate::graph::Netlist;
use crate::Result;

/// The unrolled netlist plus the cell correspondence maps.
#[derive(Clone, Debug)]
pub struct TwoFrameUnrolling {
    /// The unrolled circuit: assignables are frame-1 primary inputs,
    /// frame-2 primary inputs and the (shared) flip-flops holding the
    /// frame-1 state; observations are frame-2 primary outputs and the
    /// flip-flops' D pins (frame-2 next state).
    pub netlist: Netlist,
    /// Frame-1 copy of each original cell (`None` for `Output` markers).
    pub frame1: Vec<Option<CellId>>,
    /// Frame-2 copy of each original cell. For an original flip-flop this
    /// is its *frame-2 state value*, i.e. the frame-1 copy of its D driver.
    pub frame2: Vec<Option<CellId>>,
    /// Number of original primary inputs (frame-1 PIs come first in the
    /// unrolled input list, frame-2 PIs second).
    pub primary_inputs: usize,
}

impl TwoFrameUnrolling {
    /// Builds the unrolling.
    ///
    /// # Errors
    ///
    /// Fails if the input netlist is combinationally cyclic.
    pub fn build(original: &Netlist) -> Result<Self> {
        let order = crate::analysis::combinational_order(original)?;
        let mut out = Netlist::new(format!("{}_x2", original.name()));
        let n = original.cell_count();
        let mut frame1: Vec<Option<CellId>> = vec![None; n];
        let mut frame2: Vec<Option<CellId>> = vec![None; n];

        // Inputs: frame-1 PIs, frame-2 PIs, then the state flip-flops.
        for &pi in original.inputs() {
            let id = out.add_input(format!("{}_f1", original.cell(pi).name()));
            frame1[pi.index()] = Some(id);
        }
        for &pi in original.inputs() {
            let id = out.add_input(format!("{}_f2", original.cell(pi).name()));
            frame2[pi.index()] = Some(id);
        }
        // Flip-flops carry the frame-1 state; D pins get wired to frame-2
        // next-state at the end.
        for &ff in original.flip_flops() {
            let placeholder = CellId::from_index(out.cell_count());
            let id = out.add_cell(
                original.cell(ff).name().to_string(),
                original.cell(ff).kind(),
                vec![placeholder],
            );
            frame1[ff.index()] = Some(id);
        }

        // Frame-1 combinational copy.
        for &id in &order {
            let cell = original.cell(id);
            if cell.kind() == CellKind::Output {
                continue;
            }
            let fanin: Vec<CellId> = cell
                .fanin()
                .iter()
                .map(|&f| frame1[f.index()].expect("fanin mapped in frame 1"))
                .collect();
            let new = out.add_cell(format!("{}_f1", cell.name()), cell.kind(), fanin);
            frame1[id.index()] = Some(new);
        }
        // Frame-2 state values: the frame-1 copies of the D drivers.
        for &ff in original.flip_flops() {
            let d = original.cell(ff).fanin()[0];
            frame2[ff.index()] = Some(frame1[d.index()].expect("D driver mapped"));
        }
        // Frame-2 combinational copy.
        for &id in &order {
            let cell = original.cell(id);
            if cell.kind() == CellKind::Output {
                continue;
            }
            if cell.kind().is_flip_flop() {
                continue; // state handled above
            }
            let fanin: Vec<CellId> = cell
                .fanin()
                .iter()
                .map(|&f| frame2[f.index()].expect("fanin mapped in frame 2"))
                .collect();
            let new = out.add_cell(format!("{}_f2", cell.name()), cell.kind(), fanin);
            frame2[id.index()] = Some(new);
        }

        // Observations: frame-2 primary outputs; FF D pins carry frame-2
        // next state.
        for &po in original.outputs() {
            let driver = original.cell(po).fanin()[0];
            let new_driver = frame2[driver.index()].expect("PO driver mapped");
            out.add_output(format!("{}_f2", original.cell(po).name()), new_driver);
        }
        for &ff in original.flip_flops() {
            let unrolled_ff = frame1[ff.index()].expect("FF mapped");
            let d = original.cell(ff).fanin()[0];
            let next2 = frame2[d.index()].expect("frame-2 D mapped");
            out.set_fanin_pin(unrolled_ff, 0, next2);
        }
        out.validate()?;
        Ok(TwoFrameUnrolling {
            netlist: out,
            frame1,
            frame2,
            primary_inputs: original.inputs().len(),
        })
    }

    /// Frame-1 copy of an original cell.
    ///
    /// # Panics
    ///
    /// Panics for `Output` markers.
    pub fn in_frame1(&self, original: CellId) -> CellId {
        self.frame1[original.index()].expect("cell exists in frame 1")
    }

    /// Frame-2 copy (for flip-flops: the frame-2 state value).
    ///
    /// # Panics
    ///
    /// Panics for `Output` markers and (unreached) unmapped cells.
    pub fn in_frame2(&self, original: CellId) -> CellId {
        self.frame2[original.index()].expect("cell exists in frame 2")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_circuit, GeneratorConfig};

    fn original() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "unroll".into(),
            primary_inputs: 4,
            primary_outputs: 3,
            flip_flops: 5,
            gates: 40,
            logic_depth: 5,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 44,
        })
        .unwrap()
    }

    #[test]
    fn shape_doubles_the_logic() {
        let n = original();
        let u = TwoFrameUnrolling::build(&n).unwrap();
        u.netlist.validate().unwrap();
        assert_eq!(u.netlist.inputs().len(), 2 * n.inputs().len());
        assert_eq!(u.netlist.outputs().len(), n.outputs().len());
        assert_eq!(u.netlist.flip_flops().len(), n.flip_flops().len());
        assert_eq!(u.netlist.gate_count(), 2 * n.gate_count());
    }

    /// The unrolled combinational function must equal two applications of
    /// the sequential circuit.
    #[test]
    fn unrolling_matches_two_clock_cycles() {
        // Evaluate with eval64 directly (no simulator dependency here).
        let n = original();
        let u = TwoFrameUnrolling::build(&n).unwrap();
        let order_n = crate::analysis::combinational_order(&n).unwrap();
        let order_u = crate::analysis::combinational_order(&u.netlist).unwrap();

        let eval = |netlist: &Netlist, order: &[CellId], set: &dyn Fn(&mut Vec<u64>)| -> Vec<u64> {
            let mut vals = vec![0u64; netlist.cell_count()];
            set(&mut vals);
            for &id in order {
                let cell = netlist.cell(id);
                let ins: Vec<u64> = cell.fanin().iter().map(|&f| vals[f.index()]).collect();
                vals[id.index()] = cell.kind().eval64(&ins);
            }
            vals
        };

        for seed in 0..16u64 {
            let bit = |k: u64| {
                if seed.wrapping_mul(0x9e37) >> (k % 17) & 1 == 1 {
                    !0u64
                } else {
                    0
                }
            };
            // Sequential reference: cycle 1 with PI1/state, capture, cycle 2
            // with PI2.
            let pi1: Vec<u64> = (0..n.inputs().len() as u64).map(bit).collect();
            let pi2: Vec<u64> = (0..n.inputs().len() as u64).map(|k| bit(k + 31)).collect();
            let st: Vec<u64> = (0..n.flip_flops().len() as u64)
                .map(|k| bit(k + 7))
                .collect();

            let v1 = eval(&n, &order_n, &|vals| {
                for (i, &pi) in n.inputs().iter().enumerate() {
                    vals[pi.index()] = pi1[i];
                }
                for (i, &ff) in n.flip_flops().iter().enumerate() {
                    vals[ff.index()] = st[i];
                }
            });
            // Capture.
            let captured: Vec<u64> = n
                .flip_flops()
                .iter()
                .map(|&ff| v1[n.cell(ff).fanin()[0].index()])
                .collect();
            let v2 = eval(&n, &order_n, &|vals| {
                for (i, &pi) in n.inputs().iter().enumerate() {
                    vals[pi.index()] = pi2[i];
                }
                for (i, &ff) in n.flip_flops().iter().enumerate() {
                    vals[ff.index()] = captured[i];
                }
            });

            // Unrolled single evaluation.
            let vu = eval(&u.netlist, &order_u, &|vals| {
                for (i, &pi) in n.inputs().iter().enumerate() {
                    vals[u.in_frame1(pi).index()] = pi1[i];
                    vals[u.in_frame2(pi).index()] = pi2[i];
                }
                for (i, &ff) in n.flip_flops().iter().enumerate() {
                    vals[u.in_frame1(ff).index()] = st[i];
                }
            });

            // Frame-2 copies must equal the cycle-2 values.
            for (id, cell) in n.iter() {
                if cell.kind() == CellKind::Output {
                    continue;
                }
                assert_eq!(
                    vu[u.in_frame2(id).index()],
                    v2[id.index()],
                    "cell {} (seed {seed})",
                    cell.name()
                );
                assert_eq!(
                    vu[u.in_frame1(id).index()],
                    v1[id.index()],
                    "frame1 cell {} (seed {seed})",
                    cell.name()
                );
            }
        }
    }
}
