//! Gate-level netlist substrate for the FLH delay-test reproduction.
//!
//! This crate provides the structural view of a sequential circuit that every
//! other crate in the workspace builds on:
//!
//! * [`Netlist`] — a single-output-per-cell gate graph with primary inputs,
//!   primary outputs and D flip-flops as sequential boundaries.
//! * [`CellKind`] — the LEDA-like standard-cell vocabulary used by the paper
//!   (inverters, NAND/NOR/AND/OR up to 4 inputs, AOI/OAI complex gates,
//!   2:1 MUX, XOR/XNOR) plus test cells (scan flip-flop, hold latch, hold
//!   MUX) and generic wide gates produced by the ISCAS89 `.bench` parser.
//! * [`bench_io`] — reader/writer for the ISCAS89 `.bench` interchange
//!   format.
//! * [`analysis`] — levelization, fanout maps, first-level-gate (unique
//!   fanout) identification, cone extraction and structural statistics.
//! * [`compiled`] — [`CompiledCircuit`], the flattened CSR/SoA execution
//!   snapshot every hot loop (logic sim, fault sim, STA, power) walks
//!   instead of re-deriving order and fanout from the graph.
//! * [`generate`] — a deterministic synthetic circuit generator whose
//!   per-circuit profiles are calibrated to the published ISCAS89 statistics
//!   (see `DESIGN.md` for the substitution rationale).
//! * [`mapper`] — a structural technology mapper that reduces generic wide
//!   gates to the 2–4 input library cells and absorbs inverter/AND/OR
//!   patterns into AOI/OAI complex gates, standing in for the Synopsys
//!   Design Compiler mapping step of the paper.
//!
//! # Example
//!
//! ```
//! use flh_netlist::{Netlist, CellKind};
//!
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_cell("g", CellKind::Nand2, vec![a, b]);
//! n.add_output("y", g);
//! assert_eq!(n.cell_count(), 4);
//! assert!(n.validate().is_ok());
//! ```

// Library code answers with Result (`flh-lint` turns violations into
// diagnostics); unwrap stays legal in tests, where a panic IS the report.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod analysis;
pub mod bench_io;
pub mod bytecode;
pub mod cell;
pub mod compiled;
pub mod dot;
pub mod error;
pub mod generate;
pub mod graph;
pub mod mapper;
pub mod profiles;
pub mod static_analysis;
pub mod unroll;
pub mod verilog;

pub use analysis::{CircuitStats, FanoutMap, Levelization};
pub use bytecode::{
    DecodedInst, Dual256, Dual8, LaneWord, Opcode, Packed256, PatternWord, Program,
};
pub use cell::{CellId, CellKind, Dual64, HoldStyle};
pub use compiled::CompiledCircuit;
pub use error::NetlistError;
pub use generate::{generate_circuit, GeneratorConfig};
pub use graph::{Cell, Netlist};
pub use profiles::{iscas89_profile, iscas89_profiles, CircuitProfile};
pub use unroll::TwoFrameUnrolling;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetlistError>;
