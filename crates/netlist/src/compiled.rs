//! Compiled circuit IR: a flattened, immutable, cache-friendly snapshot of a
//! [`Netlist`].
//!
//! Every hot loop in the workspace — logic simulation, stuck-at and
//! transition fault simulation, PODEM implication, static timing, activity
//! collection — sweeps a levelized combinational netlist thousands to
//! millions of times. The pointer-chasing [`Netlist`] graph (per-cell
//! `String` names, `Vec` fanins, `HashMap` name index) is the right
//! structure for *building* circuits, but the wrong one for *executing*
//! them. [`CompiledCircuit`] is the execution form:
//!
//! * dense `u32` cell ids (identical to [`CellId`] indices),
//! * CSR (offset + flat array) fanin and fanout adjacency,
//! * a precomputed topological **level order** with level boundaries, so
//!   evaluators walk a contiguous `&[u32]` instead of re-deriving Kahn's
//!   algorithm per instance,
//! * SoA side-band arrays: cell kind, logic level, topological position,
//!   and the source/registry sets (primary inputs, outputs, flip-flops).
//!
//! Build one per netlist with [`CompiledCircuit::compile`] and share it by
//! reference; it is immutable and `Sync`, so pattern-batch threads can walk
//! the same instance concurrently.
//!
//! ```
//! use flh_netlist::{CellKind, CompiledCircuit, Netlist};
//!
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_cell("g", CellKind::Nand2, vec![a, b]);
//! n.add_output("y", g);
//! let c = CompiledCircuit::compile(&n).unwrap();
//! assert_eq!(c.cell_count(), 4);
//! assert_eq!(c.fanin(g.index() as u32), &[a.index() as u32, b.index() as u32]);
//! assert_eq!(c.readers(a.index() as u32), &[g.index() as u32]);
//! // The level order visits g before the output marker that reads it.
//! let order = c.order();
//! assert!(c.topo_pos(g.index() as u32) < c.topo_pos(order[order.len() - 1]));
//! ```

use crate::analysis;
use crate::cell::{CellId, CellKind};
use crate::graph::Netlist;
use crate::Result;

/// Flattened, immutable execution snapshot of a [`Netlist`].
///
/// All ids are dense `u32` indices equal to [`CellId::index`]. See the
/// [module docs](self) for the layout rationale.
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    name: String,
    kinds: Vec<CellKind>,
    /// CSR fanin: pins of cell `i` are `fanin[fanin_off[i]..fanin_off[i+1]]`.
    fanin_off: Vec<u32>,
    fanin: Vec<u32>,
    /// CSR fanout: readers of cell `i` are
    /// `fanout[fanout_off[i]..fanout_off[i+1]]` (one entry per reading pin,
    /// so a double-reader appears twice, matching [`analysis::FanoutMap`]).
    fanout_off: Vec<u32>,
    fanout: Vec<u32>,
    /// Level-major topological order of all evaluable cells (everything but
    /// primary inputs and flip-flop outputs); within a level, ascending id.
    order: Vec<u32>,
    /// `order[level_starts[l]..level_starts[l + 1]]` are the cells at level
    /// `l + 1` (sources sit at level 0 and are not in the order).
    level_starts: Vec<u32>,
    /// Logic level per cell (0 for sources).
    level: Vec<u32>,
    /// Position of each cell in `order`; `u32::MAX` for sources.
    topo_pos: Vec<u32>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    flip_flops: Vec<u32>,
    depth: u32,
}

impl CompiledCircuit {
    /// Compiles a netlist into its execution form.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::NetlistError::CombinationalCycle`] if the
    /// combinational part of the netlist is cyclic.
    pub fn compile(netlist: &Netlist) -> Result<Self> {
        let n = netlist.cell_count();
        let levelization = analysis::Levelization::compute(netlist)?;

        let mut kinds = Vec::with_capacity(n);
        let mut fanin_off = Vec::with_capacity(n + 1);
        let mut fanin = Vec::new();
        let mut fanout_counts = vec![0u32; n];
        for (_, cell) in netlist.iter() {
            kinds.push(cell.kind());
            fanin_off.push(fanin.len() as u32);
            for &f in cell.fanin() {
                fanin.push(f.index() as u32);
                fanout_counts[f.index()] += 1;
            }
        }
        fanin_off.push(fanin.len() as u32);

        // CSR fanout from the counts: classic two-pass fill.
        let mut fanout_off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for &c in &fanout_counts {
            fanout_off.push(acc);
            acc += c;
        }
        fanout_off.push(acc);
        let mut cursor: Vec<u32> = fanout_off[..n].to_vec();
        let mut fanout = vec![0u32; acc as usize];
        for (id, cell) in netlist.iter() {
            for &f in cell.fanin() {
                fanout[cursor[f.index()] as usize] = id.index() as u32;
                cursor[f.index()] += 1;
            }
        }

        // Level-major evaluation order: bucket the evaluable cells by level.
        // Netlist ids are assigned in creation order, so within a level the
        // ascending-id sweep below is already deterministic.
        let mut level = vec![0u32; n];
        let mut max_level = 0u32;
        for &id in levelization.order() {
            let l = levelization.level(id);
            level[id.index()] = l;
            max_level = max_level.max(l);
        }
        let mut bucket_counts = vec![0u32; max_level as usize + 1];
        for &id in levelization.order() {
            bucket_counts[level[id.index()] as usize - 1] += 1;
        }
        let mut level_starts = Vec::with_capacity(max_level as usize + 1);
        let mut acc = 0u32;
        level_starts.push(0);
        for &c in &bucket_counts {
            acc += c;
            level_starts.push(acc);
        }
        let mut order = vec![0u32; levelization.order().len()];
        let mut cursor: Vec<u32> = level_starts[..max_level as usize].to_vec();
        for id in 0..n as u32 {
            let l = level[id as usize];
            if l == 0 {
                continue; // source: not evaluated
            }
            order[cursor[l as usize - 1] as usize] = id;
            cursor[l as usize - 1] += 1;
        }
        let mut topo_pos = vec![u32::MAX; n];
        for (pos, &id) in order.iter().enumerate() {
            topo_pos[id as usize] = pos as u32;
        }

        Ok(CompiledCircuit {
            name: netlist.name().to_string(),
            kinds,
            fanin_off,
            fanin,
            fanout_off,
            fanout,
            order,
            level_starts,
            level,
            topo_pos,
            inputs: netlist.inputs().iter().map(|c| c.index() as u32).collect(),
            outputs: netlist.outputs().iter().map(|c| c.index() as u32).collect(),
            flip_flops: netlist
                .flip_flops()
                .iter()
                .map(|c| c.index() as u32)
                .collect(),
            depth: levelization.depth(),
        })
    }

    /// [`CompiledCircuit::compile`] straight into an [`Arc`], the form the
    /// execution layer's campaigns hand to worker threads.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::NetlistError::CombinationalCycle`] like
    /// [`CompiledCircuit::compile`].
    pub fn compile_shared(netlist: &Netlist) -> Result<std::sync::Arc<Self>> {
        Self::compile(netlist).map(std::sync::Arc::new)
    }

    /// Design name carried over from the source netlist.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells (dense id space is `0..cell_count() as u32`).
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of cell `id`.
    #[inline]
    pub fn kind(&self, id: u32) -> CellKind {
        self.kinds[id as usize]
    }

    /// SoA view of all cell kinds, indexed by dense id.
    #[inline]
    pub fn kinds(&self) -> &[CellKind] {
        &self.kinds
    }

    /// Fanin pins of cell `id`, in pin order.
    #[inline]
    pub fn fanin(&self, id: u32) -> &[u32] {
        &self.fanin[self.fanin_off[id as usize] as usize..self.fanin_off[id as usize + 1] as usize]
    }

    /// Readers of cell `id` (one entry per reading pin).
    #[inline]
    pub fn readers(&self, id: u32) -> &[u32] {
        &self.fanout
            [self.fanout_off[id as usize] as usize..self.fanout_off[id as usize + 1] as usize]
    }

    /// Level-major topological order of every evaluable cell.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Cells at logic level `l` (1-based; level 0 holds only sources).
    ///
    /// # Panics
    ///
    /// Panics if `l == 0` or `l > self.levels()`.
    #[inline]
    pub fn level_cells(&self, l: usize) -> &[u32] {
        &self.order[self.level_starts[l - 1] as usize..self.level_starts[l] as usize]
    }

    /// Number of populated logic levels (the deepest cell's level).
    #[inline]
    pub fn levels(&self) -> usize {
        self.level_starts.len() - 1
    }

    /// Logic level of cell `id` (0 for sources).
    #[inline]
    pub fn level_of(&self, id: u32) -> u32 {
        self.level[id as usize]
    }

    /// Position of cell `id` in [`Self::order`], or `u32::MAX` for sources.
    #[inline]
    pub fn topo_pos(&self, id: u32) -> u32 {
        self.topo_pos[id as usize]
    }

    /// Structural logic depth, excluding output markers (matches
    /// [`analysis::Levelization::depth`]).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Primary inputs, in registry order.
    #[inline]
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// Primary output markers, in registry order.
    #[inline]
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Flip-flops (plain and scan), in registry order.
    #[inline]
    pub fn flip_flops(&self) -> &[u32] {
        &self.flip_flops
    }

    /// Convenience: dense id of a [`CellId`].
    #[inline]
    pub fn id_of(&self, cell: CellId) -> u32 {
        cell.index() as u32
    }

    /// Convenience: [`CellId`] of a dense id.
    #[inline]
    pub fn cell_id(&self, id: u32) -> CellId {
        CellId::from_index(id as usize)
    }
}

// Send/Sync audit: the snapshot is plain owned data (Strings and Vecs of
// Copy types, no interior mutability, no raw pointers), so worker threads
// may walk one instance concurrently. All *mutable* per-run state lives in
// the simulators' split-out scratch (value / undo / bucket buffers, the
// deviation-replay engine downstream), which is per-worker by
// construction. This assertion turns an accidental future `Cell`/`Rc` into
// a compile error instead of a runtime data race.
const _: fn() = || {
    fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<CompiledCircuit>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FanoutMap;
    use crate::generate::{generate_circuit, GeneratorConfig};

    fn sample() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "compiled".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 9,
            gates: 90,
            logic_depth: 7,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 1234,
        })
        .expect("generates")
    }

    #[test]
    fn mirrors_graph_structure() {
        let n = sample();
        let c = CompiledCircuit::compile(&n).unwrap();
        assert_eq!(c.cell_count(), n.cell_count());
        let fo = FanoutMap::compute(&n);
        for (id, cell) in n.iter() {
            let d = id.index() as u32;
            assert_eq!(c.kind(d), cell.kind());
            let pins: Vec<u32> = cell.fanin().iter().map(|f| f.index() as u32).collect();
            assert_eq!(c.fanin(d), pins.as_slice());
            let mut graph_readers: Vec<u32> =
                fo.readers(id).iter().map(|r| r.index() as u32).collect();
            let mut csr_readers: Vec<u32> = c.readers(d).to_vec();
            graph_readers.sort_unstable();
            csr_readers.sort_unstable();
            assert_eq!(csr_readers, graph_readers);
        }
        assert_eq!(c.inputs().len(), n.inputs().len());
        assert_eq!(c.outputs().len(), n.outputs().len());
        assert_eq!(c.flip_flops().len(), n.flip_flops().len());
    }

    #[test]
    fn order_is_topological_and_level_major() {
        let n = sample();
        let c = CompiledCircuit::compile(&n).unwrap();
        // Every evaluable cell appears exactly once.
        let lv = crate::analysis::Levelization::compute(&n).unwrap();
        assert_eq!(c.order().len(), lv.order().len());
        // Fanins are evaluated before readers, and levels never decrease.
        let mut last_level = 0;
        for (pos, &id) in c.order().iter().enumerate() {
            assert_eq!(c.topo_pos(id), pos as u32);
            assert!(c.level_of(id) >= last_level, "level-major violated");
            last_level = c.level_of(id);
            for &f in c.fanin(id) {
                assert!(
                    c.level_of(f) == 0 || c.topo_pos(f) < pos as u32,
                    "fanin after reader"
                );
            }
        }
        // Level segments partition the order consistently.
        let mut total = 0;
        for l in 1..=c.levels() {
            for &id in c.level_cells(l) {
                assert_eq!(c.level_of(id) as usize, l);
                total += 1;
            }
        }
        assert_eq!(total, c.order().len());
        assert_eq!(c.depth(), lv.depth());
    }

    #[test]
    fn sources_are_not_in_the_order() {
        let n = sample();
        let c = CompiledCircuit::compile(&n).unwrap();
        for &pi in c.inputs() {
            assert_eq!(c.level_of(pi), 0);
            assert_eq!(c.topo_pos(pi), u32::MAX);
        }
        for &ff in c.flip_flops() {
            assert_eq!(c.level_of(ff), 0);
            assert_eq!(c.topo_pos(ff), u32::MAX);
        }
    }

    #[test]
    fn compiled_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<CompiledCircuit>();
    }
}
