//! Cell identifiers and the standard-cell vocabulary.

use std::fmt;

/// Index of a cell inside a [`crate::Netlist`].
///
/// `CellId` is a plain newtype over `u32`; ids are dense and stable for the
/// lifetime of a netlist (cells are never removed, only rewired or marked
/// dead by transforms that rebuild the netlist).
///
/// ```
/// use flh_netlist::CellId;
/// let id = CellId::from_index(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(u32);

impl CellId {
    /// Builds an id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn from_index(index: usize) -> Self {
        CellId(u32::try_from(index).expect("cell index overflows u32"))
    }

    /// Dense index of this cell in its netlist.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// 64 lanes of dual-rail three-valued logic.
///
/// Bit `i` of `one` says lane `i` is definitely 1; bit `i` of `zero` says it
/// is definitely 0; a lane set in neither plane is unknown (X). A lane set
/// in both planes is a contradiction and never produced by the library
/// evaluators. The encoding supports exact Kleene logic per gate via
/// [`CellKind::eval_dual`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dual64 {
    /// Definitely-one plane.
    pub one: u64,
    /// Definitely-zero plane.
    pub zero: u64,
}

impl Dual64 {
    /// All 64 lanes unknown.
    #[inline]
    pub fn all_x() -> Self {
        Dual64 { one: 0, zero: 0 }
    }

    /// All 64 lanes definitely 0.
    #[inline]
    pub fn all_zero() -> Self {
        Dual64 { one: 0, zero: !0 }
    }

    /// All 64 lanes definitely 1.
    #[inline]
    pub fn all_one() -> Self {
        Dual64 { one: !0, zero: 0 }
    }

    /// Fully-known lanes from a two-valued word: bit set ⇒ 1, clear ⇒ 0.
    #[inline]
    pub fn from_word(word: u64) -> Self {
        Dual64 {
            one: word,
            zero: !word,
        }
    }

    /// Mask of lanes carrying a known (non-X) value.
    #[inline]
    pub fn known(self) -> u64 {
        self.one | self.zero
    }

    /// Kleene NOT: swap the planes.
    // Named for the Kleene connective alongside `and`/`or`/`xor`, not the
    // `std::ops::Not` trait (which would collide with these inherent names).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Self {
        Dual64 {
            one: self.zero,
            zero: self.one,
        }
    }

    /// Kleene AND.
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        Dual64 {
            one: self.one & rhs.one,
            zero: self.zero | rhs.zero,
        }
    }

    /// Kleene OR.
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        Dual64 {
            one: self.one | rhs.one,
            zero: self.zero & rhs.zero,
        }
    }

    /// Kleene XOR (exact: X only where an operand is X).
    #[inline]
    pub fn xor(self, rhs: Self) -> Self {
        Dual64 {
            one: (self.one & rhs.zero) | (self.zero & rhs.one),
            zero: (self.one & rhs.one) | (self.zero & rhs.zero),
        }
    }
}

/// Which holding element a DFT style inserts in the stimulus path.
///
/// Used by higher-level crates to tag [`CellKind::HoldLatch`] /
/// [`CellKind::HoldMux`] insertions and by the simulator to decide the
/// hold-mode semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HoldStyle {
    /// Enhanced-scan hold latch (Fig. 1(b) left / Fig. 6(a) of the paper).
    Latch,
    /// MUX-based holding element (Fig. 1(b) right / Fig. 6(b) of the paper).
    Mux,
}

impl fmt::Display for HoldStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoldStyle::Latch => f.write_str("hold-latch"),
            HoldStyle::Mux => f.write_str("hold-mux"),
        }
    }
}

/// The kind (library template) of a netlist cell.
///
/// The vocabulary covers:
///
/// * circuit boundary pseudo-cells (`Input`, `Output`, constants);
/// * sequential cells (`Dff`, `ScanDff`);
/// * the LEDA-like combinational library the paper maps to — inverting and
///   non-inverting simple gates of 2–4 inputs, AOI/OAI complex gates, a 2:1
///   MUX and XOR/XNOR;
/// * DFT holding cells (`HoldLatch`, `HoldMux`) inserted by the enhanced-scan
///   and MUX-based styles;
/// * `generic` wide gates (`AndN` … `NorN`) as read from ISCAS89 `.bench`
///   files before technology mapping.
///
/// All cells have exactly one output. Multi-output ISCAS89 fanout branches
/// are represented implicitly by multiple readers of the same driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Primary input (no fanin).
    Input,
    /// Primary output marker (one fanin, no fanout).
    Output,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// D flip-flop; fanin = `[d]`, output = `q`.
    Dff,
    /// Scan (muxed-D) flip-flop; fanin = `[d]`. The scan path is maintained
    /// structurally by the scan-chain order, not as explicit fanin edges.
    ScanDff,
    /// Enhanced-scan hold latch in the stimulus path; fanin = `[d]`.
    HoldLatch,
    /// MUX-based holding element; fanin = `[d]` with an implicit self-feedback
    /// loop closed in hold mode.
    HoldMux,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 4-input AND.
    And4,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 4-input OR.
    Or4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 4-input NOR.
    Nor4,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-INVERT 2-1: `!((a & b) | c)`, fanin = `[a, b, c]`.
    Aoi21,
    /// AND-OR-INVERT 2-2: `!((a & b) | (c & d))`, fanin = `[a, b, c, d]`.
    Aoi22,
    /// OR-AND-INVERT 2-1: `!((a | b) & c)`, fanin = `[a, b, c]`.
    Oai21,
    /// OR-AND-INVERT 2-2: `!((a | b) & (c | d))`, fanin = `[a, b, c, d]`.
    Oai22,
    /// 2:1 multiplexer: fanin = `[a, b, s]`, output = `s ? b : a`.
    Mux2,
    /// Generic wide AND of `n` inputs (pre-mapping only), `2 <= n <= 16`.
    AndN(u8),
    /// Generic wide NAND of `n` inputs (pre-mapping only).
    NandN(u8),
    /// Generic wide OR of `n` inputs (pre-mapping only).
    OrN(u8),
    /// Generic wide NOR of `n` inputs (pre-mapping only).
    NorN(u8),
    /// Generic wide XOR (odd parity) of `n` inputs (pre-mapping only).
    XorN(u8),
}

impl CellKind {
    /// Number of fanin pins this kind requires.
    ///
    /// ```
    /// use flh_netlist::CellKind;
    /// assert_eq!(CellKind::Aoi22.arity(), 4);
    /// assert_eq!(CellKind::Input.arity(), 0);
    /// ```
    pub fn arity(self) -> usize {
        use CellKind::*;
        match self {
            Input | Const0 | Const1 => 0,
            Output | Buf | Inv | Dff | ScanDff | HoldLatch | HoldMux => 1,
            And2 | Nand2 | Or2 | Nor2 | Xor2 | Xnor2 => 2,
            And3 | Nand3 | Or3 | Nor3 | Aoi21 | Oai21 | Mux2 => 3,
            And4 | Nand4 | Or4 | Nor4 | Aoi22 | Oai22 => 4,
            AndN(n) | NandN(n) | OrN(n) | NorN(n) | XorN(n) => n as usize,
        }
    }

    /// True for the sequential cells (`Dff`, `ScanDff`).
    pub fn is_flip_flop(self) -> bool {
        matches!(self, CellKind::Dff | CellKind::ScanDff)
    }

    /// True for the DFT holding cells inserted in the stimulus path.
    pub fn is_hold_element(self) -> bool {
        matches!(self, CellKind::HoldLatch | CellKind::HoldMux)
    }

    /// True for combinational logic cells (everything that computes a value
    /// each cycle: gates, buffers, constants — but not boundary, sequential
    /// or holding cells).
    pub fn is_combinational(self) -> bool {
        use CellKind::*;
        !matches!(self, Input | Output | Dff | ScanDff | HoldLatch | HoldMux)
    }

    /// True for generic wide gates that must be technology-mapped before the
    /// physical crates (`flh-tech`, `flh-timing`, `flh-power`) can cost them.
    pub fn is_generic(self) -> bool {
        matches!(
            self,
            CellKind::AndN(_)
                | CellKind::NandN(_)
                | CellKind::OrN(_)
                | CellKind::NorN(_)
                | CellKind::XorN(_)
        )
    }

    /// Evaluates the cell function over 64 two-valued patterns in parallel
    /// (one pattern per bit). Sequential and boundary cells behave as
    /// buffers of their single fanin; constants ignore `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellKind::arity`].
    pub fn eval64(self, inputs: &[u64]) -> u64 {
        use CellKind::*;
        assert_eq!(
            inputs.len(),
            self.arity(),
            "{self:?} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            Input => 0,
            Const0 => 0,
            Const1 => !0,
            Output | Buf | Dff | ScanDff | HoldLatch | HoldMux => inputs[0],
            Inv => !inputs[0],
            And2 | And3 | And4 => inputs.iter().fold(!0u64, |acc, v| acc & v),
            Nand2 | Nand3 | Nand4 => !inputs.iter().fold(!0u64, |acc, v| acc & v),
            Or2 | Or3 | Or4 => inputs.iter().fold(0u64, |acc, v| acc | v),
            Nor2 | Nor3 | Nor4 => !inputs.iter().fold(0u64, |acc, v| acc | v),
            Xor2 => inputs[0] ^ inputs[1],
            Xnor2 => !(inputs[0] ^ inputs[1]),
            Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
            Mux2 => (inputs[0] & !inputs[2]) | (inputs[1] & inputs[2]),
            AndN(_) => inputs.iter().fold(!0u64, |acc, v| acc & v),
            NandN(_) => !inputs.iter().fold(!0u64, |acc, v| acc & v),
            OrN(_) => inputs.iter().fold(0u64, |acc, v| acc | v),
            NorN(_) => !inputs.iter().fold(0u64, |acc, v| acc | v),
            XorN(_) => inputs.iter().fold(0u64, |acc, v| acc ^ v),
        }
    }

    /// 64-lane dual-rail three-valued evaluation.
    ///
    /// Each lane of the [`Dual64`] pair carries one pattern; a lane is `1`
    /// in `one` when the value is definitely 1, `1` in `zero` when
    /// definitely 0, and unknown (X) when set in neither. For every kind in
    /// the library the result is *exact* Kleene three-valued logic — the
    /// library formulas are read-once, and the one non-read-once cell
    /// ([`CellKind::Mux2`]) carries an explicit consensus term so
    /// `MUX(a, a, X) = a` instead of the pessimistic X.
    pub fn eval_dual(self, inputs: &[Dual64]) -> Dual64 {
        use CellKind::*;
        assert_eq!(
            inputs.len(),
            self.arity(),
            "{self:?} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            Input => Dual64::all_x(),
            Const0 => Dual64::all_zero(),
            Const1 => Dual64::all_one(),
            Output | Buf | Dff | ScanDff | HoldLatch | HoldMux => inputs[0],
            Inv => inputs[0].not(),
            And2 | And3 | And4 | AndN(_) => {
                inputs.iter().fold(Dual64::all_one(), |acc, v| acc.and(*v))
            }
            Nand2 | Nand3 | Nand4 | NandN(_) => inputs
                .iter()
                .fold(Dual64::all_one(), |acc, v| acc.and(*v))
                .not(),
            Or2 | Or3 | Or4 | OrN(_) => inputs.iter().fold(Dual64::all_zero(), |acc, v| acc.or(*v)),
            Nor2 | Nor3 | Nor4 | NorN(_) => inputs
                .iter()
                .fold(Dual64::all_zero(), |acc, v| acc.or(*v))
                .not(),
            Xor2 => inputs[0].xor(inputs[1]),
            Xnor2 => inputs[0].xor(inputs[1]).not(),
            XorN(_) => inputs.iter().fold(Dual64::all_zero(), |acc, v| acc.xor(*v)),
            Aoi21 => inputs[0].and(inputs[1]).or(inputs[2]).not(),
            Aoi22 => inputs[0].and(inputs[1]).or(inputs[2].and(inputs[3])).not(),
            Oai21 => inputs[0].or(inputs[1]).and(inputs[2]).not(),
            Oai22 => inputs[0].or(inputs[1]).and(inputs[2].or(inputs[3])).not(),
            Mux2 => {
                let (a, b, s) = (inputs[0], inputs[1], inputs[2]);
                Dual64 {
                    // Selected branch when s is known, plus the consensus
                    // term (both branches agree) when s is X.
                    one: (s.zero & a.one) | (s.one & b.one) | (a.one & b.one),
                    zero: (s.zero & a.zero) | (s.one & b.zero) | (a.zero & b.zero),
                }
            }
        }
    }

    /// Scalar two-valued evaluation convenience over [`CellKind::eval64`].
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval64(&words) & 1 != 0
    }

    /// Library name as used by the `.bench` writer and reports.
    pub fn library_name(self) -> &'static str {
        use CellKind::*;
        match self {
            Input => "INPUT",
            Output => "OUTPUT",
            Const0 => "CONST0",
            Const1 => "CONST1",
            Buf => "BUFF",
            Inv => "NOT",
            Dff => "DFF",
            ScanDff => "SDFF",
            HoldLatch => "HOLDL",
            HoldMux => "HOLDM",
            And2 | And3 | And4 | AndN(_) => "AND",
            Nand2 | Nand3 | Nand4 | NandN(_) => "NAND",
            Or2 | Or3 | Or4 | OrN(_) => "OR",
            Nor2 | Nor3 | Nor4 | NorN(_) => "NOR",
            Xor2 | XorN(_) => "XOR",
            Xnor2 => "XNOR",
            Aoi21 => "AOI21",
            Aoi22 => "AOI22",
            Oai21 => "OAI21",
            Oai22 => "OAI22",
            Mux2 => "MUX",
        }
    }

    /// The library AND cell of the given arity (2–4).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= 4`.
    pub fn and(n: usize) -> Self {
        match n {
            2 => CellKind::And2,
            3 => CellKind::And3,
            4 => CellKind::And4,
            _ => panic!("no AND{n} library cell"),
        }
    }

    /// The library NAND cell of the given arity (2–4).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= 4`.
    pub fn nand(n: usize) -> Self {
        match n {
            2 => CellKind::Nand2,
            3 => CellKind::Nand3,
            4 => CellKind::Nand4,
            _ => panic!("no NAND{n} library cell"),
        }
    }

    /// The library OR cell of the given arity (2–4).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= 4`.
    pub fn or(n: usize) -> Self {
        match n {
            2 => CellKind::Or2,
            3 => CellKind::Or3,
            4 => CellKind::Or4,
            _ => panic!("no OR{n} library cell"),
        }
    }

    /// The library NOR cell of the given arity (2–4).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= 4`.
    pub fn nor(n: usize) -> Self {
        match n {
            2 => CellKind::Nor2,
            3 => CellKind::Nor3,
            4 => CellKind::Nor4,
            _ => panic!("no NOR{n} library cell"),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CellKind::*;
        match *self {
            AndN(n) => write!(f, "AND{n}*"),
            NandN(n) => write!(f, "NAND{n}*"),
            OrN(n) => write!(f, "OR{n}*"),
            NorN(n) => write!(f, "NOR{n}*"),
            XorN(n) => write!(f, "XOR{n}*"),
            And2 | And3 | And4 | Nand2 | Nand3 | Nand4 | Or2 | Or3 | Or4 | Nor2 | Nor3 | Nor4 => {
                write!(f, "{}{}", self.library_name(), self.arity())
            }
            _ => f.write_str(self.library_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_variants() {
        assert_eq!(CellKind::Inv.arity(), 1);
        assert_eq!(CellKind::Nand3.arity(), 3);
        assert_eq!(CellKind::Oai22.arity(), 4);
        assert_eq!(CellKind::Mux2.arity(), 3);
        assert_eq!(CellKind::NandN(7).arity(), 7);
    }

    #[test]
    fn eval_simple_gates() {
        assert!(!CellKind::Nand2.eval_bool(&[true, true]));
        assert!(CellKind::Nand2.eval_bool(&[true, false]));
        assert!(CellKind::Nor2.eval_bool(&[false, false]));
        assert!(!CellKind::Nor2.eval_bool(&[true, false]));
        assert!(CellKind::Xor2.eval_bool(&[true, false]));
        assert!(!CellKind::Xor2.eval_bool(&[true, true]));
        assert!(CellKind::Xnor2.eval_bool(&[true, true]));
    }

    #[test]
    fn eval_complex_gates() {
        // AOI21 = !((a&b)|c)
        assert!(!CellKind::Aoi21.eval_bool(&[true, true, false]));
        assert!(!CellKind::Aoi21.eval_bool(&[false, false, true]));
        assert!(CellKind::Aoi21.eval_bool(&[true, false, false]));
        // OAI22 = !((a|b)&(c|d))
        assert!(CellKind::Oai22.eval_bool(&[false, false, true, true]));
        assert!(!CellKind::Oai22.eval_bool(&[true, false, false, true]));
    }

    #[test]
    fn eval_mux() {
        // output = s ? b : a with fanin [a, b, s]
        assert!(CellKind::Mux2.eval_bool(&[true, false, false]));
        assert!(!CellKind::Mux2.eval_bool(&[true, false, true]));
        assert!(CellKind::Mux2.eval_bool(&[false, true, true]));
    }

    #[test]
    fn eval_wide_parity() {
        assert!(CellKind::XorN(3).eval_bool(&[true, true, true]));
        assert!(!CellKind::XorN(3).eval_bool(&[true, true, false]));
    }

    #[test]
    fn eval64_is_bitwise_parallel() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(CellKind::And2.eval64(&[a, b]) & 0xF, 0b1000);
        assert_eq!(CellKind::Or2.eval64(&[a, b]) & 0xF, 0b1110);
        assert_eq!(CellKind::Nand2.eval64(&[a, b]) & 0xF, 0b0111);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn eval_wrong_arity_panics() {
        CellKind::And2.eval64(&[0]);
    }

    #[test]
    fn classification_flags() {
        assert!(CellKind::Dff.is_flip_flop());
        assert!(CellKind::ScanDff.is_flip_flop());
        assert!(!CellKind::HoldLatch.is_flip_flop());
        assert!(CellKind::HoldMux.is_hold_element());
        assert!(CellKind::Aoi21.is_combinational());
        assert!(!CellKind::Input.is_combinational());
        assert!(CellKind::NandN(5).is_generic());
        assert!(!CellKind::Nand4.is_generic());
    }

    #[test]
    fn constructors_by_arity() {
        assert_eq!(CellKind::nand(3), CellKind::Nand3);
        assert_eq!(CellKind::or(4), CellKind::Or4);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
        assert_eq!(CellKind::Aoi22.to_string(), "AOI22");
        assert_eq!(CellKind::NandN(6).to_string(), "NAND6*");
        assert_eq!(CellId::from_index(5).to_string(), "c5");
    }
}
