//! Flat superword bytecode lowered from the compiled level order.
//!
//! [`Program::lower`] compiles a [`CompiledCircuit`]'s precomputed level
//! order into a flat instruction stream that hot loops *execute* instead of
//! re-interpreting the CSR IR cell by cell. The pipeline has four stages
//! (documented in `DESIGN.md` §2g):
//!
//! 1. **micro-op expansion** — every library cell is broken into binary
//!    micro-ops (`And2`/`Or2`/`Xor2`/`Not`/`Copy`/`Mux`/constants) over
//!    single-use virtual temporaries;
//! 2. **fusion** — associative chains are widened back to ≤ 4 operands and
//!    inverting roots are folded into the complex opcodes (`NAND`/`NOR`/
//!    `XNOR`/`AOI`/`OAI`), so every library cell emits exactly one fused
//!    instruction and only wide generic gates spill a chain;
//! 3. **register allocation** — surviving temporaries get scratch words
//!    from a free list, reused across cells and levels, so the scratch
//!    file stays a handful of words for an entire circuit;
//! 4. **emission** — instructions stream out level-major, chunked into
//!    per-level batches whose destination working set is sized to a few
//!    cache lines.
//!
//! The executor is generic over [`LaneWord`], so one opcode table serves
//! every engine: plain `u64` two-valued fault simulation, [`Dual64`]
//! 64-lane dual-rail settles, the 8-lane [`Dual8`] scalar-sim storage and
//! the 256-lane [`Dual256`] manual `u64x4` superword. Per-gate dual-rail
//! Kleene evaluation is exactly `eval3` for the whole library (proven by
//! the flh-sim tests), so the bytecode engines stay bit-identical to the
//! event-driven reference.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::cell::{CellKind, Dual64};
use crate::compiled::CompiledCircuit;

/// One word of simulation state: a fixed set of independent lanes with the
/// bitwise connectives the opcode table is built from.
///
/// Implementations are either *two-valued* (`u64`: one pattern per bit) or
/// *dual-rail three-valued* ([`Dual8`], [`Dual64`], [`Dual256`]): a lane is
/// definitely-1, definitely-0 or unknown, and the connectives implement
/// exact Kleene logic. `mux` carries the consensus term in the dual-rail
/// forms so `MUX(a, a, X) = a`.
pub trait LaneWord: Copy {
    /// All lanes 1.
    fn top() -> Self;
    /// All lanes 0.
    fn bot() -> Self;
    /// Lane-wise AND.
    fn and(self, rhs: Self) -> Self;
    /// Lane-wise OR.
    fn or(self, rhs: Self) -> Self;
    /// Lane-wise NOT.
    fn not(self) -> Self;
    /// Lane-wise XOR.
    fn xor(self, rhs: Self) -> Self;
    /// Lane-wise 2:1 mux, `s ? b : a`.
    fn mux(a: Self, b: Self, s: Self) -> Self;
}

impl LaneWord for u64 {
    #[inline(always)]
    fn top() -> Self {
        !0
    }
    #[inline(always)]
    fn bot() -> Self {
        0
    }
    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        self & rhs
    }
    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        self | rhs
    }
    #[inline(always)]
    fn not(self) -> Self {
        !self
    }
    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        self ^ rhs
    }
    #[inline(always)]
    fn mux(a: Self, b: Self, s: Self) -> Self {
        (a & !s) | (b & s)
    }
}

impl LaneWord for Dual64 {
    #[inline(always)]
    fn top() -> Self {
        Dual64::all_one()
    }
    #[inline(always)]
    fn bot() -> Self {
        Dual64::all_zero()
    }
    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Dual64::and(self, rhs)
    }
    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Dual64::or(self, rhs)
    }
    #[inline(always)]
    fn not(self) -> Self {
        Dual64::not(self)
    }
    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        Dual64::xor(self, rhs)
    }
    #[inline(always)]
    fn mux(a: Self, b: Self, s: Self) -> Self {
        Dual64 {
            one: (s.zero & a.one) | (s.one & b.one) | (a.one & b.one),
            zero: (s.zero & a.zero) | (s.one & b.zero) | (a.zero & b.zero),
        }
    }
}

/// 8 lanes of dual-rail three-valued logic in two bytes — the scalar
/// simulator's per-cell storage (a whole mid-size circuit's value file fits
/// in L1). The scalar engine replicates one value across all 8 lanes so
/// word equality coincides with value equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dual8 {
    /// Definitely-one plane.
    pub one: u8,
    /// Definitely-zero plane.
    pub zero: u8,
}

impl Dual8 {
    /// All lanes unknown.
    #[inline]
    pub fn all_x() -> Self {
        Dual8 { one: 0, zero: 0 }
    }

    /// Mask of lanes carrying a known (non-X) value.
    #[inline]
    pub fn known(self) -> u8 {
        self.one | self.zero
    }
}

impl LaneWord for Dual8 {
    #[inline(always)]
    fn top() -> Self {
        Dual8 { one: !0, zero: 0 }
    }
    #[inline(always)]
    fn bot() -> Self {
        Dual8 { one: 0, zero: !0 }
    }
    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Dual8 {
            one: self.one & rhs.one,
            zero: self.zero | rhs.zero,
        }
    }
    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Dual8 {
            one: self.one | rhs.one,
            zero: self.zero & rhs.zero,
        }
    }
    #[inline(always)]
    fn not(self) -> Self {
        Dual8 {
            one: self.zero,
            zero: self.one,
        }
    }
    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        Dual8 {
            one: (self.one & rhs.zero) | (self.zero & rhs.one),
            zero: (self.one & rhs.one) | (self.zero & rhs.zero),
        }
    }
    #[inline(always)]
    fn mux(a: Self, b: Self, s: Self) -> Self {
        Dual8 {
            one: (s.zero & a.one) | (s.one & b.one) | (a.one & b.one),
            zero: (s.zero & a.zero) | (s.one & b.zero) | (a.zero & b.zero),
        }
    }
}

/// 256 lanes of dual-rail three-valued logic: a manual `u64x4` superword.
/// One instruction evaluates 256 independent patterns; the four limbs keep
/// the planes in straight-line code the compiler vectorizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dual256 {
    /// Definitely-one plane, four 64-lane limbs.
    pub one: [u64; 4],
    /// Definitely-zero plane, four 64-lane limbs.
    pub zero: [u64; 4],
}

impl Dual256 {
    /// All 256 lanes unknown.
    #[inline]
    pub fn all_x() -> Self {
        Dual256 {
            one: [0; 4],
            zero: [0; 4],
        }
    }
}

#[inline(always)]
fn zip4(a: [u64; 4], b: [u64; 4], f: impl Fn(u64, u64) -> u64) -> [u64; 4] {
    [f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])]
}

impl LaneWord for Dual256 {
    #[inline(always)]
    fn top() -> Self {
        Dual256 {
            one: [!0; 4],
            zero: [0; 4],
        }
    }
    #[inline(always)]
    fn bot() -> Self {
        Dual256 {
            one: [0; 4],
            zero: [!0; 4],
        }
    }
    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Dual256 {
            one: zip4(self.one, rhs.one, |a, b| a & b),
            zero: zip4(self.zero, rhs.zero, |a, b| a | b),
        }
    }
    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Dual256 {
            one: zip4(self.one, rhs.one, |a, b| a | b),
            zero: zip4(self.zero, rhs.zero, |a, b| a & b),
        }
    }
    #[inline(always)]
    fn not(self) -> Self {
        Dual256 {
            one: self.zero,
            zero: self.one,
        }
    }
    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        Dual256 {
            one: zip4(
                zip4(self.one, rhs.zero, |a, b| a & b),
                zip4(self.zero, rhs.one, |a, b| a & b),
                |a, b| a | b,
            ),
            zero: zip4(
                zip4(self.one, rhs.one, |a, b| a & b),
                zip4(self.zero, rhs.zero, |a, b| a & b),
                |a, b| a | b,
            ),
        }
    }
    #[inline(always)]
    fn mux(a: Self, b: Self, s: Self) -> Self {
        let pick = |sa: [u64; 4], sb: [u64; 4], va: [u64; 4], vb: [u64; 4]| {
            zip4(
                zip4(sa, va, |x, y| x & y),
                zip4(sb, vb, |x, y| x & y),
                |x, y| x | y,
            )
        };
        let sel = pick(s.zero, s.one, a.one, b.one);
        let consensus_one = zip4(a.one, b.one, |x, y| x & y);
        let selz = pick(s.zero, s.one, a.zero, b.zero);
        let consensus_zero = zip4(a.zero, b.zero, |x, y| x & y);
        Dual256 {
            one: zip4(sel, consensus_one, |x, y| x | y),
            zero: zip4(selz, consensus_zero, |x, y| x | y),
        }
    }
}

/// 256 lanes of two-valued logic: a manual `u64x4` superword, the pattern
/// word of the fault simulators. One bit per pattern, four limbs of 64
/// lanes each; the limbs keep the connectives in straight-line code the
/// compiler vectorizes, exactly like [`Dual256`] on the dual-rail side.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[repr(C, align(32))]
pub struct Packed256(pub [u64; 4]);

impl Packed256 {
    /// Builds a superword from four 64-lane limbs (limb `i` carries lanes
    /// `64*i .. 64*i+63`).
    #[inline]
    pub fn from_limbs(limbs: [u64; 4]) -> Self {
        Packed256(limbs)
    }

    /// Builds a superword whose low 64 lanes are `word` and whose upper
    /// lanes are 0 — the embedding the 64-lane call sites use.
    #[inline]
    pub fn from_word(word: u64) -> Self {
        Packed256([word, 0, 0, 0])
    }

    /// Limb `i` (lanes `64*i .. 64*i+63`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline]
    pub fn limb(self, i: usize) -> u64 {
        self.0[i]
    }
}

impl LaneWord for Packed256 {
    #[inline(always)]
    fn top() -> Self {
        Packed256([!0; 4])
    }
    #[inline(always)]
    fn bot() -> Self {
        Packed256([0; 4])
    }
    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Packed256(zip4(self.0, rhs.0, |a, b| a & b))
    }
    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Packed256(zip4(self.0, rhs.0, |a, b| a | b))
    }
    #[inline(always)]
    fn not(self) -> Self {
        Packed256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
    #[inline(always)]
    fn xor(self, rhs: Self) -> Self {
        Packed256(zip4(self.0, rhs.0, |a, b| a ^ b))
    }
    #[inline(always)]
    fn mux(a: Self, b: Self, s: Self) -> Self {
        Packed256([
            (a.0[0] & !s.0[0]) | (b.0[0] & s.0[0]),
            (a.0[1] & !s.0[1]) | (b.0[1] & s.0[1]),
            (a.0[2] & !s.0[2]) | (b.0[2] & s.0[2]),
            (a.0[3] & !s.0[3]) | (b.0[3] & s.0[3]),
        ])
    }
}

/// A two-valued [`LaneWord`] whose lanes are individually addressable —
/// the contract the deviation replay and the fault simulators need on top
/// of the opcode connectives: per-lane masks for partial pattern blocks,
/// lane population counts for n-detect, and equality for the undo log's
/// change detection. Implemented by `u64` (64 lanes) and [`Packed256`]
/// (256 lanes); the dual-rail words are not pattern words.
pub trait PatternWord: LaneWord + PartialEq + Default {
    /// Number of pattern lanes in one word.
    const LANES: usize;
    /// True if any lane is set.
    fn any(self) -> bool;
    /// Number of set lanes.
    fn count_ones(self) -> u32;
    /// A word with the low `n` lanes set (`n == LANES` ⇒ all lanes).
    ///
    /// # Panics
    ///
    /// Panics if `n > LANES`.
    fn mask_lanes(n: usize) -> Self;
    /// A word with only lane `lane` set.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    fn lane_bit(lane: usize) -> Self;
}

impl PatternWord for u64 {
    const LANES: usize = 64;
    #[inline(always)]
    fn any(self) -> bool {
        self != 0
    }
    #[inline(always)]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
    #[inline]
    fn mask_lanes(n: usize) -> Self {
        assert!(n <= 64, "mask of {n} lanes exceeds the 64-lane word");
        if n == 64 {
            !0
        } else {
            (1u64 << n) - 1
        }
    }
    #[inline]
    fn lane_bit(lane: usize) -> Self {
        assert!(lane < 64, "lane {lane} out of the 64-lane word");
        1u64 << lane
    }
}

impl PatternWord for Packed256 {
    const LANES: usize = 256;
    #[inline(always)]
    fn any(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) != 0
    }
    #[inline(always)]
    fn count_ones(self) -> u32 {
        self.0[0].count_ones()
            + self.0[1].count_ones()
            + self.0[2].count_ones()
            + self.0[3].count_ones()
    }
    #[inline]
    fn mask_lanes(n: usize) -> Self {
        assert!(n <= 256, "mask of {n} lanes exceeds the 256-lane word");
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let lo = i * 64;
            *limb = <u64 as PatternWord>::mask_lanes(n.clamp(lo, lo + 64) - lo);
        }
        Packed256(limbs)
    }
    #[inline]
    fn lane_bit(lane: usize) -> Self {
        assert!(lane < 256, "lane {lane} out of the 256-lane word");
        let mut limbs = [0u64; 4];
        limbs[lane / 64] = 1u64 << (lane % 64);
        Packed256(limbs)
    }
}

/// Fused bytecode operation. `And`/`Nand`/`Or`/`Nor`/`Xor`/`Xnor` take 2–4
/// operands (the operand count travels in the instruction header); the
/// complex gates and `Mux` have fixed shapes matching the library cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Constant 0 (no operands).
    Const0 = 0,
    /// Constant 1 (no operands).
    Const1 = 1,
    /// Copy the single operand (buffers, output markers, hold elements).
    Copy = 2,
    /// Invert the single operand.
    Not = 3,
    /// AND of 2–4 operands.
    And = 4,
    /// NAND of 2–4 operands.
    Nand = 5,
    /// OR of 2–4 operands.
    Or = 6,
    /// NOR of 2–4 operands.
    Nor = 7,
    /// XOR (odd parity) of 2–4 operands.
    Xor = 8,
    /// XNOR (even parity) of 2–4 operands.
    Xnor = 9,
    /// `!((a & b) | c)`.
    Aoi21 = 10,
    /// `!((a & b) | (c & d))`.
    Aoi22 = 11,
    /// `!((a | b) & c)`.
    Oai21 = 12,
    /// `!((a | b) & (c | d))`.
    Oai22 = 13,
    /// `s ? b : a` with operands `[a, b, s]`.
    Mux = 14,
}

impl Opcode {
    fn from_raw(raw: u8) -> Opcode {
        Opcode::try_from_raw(raw).unwrap_or_else(|| unreachable!("invalid opcode byte {raw}"))
    }

    /// Fallible decode of a raw opcode byte — the bytecode verifier's entry
    /// point, which must diagnose an invalid byte instead of panicking.
    pub fn try_from_raw(raw: u8) -> Option<Opcode> {
        Some(match raw {
            0 => Opcode::Const0,
            1 => Opcode::Const1,
            2 => Opcode::Copy,
            3 => Opcode::Not,
            4 => Opcode::And,
            5 => Opcode::Nand,
            6 => Opcode::Or,
            7 => Opcode::Nor,
            8 => Opcode::Xor,
            9 => Opcode::Xnor,
            10 => Opcode::Aoi21,
            11 => Opcode::Aoi22,
            12 => Opcode::Oai21,
            13 => Opcode::Oai22,
            14 => Opcode::Mux,
            _ => return None,
        })
    }

    /// The legal operand-count range for this opcode. The chainable
    /// families carry their count in the instruction header; everything
    /// else has a fixed shape matching its library cell.
    pub fn arity_range(self) -> std::ops::RangeInclusive<usize> {
        match self {
            Opcode::Const0 | Opcode::Const1 => 0..=0,
            Opcode::Copy | Opcode::Not => 1..=1,
            Opcode::And | Opcode::Nand | Opcode::Or | Opcode::Nor | Opcode::Xor | Opcode::Xnor => {
                2..=MAX_FUSED_OPERANDS
            }
            Opcode::Aoi21 | Opcode::Oai21 | Opcode::Mux => 3..=3,
            Opcode::Aoi22 | Opcode::Oai22 => 4..=4,
        }
    }

    /// Assembly mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Const0 => "const0",
            Opcode::Const1 => "const1",
            Opcode::Copy => "copy",
            Opcode::Not => "not",
            Opcode::And => "and",
            Opcode::Nand => "nand",
            Opcode::Or => "or",
            Opcode::Nor => "nor",
            Opcode::Xor => "xor",
            Opcode::Xnor => "xnor",
            Opcode::Aoi21 => "aoi21",
            Opcode::Aoi22 => "aoi22",
            Opcode::Oai21 => "oai21",
            Opcode::Oai22 => "oai22",
            Opcode::Mux => "mux",
        }
    }
}

/// Widest fused operand list: the library tops out at 4-input gates, and
/// wider generics spill a scratch chain instead.
pub const MAX_FUSED_OPERANDS: usize = 4;

/// Code words per instruction: header, destination slot and
/// [`MAX_FUSED_OPERANDS`] operand slots (unused ones zero-padded). The
/// fixed stride lets the executors walk the stream with `chunks_exact`,
/// so every in-instruction access is a constant index the bounds checker
/// drops.
pub const INST_WORDS: usize = 2 + MAX_FUSED_OPERANDS;

/// Instructions per level batch. A batch's destination stripe stays within
/// a few cache lines for the widest lane word (64 × [`Dual8`] = 2 lines;
/// 64 × [`Dual256`] = one 4 KiB stride the hardware prefetcher tracks).
pub const BATCH_INSTS: u32 = 64;

/// One contiguous run of instructions inside a single level.
#[derive(Clone, Copy, Debug)]
pub struct Batch {
    /// First code word of the batch.
    pub start: u32,
    /// One past the last code word.
    pub end: u32,
    /// Logic level (1-based) the batch's cells live on.
    pub level: u32,
}

// Instruction header layout (one u32, followed by the dst slot and the
// fixed-width operand block; see INST_WORDS). Shared with the sibling
// `static_analysis` module, whose verifier re-decodes the stream.
pub(crate) const OP_SHIFT: u32 = 0; // bits 0..8: opcode
pub(crate) const NOPS_SHIFT: u32 = 8; // bits 8..12: operand count
pub(crate) const HOLD_BIT: u32 = 1 << 12; // dst is a hold element (skippable)
pub(crate) const FOLD_SHIFT: u32 = 16; // bits 16..24: micro-ops fused into this inst

/// One instruction of the stream in decoded form — the introspection view
/// the verifier, its negative tests and external tooling consume instead of
/// re-deriving the header bit layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedInst {
    /// Raw opcode byte (may be invalid on corrupted programs).
    pub opcode_raw: u8,
    /// Decoded opcode, if the byte is legal.
    pub opcode: Option<Opcode>,
    /// Operand count from the header (not validated).
    pub nops: usize,
    /// Destination slot: a cell id below `cell_words()`, a scratch slot at
    /// `cell_words() + r` otherwise.
    pub dst: u32,
    /// Operand slots; entries at `nops..` are zero padding.
    pub operands: [u32; MAX_FUSED_OPERANDS],
    /// True when the destination is a holding cell (freeze-skippable).
    pub hold: bool,
    /// Micro-ops fused into this instruction (saturated at 255).
    pub folded: u32,
}

/// A lowered circuit: the flat instruction stream plus the side tables the
/// executors and the disassembler need. Immutable after
/// [`Program::lower`]; share it with [`Arc`] next to the
/// [`CompiledCircuit`] it was lowered from.
#[derive(Debug)]
pub struct Program {
    n_cells: u32,
    n_scratch: u32,
    code: Vec<u32>,
    batches: Vec<Batch>,
    /// Per cell id: (first code word, word count) of its instruction chain,
    /// or `(u32::MAX, 0)` for sources that are never evaluated.
    cell_chain: Vec<(u32, u32)>,
    inst_count: u32,
    micro_ops: u64,
}

/// Virtual operand during lowering: a cell value or a chain-local temp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Arg {
    Cell(u32),
    Node(u32),
}

/// One micro/fused op during lowering, before scratch allocation.
#[derive(Clone, Debug)]
struct Node {
    op: Opcode,
    args: Vec<Arg>,
    /// Micro-ops folded into this node (1 before fusion).
    folded: u32,
    live: bool,
}

fn push(nodes: &mut Vec<Node>, op: Opcode, args: Vec<Arg>) -> Arg {
    nodes.push(Node {
        op,
        args,
        folded: 1,
        live: true,
    });
    Arg::Node(nodes.len() as u32 - 1)
}

/// Left-fold a binary associative op over the fanin list.
fn fold_chain(nodes: &mut Vec<Node>, op: Opcode, fanin: &[u32]) -> Arg {
    let mut acc = Arg::Cell(fanin[0]);
    for &f in &fanin[1..] {
        acc = push(nodes, op, vec![acc, Arg::Cell(f)]);
    }
    acc
}

/// Stage 1: expand one library cell into binary micro-ops over single-use
/// virtual temps. The last pushed node is the cell's root value.
fn expand(kind: CellKind, fanin: &[u32]) -> Vec<Node> {
    use CellKind::*;
    let mut nodes = Vec::new();
    let c = |i: usize| Arg::Cell(fanin[i]);
    match kind {
        Input | Dff | ScanDff => unreachable!("sources are not lowered"),
        Const0 => {
            push(&mut nodes, Opcode::Const0, Vec::new());
        }
        Const1 => {
            push(&mut nodes, Opcode::Const1, Vec::new());
        }
        Output | Buf | HoldLatch | HoldMux => {
            push(&mut nodes, Opcode::Copy, vec![c(0)]);
        }
        Inv => {
            push(&mut nodes, Opcode::Not, vec![c(0)]);
        }
        And2 | And3 | And4 | AndN(_) => {
            fold_chain(&mut nodes, Opcode::And, fanin);
        }
        Nand2 | Nand3 | Nand4 | NandN(_) => {
            let t = fold_chain(&mut nodes, Opcode::And, fanin);
            push(&mut nodes, Opcode::Not, vec![t]);
        }
        Or2 | Or3 | Or4 | OrN(_) => {
            fold_chain(&mut nodes, Opcode::Or, fanin);
        }
        Nor2 | Nor3 | Nor4 | NorN(_) => {
            let t = fold_chain(&mut nodes, Opcode::Or, fanin);
            push(&mut nodes, Opcode::Not, vec![t]);
        }
        Xor2 | XorN(_) => {
            fold_chain(&mut nodes, Opcode::Xor, fanin);
        }
        Xnor2 => {
            let t = fold_chain(&mut nodes, Opcode::Xor, fanin);
            push(&mut nodes, Opcode::Not, vec![t]);
        }
        Aoi21 => {
            let t = push(&mut nodes, Opcode::And, vec![c(0), c(1)]);
            let u = push(&mut nodes, Opcode::Or, vec![t, c(2)]);
            push(&mut nodes, Opcode::Not, vec![u]);
        }
        Aoi22 => {
            let t1 = push(&mut nodes, Opcode::And, vec![c(0), c(1)]);
            let t2 = push(&mut nodes, Opcode::And, vec![c(2), c(3)]);
            let u = push(&mut nodes, Opcode::Or, vec![t1, t2]);
            push(&mut nodes, Opcode::Not, vec![u]);
        }
        Oai21 => {
            let t = push(&mut nodes, Opcode::Or, vec![c(0), c(1)]);
            let u = push(&mut nodes, Opcode::And, vec![t, c(2)]);
            push(&mut nodes, Opcode::Not, vec![u]);
        }
        Oai22 => {
            let t1 = push(&mut nodes, Opcode::Or, vec![c(0), c(1)]);
            let t2 = push(&mut nodes, Opcode::Or, vec![c(2), c(3)]);
            let u = push(&mut nodes, Opcode::And, vec![t1, t2]);
            push(&mut nodes, Opcode::Not, vec![u]);
        }
        Mux2 => {
            push(&mut nodes, Opcode::Mux, vec![c(0), c(1), c(2)]);
        }
    }
    nodes
}

/// If `a` is a live 2-operand node of `op`, return its node index.
fn binary_child(nodes: &[Node], a: Arg, op: Opcode) -> Option<usize> {
    if let Arg::Node(j) = a {
        let j = j as usize;
        if nodes[j].live && nodes[j].op == op && nodes[j].args.len() == 2 {
            return Some(j);
        }
    }
    None
}

/// Stage 2: fusion. Widens associative chains to ≤ [`MAX_FUSED_OPERANDS`]
/// operands, then folds an inverting root into the complex opcode family.
/// Temps are single-use by construction, so every rewrite is legal.
fn fuse(nodes: &mut [Node]) {
    // Associative widening: absorb a same-op child into its (single) user.
    loop {
        let mut changed = false;
        for i in 0..nodes.len() {
            if !nodes[i].live || !matches!(nodes[i].op, Opcode::And | Opcode::Or | Opcode::Xor) {
                continue;
            }
            let mut k = 0;
            while k < nodes[i].args.len() {
                let absorb = match nodes[i].args[k] {
                    Arg::Node(j) => {
                        let j = j as usize;
                        (nodes[j].op == nodes[i].op
                            && nodes[i].args.len() - 1 + nodes[j].args.len() <= MAX_FUSED_OPERANDS)
                            .then_some(j)
                    }
                    Arg::Cell(_) => None,
                };
                if let Some(j) = absorb {
                    let inner = nodes[j].args.clone();
                    nodes[j].live = false;
                    let folded = nodes[j].folded;
                    nodes[i].args.splice(k..k + 1, inner);
                    nodes[i].folded += folded;
                    changed = true;
                } else {
                    k += 1;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Root inversion folding. The root is always the last node.
    let root = nodes.len() - 1;
    if nodes[root].op != Opcode::Not {
        return;
    }
    let inner = match nodes[root].args[0] {
        Arg::Node(j) => j as usize,
        Arg::Cell(_) => return, // plain inverter of a cell
    };
    let (new_op, new_args, absorbed): (Opcode, Vec<Arg>, Vec<usize>) = match nodes[inner].op {
        Opcode::Or if nodes[inner].args.len() == 2 => {
            let (a0, a1) = (nodes[inner].args[0], nodes[inner].args[1]);
            match (
                binary_child(nodes, a0, Opcode::And),
                binary_child(nodes, a1, Opcode::And),
            ) {
                (Some(x), Some(y)) => (
                    Opcode::Aoi22,
                    vec![
                        nodes[x].args[0],
                        nodes[x].args[1],
                        nodes[y].args[0],
                        nodes[y].args[1],
                    ],
                    vec![inner, x, y],
                ),
                (Some(x), None) => (
                    Opcode::Aoi21,
                    vec![nodes[x].args[0], nodes[x].args[1], a1],
                    vec![inner, x],
                ),
                (None, Some(y)) => (
                    // OR commutes: !(c | (a & b)) == AOI21(a, b, c).
                    Opcode::Aoi21,
                    vec![nodes[y].args[0], nodes[y].args[1], a0],
                    vec![inner, y],
                ),
                (None, None) => (Opcode::Nor, nodes[inner].args.clone(), vec![inner]),
            }
        }
        Opcode::And if nodes[inner].args.len() == 2 => {
            let (a0, a1) = (nodes[inner].args[0], nodes[inner].args[1]);
            match (
                binary_child(nodes, a0, Opcode::Or),
                binary_child(nodes, a1, Opcode::Or),
            ) {
                (Some(x), Some(y)) => (
                    Opcode::Oai22,
                    vec![
                        nodes[x].args[0],
                        nodes[x].args[1],
                        nodes[y].args[0],
                        nodes[y].args[1],
                    ],
                    vec![inner, x, y],
                ),
                (Some(x), None) => (
                    Opcode::Oai21,
                    vec![nodes[x].args[0], nodes[x].args[1], a1],
                    vec![inner, x],
                ),
                (None, Some(y)) => (
                    Opcode::Oai21,
                    vec![nodes[y].args[0], nodes[y].args[1], a0],
                    vec![inner, y],
                ),
                (None, None) => (Opcode::Nand, nodes[inner].args.clone(), vec![inner]),
            }
        }
        Opcode::And => (Opcode::Nand, nodes[inner].args.clone(), vec![inner]),
        Opcode::Or => (Opcode::Nor, nodes[inner].args.clone(), vec![inner]),
        Opcode::Xor => (Opcode::Xnor, nodes[inner].args.clone(), vec![inner]),
        _ => return,
    };
    let mut folded = nodes[root].folded;
    for &j in &absorbed {
        folded += nodes[j].folded;
        nodes[j].live = false;
    }
    nodes[root].op = new_op;
    nodes[root].args = new_args;
    nodes[root].folded = folded;
}

impl Program {
    /// Lowers a compiled circuit through the full pipeline (expansion →
    /// fusion → scratch allocation → emission). Deterministic: same
    /// circuit, same program.
    pub fn lower(compiled: &CompiledCircuit) -> Program {
        let n_cells = compiled.cell_count() as u32;
        let mut code: Vec<u32> = Vec::new();
        let mut batches: Vec<Batch> = Vec::new();
        let mut cell_chain = vec![(u32::MAX, 0u32); n_cells as usize];
        let mut n_scratch = 0u32;
        let mut inst_count = 0u32;
        let mut micro_ops = 0u64;

        // Scratch free list; slots are chain-local (a temp never outlives
        // its cell's chain), so the same low-numbered words serve every
        // cell on every level.
        let mut free: Vec<u32> = Vec::new();
        let mut slot_of: Vec<u32> = Vec::new();

        let mut lowered: Vec<(u8, u32, Vec<Node>)> = Vec::new();
        for level in 1..=compiled.levels() {
            // Lower every cell on the level, then schedule the chains in
            // opcode order (ties by cell id — deterministic). Chains on one
            // level are independent, so the order is free; grouping same
            // opcodes gives the executor's dispatch branch long predictable
            // runs instead of data-dependent hopping.
            lowered.clear();
            for &id in compiled.level_cells(level) {
                let mut nodes = expand(compiled.kind(id), compiled.fanin(id));
                micro_ops += nodes.len() as u64;
                fuse(&mut nodes);
                let root_op = nodes[nodes.len() - 1].op as u8;
                lowered.push((root_op, id, nodes));
            }
            lowered.sort_by_key(|&(op, id, _)| (op, id));

            let mut batch_start = code.len() as u32;
            let mut batch_insts = 0u32;
            for (_, id, nodes) in &lowered {
                let (id, nodes) = (*id, nodes);
                let kind = compiled.kind(id);

                // Stages 3+4: allocate scratch for surviving temps and emit.
                let chain_start = code.len() as u32;
                free.clear();
                let mut next_local = 0u32;
                slot_of.clear();
                slot_of.resize(nodes.len(), u32::MAX);
                let root = nodes.len() - 1;
                for i in 0..nodes.len() {
                    if !nodes[i].live {
                        continue;
                    }
                    debug_assert!(nodes[i].args.len() <= MAX_FUSED_OPERANDS);
                    let mut header = (nodes[i].op as u32) << OP_SHIFT
                        | (nodes[i].args.len() as u32) << NOPS_SHIFT
                        | nodes[i].folded.min(255) << FOLD_SHIFT;
                    if i == root && kind.is_hold_element() {
                        header |= HOLD_BIT;
                    }
                    // Operand slots, freeing each temp at its single use so
                    // the dst (written after all reads) can reuse it.
                    let mut operand_slots = [0u32; MAX_FUSED_OPERANDS];
                    for (k, &arg) in nodes[i].args.iter().enumerate() {
                        operand_slots[k] = match arg {
                            Arg::Cell(cid) => cid,
                            Arg::Node(j) => {
                                let s = slot_of[j as usize];
                                debug_assert_ne!(s, u32::MAX, "temp used before def");
                                free.push(s);
                                n_cells + s
                            }
                        };
                    }
                    let dst = if i == root {
                        id
                    } else {
                        let s = match free.pop() {
                            Some(s) => s,
                            None => {
                                next_local += 1;
                                next_local - 1
                            }
                        };
                        slot_of[i] = s;
                        n_cells + s
                    };
                    code.push(header);
                    code.push(dst);
                    code.extend_from_slice(&operand_slots);
                    inst_count += 1;
                    batch_insts += 1;
                    if batch_insts == BATCH_INSTS {
                        batches.push(Batch {
                            start: batch_start,
                            end: code.len() as u32,
                            level: level as u32,
                        });
                        batch_start = code.len() as u32;
                        batch_insts = 0;
                    }
                }
                n_scratch = n_scratch.max(next_local);
                cell_chain[id as usize] = (chain_start, code.len() as u32 - chain_start);
            }
            if batch_insts > 0 {
                batches.push(Batch {
                    start: batch_start,
                    end: code.len() as u32,
                    level: level as u32,
                });
            }
        }

        let program = Program {
            n_cells,
            n_scratch,
            code,
            batches,
            cell_chain,
            inst_count,
            micro_ops,
        };
        if flh_obs::enabled() {
            // Lowering work is a pure function of the circuit — deterministic
            // at any pool width. One gated flush per lowering.
            flh_obs::add(flh_obs::Counter::CodegenFusedOps, program.fused_micro_ops());
        }
        program
    }

    /// [`Program::lower`] behind an [`Arc`] for the shared-cache paths.
    pub fn lower_shared(compiled: &CompiledCircuit) -> Arc<Program> {
        Arc::new(Program::lower(compiled))
    }

    /// Number of cell value slots (the compiled circuit's cell count).
    pub fn cell_words(&self) -> usize {
        self.n_cells as usize
    }

    /// Scratch words an executor must provide (the register file; a
    /// handful of words regardless of circuit size).
    pub fn scratch_words(&self) -> usize {
        self.n_scratch as usize
    }

    /// Fused instructions in the program.
    pub fn inst_count(&self) -> usize {
        self.inst_count as usize
    }

    /// Total `u32` words in the code stream.
    pub fn code_words(&self) -> usize {
        self.code.len()
    }

    /// Micro-ops before fusion.
    pub fn micro_ops(&self) -> u64 {
        self.micro_ops
    }

    /// Micro-ops eliminated by fusion (`micro_ops - inst_count`).
    pub fn fused_micro_ops(&self) -> u64 {
        self.micro_ops - self.inst_count as u64
    }

    /// Per-level instruction batches, in execution order.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// Decode and evaluate one fixed-width instruction (an
    /// [`INST_WORDS`]-word slice). Returns `(value, dst slot, header)`.
    /// The operand indices below are all constants, so the slice bounds
    /// checks vanish once the caller hands in `chunks_exact` windows.
    #[inline(always)]
    fn eval_inst<W: LaneWord>(&self, inst: &[u32], values: &[W], scratch: &[W]) -> (W, usize, u32) {
        let header = inst[0];
        let op = Opcode::from_raw((header >> OP_SHIFT) as u8);
        let nops = ((header >> NOPS_SHIFT) & 0xf) as usize;
        let dst = inst[1] as usize;
        let n_cells = self.n_cells as usize;
        let ld = |k: usize| {
            let slot = inst[2 + k] as usize;
            if slot < n_cells {
                values[slot]
            } else {
                scratch[slot - n_cells]
            }
        };
        let v = match op {
            Opcode::Const0 => W::bot(),
            Opcode::Const1 => W::top(),
            Opcode::Copy => ld(0),
            Opcode::Not => ld(0).not(),
            Opcode::And | Opcode::Nand => {
                let mut acc = ld(0).and(ld(1));
                if nops > 2 {
                    acc = acc.and(ld(2));
                }
                if nops > 3 {
                    acc = acc.and(ld(3));
                }
                if op == Opcode::Nand {
                    acc.not()
                } else {
                    acc
                }
            }
            Opcode::Or | Opcode::Nor => {
                let mut acc = ld(0).or(ld(1));
                if nops > 2 {
                    acc = acc.or(ld(2));
                }
                if nops > 3 {
                    acc = acc.or(ld(3));
                }
                if op == Opcode::Nor {
                    acc.not()
                } else {
                    acc
                }
            }
            Opcode::Xor | Opcode::Xnor => {
                let mut acc = ld(0).xor(ld(1));
                if nops > 2 {
                    acc = acc.xor(ld(2));
                }
                if nops > 3 {
                    acc = acc.xor(ld(3));
                }
                if op == Opcode::Xnor {
                    acc.not()
                } else {
                    acc
                }
            }
            Opcode::Aoi21 => ld(0).and(ld(1)).or(ld(2)).not(),
            Opcode::Aoi22 => ld(0).and(ld(1)).or(ld(2).and(ld(3))).not(),
            Opcode::Oai21 => ld(0).or(ld(1)).and(ld(2)).not(),
            Opcode::Oai22 => ld(0).or(ld(1)).and(ld(2).or(ld(3))).not(),
            Opcode::Mux => W::mux(ld(0), ld(1), ld(2)),
        };
        (v, dst, header)
    }

    /// Executes the whole program unconditionally: every evaluable cell is
    /// recomputed from the current source values. Returns the number of
    /// instructions executed.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.cell_words()` or `scratch` is
    /// shorter than [`Program::scratch_words`].
    pub fn execute<W: LaneWord>(&self, values: &mut [W], scratch: &mut [W]) -> u64 {
        assert_eq!(values.len(), self.n_cells as usize);
        assert!(scratch.len() >= self.n_scratch as usize);
        let n_cells = self.n_cells as usize;
        let mut executed = 0u64;
        for b in &self.batches {
            let window = &self.code[b.start as usize..b.end as usize];
            for inst in window.chunks_exact(INST_WORDS) {
                let (v, dst, _header) = self.eval_inst(inst, values, scratch);
                if dst < n_cells {
                    values[dst] = v;
                } else {
                    scratch[dst - n_cells] = v;
                }
                executed += 1;
            }
        }
        executed
    }

    /// [`Program::execute`] with freeze semantics: a cell store is skipped
    /// (its old value is kept) when `hold` is engaged and the instruction
    /// targets a hold element, or when `frozen` marks the destination cell.
    /// Scratch stores always happen. Returns the number of cell values
    /// actually written.
    pub fn execute_masked<W: LaneWord>(
        &self,
        values: &mut [W],
        scratch: &mut [W],
        hold: bool,
        frozen: Option<&[bool]>,
    ) -> u64 {
        assert_eq!(values.len(), self.n_cells as usize);
        assert!(scratch.len() >= self.n_scratch as usize);
        if let Some(f) = frozen {
            assert_eq!(f.len(), self.n_cells as usize);
        }
        let n_cells = self.n_cells as usize;
        let mut written = 0u64;
        for b in &self.batches {
            let window = &self.code[b.start as usize..b.end as usize];
            for inst in window.chunks_exact(INST_WORDS) {
                let (v, dst, header) = self.eval_inst(inst, values, scratch);
                if dst < n_cells {
                    let skip = (hold && header & HOLD_BIT != 0) || frozen.is_some_and(|f| f[dst]);
                    if !skip {
                        values[dst] = v;
                        written += 1;
                    }
                } else {
                    scratch[dst - n_cells] = v;
                }
            }
        }
        written
    }

    /// [`Program::execute`] with a commit hook on every cell store: the
    /// hook sees `(cell, old, new, holdable)` and returns the value to
    /// store (return `old` to freeze). The scalar simulator uses this for
    /// hold/sleep skipping and toggle accounting. Returns instructions
    /// executed.
    pub fn execute_with<W, F>(&self, values: &mut [W], scratch: &mut [W], mut commit: F) -> u64
    where
        W: LaneWord,
        F: FnMut(u32, W, W, bool) -> W,
    {
        assert_eq!(values.len(), self.n_cells as usize);
        assert!(scratch.len() >= self.n_scratch as usize);
        let n_cells = self.n_cells as usize;
        let mut executed = 0u64;
        for b in &self.batches {
            let window = &self.code[b.start as usize..b.end as usize];
            for inst in window.chunks_exact(INST_WORDS) {
                let (v, dst, header) = self.eval_inst(inst, values, scratch);
                if dst < n_cells {
                    let old = values[dst];
                    values[dst] = commit(dst as u32, old, v, header & HOLD_BIT != 0);
                } else {
                    scratch[dst - n_cells] = v;
                }
                executed += 1;
            }
        }
        executed
    }

    /// Evaluates a single cell's instruction chain against the current
    /// `values`, returning the would-be new value *without* storing it —
    /// the event-driven replay kernel's inner op. `scratch` must hold at
    /// least [`Program::scratch_words`] words and is clobbered.
    ///
    /// Sources (inputs, flip-flops) have no chain and return their stored
    /// value unchanged.
    #[inline]
    pub fn eval_cell<W: LaneWord>(&self, cell: u32, values: &[W], scratch: &mut [W]) -> W {
        let (start, len) = self.cell_chain[cell as usize];
        if start == u32::MAX {
            return values[cell as usize];
        }
        let n_cells = self.n_cells as usize;
        let chain = &self.code[start as usize..(start + len) as usize];
        for inst in chain.chunks_exact(INST_WORDS) {
            let (v, dst, _header) = self.eval_inst(inst, values, scratch);
            if dst == cell as usize {
                return v;
            }
            scratch[dst - n_cells] = v;
        }
        unreachable!("chain must end with the cell store")
    }

    /// Number of instructions in one cell's chain (0 for sources).
    pub fn chain_len(&self, cell: u32) -> usize {
        let (start, len) = self.cell_chain[cell as usize];
        if start == u32::MAX {
            return 0;
        }
        len as usize / INST_WORDS
    }

    /// Per-opcode instruction counts over the whole program, in opcode
    /// order with zero-count opcodes omitted — the fusion fingerprint
    /// `flh disasm` prints so a lowering regression (e.g. complex gates
    /// decaying back into `Not` + `And` pairs) is visible without a bench
    /// run.
    pub fn opcode_histogram(&self) -> Vec<(Opcode, u64)> {
        let mut counts = [0u64; 16];
        for b in &self.batches {
            for inst in self.code[b.start as usize..b.end as usize].chunks_exact(INST_WORDS) {
                counts[(inst[0] >> OP_SHIFT) as u8 as usize & 0xf] += 1;
            }
        }
        (0..16u8)
            .filter(|&raw| counts[raw as usize] > 0)
            .map(|raw| (Opcode::from_raw(raw), counts[raw as usize]))
            .collect()
    }

    /// Per-level batch occupancy: `(level, batches, instructions)` for
    /// every level that emits instructions, in level order. Full batches
    /// carry [`BATCH_INSTS`] instructions; the instruction count exposes
    /// how full each level's final partial batch is (scheduling-order
    /// regressions show up as many nearly-empty batches).
    pub fn level_occupancy(&self) -> Vec<(u32, u32, u32)> {
        let mut rows: Vec<(u32, u32, u32)> = Vec::new();
        for b in &self.batches {
            let insts = (b.end - b.start) / INST_WORDS as u32;
            match rows.last_mut() {
                Some(row) if row.0 == b.level => {
                    row.1 += 1;
                    row.2 += insts;
                }
                _ => rows.push((b.level, 1, insts)),
            }
        }
        rows
    }

    /// Renders the program as assembly text: one instruction per line with
    /// opcode, destination, operand slots and fusion provenance, under
    /// per-level batch headers. `label` names cell slots (scratch slots
    /// print as `r0`, `r1`, …).
    pub fn disasm_with<F: Fn(u32) -> String>(&self, label: F) -> String {
        let mut out = String::new();
        let slot_name = |slot: u32| -> String {
            if slot < self.n_cells {
                label(slot)
            } else {
                format!("r{}", slot - self.n_cells)
            }
        };
        let _ = writeln!(
            out,
            "; {} insts, {} micro-ops fused away, {} scratch words, {} batches",
            self.inst_count,
            self.fused_micro_ops(),
            self.n_scratch,
            self.batches.len()
        );
        for (bi, b) in self.batches.iter().enumerate() {
            let _ = writeln!(out, "; batch {bi} (level {})", b.level);
            for inst in self.code[b.start as usize..b.end as usize].chunks_exact(INST_WORDS) {
                let header = inst[0];
                let op = Opcode::from_raw((header >> OP_SHIFT) as u8);
                let nops = ((header >> NOPS_SHIFT) & 0xf) as usize;
                let folded = (header >> FOLD_SHIFT) & 0xff;
                let dst = inst[1];
                let operands: Vec<String> = (0..nops).map(|k| slot_name(inst[2 + k])).collect();
                let hold = if header & HOLD_BIT != 0 { " hold" } else { "" };
                let provenance = if folded > 1 {
                    format!(" ; fused {folded} micro-ops")
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  {} {} <- {}{}{}",
                    op.mnemonic(),
                    slot_name(dst),
                    operands.join(", "),
                    hold,
                    provenance
                );
            }
        }
        out
    }

    /// Decodes instruction `index` (stream order) without validating it —
    /// corrupted headers come back with `opcode: None` rather than a panic.
    ///
    /// # Panics
    ///
    /// Panics if `index * INST_WORDS` runs past the code stream (possible
    /// on programs truncated through [`Program::corrupt_truncate_words`]).
    pub fn decode_inst(&self, index: usize) -> DecodedInst {
        let w = index * INST_WORDS;
        let inst = &self.code[w..w + INST_WORDS];
        let header = inst[0];
        let opcode_raw = (header >> OP_SHIFT) as u8;
        let mut operands = [0u32; MAX_FUSED_OPERANDS];
        operands.copy_from_slice(&inst[2..2 + MAX_FUSED_OPERANDS]);
        DecodedInst {
            opcode_raw,
            opcode: Opcode::try_from_raw(opcode_raw),
            nops: ((header >> NOPS_SHIFT) & 0xf) as usize,
            dst: inst[1],
            operands,
            hold: header & HOLD_BIT != 0,
            folded: (header >> FOLD_SHIFT) & 0xff,
        }
    }

    /// The raw code stream (the sibling verifier re-walks it word by word).
    pub(crate) fn raw_code(&self) -> &[u32] {
        &self.code
    }

    /// Raw `(first code word, word count)` chain entry of a cell —
    /// `(u32::MAX, 0)` for sources.
    pub(crate) fn chain_raw(&self, cell: u32) -> (u32, u32) {
        self.cell_chain[cell as usize]
    }

    // --- Corruption hooks -------------------------------------------------
    //
    // Like `Netlist::corrupt_*`, the mutators below bypass every emission
    // invariant on purpose: the bytecode-verifier tests use them to break
    // one specific property of a lowered program — an illegal opcode byte,
    // a read-before-write scratch operand, a mis-levelled batch — and
    // assert that exactly the matching diagnostic fires. Production code
    // must never call them.

    /// Overwrites the opcode byte of instruction `index` (stream order).
    pub fn corrupt_opcode(&mut self, index: usize, raw: u8) {
        let w = index * INST_WORDS;
        self.code[w] = (self.code[w] & !0xff) | ((raw as u32) << OP_SHIFT);
    }

    /// Overwrites the operand count of instruction `index` with **no arity
    /// check** against its opcode.
    pub fn corrupt_nops(&mut self, index: usize, nops: u32) {
        let w = index * INST_WORDS;
        self.code[w] = (self.code[w] & !(0xf << NOPS_SHIFT)) | ((nops & 0xf) << NOPS_SHIFT);
    }

    /// Repoints operand `pin` of instruction `index` at an arbitrary slot —
    /// out-of-range slots, later-level cells and unwritten scratch words
    /// are all representable.
    pub fn corrupt_operand(&mut self, index: usize, pin: usize, slot: u32) {
        debug_assert!(pin < MAX_FUSED_OPERANDS);
        self.code[index * INST_WORDS + 2 + pin] = slot;
    }

    /// Repoints the destination of instruction `index` at an arbitrary
    /// slot with **no range or level check**.
    pub fn corrupt_dst(&mut self, index: usize, slot: u32) {
        self.code[index * INST_WORDS + 1] = slot;
    }

    /// Flips the hold-element bit of instruction `index`, desynchronizing
    /// it from the destination cell's kind.
    pub fn corrupt_toggle_hold(&mut self, index: usize) {
        self.code[index * INST_WORDS] ^= HOLD_BIT;
    }

    /// Drops the last `words` code words without touching the batch table,
    /// leaving batches that reference past the end of the stream.
    pub fn corrupt_truncate_words(&mut self, words: usize) {
        let keep = self.code.len().saturating_sub(words);
        self.code.truncate(keep);
    }

    /// Overwrites the level of batch `index`, breaking the level-major
    /// schedule contract.
    pub fn corrupt_batch_level(&mut self, index: usize, level: u32) {
        self.batches[index].level = level;
    }

    /// Overwrites a cell's chain table entry with **no consistency check**
    /// against the code stream.
    pub fn corrupt_chain(&mut self, cell: u32, start: u32, words: u32) {
        self.cell_chain[cell as usize] = (start, words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Netlist;
    use crate::CellId;

    /// A netlist exercising every library kind plus wide generics.
    fn library_netlist() -> Netlist {
        use CellKind::*;
        let mut n = Netlist::new("lib");
        let pins: Vec<CellId> = (0..8).map(|i| n.add_input(format!("i{i}"))).collect();
        let p = |i: usize| pins[i % pins.len()];
        let kinds = [
            Const0,
            Const1,
            Buf,
            Inv,
            And2,
            And3,
            And4,
            Nand2,
            Nand3,
            Nand4,
            Or2,
            Or3,
            Or4,
            Nor2,
            Nor3,
            Nor4,
            Xor2,
            Xnor2,
            Aoi21,
            Aoi22,
            Oai21,
            Oai22,
            Mux2,
            AndN(7),
            NandN(7),
            OrN(6),
            NorN(6),
            XorN(5),
        ];
        let mut outs = Vec::new();
        for (gi, &kind) in kinds.iter().enumerate() {
            let fanin: Vec<CellId> = (0..kind.arity()).map(|k| p(gi + k)).collect();
            outs.push(n.add_cell(format!("g{gi}"), kind, fanin));
        }
        for (gi, &g) in outs.iter().enumerate() {
            n.add_output(format!("y{gi}"), g);
        }
        n
    }

    #[test]
    fn every_library_cell_fuses_to_one_instruction() {
        use CellKind::*;
        let n = library_netlist();
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        for &id in c.order() {
            let kind = c.kind(id);
            let expect = match kind {
                AndN(7) | NandN(7) => 2, // And4 + And4/Nand4 over scratch
                OrN(6) | NorN(6) => 2,
                XorN(5) => 2,
                _ => 1,
            };
            assert_eq!(
                p.chain_len(id),
                expect,
                "{kind:?} should lower to {expect} inst(s)"
            );
        }
        // Fusion provenance adds back up to the micro-op total.
        assert_eq!(p.micro_ops(), p.inst_count() as u64 + p.fused_micro_ops());
    }

    #[test]
    fn fused_opcodes_match_the_library_cells() {
        let mut n = Netlist::new("ops");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c_in = n.add_input("c");
        let d = n.add_input("d");
        let cases = [
            (CellKind::Nand3, vec![a, b, c_in], Opcode::Nand),
            (CellKind::Aoi21, vec![a, b, c_in], Opcode::Aoi21),
            (CellKind::Aoi22, vec![a, b, c_in, d], Opcode::Aoi22),
            (CellKind::Oai21, vec![a, b, c_in], Opcode::Oai21),
            (CellKind::Oai22, vec![a, b, c_in, d], Opcode::Oai22),
            (CellKind::Xnor2, vec![a, b], Opcode::Xnor),
            (CellKind::Mux2, vec![a, b, c_in], Opcode::Mux),
            (CellKind::Nor4, vec![a, b, c_in, d], Opcode::Nor),
        ];
        let mut gates = Vec::new();
        for (gi, (kind, fanin, _)) in cases.iter().enumerate() {
            gates.push(n.add_cell(format!("g{gi}"), *kind, fanin.clone()));
        }
        for (gi, &g) in gates.iter().enumerate() {
            n.add_output(format!("y{gi}"), g);
        }
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        for ((kind, _, want_op), &g) in cases.iter().zip(&gates) {
            let id = c.id_of(g);
            let (start, _) = p.cell_chain[id as usize];
            let got = Opcode::from_raw((p.code[start as usize] >> OP_SHIFT) as u8);
            assert_eq!(got, *want_op, "{kind:?}");
            assert_eq!(p.chain_len(id), 1, "{kind:?}");
        }
    }

    #[test]
    fn scratch_registers_are_reused_across_cells_and_levels() {
        // Many wide generics, each needing one spill temp: the free list
        // must hand the same scratch word to every chain instead of
        // growing the register file.
        let mut n = Netlist::new("scratch");
        let pins: Vec<CellId> = (0..8).map(|i| n.add_input(format!("i{i}"))).collect();
        let mut prev = pins.clone();
        for lvl in 0..4 {
            let g = n.add_cell(
                format!("w{lvl}"),
                CellKind::AndN(8),
                prev.iter().copied().take(8).collect(),
            );
            prev.rotate_left(1);
            prev[0] = g;
            n.add_output(format!("y{lvl}"), g);
        }
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        assert!(
            p.inst_count() > p.scratch_words(),
            "multiple chains must share scratch"
        );
        assert_eq!(p.scratch_words(), 1, "AndN(8) needs exactly one temp");
    }

    #[test]
    fn execute_matches_eval_dual_on_random_circuits() {
        use crate::generate::{generate_circuit, GeneratorConfig};
        for seed in [2u64, 19] {
            let n = generate_circuit(&GeneratorConfig {
                name: format!("bc{seed}"),
                primary_inputs: 7,
                primary_outputs: 6,
                flip_flops: 8,
                gates: 120,
                logic_depth: 9,
                avg_ff_fanout: 2.2,
                unique_flg_ratio: 1.6,
                hot_ff_fanout: None,
                seed,
            })
            .unwrap();
            let c = CompiledCircuit::compile(&n).unwrap();
            let p = Program::lower(&c);

            // Pseudo-random dual-rail stimulus with X lanes on all sources.
            let mut values = vec![Dual64::all_x(); c.cell_count()];
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for &src in c.inputs().iter().chain(c.flip_flops()) {
                let one = next();
                let zero = next() & !one;
                values[src as usize] = Dual64 { one, zero };
            }

            // Reference: direct per-cell eval_dual over the level order.
            let mut want = values.clone();
            let mut fanin_buf = Vec::new();
            for &id in c.order() {
                fanin_buf.clear();
                fanin_buf.extend(c.fanin(id).iter().map(|&f| want[f as usize]));
                want[id as usize] = c.kind(id).eval_dual(&fanin_buf);
            }

            let mut scratch = vec![Dual64::all_x(); p.scratch_words()];
            let executed = p.execute(&mut values, &mut scratch);
            assert_eq!(executed, p.inst_count() as u64);
            assert_eq!(values, want, "seed {seed}");

            // eval_cell agrees with the stored chain result for every cell.
            for &id in c.order() {
                let v = p.eval_cell(id, &values, &mut scratch);
                assert_eq!(v, values[id as usize], "cell {id}");
            }
        }
    }

    #[test]
    fn masked_execute_freezes_cells_and_hold_elements() {
        let mut n = Netlist::new("mask");
        let a = n.add_input("a");
        let h = n.add_cell("h", CellKind::HoldLatch, vec![a]);
        let g1 = n.add_cell("g1", CellKind::Inv, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Xor2, vec![h, g1]);
        n.add_output("y", g2);
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        let mut values = vec![Dual64::all_x(); c.cell_count()];
        let mut scratch = vec![Dual64::all_x(); p.scratch_words().max(1)];
        values[c.id_of(a) as usize] = Dual64::from_word(0b1100);
        p.execute(&mut values, &mut scratch);
        let held = values[c.id_of(h) as usize];

        // Engage hold, flip the input: the latch keeps its word, the
        // inverter follows, and the xor sees the mix.
        values[c.id_of(a) as usize] = Dual64::from_word(0b1010);
        p.execute_masked(&mut values, &mut scratch, true, None);
        assert_eq!(values[c.id_of(h) as usize], held, "hold latch frozen");
        assert_eq!(values[c.id_of(g1) as usize].one, !0b1010);

        // A frozen mask pins an ordinary gate the same way.
        let mut frozen = vec![false; c.cell_count()];
        frozen[c.id_of(g1) as usize] = true;
        values[c.id_of(a) as usize] = Dual64::from_word(0b0110);
        p.execute_masked(&mut values, &mut scratch, false, Some(&frozen));
        assert_eq!(values[c.id_of(g1) as usize].one, !0b1010, "frozen gate");
        assert_eq!(values[c.id_of(h) as usize].one, 0b0110, "hold released");
    }

    #[test]
    fn lane_words_agree_across_widths() {
        // The same two-valued stimulus through u64, Dual8, Dual64 and
        // Dual256 lanes must produce the same per-lane answers.
        let n = library_netlist();
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        let mut state = 0xDEAD_BEEFu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut v64 = vec![0u64; c.cell_count()];
        let mut vd8 = vec![Dual8::all_x(); c.cell_count()];
        let mut vd64 = vec![Dual64::all_x(); c.cell_count()];
        let mut vd256 = vec![Dual256::all_x(); c.cell_count()];
        for &src in c.inputs().iter().chain(c.flip_flops()) {
            let w = next();
            v64[src as usize] = w;
            let bit0 = w & 1 != 0;
            vd8[src as usize] = if bit0 { Dual8::top() } else { Dual8::bot() };
            vd64[src as usize] = Dual64::from_word(w);
            vd256[src as usize] = Dual256 {
                one: [w; 4],
                zero: [!w; 4],
            };
        }
        let mut s64 = vec![0u64; p.scratch_words()];
        let mut sd8 = vec![Dual8::all_x(); p.scratch_words()];
        let mut sd64 = vec![Dual64::all_x(); p.scratch_words()];
        let mut sd256 = vec![Dual256::all_x(); p.scratch_words()];
        p.execute(&mut v64, &mut s64);
        p.execute(&mut vd8, &mut sd8);
        p.execute(&mut vd64, &mut sd64);
        p.execute(&mut vd256, &mut sd256);
        for &id in c.order() {
            let id = id as usize;
            let w = v64[id];
            assert_eq!(vd64[id], Dual64::from_word(w), "cell {id} dual64");
            assert_eq!(
                vd8[id],
                if w & 1 != 0 {
                    Dual8::top()
                } else {
                    Dual8::bot()
                },
                "cell {id} dual8"
            );
            assert_eq!(vd256[id].one, [w; 4], "cell {id} dual256 one");
            assert_eq!(vd256[id].zero, [!w; 4], "cell {id} dual256 zero");
        }
    }

    #[test]
    fn batches_stay_within_level_boundaries() {
        let n = library_netlist();
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        let mut covered = 0u32;
        let mut last_level = 0u32;
        for b in p.batches() {
            assert!(b.start == covered, "batches must tile the code stream");
            assert!(b.end > b.start);
            assert!(b.level >= last_level, "level-major order");
            let words = (b.end - b.start) as usize;
            assert_eq!(words % INST_WORDS, 0, "fixed-stride instruction stream");
            assert!((words / INST_WORDS) as u32 <= BATCH_INSTS);
            covered = b.end;
            last_level = b.level;
        }
        assert_eq!(covered as usize, p.code_words());
    }

    #[test]
    fn packed256_pattern_word_semantics() {
        assert_eq!(<u64 as PatternWord>::LANES, 64);
        assert_eq!(Packed256::LANES, 256);
        assert_eq!(<u64 as PatternWord>::mask_lanes(64), !0u64);
        assert_eq!(<u64 as PatternWord>::mask_lanes(3), 0b111);
        assert_eq!(Packed256::mask_lanes(256), Packed256::top());
        assert_eq!(Packed256::mask_lanes(0), Packed256::bot());
        assert_eq!(Packed256::mask_lanes(64), Packed256::from_word(!0));
        assert_eq!(
            Packed256::mask_lanes(130),
            Packed256::from_limbs([!0, !0, 0b11, 0])
        );
        assert_eq!(Packed256::lane_bit(0), Packed256::from_word(1));
        assert_eq!(
            Packed256::lane_bit(200),
            Packed256::from_limbs([0, 0, 0, 1 << 8])
        );
        let w = Packed256::from_limbs([0b101, 0, 1 << 63, 7]);
        assert!(w.any());
        assert!(!Packed256::bot().any());
        assert_eq!(PatternWord::count_ones(w), 6);
        assert_eq!(w.limb(2), 1 << 63);
        // Default is the zero word, matching u64 (the undo/scratch filler).
        assert_eq!(Packed256::default(), Packed256::bot());
    }

    #[test]
    fn packed256_executes_like_four_u64_words() {
        // One 256-lane execution must equal four independent 64-lane
        // executions, limb by limb — the invariant the superword fault
        // simulators rest on.
        let n = library_netlist();
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        let mut state = 0x5EED_CAFEu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut lanes64: [Vec<u64>; 4] = std::array::from_fn(|_| vec![0u64; c.cell_count()]);
        let mut v256 = vec![Packed256::bot(); c.cell_count()];
        for &src in c.inputs().iter().chain(c.flip_flops()) {
            let limbs = [next(), next(), next(), next()];
            for (l, v) in lanes64.iter_mut().enumerate() {
                v[src as usize] = limbs[l];
            }
            v256[src as usize] = Packed256::from_limbs(limbs);
        }
        let mut s64 = vec![0u64; p.scratch_words()];
        let mut s256 = vec![Packed256::bot(); p.scratch_words()];
        for v in &mut lanes64 {
            p.execute(v, &mut s64);
        }
        p.execute(&mut v256, &mut s256);
        for &id in c.order() {
            let id = id as usize;
            for l in 0..4 {
                assert_eq!(v256[id].limb(l), lanes64[l][id], "cell {id} limb {l}");
            }
        }
        // eval_cell agrees at superword width too.
        for &id in c.order() {
            assert_eq!(p.eval_cell(id, &v256, &mut s256), v256[id as usize]);
        }
    }

    #[test]
    fn opcode_histogram_and_occupancy_tile_the_program() {
        let n = library_netlist();
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        let hist = p.opcode_histogram();
        assert_eq!(
            hist.iter().map(|&(_, n)| n).sum::<u64>(),
            p.inst_count() as u64
        );
        assert!(hist.iter().any(|&(op, _)| op == Opcode::Aoi21));
        assert!(hist.windows(2).all(|w| (w[0].0 as u8) < (w[1].0 as u8)));
        let occ = p.level_occupancy();
        assert_eq!(
            occ.iter().map(|&(_, _, i)| i as usize).sum::<usize>(),
            p.inst_count()
        );
        assert_eq!(
            occ.iter().map(|&(_, b, _)| b as usize).sum::<usize>(),
            p.batches().len()
        );
        assert!(occ.windows(2).all(|w| w[0].0 < w[1].0), "level order");
        for &(_, batches, insts) in &occ {
            assert!(insts <= batches * BATCH_INSTS);
            assert!(insts > (batches - 1) * BATCH_INSTS, "no empty batches");
        }
    }

    #[test]
    fn disasm_names_cells_and_provenance() {
        let mut n = Netlist::new("dis");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c_in = n.add_input("c");
        let g = n.add_cell("g", CellKind::Aoi21, vec![a, b, c_in]);
        n.add_output("y", g);
        let c = CompiledCircuit::compile(&n).unwrap();
        let p = Program::lower(&c);
        let text = p.disasm_with(|slot| n.cell(c.cell_id(slot)).name().to_string());
        assert!(text.contains("aoi21"), "{text}");
        assert!(text.contains("fused 3 micro-ops"), "{text}");
        assert!(text.contains("a, b, c"), "{text}");
    }
}
