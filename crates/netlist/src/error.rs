//! Error type for netlist construction, parsing and validation.

use std::error::Error;
use std::fmt;

use crate::cell::CellId;

/// Errors produced while building, parsing or validating a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell was created with a fanin count that does not match its kind.
    ArityMismatch {
        /// Offending cell.
        cell: CellId,
        /// Expected fanin count for the kind.
        expected: usize,
        /// Fanin count actually supplied.
        found: usize,
    },
    /// A fanin reference points outside the netlist.
    DanglingFanin {
        /// Cell holding the bad reference.
        cell: CellId,
        /// The out-of-range reference.
        fanin: CellId,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle {
        /// A cell on the cycle.
        cell: CellId,
    },
    /// Two cells carry the same name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A `.bench` line could not be parsed.
    BenchSyntax {
        /// 1-based source line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A `.bench` signal was used but never defined.
    UndefinedSignal {
        /// The undefined signal name.
        name: String,
    },
    /// A generic wide gate survived where only library cells are allowed.
    UnmappedGeneric {
        /// Offending cell.
        cell: CellId,
    },
    /// An `Output` cell appears in another cell's fanin.
    OutputHasFanout {
        /// Offending output cell.
        cell: CellId,
    },
    /// A requested name or id does not exist.
    NotFound {
        /// What was looked up.
        what: String,
    },
    /// The generator was asked for an unsatisfiable circuit shape.
    InvalidGeneratorConfig {
        /// Explanation of the inconsistency.
        message: String,
    },
    /// A two-pattern test-set line could not be parsed
    /// (`flh_atpg::patterns_io`).
    PatternSyntax {
        /// 1-based source line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Reading an input file from disk failed.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                cell,
                expected,
                found,
            } => write!(
                f,
                "cell {cell} has {found} fanin pins, its kind expects {expected}"
            ),
            NetlistError::DanglingFanin { cell, fanin } => {
                write!(f, "cell {cell} references nonexistent fanin {fanin}")
            }
            NetlistError::CombinationalCycle { cell } => {
                write!(f, "combinational cycle through cell {cell}")
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "duplicate cell name {name:?}")
            }
            NetlistError::BenchSyntax { line, message } => {
                write!(f, "bench syntax error at line {line}: {message}")
            }
            NetlistError::UndefinedSignal { name } => {
                write!(f, "signal {name:?} is used but never defined")
            }
            NetlistError::UnmappedGeneric { cell } => {
                write!(
                    f,
                    "cell {cell} is a generic wide gate; run the mapper first"
                )
            }
            NetlistError::OutputHasFanout { cell } => {
                write!(f, "primary-output cell {cell} drives other cells")
            }
            NetlistError::NotFound { what } => write!(f, "{what} not found"),
            NetlistError::InvalidGeneratorConfig { message } => {
                write!(f, "invalid generator configuration: {message}")
            }
            NetlistError::PatternSyntax { line, message } => {
                write!(f, "pattern syntax error at line {line}: {message}")
            }
            NetlistError::Io { path, message } => {
                write!(f, "{path}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::ArityMismatch {
            cell: CellId::from_index(7),
            expected: 2,
            found: 3,
        };
        let s = e.to_string();
        assert!(s.contains("c7"));
        assert!(s.contains('2'));
        assert!(s.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
