//! ISCAS89 `.bench` format reader and writer.
//!
//! The classic interchange format used for the ISCAS89 sequential
//! benchmarks:
//!
//! ```text
//! # s27
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = DFF(G13)
//! G14 = NOT(G0)
//! G13 = NAND(G14, G10)
//! G17 = OR(G13, G14)
//! ```
//!
//! Supported functions: `AND`, `OR`, `NAND`, `NOR`, `XOR`, `XNOR`, `NOT`,
//! `BUFF`, `DFF` plus the extensions this workspace writes for mapped and
//! DFT cells (`AOI21/AOI22/OAI21/OAI22`, `MUX`, `SDFF`, `HOLDL`, `HOLDM`,
//! `CONST0`, `CONST1`). Gates of 2–4 inputs parse to library cells; wider
//! gates parse to generic `*N` kinds for the [`crate::mapper`] to reduce.

use std::collections::HashMap;

use crate::cell::{CellId, CellKind};
use crate::error::NetlistError;
use crate::graph::Netlist;
use crate::Result;

/// Suffix appended to a signal name to form its primary-output marker cell,
/// avoiding a collision with the driving gate's cell name.
pub const OUTPUT_SUFFIX: &str = "__po";

#[derive(Debug)]
enum Stmt {
    Input(String),
    Output(String),
    Assign {
        target: String,
        func: String,
        args: Vec<String>,
    },
}

fn parse_line(line_no: usize, raw: &str) -> Result<Option<Stmt>> {
    let line = match raw.find('#') {
        Some(pos) => &raw[..pos],
        None => raw,
    }
    .trim();
    if line.is_empty() {
        return Ok(None);
    }
    let syntax = |message: String| NetlistError::BenchSyntax {
        line: line_no,
        message,
    };

    let paren_list = |s: &str| -> Result<(String, Vec<String>)> {
        let open = s
            .find('(')
            .ok_or_else(|| syntax(format!("expected '(' in {s:?}")))?;
        let close = s
            .rfind(')')
            .ok_or_else(|| syntax(format!("expected ')' in {s:?}")))?;
        if close < open {
            return Err(syntax(format!("mismatched parentheses in {s:?}")));
        }
        let head = s[..open].trim().to_string();
        let args: Vec<String> = s[open + 1..close]
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        Ok((head, args))
    };

    if let Some(eq) = line.find('=') {
        let target = line[..eq].trim();
        if target.is_empty() {
            return Err(syntax("empty assignment target".into()));
        }
        let rhs = line[eq + 1..].trim();
        // Nullary constants may omit parentheses.
        if rhs.eq_ignore_ascii_case("CONST0") || rhs.eq_ignore_ascii_case("CONST1") {
            return Ok(Some(Stmt::Assign {
                target: target.to_string(),
                func: rhs.to_ascii_uppercase(),
                args: Vec::new(),
            }));
        }
        let (func, args) = paren_list(rhs)?;
        if func.is_empty() {
            return Err(syntax("missing function name".into()));
        }
        Ok(Some(Stmt::Assign {
            target: target.to_string(),
            func: func.to_ascii_uppercase(),
            args,
        }))
    } else {
        let (head, mut args) = paren_list(line)?;
        if args.len() != 1 {
            return Err(syntax(format!(
                "{head} declaration takes exactly one signal"
            )));
        }
        let name = args.pop().expect("length checked");
        match head.to_ascii_uppercase().as_str() {
            "INPUT" => Ok(Some(Stmt::Input(name))),
            "OUTPUT" => Ok(Some(Stmt::Output(name))),
            other => Err(syntax(format!("unknown declaration {other:?}"))),
        }
    }
}

fn kind_for(line_no: usize, func: &str, arity: usize) -> Result<CellKind> {
    let syntax = |message: String| NetlistError::BenchSyntax {
        line: line_no,
        message,
    };
    let wide = |n: usize| -> Result<u8> {
        if (2..=16).contains(&n) {
            Ok(n as u8)
        } else {
            Err(syntax(format!("{func} with {n} inputs is unsupported")))
        }
    };
    let expect = |want: usize, kind: CellKind| -> Result<CellKind> {
        if arity == want {
            Ok(kind)
        } else {
            Err(syntax(format!("{func} expects {want} inputs, got {arity}")))
        }
    };
    match func {
        "AND" => Ok(match arity {
            2 => CellKind::And2,
            3 => CellKind::And3,
            4 => CellKind::And4,
            n => CellKind::AndN(wide(n)?),
        }),
        "NAND" => Ok(match arity {
            2 => CellKind::Nand2,
            3 => CellKind::Nand3,
            4 => CellKind::Nand4,
            n => CellKind::NandN(wide(n)?),
        }),
        "OR" => Ok(match arity {
            2 => CellKind::Or2,
            3 => CellKind::Or3,
            4 => CellKind::Or4,
            n => CellKind::OrN(wide(n)?),
        }),
        "NOR" => Ok(match arity {
            2 => CellKind::Nor2,
            3 => CellKind::Nor3,
            4 => CellKind::Nor4,
            n => CellKind::NorN(wide(n)?),
        }),
        "XOR" => Ok(match arity {
            2 => CellKind::Xor2,
            n => CellKind::XorN(wide(n)?),
        }),
        "XNOR" => expect(2, CellKind::Xnor2),
        "NOT" | "INV" => expect(1, CellKind::Inv),
        "BUFF" | "BUF" => expect(1, CellKind::Buf),
        "DFF" => expect(1, CellKind::Dff),
        "SDFF" => expect(1, CellKind::ScanDff),
        "HOLDL" => expect(1, CellKind::HoldLatch),
        "HOLDM" => expect(1, CellKind::HoldMux),
        "MUX" => expect(3, CellKind::Mux2),
        "AOI21" => expect(3, CellKind::Aoi21),
        "AOI22" => expect(4, CellKind::Aoi22),
        "OAI21" => expect(3, CellKind::Oai21),
        "OAI22" => expect(4, CellKind::Oai22),
        "CONST0" => expect(0, CellKind::Const0),
        "CONST1" => expect(0, CellKind::Const1),
        other => Err(syntax(format!("unknown function {other:?}"))),
    }
}

/// Parses `.bench` text into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::BenchSyntax`] for malformed lines,
/// [`NetlistError::UndefinedSignal`] when a signal is referenced but never
/// defined, and [`NetlistError::DuplicateName`] for double definitions.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), flh_netlist::NetlistError> {
/// let n = flh_netlist::bench_io::parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
///     "tiny",
/// )?;
/// assert_eq!(n.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(text: &str, design_name: &str) -> Result<Netlist> {
    let mut stmts = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if let Some(stmt) = parse_line(i + 1, raw)? {
            stmts.push((i + 1, stmt));
        }
    }

    let mut netlist = Netlist::new(design_name);
    let mut signals: HashMap<String, CellId> = HashMap::new();

    // Pass 1: create all signal-defining cells with placeholder fanin.
    for (line, stmt) in &stmts {
        match stmt {
            Stmt::Input(name) => {
                if signals.contains_key(name) {
                    return Err(NetlistError::DuplicateName { name: name.clone() });
                }
                let id = netlist.add_input(name.clone());
                signals.insert(name.clone(), id);
            }
            Stmt::Assign { target, func, args } => {
                if signals.contains_key(target) {
                    return Err(NetlistError::DuplicateName {
                        name: target.clone(),
                    });
                }
                let kind = kind_for(*line, func, args.len())?;
                // Placeholder self-references are patched in pass 2.
                let id = if matches!(kind, CellKind::Const0 | CellKind::Const1) {
                    netlist.add_cell(target.clone(), kind, Vec::new())
                } else {
                    let placeholder = CellId::from_index(netlist.cell_count());
                    netlist.add_cell(target.clone(), kind, vec![placeholder; args.len()])
                };
                signals.insert(target.clone(), id);
            }
            Stmt::Output(_) => {}
        }
    }

    // Pass 2: resolve fanin references.
    for (_, stmt) in &stmts {
        if let Stmt::Assign { target, args, .. } = stmt {
            let id = signals[target];
            for (pin, arg) in args.iter().enumerate() {
                let driver = *signals
                    .get(arg)
                    .ok_or_else(|| NetlistError::UndefinedSignal { name: arg.clone() })?;
                netlist.set_fanin_pin(id, pin, driver);
            }
        }
    }

    // Pass 3: create output markers. The marker name is derived, so both a
    // repeated `OUTPUT(x)` declaration and a signal literally named
    // `x__po` would collide with it — report these as typed errors instead
    // of letting the builder's duplicate-name assertion abort.
    for (_, stmt) in &stmts {
        if let Stmt::Output(name) = stmt {
            let driver = *signals
                .get(name)
                .ok_or_else(|| NetlistError::UndefinedSignal { name: name.clone() })?;
            let marker = format!("{name}{OUTPUT_SUFFIX}");
            if netlist.find(&marker).is_some() {
                return Err(NetlistError::DuplicateName { name: marker });
            }
            netlist.add_output(marker, driver);
        }
    }

    netlist.validate()?;
    Ok(netlist)
}

/// Reads and parses a `.bench` file; the design name is the file stem.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] when the file cannot be read and the
/// [`parse_bench`] errors otherwise, so command-line front ends get
/// diagnostics instead of aborts on malformed input.
pub fn read_bench_file(path: impl AsRef<std::path::Path>) -> Result<Netlist> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| NetlistError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    parse_bench(&text, name)
}

/// Serializes a netlist to `.bench` text.
///
/// Primary-output markers named `<signal>__po` are written back as
/// `OUTPUT(<signal>)`; generic wide gates are written with their base
/// function name, so `parse_bench(write_bench(n))` round-trips.
pub fn write_bench(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", netlist.name()));
    for &id in netlist.inputs() {
        out.push_str(&format!("INPUT({})\n", netlist.cell(id).name()));
    }
    for &id in netlist.outputs() {
        let driver = netlist.cell(id).fanin()[0];
        out.push_str(&format!("OUTPUT({})\n", netlist.cell(driver).name()));
    }
    for (_, cell) in netlist.iter() {
        let kind = cell.kind();
        if matches!(kind, CellKind::Input | CellKind::Output) {
            continue;
        }
        let args: Vec<&str> = cell
            .fanin()
            .iter()
            .map(|&f| netlist.cell(f).name())
            .collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            cell.name(),
            kind.library_name(),
            args.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27ISH: &str = "\
# a tiny sequential circuit in the s27 spirit
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G14 = NOT(G0)
G10 = NOR(G14, G5)
G11 = NAND(G1, G2)
G17 = OR(G10, G6)
";

    #[test]
    fn parse_sequential_circuit() {
        let n = parse_bench(S27ISH, "s27ish").unwrap();
        assert_eq!(n.inputs().len(), 3);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.flip_flops().len(), 2);
        assert_eq!(n.gate_count(), 4);
        n.validate().unwrap();
    }

    #[test]
    fn forward_references_resolve() {
        // G10 uses G14 which is defined later.
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = NOT(a)\n";
        let n = parse_bench(text, "fwd").unwrap();
        assert_eq!(n.gate_count(), 2);
    }

    #[test]
    fn wide_gates_become_generic() {
        let text =
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\ny = NAND(a,b,c,d,e)\n";
        let n = parse_bench(text, "wide").unwrap();
        let y = n.find("y").unwrap();
        assert_eq!(n.cell(y).kind(), CellKind::NandN(5));
    }

    #[test]
    fn four_input_gates_are_library_cells() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = NOR(a,b,c,d)\n";
        let n = parse_bench(text, "n4").unwrap();
        let y = n.find("y").unwrap();
        assert_eq!(n.cell(y).kind(), CellKind::Nor4);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nINPUT(a) # trailing comment\nOUTPUT(a)\n\n";
        let n = parse_bench(text, "c").unwrap();
        assert_eq!(n.inputs().len(), 1);
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    fn undefined_signal_is_reported() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(zz)\n";
        match parse_bench(text, "u") {
            Err(NetlistError::UndefinedSignal { name }) => assert_eq!(name, "zz"),
            other => panic!("expected UndefinedSignal, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_definition_is_reported() {
        let text = "INPUT(a)\na = NOT(a)\n";
        assert!(matches!(
            parse_bench(text, "d"),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn syntax_error_carries_line_number() {
        let text = "INPUT(a)\ny == NOT(a)\n";
        match parse_bench(text, "s") {
            Err(NetlistError::BenchSyntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected BenchSyntax, got {other:?}"),
        }
    }

    #[test]
    fn wrong_arity_is_reported() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n";
        assert!(matches!(
            parse_bench(text, "w"),
            Err(NetlistError::BenchSyntax { line: 4, .. })
        ));
    }

    #[test]
    fn truncated_declaration_is_a_syntax_error() {
        // File cut off mid-declaration: the '(' never closes.
        let text = "INPUT(a)\nOUTPUT(y)\nINPUT(";
        match parse_bench(text, "t") {
            Err(NetlistError::BenchSyntax { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected BenchSyntax, got {other:?}"),
        }
    }

    #[test]
    fn truncated_assignment_is_a_syntax_error() {
        // File cut off mid-argument-list.
        let text = "INPUT(a)\nOUTPUT(y)\ny = NAND(a,";
        match parse_bench(text, "t") {
            Err(NetlistError::BenchSyntax { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected BenchSyntax, got {other:?}"),
        }
    }

    #[test]
    fn unknown_gate_function_is_reported_with_its_name() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
        match parse_bench(text, "f") {
            Err(NetlistError::BenchSyntax { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("FROB"), "message: {message}");
            }
            other => panic!("expected BenchSyntax, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_gate_definition_is_reported() {
        // Two assignments to the same signal (gate redefining a gate, not
        // shadowing an input).
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n";
        match parse_bench(text, "dg") {
            Err(NetlistError::DuplicateName { name }) => assert_eq!(name, "y"),
            other => panic!("expected DuplicateName, got {other:?}"),
        }
    }

    #[test]
    fn gates_wider_than_sixteen_inputs_are_rejected() {
        let args: Vec<String> = (0..17).map(|i| format!("a{i}")).collect();
        let mut text = String::new();
        for a in &args {
            text.push_str(&format!("INPUT({a})\n"));
        }
        text.push_str("OUTPUT(y)\n");
        text.push_str(&format!("y = AND({})\n", args.join(",")));
        match parse_bench(&text, "wide17") {
            Err(NetlistError::BenchSyntax { line, message }) => {
                assert_eq!(line, 19);
                assert!(message.contains("17"), "message: {message}");
            }
            other => panic!("expected BenchSyntax, got {other:?}"),
        }
    }

    #[test]
    fn repeated_output_declaration_is_reported() {
        let text = "INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n";
        match parse_bench(text, "oo") {
            Err(NetlistError::DuplicateName { name }) => assert_eq!(name, "a__po"),
            other => panic!("expected DuplicateName, got {other:?}"),
        }
    }

    #[test]
    fn signal_colliding_with_output_marker_is_reported() {
        // A signal literally named `y__po` collides with the derived
        // marker name for OUTPUT(y).
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny__po = BUFF(a)\n";
        match parse_bench(text, "po") {
            Err(NetlistError::DuplicateName { name }) => assert_eq!(name, "y__po"),
            other => panic!("expected DuplicateName, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        match read_bench_file("/nonexistent/definitely_missing.bench") {
            Err(NetlistError::Io { path, .. }) => assert!(path.contains("missing")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn output_of_undefined_signal_is_reported() {
        let text = "INPUT(a)\nOUTPUT(ghost)\n";
        match parse_bench(text, "o") {
            Err(NetlistError::UndefinedSignal { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected UndefinedSignal, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let n1 = parse_bench(S27ISH, "s27ish").unwrap();
        let text = write_bench(&n1);
        let n2 = parse_bench(&text, "s27ish").unwrap();
        assert_eq!(n1.cell_count(), n2.cell_count());
        assert_eq!(n1.inputs().len(), n2.inputs().len());
        assert_eq!(n1.outputs().len(), n2.outputs().len());
        assert_eq!(n1.flip_flops().len(), n2.flip_flops().len());
        // Kind multiset must match.
        let hist = |n: &Netlist| {
            let mut h: Vec<String> = n.iter().map(|(_, c)| c.kind().to_string()).collect();
            h.sort();
            h
        };
        assert_eq!(hist(&n1), hist(&n2));
    }

    #[test]
    fn dft_extension_cells_round_trip() {
        let text = "INPUT(a)\nOUTPUT(y)\nf = SDFF(a)\nh = HOLDL(f)\ny = NOT(h)\n";
        let n = parse_bench(text, "ext").unwrap();
        let h = n.find("h").unwrap();
        assert_eq!(n.cell(h).kind(), CellKind::HoldLatch);
        let n2 = parse_bench(&write_bench(&n), "ext2").unwrap();
        assert_eq!(
            n2.find("h").map(|id| n2.cell(id).kind()),
            Some(CellKind::HoldLatch)
        );
    }

    #[test]
    fn constants_parse() {
        let text = "OUTPUT(y)\nz = CONST1\ny = NOT(z)\n";
        let n = parse_bench(text, "k").unwrap();
        let z = n.find("z").unwrap();
        assert_eq!(n.cell(z).kind(), CellKind::Const1);
    }
}
