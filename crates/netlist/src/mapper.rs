//! Structural technology mapper.
//!
//! Stands in for the Synopsys Design Compiler step of the paper's flow: it
//! takes a netlist as parsed from `.bench` (which may contain generic wide
//! gates) and produces a netlist that uses only library cells:
//!
//! 1. [`decompose_generic`] rewrites every `AndN`/`NandN`/`OrN`/`NorN`/`XorN`
//!    wide gate into a balanced tree of 2–4-input library cells;
//! 2. [`absorb_complex_gates`] pattern-matches single-fanout AND-into-NOR and
//!    OR-into-NAND structures into the AOI/OAI complex gates, reducing total
//!    gate count exactly the way the paper notes ("the library contains
//!    complex gate types e.g. aoi and mux, and hence, the total number of
//!    logic gates is reduced").
//!
//! [`map_netlist`] runs both in sequence.

use std::collections::HashMap;

use crate::analysis::{combinational_order, FanoutMap};
use crate::cell::{CellId, CellKind};
use crate::graph::Netlist;
use crate::Result;

/// Incremental rebuild context: a new netlist plus the old→new id map.
struct Rebuild {
    out: Netlist,
    map: Vec<Option<CellId>>,
    fresh: usize,
}

impl Rebuild {
    fn new(name: &str, old_cells: usize) -> Self {
        Rebuild {
            out: Netlist::new(name),
            map: vec![None; old_cells],
            fresh: 0,
        }
    }

    fn mapped(&self, old: CellId) -> CellId {
        self.map[old.index()].expect("fanin mapped before use")
    }

    fn fresh_name(&mut self, base: &str) -> String {
        loop {
            let name = format!("{base}_m{}", self.fresh);
            self.fresh += 1;
            if self.out.find(&name).is_none() {
                return name;
            }
        }
    }

    /// Reduces `sigs` with an associative AND/OR tree of 2–4-input gates
    /// until at most `stop_at` signals remain.
    fn reduce_assoc(
        &mut self,
        base: &str,
        and: bool,
        mut sigs: Vec<CellId>,
        stop_at: usize,
    ) -> Vec<CellId> {
        debug_assert!((2..=4).contains(&stop_at));
        while sigs.len() > stop_at {
            let take = sigs.len().min(4).min(sigs.len() - stop_at + 1).max(2);
            let chunk: Vec<CellId> = sigs.drain(..take).collect();
            let kind = if and {
                CellKind::and(chunk.len())
            } else {
                CellKind::or(chunk.len())
            };
            let name = self.fresh_name(base);
            let id = self.out.add_cell(name, kind, chunk);
            sigs.push(id);
        }
        sigs
    }
}

/// Rebuilds `netlist` with every generic wide gate decomposed into a tree of
/// library cells. Cell names are preserved for the cells that survive; tree
/// intermediates get `_m<i>` suffixes.
///
/// # Errors
///
/// Propagates cycle errors from levelization of a malformed input.
pub fn decompose_generic(netlist: &Netlist) -> Result<Netlist> {
    let order = combinational_order(netlist)?;
    let mut rb = Rebuild::new(netlist.name(), netlist.cell_count());

    for &id in netlist.inputs() {
        let new = rb.out.add_input(netlist.cell(id).name().to_string());
        rb.map[id.index()] = Some(new);
    }
    // Flip-flops with self-placeholder D pins, patched at the end.
    for &id in netlist.flip_flops() {
        let placeholder = CellId::from_index(rb.out.cell_count());
        let new = rb.out.add_cell(
            netlist.cell(id).name().to_string(),
            netlist.cell(id).kind(),
            vec![placeholder],
        );
        rb.map[id.index()] = Some(new);
    }

    for &id in &order {
        let cell = netlist.cell(id);
        let kind = cell.kind();
        if kind == CellKind::Output {
            continue; // emitted last
        }
        let fanin: Vec<CellId> = cell.fanin().iter().map(|&f| rb.mapped(f)).collect();
        let name = cell.name().to_string();
        let new = match kind {
            CellKind::AndN(_) => {
                let sigs = rb.reduce_assoc(&name, true, fanin, 4);
                rb.out
                    .add_cell(name, CellKind::and(sigs.len().max(2)), pad2(sigs))
            }
            CellKind::NandN(_) => {
                let sigs = rb.reduce_assoc(&name, true, fanin, 4);
                rb.out
                    .add_cell(name, CellKind::nand(sigs.len().max(2)), pad2(sigs))
            }
            CellKind::OrN(_) => {
                let sigs = rb.reduce_assoc(&name, false, fanin, 4);
                rb.out
                    .add_cell(name, CellKind::or(sigs.len().max(2)), pad2(sigs))
            }
            CellKind::NorN(_) => {
                let sigs = rb.reduce_assoc(&name, false, fanin, 4);
                rb.out
                    .add_cell(name, CellKind::nor(sigs.len().max(2)), pad2(sigs))
            }
            CellKind::XorN(_) => {
                // Left-to-right XOR2 chain (parity).
                let mut acc = fanin[0];
                for (i, &s) in fanin[1..].iter().enumerate() {
                    let nm = if i + 2 == cell.fanin().len() {
                        name.clone()
                    } else {
                        rb.fresh_name(&name)
                    };
                    acc = rb.out.add_cell(nm, CellKind::Xor2, vec![acc, s]);
                }
                acc
            }
            _ => rb.out.add_cell(name, kind, fanin),
        };
        rb.map[id.index()] = Some(new);
    }

    for &id in netlist.outputs() {
        let driver = rb.mapped(netlist.cell(id).fanin()[0]);
        let new = rb
            .out
            .add_output(netlist.cell(id).name().to_string(), driver);
        rb.map[id.index()] = Some(new);
    }
    for &id in netlist.flip_flops() {
        let new_ff = rb.mapped(id);
        let new_d = rb.mapped(netlist.cell(id).fanin()[0]);
        rb.out.set_fanin_pin(new_ff, 0, new_d);
    }
    rb.out.validate()?;
    Ok(rb.out)
}

/// `pad2` is the identity for lists of length 2–4; a singleton (possible when
/// a wide gate had duplicate inputs collapsed upstream) is doubled so the
/// 2-input library cell stays logically equivalent for AND/OR/NAND/NOR.
fn pad2(mut sigs: Vec<CellId>) -> Vec<CellId> {
    if sigs.len() == 1 {
        sigs.push(sigs[0]);
    }
    sigs
}

/// Which complex gate a (outer, inner) pattern produces.
fn absorb_pattern(
    outer: CellKind,
    inner_a: Option<CellKind>,
    inner_b: Option<CellKind>,
) -> Option<CellKind> {
    match outer {
        CellKind::Nor2 => match (inner_a, inner_b) {
            (Some(CellKind::And2), Some(CellKind::And2)) => Some(CellKind::Aoi22),
            (Some(CellKind::And2), _) | (_, Some(CellKind::And2)) => Some(CellKind::Aoi21),
            _ => None,
        },
        CellKind::Nand2 => match (inner_a, inner_b) {
            (Some(CellKind::Or2), Some(CellKind::Or2)) => Some(CellKind::Oai22),
            (Some(CellKind::Or2), _) | (_, Some(CellKind::Or2)) => Some(CellKind::Oai21),
            _ => None,
        },
        _ => None,
    }
}

/// Rebuilds `netlist` with single-fanout `AND2 → NOR2` / `OR2 → NAND2`
/// structures fused into AOI21/AOI22/OAI21/OAI22 complex gates.
///
/// Only structures where the inner gate drives exactly the outer gate are
/// fused (the classic DAG-safe condition). The outer gate keeps its name.
///
/// # Errors
///
/// Propagates cycle errors from levelization of a malformed input.
pub fn absorb_complex_gates(netlist: &Netlist) -> Result<Netlist> {
    let order = combinational_order(netlist)?;
    let fanouts = FanoutMap::compute(netlist);

    // Plan: decide which inner cells each outer gate absorbs.
    let mut absorbed_by: HashMap<CellId, CellId> = HashMap::new(); // inner -> outer
    let mut plan: HashMap<CellId, CellKind> = HashMap::new(); // outer -> new kind
    for &id in &order {
        let cell = netlist.cell(id);
        let outer = cell.kind();
        if !matches!(outer, CellKind::Nor2 | CellKind::Nand2) {
            continue;
        }
        let inner_kind = |f: CellId| -> Option<CellKind> {
            let k = netlist.cell(f).kind();
            let fusable = matches!(k, CellKind::And2 | CellKind::Or2);
            // Single fanout, not already claimed, not feeding itself twice.
            if fusable
                && fanouts.fanout_count(f) == 1
                && !absorbed_by.contains_key(&f)
                && cell.fanin()[0] != cell.fanin()[1]
            {
                Some(k)
            } else {
                None
            }
        };
        let a = cell.fanin()[0];
        let b = cell.fanin()[1];
        let (ka, kb) = (inner_kind(a), inner_kind(b));
        let want_inner = match outer {
            CellKind::Nor2 => CellKind::And2,
            _ => CellKind::Or2,
        };
        let ka = ka.filter(|&k| k == want_inner);
        let kb = kb.filter(|&k| k == want_inner);
        if let Some(newkind) = absorb_pattern(outer, ka, kb) {
            if ka.is_some() {
                absorbed_by.insert(a, id);
            }
            if kb.is_some() {
                absorbed_by.insert(b, id);
            }
            plan.insert(id, newkind);
        }
    }

    // Rebuild.
    let mut rb = Rebuild::new(netlist.name(), netlist.cell_count());
    for &id in netlist.inputs() {
        let new = rb.out.add_input(netlist.cell(id).name().to_string());
        rb.map[id.index()] = Some(new);
    }
    for &id in netlist.flip_flops() {
        let placeholder = CellId::from_index(rb.out.cell_count());
        let new = rb.out.add_cell(
            netlist.cell(id).name().to_string(),
            netlist.cell(id).kind(),
            vec![placeholder],
        );
        rb.map[id.index()] = Some(new);
    }
    for &id in &order {
        let cell = netlist.cell(id);
        if cell.kind() == CellKind::Output || absorbed_by.contains_key(&id) {
            continue;
        }
        let name = cell.name().to_string();
        let new = if let Some(&newkind) = plan.get(&id) {
            // Fanin order: AOI21(a, b, c) = !((a&b)|c); OAI21 analogous.
            let a = cell.fanin()[0];
            let b = cell.fanin()[1];
            let expand = |rb: &Rebuild, f: CellId| -> Vec<CellId> {
                if absorbed_by.get(&f) == Some(&id) {
                    netlist
                        .cell(f)
                        .fanin()
                        .iter()
                        .map(|&x| rb.mapped(x))
                        .collect()
                } else {
                    vec![rb.mapped(f)]
                }
            };
            let mut fanin = expand(&rb, a);
            fanin.extend(expand(&rb, b));
            // AOI21/OAI21 expect the pair first, the lone input last.
            if matches!(newkind, CellKind::Aoi21 | CellKind::Oai21) && fanin.len() == 3 {
                // If the absorbed pair was `b`, the order is [a, b1, b2];
                // rotate to [b1, b2, a].
                if absorbed_by.get(&a) != Some(&id) {
                    fanin.rotate_left(1);
                }
            }
            rb.out.add_cell(name, newkind, fanin)
        } else {
            let fanin: Vec<CellId> = cell.fanin().iter().map(|&f| rb.mapped(f)).collect();
            rb.out.add_cell(name, cell.kind(), fanin)
        };
        rb.map[id.index()] = Some(new);
    }
    for &id in netlist.outputs() {
        let driver = rb.mapped(netlist.cell(id).fanin()[0]);
        rb.out
            .add_output(netlist.cell(id).name().to_string(), driver);
    }
    for &id in netlist.flip_flops() {
        let new_ff = rb.mapped(id);
        let new_d = rb.mapped(netlist.cell(id).fanin()[0]);
        rb.out.set_fanin_pin(new_ff, 0, new_d);
    }
    rb.out.validate()?;
    Ok(rb.out)
}

/// Full mapping pipeline: wide-gate decomposition followed by complex-gate
/// absorption.
///
/// # Errors
///
/// Propagates structural errors from either pass.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), flh_netlist::NetlistError> {
/// let n = flh_netlist::bench_io::parse_bench(
///     "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\n\
///      y = NAND(a, b, c, d, e)\n",
///     "wide",
/// )?;
/// let mapped = flh_netlist::mapper::map_netlist(&n)?;
/// assert!(mapped.iter().all(|(_, c)| !c.kind().is_generic()));
/// # Ok(())
/// # }
/// ```
pub fn map_netlist(netlist: &Netlist) -> Result<Netlist> {
    let decomposed = decompose_generic(netlist)?;
    absorb_complex_gates(&decomposed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_io::parse_bench;
    use flh_rng::Rng;

    /// Exhaustively compares two single-output netlists with identical PI
    /// sets (by simulating all input combinations, or 256 random patterns
    /// when wide).
    fn equivalent(a: &Netlist, b: &Netlist) -> bool {
        assert_eq!(a.inputs().len(), b.inputs().len());
        let n_pi = a.inputs().len();
        let eval = |n: &Netlist, pattern: u64| -> Vec<bool> {
            let order = combinational_order(n).unwrap();
            let mut vals = vec![0u64; n.cell_count()];
            for (i, &pi) in n.inputs().iter().enumerate() {
                vals[pi.index()] = if pattern >> i & 1 == 1 { !0 } else { 0 };
            }
            for &id in &order {
                let cell = n.cell(id);
                let ins: Vec<u64> = cell.fanin().iter().map(|&f| vals[f.index()]).collect();
                vals[id.index()] = cell.kind().eval64(&ins);
            }
            n.outputs()
                .iter()
                .map(|&o| vals[o.index()] & 1 != 0)
                .collect()
        };
        let mut rng = Rng::seed_from_u64(7);
        let patterns: Vec<u64> = if n_pi <= 12 {
            (0..(1u64 << n_pi)).collect()
        } else {
            (0..256).map(|_| rng.gen()).collect()
        };
        patterns.iter().all(|&p| eval(a, p) == eval(b, p))
    }

    #[test]
    fn wide_nand_decomposes_equivalently() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\nOUTPUT(y)\ny = NAND(a,b,c,d,e,f,g)\n";
        let n = parse_bench(text, "w7").unwrap();
        let m = decompose_generic(&n).unwrap();
        assert!(m.iter().all(|(_, c)| !c.kind().is_generic()));
        assert!(equivalent(&n, &m));
    }

    #[test]
    fn wide_or_and_xor_decompose_equivalently() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\nOUTPUT(z)\ny = OR(a,b,c,d,e)\nz = XOR(a,b,c,d,e)\n";
        let n = parse_bench(text, "wx").unwrap();
        let m = decompose_generic(&n).unwrap();
        assert!(m.iter().all(|(_, c)| !c.kind().is_generic()));
        assert!(equivalent(&n, &m));
    }

    #[test]
    fn aoi21_absorption() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a,b)\ny = NOR(t,c)\n";
        let n = parse_bench(text, "aoi").unwrap();
        let m = absorb_complex_gates(&n).unwrap();
        assert!(equivalent(&n, &m));
        let y = m.find("y").unwrap();
        assert_eq!(m.cell(y).kind(), CellKind::Aoi21);
        assert_eq!(m.gate_count(), 1);
    }

    #[test]
    fn aoi21_absorption_mirrored_pins() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a,b)\ny = NOR(c,t)\n";
        let n = parse_bench(text, "aoi_m").unwrap();
        let m = absorb_complex_gates(&n).unwrap();
        assert!(equivalent(&n, &m));
        let y = m.find("y").unwrap();
        assert_eq!(m.cell(y).kind(), CellKind::Aoi21);
    }

    #[test]
    fn aoi22_and_oai22_absorption() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
                    t1 = AND(a,b)\nt2 = AND(c,d)\ny = NOR(t1,t2)\n\
                    u1 = OR(a,b)\nu2 = OR(c,d)\nz = NAND(u1,u2)\n";
        let n = parse_bench(text, "c22").unwrap();
        let m = absorb_complex_gates(&n).unwrap();
        assert!(equivalent(&n, &m));
        assert_eq!(m.cell(m.find("y").unwrap()).kind(), CellKind::Aoi22);
        assert_eq!(m.cell(m.find("z").unwrap()).kind(), CellKind::Oai22);
        assert_eq!(m.gate_count(), 2);
    }

    #[test]
    fn multi_fanout_inner_gate_is_not_absorbed() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(w)\nt = AND(a,b)\ny = NOR(t,c)\nw = NOT(t)\n";
        let n = parse_bench(text, "mf").unwrap();
        let m = absorb_complex_gates(&n).unwrap();
        assert!(equivalent(&n, &m));
        assert_eq!(m.cell(m.find("y").unwrap()).kind(), CellKind::Nor2);
        assert_eq!(m.gate_count(), 3);
    }

    #[test]
    fn full_pipeline_reduces_gate_count() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
                    t1 = AND(a,b)\nt2 = AND(c,d)\ny = NOR(t1,t2)\n";
        let n = parse_bench(text, "pipe").unwrap();
        let m = map_netlist(&n).unwrap();
        assert!(m.gate_count() < n.gate_count());
        assert!(equivalent(&n, &m));
    }

    #[test]
    fn sequential_circuit_survives_mapping() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nf = DFF(g)\ng = NAND(a,b,f)\nq = NOT(f)\n";
        let n = parse_bench(text, "seqmap").unwrap();
        let m = map_netlist(&n).unwrap();
        m.validate().unwrap();
        assert_eq!(m.flip_flops().len(), 1);
        // 3-input NAND is already a library cell.
        let g = m.find("g").unwrap();
        assert_eq!(m.cell(g).kind(), CellKind::Nand3);
    }

    #[test]
    fn mapping_is_idempotent_on_library_netlists() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ng = AOI21(a,b,c)\ny = NOT(g)\n";
        let n = parse_bench(text, "idem").unwrap();
        let m = map_netlist(&n).unwrap();
        assert_eq!(m.gate_count(), n.gate_count());
        assert!(equivalent(&n, &m));
    }
}
