//! Static analysis over compiled programs (DESIGN.md §2i).
//!
//! Three cooperating analyses run on a lowered [`Program`] without ever
//! simulating a pattern:
//!
//! * [`verify_program`] — a bytecode verifier that decodes every fixed-stride
//!   instruction and proves the emission invariants `Program::lower` relies
//!   on: stream/batch structure, opcode legality, fused arity, operand and
//!   destination ranges, level-monotone scheduling, the per-chain LIFO
//!   scratch discipline (no read-before-write) and chain-table consistency.
//!   Violations are data, not panics, so `flh-lint` can surface them as
//!   stable FLH diagnostics and negative tests can assert exact codes
//!   against `Program::corrupt_*` mutations.
//! * [`ternary_constants`] + [`dead_instructions`] — a 0/1/X abstract
//!   interpretation. Executing the program over [`Dual64`] with every source
//!   unknown is exact Kleene constant propagation through the fused opcode
//!   table; backward liveness over the code stream then finds instructions
//!   whose results can never reach an observation point.
//! * [`observability`] + [`scoap`] — SCOAP-flavoured testability costing in
//!   level order. `obs_struct` is plain reverse reachability from the
//!   observation roots; `obs_sens` additionally rules out propagation paths
//!   that the constant lattice proves unsensitizable (a definite side pin
//!   blocks the only path through a gate).
//!
//! # Soundness of `obs_sens`
//!
//! The ternary fixpoint is computed with every primary input and flip-flop
//! unknown. Pinning an X-valued net to 0 or 1 — which is what activating a
//! fault at a non-constant site does — is an information *refinement*: every
//! net the fixpoint proved definite keeps that exact value in the faulty
//! machine. Side-pin blocking therefore only ever uses facts that still hold
//! when the fault is present. The one case refinement does not cover is a
//! fault that forces a *constant* net to its opposite value; classification
//! code must fall back to the structural reachability answer there (see
//! `flh-atpg`'s prune module).

use crate::bytecode::{Program, BATCH_INSTS, INST_WORDS, MAX_FUSED_OPERANDS};
use crate::cell::{CellKind, Dual64};
use crate::compiled::CompiledCircuit;

/// Saturation bound for SCOAP costs (advisory display values).
pub const SCOAP_SAT: u32 = 1 << 24;

// ---------------------------------------------------------------------------
// Bytecode verifier
// ---------------------------------------------------------------------------

/// What a verifier violation proves about the program. Each kind maps 1:1 to
/// a stable `flh-lint` code (FLH015..FLH023); keep the set append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VerifyKind {
    /// The code stream or batch table is structurally broken: ragged stream,
    /// batch bounds out of range/misaligned, gaps or overlaps in the tiling,
    /// oversized batch, or an instruction count that disagrees with the
    /// stream length. Structure violations abort the walk (everything later
    /// would cascade).
    Truncated,
    /// An opcode byte outside the fused opcode table.
    BadOpcode,
    /// An operand count outside the opcode's legal arity range.
    BadArity,
    /// An operand slot past the end of the register file.
    OperandRange,
    /// A destination slot past the end of the register file.
    DstRange,
    /// A scratch operand read before any instruction of the same chain wrote
    /// it — the LIFO regalloc discipline guarantees this never happens in
    /// emitted code.
    ScratchReadBeforeWrite,
    /// A cell operand whose level is not strictly below the batch level, so
    /// the level-major schedule would read it before it is computed.
    OperandLevel,
    /// A batch whose level is out of range or non-monotone, or a root
    /// destination scheduled in a batch of the wrong level.
    BatchLevel,
    /// The chain table disagrees with the code stream (wrong bounds, wrong
    /// terminating destination, a chain for a source cell) or the hold bit
    /// disagrees with the destination cell's kind.
    ChainMismatch,
}

impl VerifyKind {
    /// Short stable label used in diagnostics and reports.
    pub fn label(self) -> &'static str {
        match self {
            VerifyKind::Truncated => "truncated",
            VerifyKind::BadOpcode => "bad-opcode",
            VerifyKind::BadArity => "bad-arity",
            VerifyKind::OperandRange => "operand-range",
            VerifyKind::DstRange => "dst-range",
            VerifyKind::ScratchReadBeforeWrite => "scratch-read-before-write",
            VerifyKind::OperandLevel => "operand-level",
            VerifyKind::BatchLevel => "batch-level",
            VerifyKind::ChainMismatch => "chain-mismatch",
        }
    }
}

/// One proven violation of the bytecode contract.
#[derive(Clone, Debug)]
pub struct VerifyViolation {
    /// Which invariant broke.
    pub kind: VerifyKind,
    /// Stream-order instruction index, when the violation is per-instruction.
    pub inst: Option<usize>,
    /// Destination cell id, when the offending instruction roots a cell.
    pub cell: Option<u32>,
    /// Human-readable detail (slot numbers, levels, expected vs found).
    pub message: String,
}

/// Result of [`verify_program`]: the violation list plus the number of
/// individual checks performed (the `lint.verifier_checks` counter).
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Every proven contract violation, in stream order.
    pub violations: Vec<VerifyViolation>,
    /// Individual assertions evaluated while walking the program.
    pub checks: u64,
}

impl VerifyReport {
    /// True when the program satisfies the full bytecode contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn push(&mut self, kind: VerifyKind, inst: Option<usize>, cell: Option<u32>, message: String) {
        self.violations.push(VerifyViolation {
            kind,
            inst,
            cell,
            message,
        });
    }
}

/// Decode every instruction of `program` and prove the emission contract
/// against `compiled` (the circuit it was lowered from).
///
/// Structure violations ([`VerifyKind::Truncated`]) abort the walk early —
/// a ragged stream would turn every downstream check into noise — so a
/// corrupted program maps to exactly the code of the first broken layer.
pub fn verify_program(compiled: &CompiledCircuit, program: &Program) -> VerifyReport {
    let mut report = VerifyReport::default();
    let code = program.raw_code();
    let n_cells = program.cell_words();
    let n_scratch = program.scratch_words();
    let n_slots = (n_cells + n_scratch) as u32;

    // --- Layer 1: stream and batch structure -----------------------------
    report.checks += 1;
    if code.len() % INST_WORDS != 0 {
        report.push(
            VerifyKind::Truncated,
            None,
            None,
            format!(
                "code stream of {} words is not a multiple of the {INST_WORDS}-word stride",
                code.len()
            ),
        );
        return report;
    }
    report.checks += 1;
    if program.inst_count() * INST_WORDS != code.len() {
        report.push(
            VerifyKind::Truncated,
            None,
            None,
            format!(
                "instruction count {} disagrees with a {}-word stream",
                program.inst_count(),
                code.len()
            ),
        );
        return report;
    }
    let mut cursor = 0u32;
    for (bi, b) in program.batches().iter().enumerate() {
        report.checks += 4;
        let aligned = b.start as usize % INST_WORDS == 0 && b.end as usize % INST_WORDS == 0;
        let sized = b.start < b.end
            && b.end as usize <= code.len()
            && (b.end - b.start) / INST_WORDS as u32 <= BATCH_INSTS;
        if b.start != cursor || !aligned || !sized {
            report.push(
                VerifyKind::Truncated,
                None,
                None,
                format!(
                    "batch {bi} [{}, {}) breaks the contiguous tiling of a {}-word stream",
                    b.start,
                    b.end,
                    code.len()
                ),
            );
            return report;
        }
        cursor = b.end;
    }
    report.checks += 1;
    if cursor as usize != code.len() {
        report.push(
            VerifyKind::Truncated,
            None,
            None,
            format!("batches cover {cursor} of {} code words", code.len()),
        );
        return report;
    }

    // --- Layer 2: per-instruction walk ------------------------------------
    let mut scratch_written = vec![false; n_scratch];
    let mut prev_level = 0u32;
    let mut inst_index = 0usize;
    for (bi, b) in program.batches().iter().enumerate() {
        report.checks += 2;
        if b.level < 1 || b.level as usize > compiled.levels() {
            report.push(
                VerifyKind::BatchLevel,
                None,
                None,
                format!(
                    "batch {bi} has level {} outside 1..={}",
                    b.level,
                    compiled.levels()
                ),
            );
        }
        if b.level < prev_level {
            report.push(
                VerifyKind::BatchLevel,
                None,
                None,
                format!(
                    "batch {bi} level {} below predecessor {prev_level}",
                    b.level
                ),
            );
        }
        prev_level = b.level;

        let window = &code[b.start as usize..b.end as usize];
        for inst in window.chunks_exact(INST_WORDS) {
            let d = program.decode_inst(inst_index);
            debug_assert_eq!(inst[1], d.dst);

            report.checks += 1;
            let Some(op) = d.opcode else {
                report.push(
                    VerifyKind::BadOpcode,
                    Some(inst_index),
                    None,
                    format!(
                        "opcode byte 0x{:02x} is not in the fused table",
                        d.opcode_raw
                    ),
                );
                inst_index += 1;
                continue;
            };
            report.checks += 1;
            if !op.arity_range().contains(&d.nops) {
                report.push(
                    VerifyKind::BadArity,
                    Some(inst_index),
                    None,
                    format!(
                        "{op:?} takes {:?} operands, instruction encodes {}",
                        op.arity_range(),
                        d.nops
                    ),
                );
            }

            report.checks += 1;
            let dst_cell = if d.dst < n_cells as u32 {
                Some(d.dst)
            } else {
                None
            };
            if d.dst >= n_slots {
                report.push(
                    VerifyKind::DstRange,
                    Some(inst_index),
                    None,
                    format!("destination slot {} past register file of {n_slots}", d.dst),
                );
            } else if let Some(cell) = dst_cell {
                report.checks += 2;
                if compiled.level_of(cell) != b.level {
                    report.push(
                        VerifyKind::BatchLevel,
                        Some(inst_index),
                        Some(cell),
                        format!(
                            "cell at level {} rooted inside a level-{} batch",
                            compiled.level_of(cell),
                            b.level
                        ),
                    );
                }
                let is_hold = compiled.kind(cell).is_hold_element();
                if d.hold != is_hold {
                    report.push(
                        VerifyKind::ChainMismatch,
                        Some(inst_index),
                        Some(cell),
                        format!(
                            "hold bit {} but destination kind {:?}",
                            d.hold,
                            compiled.kind(cell)
                        ),
                    );
                }
            }

            for k in 0..d.nops.min(MAX_FUSED_OPERANDS) {
                let slot = d.operands[k];
                report.checks += 1;
                if slot >= n_slots {
                    report.push(
                        VerifyKind::OperandRange,
                        Some(inst_index),
                        dst_cell,
                        format!("operand {k} slot {slot} past register file of {n_slots}"),
                    );
                } else if slot < n_cells as u32 {
                    report.checks += 1;
                    if compiled.level_of(slot) >= b.level {
                        report.push(
                            VerifyKind::OperandLevel,
                            Some(inst_index),
                            dst_cell,
                            format!(
                                "operand {k} reads cell {slot} at level {} from a level-{} batch",
                                compiled.level_of(slot),
                                b.level
                            ),
                        );
                    }
                } else {
                    report.checks += 1;
                    if !scratch_written[slot as usize - n_cells] {
                        report.push(
                            VerifyKind::ScratchReadBeforeWrite,
                            Some(inst_index),
                            dst_cell,
                            format!(
                                "operand {k} reads scratch word {} before any write in its chain",
                                slot - n_cells as u32
                            ),
                        );
                    }
                }
            }

            // The scratch free list is chain-local: a root destination ends
            // the chain and invalidates every temporary.
            if d.dst < n_slots {
                if dst_cell.is_some() {
                    scratch_written.fill(false);
                } else {
                    scratch_written[d.dst as usize - n_cells] = true;
                }
            }
            inst_index += 1;
        }
    }

    // --- Layer 3: chain table ---------------------------------------------
    for cell in 0..n_cells as u32 {
        let (start, len) = program.chain_raw(cell);
        report.checks += 1;
        if compiled.level_of(cell) == 0 {
            if (start, len) != (u32::MAX, 0) {
                report.push(
                    VerifyKind::ChainMismatch,
                    None,
                    Some(cell),
                    format!("source cell has chain entry ({start}, {len})"),
                );
            }
            continue;
        }
        report.checks += 2;
        let aligned = start as usize % INST_WORDS == 0 && len as usize % INST_WORDS == 0;
        if start == u32::MAX
            || len == 0
            || !aligned
            || (start as usize).saturating_add(len as usize) > code.len()
        {
            report.push(
                VerifyKind::ChainMismatch,
                None,
                Some(cell),
                format!(
                    "chain entry ({start}, {len}) out of a {}-word stream",
                    code.len()
                ),
            );
            continue;
        }
        let last = (start + len) as usize / INST_WORDS - 1;
        report.checks += 1;
        if program.decode_inst(last).dst != cell {
            report.push(
                VerifyKind::ChainMismatch,
                Some(last),
                Some(cell),
                format!(
                    "chain ends writing slot {} instead of its cell",
                    program.decode_inst(last).dst
                ),
            );
        }
    }

    report
}

// ---------------------------------------------------------------------------
// Ternary abstract interpretation
// ---------------------------------------------------------------------------

/// Exact Kleene constant propagation through the compiled form: execute the
/// program over [`Dual64`] with every source unknown and read back which
/// cells settle to a definite value.
///
/// `Some(v)` means the cell computes `v` on every input vector; `None` means
/// the abstract interpreter cannot prove it constant. Sources (primary
/// inputs, flip-flops) are always `None`.
pub fn ternary_constants(program: &Program) -> Vec<Option<bool>> {
    let mut values = vec![Dual64::all_x(); program.cell_words()];
    let mut scratch = vec![Dual64::all_x(); program.scratch_words()];
    program.execute(&mut values, &mut scratch);
    values
        .iter()
        .map(|v| {
            if v.one & 1 != 0 {
                Some(true)
            } else if v.zero & 1 != 0 {
                Some(false)
            } else {
                None
            }
        })
        .collect()
}

/// Backward-liveness result over the code stream.
#[derive(Clone, Debug, Default)]
pub struct DeadCodeReport {
    /// Stream-order indices of instructions whose result can never reach an
    /// observation point (primary output or flip-flop D pin).
    pub dead: Vec<usize>,
    /// Instructions proven live.
    pub live: usize,
}

/// Backward liveness over the code stream: an instruction is live iff its
/// destination is demanded by an observation root (an `Output` marker cell
/// or a flip-flop's D driver) through later instructions. Scratch
/// destinations are killed on (re)definition; cell destinations are
/// single-assignment and never killed.
pub fn dead_instructions(compiled: &CompiledCircuit, program: &Program) -> DeadCodeReport {
    let n_cells = program.cell_words();
    let mut needed_cell = vec![false; n_cells];
    let mut needed_scratch = vec![false; program.scratch_words()];
    for &m in compiled.outputs() {
        needed_cell[m as usize] = true;
        needed_cell[compiled.fanin(m)[0] as usize] = true;
    }
    for &f in compiled.flip_flops() {
        needed_cell[compiled.fanin(f)[0] as usize] = true;
    }

    let mut report = DeadCodeReport::default();
    for i in (0..program.inst_count()).rev() {
        let d = program.decode_inst(i);
        let dst = d.dst as usize;
        let live = if dst < n_cells {
            needed_cell[dst]
        } else {
            let l = needed_scratch[dst - n_cells];
            needed_scratch[dst - n_cells] = false;
            l
        };
        if live {
            report.live += 1;
            for k in 0..d.nops.min(MAX_FUSED_OPERANDS) {
                let s = d.operands[k] as usize;
                if s < n_cells {
                    needed_cell[s] = true;
                } else {
                    needed_scratch[s - n_cells] = true;
                }
            }
        } else {
            report.dead.push(i);
        }
    }
    report.dead.reverse();
    report
}

/// Forward X-taint over the compiled form: which cells can see a flip-flop
/// response value during the V1-hold window. Mirrors the netlist-level
/// `hold-leak` walk exactly — flip-flop sources start tainted, taint is the
/// OR of operand taints, and a destination whose instruction carries the
/// hold bit (or whose cell is in the `frozen` supply-gated set) clips taint
/// to false. Agreement between the two walks is a lint assertion (FLH026).
pub fn compiled_hold_taint(program: &Program, ff_sources: &[bool], frozen: &[bool]) -> Vec<bool> {
    let n_cells = program.cell_words();
    debug_assert_eq!(ff_sources.len(), n_cells);
    debug_assert_eq!(frozen.len(), n_cells);
    let mut cell_taint = ff_sources.to_vec();
    let mut scratch_taint = vec![false; program.scratch_words()];
    for i in 0..program.inst_count() {
        let d = program.decode_inst(i);
        let mut taint = false;
        for k in 0..d.nops.min(MAX_FUSED_OPERANDS) {
            let s = d.operands[k] as usize;
            taint |= if s < n_cells {
                cell_taint[s]
            } else {
                scratch_taint[s - n_cells]
            };
        }
        let dst = d.dst as usize;
        if dst < n_cells {
            cell_taint[dst] = taint && !d.hold && !frozen[dst];
        } else {
            scratch_taint[dst - n_cells] = taint;
        }
    }
    cell_taint
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

/// Structural and sensitization-aware observability per cell.
#[derive(Clone, Debug)]
pub struct Observability {
    /// Cell can reach a primary output or flip-flop D pin through fanout
    /// edges (pure reverse reachability; no value reasoning).
    pub obs_struct: Vec<bool>,
    /// Cell can reach an observation point through a path the constant
    /// lattice does not prove unsensitizable. Always implies `obs_struct`.
    /// Sound only for faults at non-constant sites (see the module docs).
    pub obs_sens: Vec<bool>,
    /// Cell directly drives an `Output` marker or a flip-flop D pin.
    pub observed_driver: Vec<bool>,
}

/// Is pin `pin` of a gate of `kind` blocked by the definite side-pin values
/// in `side` (one entry per fanin pin, `side[pin]` ignored)? "Blocked" means
/// no value change on that pin can change the gate output while the side
/// pins hold their proven constants — and since those constants survive any
/// refinement of the sources, a blocked pin is blocked in every faulty
/// machine whose fault site was unknown to the lattice.
pub fn pin_blocked(kind: CellKind, pin: usize, side: &[Option<bool>]) -> bool {
    use CellKind::*;
    debug_assert_eq!(side.len(), kind.arity());
    let is0 = |p: usize| side[p] == Some(false);
    let is1 = |p: usize| side[p] == Some(true);
    match kind {
        And2 | And3 | And4 | Nand2 | Nand3 | Nand4 | AndN(_) | NandN(_) => {
            (0..side.len()).any(|p| p != pin && is0(p))
        }
        Or2 | Or3 | Or4 | Nor2 | Nor3 | Nor4 | OrN(_) | NorN(_) => {
            (0..side.len()).any(|p| p != pin && is1(p))
        }
        // XOR-family pins are always sensitized; single-input cells pass
        // every change through.
        Xor2 | Xnor2 | XorN(_) => false,
        Buf | Inv | Output | Dff | ScanDff | HoldLatch | HoldMux => false,
        Input | Const0 | Const1 => false,
        // !((a & b) | c)
        Aoi21 => match pin {
            0 => is0(1) || is1(2),
            1 => is0(0) || is1(2),
            _ => is1(0) && is1(1),
        },
        // !((a & b) | (c & d))
        Aoi22 => match pin {
            0 => is0(1) || (is1(2) && is1(3)),
            1 => is0(0) || (is1(2) && is1(3)),
            2 => is0(3) || (is1(0) && is1(1)),
            _ => is0(2) || (is1(0) && is1(1)),
        },
        // !((a | b) & c)
        Oai21 => match pin {
            0 => is1(1) || is0(2),
            1 => is1(0) || is0(2),
            _ => is0(0) && is0(1),
        },
        // !((a | b) & (c | d))
        Oai22 => match pin {
            0 => is1(1) || (is0(2) && is0(3)),
            1 => is1(0) || (is0(2) && is0(3)),
            2 => is1(3) || (is0(0) && is0(1)),
            _ => is1(2) || (is0(0) && is0(1)),
        },
        // s ? b : a — the select pin is dead only when both data pins are
        // proven equal.
        Mux2 => match pin {
            0 => is1(2),
            1 => is0(2),
            _ => matches!((side[0], side[1]), (Some(a), Some(b)) if a == b),
        },
    }
}

/// Compute [`Observability`] against the constant lattice from
/// [`ternary_constants`] (pass all-`None` for a purely structural answer).
pub fn observability(compiled: &CompiledCircuit, constants: &[Option<bool>]) -> Observability {
    let n = compiled.cell_count() as usize;
    debug_assert_eq!(constants.len(), n);
    let mut observed_driver = vec![false; n];
    for &m in compiled.outputs() {
        observed_driver[compiled.fanin(m)[0] as usize] = true;
    }
    for &f in compiled.flip_flops() {
        observed_driver[compiled.fanin(f)[0] as usize] = true;
    }

    // Reverse topological sweep: evaluable cells by descending level, then
    // the level-0 sources (whose readers all sit at higher levels).
    let mut sweep: Vec<u32> = compiled.order().iter().rev().copied().collect();
    sweep.extend((0..n as u32).filter(|&c| compiled.level_of(c) == 0));

    let mut obs_struct = vec![false; n];
    let mut obs_sens = vec![false; n];
    let mut side = Vec::new();
    for &c in &sweep {
        let ci = c as usize;
        let mut st = observed_driver[ci];
        let mut se = st;
        for &g in compiled.readers(c) {
            let gk = compiled.kind(g);
            // Observation through a marker or flip-flop is exactly the
            // `observed_driver` root above; nothing propagates past it.
            if matches!(gk, CellKind::Output | CellKind::Dff | CellKind::ScanDff) {
                continue;
            }
            let gi = g as usize;
            st |= obs_struct[gi];
            if obs_sens[gi] && !se {
                let fanin = compiled.fanin(g);
                side.clear();
                side.extend(fanin.iter().map(|&f| constants[f as usize]));
                se |= fanin
                    .iter()
                    .enumerate()
                    .any(|(p, &f)| f == c && !pin_blocked(gk, p, &side));
            }
        }
        obs_struct[ci] = st;
        // A cell the lattice proves constant carries no observable
        // difference under any refinement of the sources.
        obs_sens[ci] = se && constants[ci].is_none();
    }

    Observability {
        obs_struct,
        obs_sens,
        observed_driver,
    }
}

// ---------------------------------------------------------------------------
// SCOAP costing (advisory)
// ---------------------------------------------------------------------------

/// SCOAP-style controllability/observability costs per cell. Display-only:
/// fault classification uses the exact lattice in [`Observability`], never
/// these heuristics.
#[derive(Clone, Debug)]
pub struct Scoap {
    /// Cost to drive the cell to 0 (sources cost 1, saturates at
    /// [`SCOAP_SAT`]).
    pub cc0: Vec<u32>,
    /// Cost to drive the cell to 1.
    pub cc1: Vec<u32>,
    /// Cost to observe the cell at a primary output or flip-flop D pin.
    pub co: Vec<u32>,
}

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(SCOAP_SAT)
}

/// Combinational controllability of an AND of `pins` (no level increment).
fn cc_and(pins: &[(u32, u32)]) -> (u32, u32) {
    let c1 = pins.iter().fold(0, |acc, p| sat_add(acc, p.1));
    let c0 = pins.iter().map(|p| p.0).min().unwrap_or(SCOAP_SAT);
    (c0, c1)
}

fn cc_or(pins: &[(u32, u32)]) -> (u32, u32) {
    let c0 = pins.iter().fold(0, |acc, p| sat_add(acc, p.0));
    let c1 = pins.iter().map(|p| p.1).min().unwrap_or(SCOAP_SAT);
    (c0, c1)
}

fn cc_not(p: (u32, u32)) -> (u32, u32) {
    (p.1, p.0)
}

fn cc_xor(a: (u32, u32), b: (u32, u32)) -> (u32, u32) {
    (
        sat_add(a.0, b.0).min(sat_add(a.1, b.1)),
        sat_add(a.0, b.1).min(sat_add(a.1, b.0)),
    )
}

/// Compute SCOAP costs in level order (controllability) and reverse level
/// order (observability). Complex-gate observability uses the cheapest-side
/// approximation; these numbers rank fault ordering and feed the `flh
/// analyze` report, nothing else.
pub fn scoap(compiled: &CompiledCircuit, observed_driver: &[bool]) -> Scoap {
    use CellKind::*;
    let n = compiled.cell_count() as usize;
    let mut cc0 = vec![1u32; n];
    let mut cc1 = vec![1u32; n];
    for &id in compiled.order() {
        let pins: Vec<(u32, u32)> = compiled
            .fanin(id)
            .iter()
            .map(|&f| (cc0[f as usize], cc1[f as usize]))
            .collect();
        let (c0, c1) = match compiled.kind(id) {
            Const0 => (0, SCOAP_SAT),
            Const1 => (SCOAP_SAT, 0),
            Output | Buf | Dff | ScanDff | HoldLatch | HoldMux => pins[0],
            Inv => cc_not(pins[0]),
            And2 | And3 | And4 | AndN(_) => cc_and(&pins),
            Nand2 | Nand3 | Nand4 | NandN(_) => cc_not(cc_and(&pins)),
            Or2 | Or3 | Or4 | OrN(_) => cc_or(&pins),
            Nor2 | Nor3 | Nor4 | NorN(_) => cc_not(cc_or(&pins)),
            Xor2 => cc_xor(pins[0], pins[1]),
            Xnor2 => cc_not(cc_xor(pins[0], pins[1])),
            XorN(_) => pins[1..].iter().fold(pins[0], |acc, &p| cc_xor(acc, p)),
            Aoi21 => cc_not(cc_or(&[cc_and(&pins[..2]), pins[2]])),
            Aoi22 => cc_not(cc_or(&[cc_and(&pins[..2]), cc_and(&pins[2..])])),
            Oai21 => cc_not(cc_and(&[cc_or(&pins[..2]), pins[2]])),
            Oai22 => cc_not(cc_and(&[cc_or(&pins[..2]), cc_or(&pins[2..])])),
            Mux2 => (
                sat_add(pins[0].0, pins[2].0).min(sat_add(pins[1].0, pins[2].1)),
                sat_add(pins[0].1, pins[2].0).min(sat_add(pins[1].1, pins[2].1)),
            ),
            Input => (1, 1),
        };
        let bump = u32::from(compiled.kind(id).is_combinational());
        cc0[id as usize] = sat_add(c0, bump);
        cc1[id as usize] = sat_add(c1, bump);
    }

    let mut co = vec![SCOAP_SAT; n];
    let mut sweep: Vec<u32> = compiled.order().iter().rev().copied().collect();
    sweep.extend((0..n as u32).filter(|&c| compiled.level_of(c) == 0));
    for &c in &sweep {
        let ci = c as usize;
        let mut best = if observed_driver[ci] { 0 } else { SCOAP_SAT };
        for &g in compiled.readers(c) {
            let gk = compiled.kind(g);
            if matches!(gk, Output | Dff | ScanDff) {
                continue;
            }
            let fanin = compiled.fanin(g);
            for (p, &f) in fanin.iter().enumerate() {
                if f != c {
                    continue;
                }
                let side_cost =
                    fanin
                        .iter()
                        .enumerate()
                        .filter(|&(q, _)| q != p)
                        .fold(0u32, |acc, (_, &s)| {
                            let si = s as usize;
                            let c = match gk {
                                And2 | And3 | And4 | Nand2 | Nand3 | Nand4 | AndN(_) | NandN(_) => {
                                    cc1[si]
                                }
                                Or2 | Or3 | Or4 | Nor2 | Nor3 | Nor4 | OrN(_) | NorN(_) => cc0[si],
                                _ => cc0[si].min(cc1[si]),
                            };
                            sat_add(acc, c)
                        });
                best = best.min(sat_add(co[g as usize], sat_add(side_cost, 1)));
            }
        }
        co[ci] = best;
    }

    Scoap { cc0, cc1, co }
}

// ---------------------------------------------------------------------------
// Bundle
// ---------------------------------------------------------------------------

/// All value-independent analyses computed in one call — the input to fault
/// pruning (`flh-atpg`), the lint passes and the `flh analyze` report.
#[derive(Clone, Debug)]
pub struct StaticAnalysis {
    /// Constant lattice per cell ([`ternary_constants`]).
    pub constants: Vec<Option<bool>>,
    /// Backward liveness over the code stream ([`dead_instructions`]).
    pub dead: DeadCodeReport,
    /// Structural + sensitization observability ([`observability`]).
    pub obs: Observability,
    /// Advisory SCOAP costs ([`scoap`]).
    pub scoap: Scoap,
}

/// Run the abstract interpreter, liveness and testability costing against a
/// lowered program. Does not include [`verify_program`] — callers decide
/// whether verification failures should gate the rest.
pub fn analyze(compiled: &CompiledCircuit, program: &Program) -> StaticAnalysis {
    let constants = ternary_constants(program);
    let dead = dead_instructions(compiled, program);
    let obs = observability(compiled, &constants);
    let scoap = scoap(compiled, &obs.observed_driver);
    StaticAnalysis {
        constants,
        dead,
        obs,
        scoap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Netlist;

    /// i0, i1 inputs; g = And2(i0, c0) is constant 0; h = Xor2(i0, i1) is
    /// live and observable; d = And2(i0, i1) has no fanout.
    fn fixture() -> Netlist {
        let mut n = Netlist::new("fix");
        let i0 = n.add_input("i0");
        let i1 = n.add_input("i1");
        let c0 = n.add_cell("c0", CellKind::Const0, vec![]);
        let g = n.add_cell("g", CellKind::And2, vec![i0, c0]);
        let h = n.add_cell("h", CellKind::Xor2, vec![i0, i1]);
        n.add_cell("d", CellKind::And2, vec![i0, i1]);
        n.add_output("yg", g);
        n.add_output("yh", h);
        n
    }

    fn lower(n: &Netlist) -> (CompiledCircuit, Program) {
        let c = CompiledCircuit::compile(n).unwrap();
        let p = Program::lower(&c);
        (c, p)
    }

    #[test]
    fn clean_program_verifies() {
        let n = fixture();
        let (c, p) = lower(&n);
        let report = verify_program(&c, &p);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn corrupt_opcode_is_rejected() {
        let n = fixture();
        let (c, mut p) = lower(&n);
        p.corrupt_opcode(0, 0xee);
        let report = verify_program(&c, &p);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == VerifyKind::BadOpcode));
    }

    #[test]
    fn constants_fold_through_the_fused_table() {
        let n = fixture();
        let (c, p) = lower(&n);
        let constants = ternary_constants(&p);
        let id = |name: &str| c.id_of(n.find(name).unwrap()) as usize;
        assert_eq!(constants[id("c0")], Some(false));
        assert_eq!(constants[id("g")], Some(false));
        assert_eq!(constants[id("yg")], Some(false));
        assert_eq!(constants[id("h")], None);
        assert_eq!(constants[id("i0")], None);
    }

    #[test]
    fn fanout_free_cone_is_dead_and_observed_cone_live() {
        let n = fixture();
        let (c, p) = lower(&n);
        let report = dead_instructions(&c, &p);
        let dead_cells: Vec<u32> = report.dead.iter().map(|&i| p.decode_inst(i).dst).collect();
        let d = c.id_of(n.find("d").unwrap());
        let h = c.id_of(n.find("h").unwrap());
        assert!(dead_cells.contains(&d));
        assert!(!dead_cells.contains(&h));
    }

    #[test]
    fn blocked_pins_kill_sensitized_observability_only() {
        let n = fixture();
        let (c, p) = lower(&n);
        let a = analyze(&c, &p);
        let id = |name: &str| c.id_of(n.find(name).unwrap()) as usize;
        // i0 reaches outputs through h (XOR, never blocked).
        assert!(a.obs.obs_sens[id("i0")]);
        // g is constant: structurally observed, never sensitized.
        assert!(a.obs.obs_struct[id("g")]);
        assert!(!a.obs.obs_sens[id("g")]);
        // The constant side pin blocks nothing for i0 (XOR path exists), but
        // c0 only feeds the AND whose output is constant.
        assert!(!a.obs.obs_sens[id("c0")]);
        // d has no fanout at all.
        assert!(!a.obs.obs_struct[id("d")]);
        assert!(!a.obs.obs_sens[id("d")]);
        // SCOAP: observed XOR driver is cheap, dead gate saturates.
        assert!(a.scoap.co[id("h")] == 0);
        assert_eq!(a.scoap.co[id("d")], SCOAP_SAT);
    }

    #[test]
    fn hold_taint_matches_a_hand_walk() {
        // ff -> hold -> g(and with i0); taint must stop at the hold cell.
        let mut n = Netlist::new("taint");
        let i0 = n.add_input("i0");
        let ff = n.add_cell("ff", CellKind::Dff, vec![i0]);
        let hold = n.add_cell("hold", CellKind::HoldLatch, vec![ff]);
        let g = n.add_cell("g", CellKind::And2, vec![hold, i0]);
        let leak = n.add_cell("leak", CellKind::And2, vec![ff, i0]);
        n.add_output("yg", g);
        n.add_output("yl", leak);
        let (c, p) = lower(&n);
        let mut ff_src = vec![false; c.cell_count() as usize];
        for &f in c.flip_flops() {
            ff_src[f as usize] = true;
        }
        let frozen = vec![false; c.cell_count() as usize];
        let taint = compiled_hold_taint(&p, &ff_src, &frozen);
        let id = |cid: crate::CellId| c.id_of(cid) as usize;
        assert!(taint[id(ff)]);
        assert!(!taint[id(hold)], "hold bit must clip taint");
        assert!(!taint[id(g)]);
        assert!(taint[id(leak)], "ungated path must stay tainted");
    }

    #[test]
    fn pin_blocking_truth_table_spot_checks() {
        use CellKind::*;
        let s0 = Some(false);
        let s1 = Some(true);
        let x: Option<bool> = None;
        assert!(pin_blocked(And2, 0, &[x, s0]));
        assert!(!pin_blocked(And2, 0, &[x, s1]));
        assert!(pin_blocked(Nor3, 1, &[x, x, s1]));
        assert!(!pin_blocked(Xor2, 0, &[x, s0]));
        // Aoi21 !((a&b)|c): c=1 masks the AND term.
        assert!(pin_blocked(Aoi21, 0, &[x, s1, s1]));
        assert!(!pin_blocked(Aoi21, 0, &[x, s1, s0]));
        assert!(pin_blocked(Aoi21, 2, &[s1, s1, x]));
        // Oai21 !((a|b)&c): select-side blocking.
        assert!(pin_blocked(Oai21, 2, &[s0, s0, x]));
        assert!(!pin_blocked(Oai21, 2, &[s0, x, x]));
        // Mux2 [a, b, s]: select pin dead when both data pins agree.
        assert!(pin_blocked(Mux2, 0, &[x, x, s1]));
        assert!(pin_blocked(Mux2, 2, &[s1, s1, x]));
        assert!(!pin_blocked(Mux2, 2, &[s1, s0, x]));
    }
}
