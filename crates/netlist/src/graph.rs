//! The [`Netlist`] graph and its construction / editing API.

use std::collections::HashMap;
use std::fmt;

use crate::cell::{CellId, CellKind};
use crate::error::NetlistError;
use crate::Result;

/// A single netlist cell: a named instance of a [`CellKind`] with fanin
/// references to the cells whose outputs it reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    name: String,
    kind: CellKind,
    fanin: Vec<CellId>,
}

impl Cell {
    /// Instance name (unique within the netlist).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Library kind of this cell.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Fanin references in pin order.
    pub fn fanin(&self) -> &[CellId] {
        &self.fanin
    }
}

/// A sequential gate-level circuit.
///
/// The representation is single-output-per-cell: a "net" is identified with
/// the cell that drives it. Primary inputs and constants are source cells;
/// primary outputs are sink marker cells; D flip-flops are both (their `q`
/// output is a combinational source, their `d` fanin a combinational sink).
///
/// Cells are stored densely and never deleted; transforms that shrink a
/// circuit produce a new `Netlist`. Rewiring in place is supported through
/// [`Netlist::set_fanin_pin`] and [`Netlist::redirect_readers`].
///
/// # Example
///
/// ```
/// use flh_netlist::{Netlist, CellKind};
///
/// let mut n = Netlist::new("toy");
/// let a = n.add_input("a");
/// let ff = n.add_cell("r0", CellKind::Dff, vec![a]);
/// let g = n.add_cell("g0", CellKind::Nor2, vec![a, ff]);
/// n.add_output("z", g);
/// assert_eq!(n.flip_flops().len(), 1);
/// n.validate().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
    inputs: Vec<CellId>,
    outputs: Vec<CellId>,
    flip_flops: Vec<CellId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            flip_flops: Vec::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of cells (including boundary pseudo-cells).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Immutable access to a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Iterates over `(id, cell)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// All cell ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(CellId::from_index)
    }

    /// Primary-input cells in declaration order.
    pub fn inputs(&self) -> &[CellId] {
        &self.inputs
    }

    /// Primary-output cells in declaration order.
    pub fn outputs(&self) -> &[CellId] {
        &self.outputs
    }

    /// Flip-flop cells (`Dff` or `ScanDff`) in declaration order.
    pub fn flip_flops(&self) -> &[CellId] {
        &self.flip_flops
    }

    /// Looks a cell up by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names (construction is programmer-driven; the
    /// fallible path for untrusted input is the `.bench` parser).
    pub fn add_input(&mut self, name: impl Into<String>) -> CellId {
        let id = self.push_cell(name.into(), CellKind::Input, Vec::new());
        self.inputs.push(id);
        id
    }

    /// Adds a primary-output marker reading `from`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn add_output(&mut self, name: impl Into<String>, from: CellId) -> CellId {
        let id = self.push_cell(name.into(), CellKind::Output, vec![from]);
        self.outputs.push(id);
        id
    }

    /// Adds a cell of any non-boundary kind.
    ///
    /// Flip-flops are registered in [`Netlist::flip_flops`]. Use
    /// [`Netlist::add_input`] / [`Netlist::add_output`] for boundary cells so
    /// the port lists stay consistent.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names, on boundary kinds, or if `fanin.len()`
    /// differs from the kind's arity.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        fanin: Vec<CellId>,
    ) -> CellId {
        assert!(
            !matches!(kind, CellKind::Input | CellKind::Output),
            "use add_input/add_output for boundary cells"
        );
        assert_eq!(
            fanin.len(),
            kind.arity(),
            "{kind} expects {} fanin pins, got {}",
            kind.arity(),
            fanin.len()
        );
        let id = self.push_cell(name.into(), kind, fanin);
        if kind.is_flip_flop() {
            self.flip_flops.push(id);
        }
        id
    }

    fn push_cell(&mut self, name: String, kind: CellKind, fanin: Vec<CellId>) -> CellId {
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate cell name {name:?}"
        );
        let id = CellId::from_index(self.cells.len());
        self.by_name.insert(name.clone(), id);
        self.cells.push(Cell { name, kind, fanin });
        id
    }

    /// Generates a fresh cell name with the given prefix.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut i = self.cells.len();
        loop {
            let candidate = format!("{prefix}{i}");
            if !self.by_name.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Rewires one fanin pin of `cell` to read `new_driver`.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for the cell.
    pub fn set_fanin_pin(&mut self, cell: CellId, pin: usize, new_driver: CellId) {
        let c = &mut self.cells[cell.index()];
        assert!(pin < c.fanin.len(), "pin {pin} out of range for {cell}");
        c.fanin[pin] = new_driver;
    }

    /// Changes the kind of a cell in place.
    ///
    /// Useful for retyping `Dff` → `ScanDff` during scan insertion.
    ///
    /// # Panics
    ///
    /// Panics if the new kind's arity differs from the current fanin count,
    /// or when converting to/from boundary or flip-flop kinds inconsistently
    /// (flip-flop ↔ flip-flop retyping is allowed; anything that would
    /// invalidate the port/FF registries is not).
    pub fn retype_cell(&mut self, cell: CellId, kind: CellKind) {
        let c = &mut self.cells[cell.index()];
        assert_eq!(
            kind.arity(),
            c.fanin.len(),
            "retype of {cell} to {kind} changes arity"
        );
        let was_ff = c.kind.is_flip_flop();
        let is_ff = kind.is_flip_flop();
        assert_eq!(
            was_ff, is_ff,
            "retype of {cell} crosses the sequential boundary"
        );
        assert!(
            !matches!(c.kind, CellKind::Input | CellKind::Output)
                && !matches!(kind, CellKind::Input | CellKind::Output),
            "cannot retype boundary cells"
        );
        c.kind = kind;
    }

    /// Redirects every reader of `old_driver` to read `new_driver` instead,
    /// except readers listed in `keep`. Returns the number of pins rewired.
    ///
    /// This is the primitive used to splice holding elements or buffers into
    /// a stimulus path: create the new cell reading `old_driver`, then
    /// redirect all other readers to the new cell.
    pub fn redirect_readers(
        &mut self,
        old_driver: CellId,
        new_driver: CellId,
        keep: &[CellId],
    ) -> usize {
        let mut rewired = 0;
        for (i, cell) in self.cells.iter_mut().enumerate() {
            let this = CellId::from_index(i);
            if this == new_driver || keep.contains(&this) {
                continue;
            }
            for pin in cell.fanin.iter_mut() {
                if *pin == old_driver {
                    *pin = new_driver;
                    rewired += 1;
                }
            }
        }
        rewired
    }

    /// Redirects the listed readers (and only those) of `old_driver` to read
    /// `new_driver`. Returns the number of pins rewired.
    pub fn redirect_selected_readers(
        &mut self,
        old_driver: CellId,
        new_driver: CellId,
        readers: &[CellId],
    ) -> usize {
        let mut rewired = 0;
        for &r in readers {
            let cell = &mut self.cells[r.index()];
            for pin in cell.fanin.iter_mut() {
                if *pin == old_driver {
                    *pin = new_driver;
                    rewired += 1;
                }
            }
        }
        rewired
    }

    /// Structural validation: arities, reference ranges, name uniqueness,
    /// output-cell fanout, and combinational acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`NetlistError`].
    pub fn validate(&self) -> Result<()> {
        // Arity and dangling references.
        for (i, cell) in self.cells.iter().enumerate() {
            let id = CellId::from_index(i);
            if cell.fanin.len() != cell.kind.arity() {
                return Err(NetlistError::ArityMismatch {
                    cell: id,
                    expected: cell.kind.arity(),
                    found: cell.fanin.len(),
                });
            }
            for &f in &cell.fanin {
                if f.index() >= self.cells.len() {
                    return Err(NetlistError::DanglingFanin { cell: id, fanin: f });
                }
                if self.cells[f.index()].kind == CellKind::Output {
                    return Err(NetlistError::OutputHasFanout { cell: f });
                }
            }
        }
        // Name uniqueness is maintained by construction, but verify the map.
        if self.by_name.len() != self.cells.len() {
            // Find one duplicate for the report.
            let mut seen = HashMap::new();
            for cell in &self.cells {
                if seen.insert(cell.name.clone(), ()).is_some() {
                    return Err(NetlistError::DuplicateName {
                        name: cell.name.clone(),
                    });
                }
            }
        }
        // Combinational acyclicity via Kahn's algorithm over the
        // combinational subgraph (FF outputs and inputs are sources).
        let order = crate::analysis::combinational_order(self)?;
        debug_assert!(order.len() <= self.cells.len());
        Ok(())
    }

    // --- Corruption hooks -------------------------------------------------
    //
    // The `corrupt_*` methods below bypass every construction invariant the
    // normal builder API enforces. They exist so `flh-lint` (and its tests)
    // can manufacture netlists that are *wrong in a specific way* — a
    // dangling fanin, an arity mismatch, a duplicate name, an unregistered
    // boundary cell — and assert that the corresponding diagnostic fires.
    // Production transforms must never call them.

    /// Overwrites a cell's entire fanin vector with **no arity or range
    /// checks** — references may point outside the netlist.
    pub fn corrupt_set_fanin(&mut self, cell: CellId, fanin: Vec<CellId>) {
        self.cells[cell.index()].fanin = fanin;
    }

    /// Appends a cell with **no duplicate-name, arity or registry checks**:
    /// boundary and flip-flop kinds added this way are *not* recorded in the
    /// input/output/flip-flop registries, and an existing cell of the same
    /// name is silently shadowed in the name index.
    pub fn corrupt_add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        fanin: Vec<CellId>,
    ) -> CellId {
        let name = name.into();
        let id = CellId::from_index(self.cells.len());
        self.by_name.insert(name.clone(), id);
        self.cells.push(Cell { name, kind, fanin });
        id
    }

    /// Changes a cell's kind with **no arity, boundary or registry checks**
    /// (e.g. retyping a registered flip-flop to a combinational gate leaves
    /// the flip-flop registry stale).
    pub fn corrupt_retype(&mut self, cell: CellId, kind: CellKind) {
        self.cells[cell.index()].kind = kind;
    }

    /// Removes a cell from the primary-output registry without touching the
    /// cell itself, leaving a dangling `Output` marker.
    pub fn corrupt_unregister_output(&mut self, cell: CellId) {
        self.outputs.retain(|&o| o != cell);
    }

    /// Count of combinational logic gates (excludes boundary, sequential and
    /// holding cells, buffers included).
    pub fn gate_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.kind.is_combinational())
            .count()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PI, {} PO, {} FF, {} gates",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.flip_flops.len(),
            self.gate_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Netlist, CellId, CellId, CellId) {
        let mut n = Netlist::new("toy");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::Nand2, vec![a, b]);
        n.add_output("y", g);
        (n, a, b, g)
    }

    #[test]
    fn build_and_lookup() {
        let (n, a, _, g) = toy();
        assert_eq!(n.find("a"), Some(a));
        assert_eq!(n.find("g"), Some(g));
        assert_eq!(n.find("nope"), None);
        assert_eq!(n.cell(g).kind(), CellKind::Nand2);
        assert_eq!(n.cell(g).fanin().len(), 2);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        n.validate().unwrap();
    }

    #[test]
    fn display_summary() {
        let (n, ..) = toy();
        let s = n.to_string();
        assert!(s.contains("2 PI"));
        assert!(s.contains("1 PO"));
        assert!(s.contains("1 gates"));
    }

    #[test]
    fn flip_flop_registry() {
        let mut n = Netlist::new("ff");
        let a = n.add_input("a");
        let ff = n.add_cell("r", CellKind::Dff, vec![a]);
        assert_eq!(n.flip_flops(), &[ff]);
        n.retype_cell(ff, CellKind::ScanDff);
        assert_eq!(n.cell(ff).kind(), CellKind::ScanDff);
        assert_eq!(n.flip_flops(), &[ff]);
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn duplicate_name_panics() {
        let mut n = Netlist::new("dup");
        n.add_input("a");
        n.add_input("a");
    }

    #[test]
    #[should_panic(expected = "expects 2 fanin pins")]
    fn arity_mismatch_panics() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        n.add_cell("g", CellKind::Nand2, vec![a]);
    }

    #[test]
    fn redirect_readers_splices_cell() {
        let (mut n, a, b, g) = toy();
        // Splice a buffer between `a` and its readers.
        let buf = n.add_cell("a_buf", CellKind::Buf, vec![a]);
        let rewired = n.redirect_readers(a, buf, &[]);
        assert_eq!(rewired, 1); // only g read a
        assert_eq!(n.cell(g).fanin(), &[buf, b]);
        assert_eq!(n.cell(buf).fanin(), &[a]);
        n.validate().unwrap();
    }

    #[test]
    fn redirect_selected_readers_only_touches_listed() {
        let mut n = Netlist::new("sel");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::Inv, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Inv, vec![a]);
        let buf = n.add_cell("buf", CellKind::Buf, vec![a]);
        let rewired = n.redirect_selected_readers(a, buf, &[g2]);
        assert_eq!(rewired, 1);
        assert_eq!(n.cell(g1).fanin(), &[a]);
        assert_eq!(n.cell(g2).fanin(), &[buf]);
    }

    #[test]
    fn validate_detects_output_fanout() {
        let mut n = Netlist::new("bad_out");
        let a = n.add_input("a");
        let o = n.add_output("y", a);
        // Manually wire a cell to read the output marker.
        n.add_cell("g", CellKind::Inv, vec![o]);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::OutputHasFanout { .. })
        ));
    }

    #[test]
    fn validate_detects_cycle() {
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::And2, vec![a, a]);
        let g2 = n.add_cell("g2", CellKind::Inv, vec![g1]);
        // Close a combinational loop g1 <- g2.
        n.set_fanin_pin(g1, 1, g2);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn cycle_through_ff_is_fine() {
        let mut n = Netlist::new("seq");
        let a = n.add_input("a");
        let g = n.add_cell("g", CellKind::And2, vec![a, a]);
        let ff = n.add_cell("r", CellKind::Dff, vec![g]);
        n.set_fanin_pin(g, 1, ff); // feedback through the FF
        n.add_output("y", ff);
        n.validate().unwrap();
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let (mut n, ..) = toy();
        let f1 = n.fresh_name("u");
        n.add_cell(f1.clone(), CellKind::Inv, vec![n.inputs()[0]]);
        let f2 = n.fresh_name("u");
        assert_ne!(f1, f2);
    }
}
