//! Deterministic synthetic circuit generator.
//!
//! Generates sequential circuits whose *structural statistics* — primary
//! input/output counts, flip-flop count, gate count, critical-path logic
//! depth, and the flip-flop fanout shape (total fanout pins and unique
//! first-level gates per flip-flop) — match a requested profile. Every
//! metric the FLH paper reports is a function of exactly these statistics,
//! which is what makes this an acceptable substitute for the original
//! ISCAS89 netlists (see `DESIGN.md` §1).
//!
//! The construction is layered:
//!
//! 1. primary inputs and flip-flops (D pins wired last);
//! 2. the *first-level gates* — the only cells allowed to read flip-flop
//!    outputs — sized and multiplicity-assigned to hit the requested total
//!    and unique fanout targets exactly;
//! 3. a level-`depth` spine guaranteeing the requested logic depth;
//! 4. filler gates placed at random levels `2..=depth` with inputs drawn
//!    from strictly lower levels (so the structural depth never exceeds the
//!    target);
//! 5. primary outputs and flip-flop D pins wired preferentially to
//!    still-unread gate outputs.

use flh_rng::Rng;

use crate::cell::{CellId, CellKind};
use crate::error::NetlistError;
use crate::graph::Netlist;
use crate::Result;

/// Shape specification consumed by [`generate_circuit`].
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratorConfig {
    /// Design name.
    pub name: String,
    /// Primary input count (≥ 1).
    pub primary_inputs: usize,
    /// Primary output count (≥ 1).
    pub primary_outputs: usize,
    /// Flip-flop count (≥ 1).
    pub flip_flops: usize,
    /// Total combinational gate count.
    pub gates: usize,
    /// Structural critical-path logic depth (≥ 2).
    pub logic_depth: usize,
    /// Target average flip-flop fanout pins into logic.
    pub avg_ff_fanout: f64,
    /// Target ratio of unique first-level gates to flip-flops.
    pub unique_flg_ratio: f64,
    /// Optional fanout (distinct first-level gates) of one hot flip-flop.
    pub hot_ff_fanout: Option<usize>,
    /// RNG seed; equal configs generate identical netlists.
    pub seed: u64,
}

impl GeneratorConfig {
    fn first_level_gate_count(&self) -> usize {
        ((self.flip_flops as f64 * self.unique_flg_ratio).round() as usize).max(1)
    }

    fn total_ff_pins(&self) -> usize {
        let t = (self.flip_flops as f64 * self.avg_ff_fanout).round() as usize;
        t.max(self.flip_flops).max(self.first_level_gate_count())
    }

    fn validate(&self) -> Result<()> {
        let fail = |message: String| Err(NetlistError::InvalidGeneratorConfig { message });
        if self.primary_inputs == 0 {
            return fail("at least one primary input required".into());
        }
        if self.primary_outputs == 0 {
            return fail("at least one primary output required".into());
        }
        if self.flip_flops == 0 {
            return fail("at least one flip-flop required".into());
        }
        if self.logic_depth < 2 {
            return fail("logic depth must be at least 2".into());
        }
        let n_flg = self.first_level_gate_count();
        let spine = self.logic_depth - 1;
        if self.gates < n_flg + spine {
            return fail(format!(
                "{} gates cannot host {n_flg} first-level gates plus a depth-{} spine",
                self.gates, self.logic_depth
            ));
        }
        let t = self.total_ff_pins();
        if t > 4 * n_flg {
            return fail(format!(
                "{t} flip-flop fanout pins exceed the capacity of {n_flg} gates of arity <= 4"
            ));
        }
        if let Some(hot) = self.hot_ff_fanout {
            if hot > n_flg {
                return fail(format!(
                    "hot flip-flop fanout {hot} exceeds the {n_flg} first-level gates"
                ));
            }
        }
        Ok(())
    }
}

/// Weighted pick of a gate kind with the requested arity.
fn pick_kind(rng: &mut Rng, arity: usize) -> CellKind {
    // (kind, weight) tables roughly mirroring the LEDA-mapped ISCAS89 mix:
    // NAND/NOR-dominant with a sprinkling of complex gates.
    const A1: [(CellKind, u32); 2] = [(CellKind::Inv, 8), (CellKind::Buf, 2)];
    // Inverting-gate and XOR-rich mix: random AND/OR trees drive signal
    // probabilities to the rails and breed redundant (untestable) faults,
    // which real mapped ISCAS89 logic does not have.
    const A2: [(CellKind, u32); 6] = [
        (CellKind::Nand2, 32),
        (CellKind::Nor2, 24),
        (CellKind::And2, 4),
        (CellKind::Or2, 4),
        (CellKind::Xor2, 11),
        (CellKind::Xnor2, 5),
    ];
    const A3: [(CellKind, u32); 6] = [
        (CellKind::Nand3, 24),
        (CellKind::Nor3, 14),
        (CellKind::Aoi21, 16),
        (CellKind::Oai21, 14),
        (CellKind::And3, 2),
        (CellKind::Or3, 2),
    ];
    const A4: [(CellKind, u32); 6] = [
        (CellKind::Nand4, 10),
        (CellKind::Nor4, 6),
        (CellKind::Aoi22, 12),
        (CellKind::Oai22, 10),
        (CellKind::And4, 1),
        (CellKind::Or4, 1),
    ];
    let table: &[(CellKind, u32)] = match arity {
        1 => &A1,
        2 => &A2,
        3 => &A3,
        4 => &A4,
        _ => panic!("no gate kinds of arity {arity}"),
    };
    let total: u32 = table.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(kind, w) in table {
        if roll < w {
            return kind;
        }
        roll -= w;
    }
    unreachable!("weighted table exhausted")
}

/// Random arity for a filler gate (weighted toward 2-input cells).
fn pick_arity(rng: &mut Rng) -> usize {
    match rng.gen_range(0u32..100) {
        0..=11 => 1,
        12..=66 => 2,
        67..=91 => 3,
        _ => 4,
    }
}

struct Builder<'a> {
    rng: Rng,
    netlist: Netlist,
    config: &'a GeneratorConfig,
    /// Gate/PI outputs indexed by logic level (level 0 = primary inputs).
    by_level: Vec<Vec<CellId>>,
    /// Read-counter per cell, for the final unused-output sweep.
    reads: Vec<u32>,
}

impl<'a> Builder<'a> {
    fn mark_read(&mut self, id: CellId) {
        if id.index() >= self.reads.len() {
            self.reads.resize(id.index() + 1, 0);
        }
        self.reads[id.index()] += 1;
    }

    /// Picks a driver strictly below `level`, biased toward `level - 1`.
    fn pick_below(&mut self, level: usize) -> CellId {
        debug_assert!(level >= 1);
        let lvl = if level == 1 || self.rng.gen_bool(0.6) {
            level - 1
        } else {
            self.rng.gen_range(0..level)
        };
        let pool = &self.by_level[lvl];
        debug_assert!(!pool.is_empty(), "level {lvl} is empty");
        pool[self.rng.gen_range(0..pool.len())]
    }

    fn add_gate(&mut self, name: String, level: usize, fixed: &[CellId]) -> CellId {
        let arity = if fixed.is_empty() {
            pick_arity(&mut self.rng)
        } else {
            pick_arity(&mut self.rng).max(fixed.len())
        };
        let kind = pick_kind(&mut self.rng, arity);
        let mut fanin: Vec<CellId> = fixed.to_vec();
        // First free pin anchors the level; the rest come from anywhere
        // below.
        if fanin.is_empty() {
            let anchor_lvl = level - 1;
            let pool = &self.by_level[anchor_lvl];
            let anchor = pool[self.rng.gen_range(0..pool.len())];
            fanin.push(anchor);
        }
        while fanin.len() < arity {
            // Avoid duplicate fanins: `XOR(x, x)` is a constant and
            // `NAND(x, x)` a degenerate inverter — both breed redundant,
            // untestable faults that real mapped logic does not have.
            let mut pick = self.pick_below(level);
            for _ in 0..8 {
                if !fanin.contains(&pick) {
                    break;
                }
                pick = self.pick_below(level);
            }
            fanin.push(pick);
        }
        for &f in &fanin {
            self.mark_read(f);
        }
        let id = self.netlist.add_cell(name, kind, fanin);
        while self.by_level.len() <= level {
            self.by_level.push(Vec::new());
        }
        self.by_level[level].push(id);
        id
    }

    fn config(&self) -> &GeneratorConfig {
        self.config
    }
}

/// Generates a circuit matching `config`.
///
/// The output is deterministic in `config` (including the seed) and always
/// satisfies [`Netlist::validate`]. The flip-flop fanout statistics are
/// exact: the generated circuit has exactly
/// `round(flip_flops * unique_flg_ratio)` first-level gates and
/// `max(that, round(flip_flops * avg_ff_fanout), flip_flops)` flip-flop
/// fanout pins.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidGeneratorConfig`] for unsatisfiable
/// shapes (see [`GeneratorConfig`] field requirements).
pub fn generate_circuit(config: &GeneratorConfig) -> Result<Netlist> {
    config.validate()?;
    let mut b = Builder {
        rng: Rng::seed_from_u64(config.seed),
        netlist: Netlist::new(config.name.clone()),
        config,
        by_level: vec![Vec::new()],
        reads: Vec::new(),
    };

    // 1. Primary inputs (level 0) and flip-flops (D pins rewired at the end).
    let mut pis = Vec::with_capacity(config.primary_inputs);
    for i in 0..config.primary_inputs {
        let id = b.netlist.add_input(format!("pi{i}"));
        pis.push(id);
        b.by_level[0].push(id);
    }
    let mut ffs = Vec::with_capacity(config.flip_flops);
    for i in 0..config.flip_flops {
        // Placeholder D fanin; rewired in step 5.
        let id = b
            .netlist
            .add_cell(format!("ff{i}"), CellKind::Dff, vec![pis[0]]);
        ffs.push(id);
    }

    // 2. First-level gates with exact fanout statistics.
    let n_flg = config.first_level_gate_count();
    let total_pins = config.total_ff_pins();

    // Per-FF pin quotas: everyone gets >= 1; the hot FF gets its requested
    // share; the remainder is sprinkled randomly.
    let mut quota = vec![1usize; config.flip_flops];
    if let Some(hot) = config.hot_ff_fanout {
        quota[0] = hot.min(n_flg);
    }
    let mut assigned: usize = quota.iter().sum();
    // A pinned hot FF keeps *exactly* its requested fanout, so the random
    // sprinkle below must never land on it.
    let sprinkle_from = usize::from(config.hot_ff_fanout.is_some());
    while assigned < total_pins {
        if quota[sprinkle_from..].iter().all(|&q| q >= n_flg) {
            break; // every sprinkle-eligible FF is saturated
        }
        let i = b.rng.gen_range(sprinkle_from..config.flip_flops);
        if quota[i] < n_flg {
            quota[i] += 1;
            assigned += 1;
        }
    }
    // `assigned` may exceed `total_pins` only via the hot FF; accept that.
    let total_pins = assigned;

    // Gate capacities (arity 2..=4), bumped until they can hold all pins.
    let mut capacities: Vec<usize> = (0..n_flg)
        .map(|_| match b.rng.gen_range(0u32..100) {
            0..=49 => 2,
            50..=79 => 3,
            _ => 4,
        })
        .collect();
    while capacities.iter().sum::<usize>() < total_pins {
        let i = b.rng.gen_range(0..n_flg);
        if capacities[i] < 4 {
            capacities[i] += 1;
        }
    }

    // Deal FF pins to gates: tokens sorted by descending remaining quota,
    // each placed on the gate with most spare capacity that does not already
    // contain that FF. Guarantees the hot FF spreads across distinct gates
    // and that every gate ends up with at least one FF pin.
    let mut gate_ffs: Vec<Vec<usize>> = vec![Vec::new(); n_flg];
    {
        let mut tokens: Vec<usize> = Vec::with_capacity(total_pins);
        for (ff, &q) in quota.iter().enumerate() {
            tokens.extend(std::iter::repeat_n(ff, q));
        }
        // Highest-quota FFs first, then shuffle within for variety.
        b.rng.shuffle(&mut tokens);
        tokens.sort_by_key(|&ff| std::cmp::Reverse(quota[ff]));
        // Phase 1: one pin per gate.
        let mut next_token = 0usize;
        for slot in gate_ffs.iter_mut() {
            // One token per gate in phase 1 (trivially distinct).
            slot.push(tokens[next_token]);
            next_token += 1;
            if next_token >= tokens.len() {
                break;
            }
        }
        // Phase 2: remaining tokens to the emptiest compatible gate.
        for &ff in &tokens[next_token.min(tokens.len())..] {
            let mut best: Option<usize> = None;
            for g in 0..n_flg {
                if gate_ffs[g].len() >= capacities[g] || gate_ffs[g].contains(&ff) {
                    continue;
                }
                let spare = capacities[g] - gate_ffs[g].len();
                if best.is_none_or(|bg| spare > capacities[bg] - gate_ffs[bg].len()) {
                    best = Some(g);
                }
            }
            let g = best.unwrap_or_else(|| {
                // Capacity is guaranteed sufficient in aggregate, but the
                // distinct-FF constraint can pin us; widen the first gate
                // that can still legally take this FF.
                (0..n_flg)
                    .find(|&g| !gate_ffs[g].contains(&ff))
                    .expect("some gate lacks this flip-flop")
            });
            gate_ffs[g].push(ff);
            if gate_ffs[g].len() > capacities[g] {
                capacities[g] = gate_ffs[g].len().min(4).max(capacities[g]);
            }
        }
    }

    b.by_level.push(Vec::new());
    let mut flg_ids = Vec::with_capacity(n_flg);
    for (g, ffs_in_gate) in gate_ffs.iter().enumerate() {
        let arity = capacities[g].max(ffs_in_gate.len()).clamp(2, 4);
        let kind = pick_kind(&mut b.rng, arity);
        let mut fanin: Vec<CellId> = ffs_in_gate.iter().map(|&i| ffs[i]).collect();
        while fanin.len() < arity {
            let mut pi = pis[b.rng.gen_range(0..pis.len())];
            for _ in 0..8 {
                if !fanin.contains(&pi) {
                    break;
                }
                pi = pis[b.rng.gen_range(0..pis.len())];
            }
            fanin.push(pi);
        }
        fanin.truncate(arity);
        for &f in &fanin {
            b.mark_read(f);
        }
        let id = b.netlist.add_cell(format!("flg{g}"), kind, fanin);
        b.by_level[1].push(id);
        flg_ids.push(id);
    }

    // 3. Depth spine.
    let mut prev = flg_ids[b.rng.gen_range(0..flg_ids.len())];
    for level in 2..=config.logic_depth {
        prev = b.add_gate(format!("sp{level}"), level, &[prev]);
    }

    // 4. Filler gates, biased toward lower levels so few gates strand at
    // the very top with nothing left to read them.
    let n_rest = config.gates - n_flg - (config.logic_depth - 1);
    for i in 0..n_rest {
        let span = (config.logic_depth - 1) as f64;
        let r: f64 = b.rng.gen();
        let level = 2 + (span * r * r) as usize;
        let level = level.min(config.logic_depth);
        b.add_gate(format!("g{i}"), level, &[]);
    }

    // 5. Primary outputs and flip-flop D pins, consuming unread outputs
    // first so the circuit has as few dangling gates as possible.
    let mut unread: Vec<CellId> = b
        .by_level
        .iter()
        .skip(1)
        .flatten()
        .copied()
        .filter(|id| b.reads.get(id.index()).copied().unwrap_or(0) == 0)
        .collect();
    // Deepest unread first: top-of-cone gates have no chance of being
    // rewired into other gates later, so they get the boundary sinks.
    b.rng.shuffle(&mut unread);
    unread.sort_by_key(|id| {
        b.by_level
            .iter()
            .position(|lvl| lvl.contains(id))
            .unwrap_or(0)
    });
    let gate_pool: Vec<CellId> = b.by_level.iter().skip(1).flatten().copied().collect();

    for i in 0..config.primary_outputs {
        let driver = unread
            .pop()
            .unwrap_or_else(|| gate_pool[b.rng.gen_range(0..gate_pool.len())]);
        b.mark_read(driver);
        b.netlist.add_output(format!("po{i}"), driver);
    }
    for &ff in &ffs {
        let driver = unread
            .pop()
            .unwrap_or_else(|| gate_pool[b.rng.gen_range(0..gate_pool.len())]);
        b.mark_read(driver);
        b.netlist.set_fanin_pin(ff, 0, driver);
    }

    // 6. Observability repair: any still-unread gate output takes over a
    // non-anchor input pin of some higher-level gate whose current driver
    // can spare a reader. Keeps gate count, arity and the depth spine
    // intact while eliminating unobservable logic cones (real mapped
    // circuits have none).
    let level_of: Vec<u32> = {
        let mut lv = vec![0u32; b.netlist.cell_count()];
        for (level, cells) in b.by_level.iter().enumerate() {
            for &c in cells {
                lv[c.index()] = level as u32;
            }
        }
        lv
    };
    // Deepest-first, so shallow leftovers still find higher-level hosts.
    unread.sort_by_key(|c| level_of[c.index()]);
    let boundary_sinks: Vec<CellId> = b
        .netlist
        .outputs()
        .iter()
        .copied()
        .chain(ffs.iter().copied())
        .collect();
    while let Some(g) = unread.pop() {
        let g_level = level_of[g.index()];
        // Preferred: take over a spare (non-anchor) pin of a deeper gate
        // whose current driver can afford to lose one reader. Hosts sit at
        // level >= 2 and never read flip-flops, so the exact FF fanout
        // statistics are untouched.
        let hosts: Vec<CellId> = gate_pool
            .iter()
            .copied()
            .filter(|&h| level_of[h.index()] > g_level)
            .collect();
        let mut placed = false;
        if !hosts.is_empty() {
            let start = b.rng.gen_range(0..hosts.len());
            'host: for k in 0..hosts.len() {
                let h = hosts[(start + k) % hosts.len()];
                if b.netlist.cell(h).fanin().contains(&g) {
                    continue;
                }
                for pin in 1..b.netlist.cell(h).fanin().len() {
                    let displaced = b.netlist.cell(h).fanin()[pin];
                    if b.reads.get(displaced.index()).copied().unwrap_or(0) >= 2 {
                        b.reads[displaced.index()] -= 1;
                        b.netlist.set_fanin_pin(h, pin, g);
                        b.mark_read(g);
                        placed = true;
                        break 'host;
                    }
                }
            }
        }
        if !placed {
            // Fallback (needed for the deepest gates): steal a primary
            // output or flip-flop D whose driver has other readers.
            for &sink in &boundary_sinks {
                let driver = b.netlist.cell(sink).fanin()[0];
                if driver != g && b.reads.get(driver.index()).copied().unwrap_or(0) >= 2 {
                    b.reads[driver.index()] -= 1;
                    b.netlist.set_fanin_pin(sink, 0, g);
                    b.mark_read(g);
                    break;
                }
            }
            // If even that fails the output stays dangling (rare).
        }
    }

    debug_assert_eq!(b.netlist.gate_count(), b.config().gates);
    b.netlist.validate()?;
    Ok(b.netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{
        first_level_gates, total_ff_fanouts, CircuitStats, FanoutMap, Levelization,
    };
    use crate::profiles::{iscas89_profile, iscas89_profiles};

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            name: "gen_small".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 8,
            gates: 60,
            logic_depth: 7,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 42,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let cfg = small_config();
        let n = generate_circuit(&cfg).unwrap();
        assert_eq!(n.inputs().len(), 5);
        assert_eq!(n.outputs().len(), 4);
        assert_eq!(n.flip_flops().len(), 8);
        assert_eq!(n.gate_count(), 60);
        n.validate().unwrap();
    }

    #[test]
    fn depth_is_exact() {
        let cfg = small_config();
        let n = generate_circuit(&cfg).unwrap();
        let lv = Levelization::compute(&n).unwrap();
        assert_eq!(lv.depth() as usize, cfg.logic_depth);
    }

    #[test]
    fn fanout_statistics_are_exact() {
        let cfg = small_config();
        let n = generate_circuit(&cfg).unwrap();
        let fo = FanoutMap::compute(&n);
        let flg = first_level_gates(&n, &fo);
        assert_eq!(flg.len(), cfg.first_level_gate_count());
        assert_eq!(total_ff_fanouts(&n, &fo), cfg.total_ff_pins());
    }

    #[test]
    fn only_first_level_gates_read_flip_flops() {
        let n = generate_circuit(&small_config()).unwrap();
        let fo = FanoutMap::compute(&n);
        for &ff in n.flip_flops() {
            for &r in fo.readers(ff) {
                let kind = n.cell(r).kind();
                assert!(
                    kind.is_combinational(),
                    "flip-flop read by non-combinational {kind}"
                );
                assert!(
                    n.cell(r).name().starts_with("flg"),
                    "flip-flop read by non-FLG cell {}",
                    n.cell(r).name()
                );
            }
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = small_config();
        let a = crate::bench_io::write_bench(&generate_circuit(&cfg).unwrap());
        let b = crate::bench_io::write_bench(&generate_circuit(&cfg).unwrap());
        assert_eq!(a, b);
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let c = crate::bench_io::write_bench(&generate_circuit(&cfg2).unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn hot_flip_flop_spreads_over_distinct_gates() {
        let mut cfg = small_config();
        cfg.hot_ff_fanout = Some(9);
        cfg.gates = 80;
        let n = generate_circuit(&cfg).unwrap();
        let fo = FanoutMap::compute(&n);
        let hot = n.flip_flops()[0];
        let mut readers: Vec<CellId> = fo.readers(hot).to_vec();
        let total = readers.len();
        readers.sort();
        readers.dedup();
        assert_eq!(readers.len(), total, "hot FF feeds a gate twice");
        assert_eq!(total, 9);
    }

    #[test]
    fn rejects_impossible_shapes() {
        let mut cfg = small_config();
        cfg.gates = 5; // cannot fit FLGs + spine
        assert!(matches!(
            generate_circuit(&cfg),
            Err(NetlistError::InvalidGeneratorConfig { .. })
        ));
        let mut cfg = small_config();
        cfg.primary_inputs = 0;
        assert!(generate_circuit(&cfg).is_err());
        let mut cfg = small_config();
        cfg.logic_depth = 1;
        assert!(generate_circuit(&cfg).is_err());
    }

    #[test]
    fn all_small_profiles_generate() {
        for p in iscas89_profiles().into_iter().filter(|p| p.gates <= 700) {
            let n = generate_circuit(&p.generator_config())
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let st = CircuitStats::compute(&n).unwrap();
            assert_eq!(st.flip_flops, p.flip_flops, "{}", p.name);
            assert_eq!(st.gates, p.gates, "{}", p.name);
            assert_eq!(st.logic_depth as usize, p.logic_depth, "{}", p.name);
        }
    }

    #[test]
    fn s5378_profile_statistics() {
        let p = iscas89_profile("s5378").unwrap();
        let n = generate_circuit(&p.generator_config()).unwrap();
        let st = CircuitStats::compute(&n).unwrap();
        assert_eq!(st.flip_flops, 179);
        assert!((st.avg_ff_fanout() - p.avg_ff_fanout).abs() < 0.15);
        assert!((st.unique_fanout_ratio() - p.unique_flg_ratio).abs() < 0.1);
    }
}
