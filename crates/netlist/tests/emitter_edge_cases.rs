//! Degenerate-shape coverage for the dot and Verilog emitters: empty
//! circuits, constants-only logic and a flip-flop feeding itself. These
//! shapes come out of aggressive transforms (dead-cone removal, constant
//! propagation) and must still round-trip through the exporters without
//! panicking or emitting malformed text.

#![allow(clippy::unwrap_used)]

use flh_netlist::dot::{to_dot, DotOptions};
use flh_netlist::verilog::write_verilog;
use flh_netlist::{CellId, CellKind, Netlist};

#[test]
fn empty_circuit_emits_valid_wrappers() {
    let n = Netlist::new("empty");
    let d = to_dot(&n, &DotOptions::default());
    assert!(d.starts_with("digraph \"empty\" {"));
    assert!(d.trim_end().ends_with('}'));
    assert!(!d.contains("->"), "no edges in an empty graph");

    let v = write_verilog(&n);
    assert!(v.contains("module empty (clk);"));
    assert!(v.contains("input clk;"));
    assert!(!v.contains("always"), "no processes without state or holds");
    assert!(v.trim_end().ends_with("endmodule"));
}

#[test]
fn constants_only_circuit_assigns_literals() {
    let mut n = Netlist::new("consts");
    let c0 = n.add_cell("tie0", CellKind::Const0, Vec::new());
    let c1 = n.add_cell("tie1", CellKind::Const1, Vec::new());
    n.add_output("lo", c0);
    n.add_output("hi", c1);
    n.validate().unwrap();

    let v = write_verilog(&n);
    assert!(v.contains("module consts (clk, lo, hi);"));
    assert!(v.contains("assign tie0 = 1'b0;"));
    assert!(v.contains("assign tie1 = 1'b1;"));
    assert!(v.contains("assign lo = tie0;"));
    assert!(v.contains("assign hi = tie1;"));

    let d = to_dot(&n, &DotOptions::default());
    assert!(d.contains("\"tie0\" [label=\"tie0\\nCONST0\", shape=plaintext];"));
    assert!(d.contains("\"tie0\" -> \"lo\";"));
    assert!(d.contains("\"tie1\" -> \"hi\";"));
}

#[test]
fn single_flip_flop_self_loop_round_trips() {
    // A one-bit toggle-less loop: the FF holds its own value forever. The
    // sequential boundary makes the cycle legal; both emitters must render
    // the self-edge.
    let mut n = Netlist::new("selfloop");
    let seed = n.add_cell("seed", CellKind::Const0, Vec::new());
    let ff = n.add_cell("ff", CellKind::Dff, vec![seed]);
    n.set_fanin_pin(ff, 0, ff); // d = q
    n.add_output("q", ff);
    n.validate().unwrap();

    let v = write_verilog(&n);
    assert!(v.contains("reg ff;"));
    assert!(v.contains("ff <= ff;"));
    assert!(v.contains("assign q = ff;"));

    let d = to_dot(&n, &DotOptions::default());
    assert!(d.contains("\"ff\" -> \"ff\";"), "self-edge must be drawn");
    // Highlighting a cell in a degenerate graph still works.
    let hl = to_dot(
        &n,
        &DotOptions {
            highlight: vec![ff],
            left_to_right: true,
        },
    );
    assert!(hl.contains("rankdir=LR;"));
    assert!(hl.contains("fillcolor=\"#ffd27f\""));
}

#[test]
fn name_collisions_after_legalization_stay_unique() {
    // Two names that legalize to the same identifier ("a.b" and "a_b"):
    // the writer must uniquify, not silently merge nets.
    let mut n = Netlist::new("collide");
    let a = n.add_input("a.b");
    let g = n.add_cell("a_b", CellKind::Inv, vec![a]);
    n.add_output("y", g);
    let v = write_verilog(&n);
    assert!(v.contains("input a_b;"));
    assert!(v.contains("wire a_b__1;"));
    assert!(v.contains("assign a_b__1 = ~a_b;"));
}

#[test]
fn self_loop_via_first_cell_index_is_handled() {
    // The most degenerate construction: the very first cell referencing
    // index 0 — itself — at build time.
    let mut n = Netlist::new("ouroboros");
    let ff = n.add_cell("r", CellKind::Dff, vec![CellId::from_index(0)]);
    n.add_output("q", ff);
    n.validate().unwrap();
    let v = write_verilog(&n);
    assert!(v.contains("r <= r;"));
    let d = to_dot(&n, &DotOptions::default());
    assert!(d.contains("\"r\" -> \"r\";"));
}
