//! Maximal-length Fibonacci linear feedback shift registers.

/// Tap positions (1-indexed) of a maximal-length polynomial per width,
/// after the classic Xilinx XAPP052 table. Index = width − 2.
const TAPS: [&[u32]; 31] = [
    &[2, 1],           // 2
    &[3, 2],           // 3
    &[4, 3],           // 4
    &[5, 3],           // 5
    &[6, 5],           // 6
    &[7, 6],           // 7
    &[8, 6, 5, 4],     // 8
    &[9, 5],           // 9
    &[10, 7],          // 10
    &[11, 9],          // 11
    &[12, 6, 4, 1],    // 12
    &[13, 4, 3, 1],    // 13
    &[14, 5, 3, 1],    // 14
    &[15, 14],         // 15
    &[16, 15, 13, 4],  // 16
    &[17, 14],         // 17
    &[18, 11],         // 18
    &[19, 6, 2, 1],    // 19
    &[20, 17],         // 20
    &[21, 19],         // 21
    &[22, 21],         // 22
    &[23, 18],         // 23
    &[24, 23, 22, 17], // 24
    &[25, 22],         // 25
    &[26, 6, 2, 1],    // 26
    &[27, 5, 2, 1],    // 27
    &[28, 25],         // 28
    &[29, 27],         // 29
    &[30, 6, 4, 1],    // 30
    &[31, 28],         // 31
    &[32, 22, 2, 1],   // 32
];

/// Feedback tap mask of the maximal-length polynomial for `width` (2–32).
///
/// # Panics
///
/// Panics if `width` is outside 2–32.
pub(crate) fn tap_mask(width: u32) -> u64 {
    assert!((2..=32).contains(&width), "LFSR width {width} unsupported");
    TAPS[(width - 2) as usize]
        .iter()
        .fold(0u64, |m, &t| m | 1 << (t - 1))
}

/// A Fibonacci LFSR over a maximal-length polynomial.
///
/// The register shifts toward bit 0; the serial output is bit 0 and the
/// feedback (XOR of the tap bits) enters at the top. Every width from 2 to
/// 32 cycles through all `2^w − 1` nonzero states.
///
/// # Example
///
/// ```
/// use flh_bist::Lfsr;
///
/// let mut lfsr = Lfsr::new(8, 0x5a);
/// let bits: Vec<bool> = (0..16).map(|_| lfsr.step()).collect();
/// assert_eq!(bits.len(), 16);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lfsr {
    width: u32,
    tap_mask: u64,
    state: u64,
}

impl Lfsr {
    /// Creates an LFSR of `width` bits (2–32) seeded with `seed`.
    ///
    /// A zero seed (the lock-up state) is silently replaced by all-ones.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside 2–32.
    pub fn new(width: u32, seed: u64) -> Self {
        let tap_mask = tap_mask(width);
        let state_mask = Lfsr::mask(width);
        let mut state = seed & state_mask;
        if state == 0 {
            state = state_mask;
        }
        Lfsr {
            width,
            tap_mask,
            state,
        }
    }

    fn mask(width: u32) -> u64 {
        if width == 64 {
            !0
        } else {
            (1u64 << width) - 1
        }
    }

    /// Register width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current register contents.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one cycle and returns the serial output bit.
    ///
    /// Left-shift Fibonacci form: the MSB streams out, the XOR of the tap
    /// bits feeds the LSB (the XAPP052 tap table is specified for this
    /// orientation — the highest tap is always the register width, which
    /// keeps the transition matrix invertible).
    pub fn step(&mut self) -> bool {
        let out = self.state >> (self.width - 1) & 1 != 0;
        let feedback = ((self.state & self.tap_mask).count_ones() & 1) as u64;
        self.state = ((self.state << 1) | feedback) & Lfsr::mask(self.width);
        out
    }

    /// Convenience: the next `n` serial output bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_period_for_small_widths() {
        for width in 2..=16u32 {
            let mut lfsr = Lfsr::new(width, 1);
            let start = lfsr.state();
            let mut period = 0u64;
            loop {
                lfsr.step();
                period += 1;
                if lfsr.state() == start {
                    break;
                }
                assert!(period <= 1 << width, "width {width} cycled too long");
            }
            assert_eq!(period, (1u64 << width) - 1, "width {width}");
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let lfsr = Lfsr::new(8, 0);
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn never_reaches_the_zero_state() {
        let mut lfsr = Lfsr::new(10, 0x3ff);
        for _ in 0..(1 << 11) {
            lfsr.step();
            assert_ne!(lfsr.state(), 0);
        }
    }

    #[test]
    fn output_is_balanced() {
        let mut lfsr = Lfsr::new(16, 0xace1);
        let ones = lfsr.bits(65535).iter().filter(|&&b| b).count();
        // A maximal sequence has 2^(w-1) ones in a full period.
        assert_eq!(ones, 32768);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Lfsr::new(12, 7);
        let mut b = Lfsr::new(12, 7);
        assert_eq!(a.bits(100), b.bits(100));
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn rejects_width_1() {
        Lfsr::new(1, 1);
    }
}
