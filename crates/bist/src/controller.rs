//! Cycle-accurate test-per-scan BIST sessions.

use flh_atpg::{inject_fault, Fault};
use flh_core::DftNetlist;
use flh_netlist::{CellId, Netlist};
use flh_sim::{HoldMechanism, Logic, LogicSim, ScanChain, ScanController};

use crate::lfsr::Lfsr;
use crate::misr::Misr;

/// BIST session parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BistConfig {
    /// Number of pseudo-random patterns to apply.
    pub patterns: usize,
    /// LFSR width (2–32).
    pub lfsr_width: u32,
    /// LFSR seed.
    pub lfsr_seed: u64,
    /// MISR width (2–32).
    pub misr_width: u32,
}

impl BistConfig {
    /// A useful default: 24-bit generator, 32-bit signature.
    pub fn with_patterns(patterns: usize) -> Self {
        BistConfig {
            patterns,
            lfsr_width: 24,
            lfsr_seed: 0x00c0_ffee,
            misr_width: 32,
        }
    }
}

/// Result of a BIST session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BistOutcome {
    /// Final MISR signature.
    pub signature: u64,
    /// Patterns applied.
    pub patterns_applied: usize,
    /// Combinational toggles observed during all shift phases — zero when
    /// a holding mechanism isolates the logic, large for plain scan.
    pub comb_toggles_during_shift: u64,
    /// The applied test patterns (primary inputs then chain state, i.e.
    /// `flh_atpg::TestView` assignable order), for offline coverage
    /// analysis of the pseudo-random set.
    pub applied: Vec<Vec<bool>>,
}

fn comb_toggles(sim: &LogicSim<'_>, netlist: &Netlist) -> u64 {
    netlist
        .iter()
        .filter(|(_, c)| c.kind().is_combinational() || c.kind().is_hold_element())
        .map(|(id, _)| sim.activity().toggles(id))
        .sum()
}

/// Runs a test-per-scan BIST session on a DFT netlist with its holding
/// mechanism engaged during every shift phase.
///
/// Per pattern: the LFSR fills the scan chain (previous responses stream
/// out into the MISR), the LFSR drives the primary inputs, the holding
/// releases, the response is observed at the primary outputs (absorbed into
/// the MISR) and captured into the flip-flops, and holding re-engages. A
/// final unload compacts the last response.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
///
/// # Panics
///
/// Panics if the circuit produces unknown (`X`) observation values, which
/// cannot happen once the chain and inputs carry known values.
pub fn run_test_per_scan(
    dft: &DftNetlist,
    mechanism: &HoldMechanism,
    config: &BistConfig,
) -> flh_netlist::Result<BistOutcome> {
    run_on_netlist(&dft.netlist, mechanism, config)
}

/// Same as [`run_test_per_scan`], on a raw netlist (used for faulty copies
/// where the structural fault has been baked in).
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn run_on_netlist(
    netlist: &Netlist,
    mechanism: &HoldMechanism,
    config: &BistConfig,
) -> flh_netlist::Result<BistOutcome> {
    let mut sim = LogicSim::new(netlist)?;
    let controller = ScanController::new(ScanChain::from_netlist(netlist));
    let mut lfsr = Lfsr::new(config.lfsr_width, config.lfsr_seed);
    let mut misr = Misr::new(config.misr_width);

    let engage = |sim: &mut LogicSim<'_>| match mechanism {
        HoldMechanism::HoldCells => sim.set_hold(true),
        HoldMechanism::SupplyGating(_) => sim.set_sleep(true),
        HoldMechanism::None => {}
    };
    let release = |sim: &mut LogicSim<'_>| match mechanism {
        HoldMechanism::HoldCells => sim.set_hold(false),
        HoldMechanism::SupplyGating(_) => sim.set_sleep(false),
        HoldMechanism::None => {}
    };
    if let HoldMechanism::SupplyGating(cells) = mechanism {
        sim.set_gated_cells(cells);
    }

    let n_pi = netlist.inputs().len();
    let chain_len = controller.chain().len();
    let mut shift_toggles = 0u64;
    let mut applied = Vec::with_capacity(config.patterns);

    for _ in 0..config.patterns {
        // Shift phase: load the next pattern, stream the previous response
        // into the MISR.
        engage(&mut sim);
        let before = comb_toggles(&sim, netlist);
        let load: Vec<Logic> = lfsr
            .bits(chain_len)
            .into_iter()
            .map(Logic::from_bool)
            .collect();
        let unloaded = controller.shift_in(&mut sim, &load);
        shift_toggles += comb_toggles(&sim, netlist) - before;
        let unload_bits: Vec<bool> = unloaded
            .iter()
            .map(|v| v.to_bool().unwrap_or(false))
            .collect();
        misr.absorb(&unload_bits);

        // Apply phase: LFSR drives the primary inputs, holding releases.
        let pi_bits = lfsr.bits(n_pi);
        let pis: Vec<Logic> = pi_bits.iter().map(|&b| Logic::from_bool(b)).collect();
        sim.set_inputs(&pis);
        release(&mut sim);
        sim.settle();
        let po_bits: Vec<bool> = sim
            .outputs()
            .iter()
            .map(|v| v.to_bool().expect("known PO in BIST mode"))
            .collect();
        misr.absorb(&po_bits);

        // Record the applied (PI + state) pattern for coverage analysis.
        let mut pattern = pi_bits;
        pattern.extend(
            controller
                .read_state(&sim)
                .iter()
                .map(|v| v.to_bool().expect("known chain state")),
        );
        applied.push(pattern);

        // Capture the response.
        sim.clock_capture();
    }

    // Final unload.
    engage(&mut sim);
    let before = comb_toggles(&sim, netlist);
    let flush = vec![Logic::Zero; chain_len];
    let unloaded = controller.shift_in(&mut sim, &flush);
    shift_toggles += comb_toggles(&sim, netlist) - before;
    let unload_bits: Vec<bool> = unloaded
        .iter()
        .map(|v| v.to_bool().unwrap_or(false))
        .collect();
    misr.absorb(&unload_bits);

    Ok(BistOutcome {
        signature: misr.signature(),
        patterns_applied: config.patterns,
        comb_toggles_during_shift: shift_toggles,
        applied,
    })
}

/// Golden-vs-faulty signature comparison: injects `fault` structurally and
/// reruns the identical session.
///
/// Returns `true` when the signatures differ (fault detected). The gated
/// cell set of `dft` remains valid on the injected copy because injection
/// only appends a constant cell and rewires readers.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn signature_detects_fault(
    dft: &DftNetlist,
    mechanism: &HoldMechanism,
    config: &BistConfig,
    fault: &Fault,
) -> flh_netlist::Result<bool> {
    let golden = run_test_per_scan(dft, mechanism, config)?;
    let faulty_netlist = inject_fault(&dft.netlist, fault);
    let faulty = run_on_netlist(&faulty_netlist, mechanism, config)?;
    Ok(golden.signature != faulty.signature)
}

/// Convenience: the gated-cell list of a DFT netlist as owned ids (used by
/// callers constructing a [`HoldMechanism::SupplyGating`]).
pub fn gated_cells(dft: &DftNetlist) -> Vec<CellId> {
    dft.gated.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_atpg::{enumerate_stuck_faults, stuck_coverage, TestView};
    use flh_core::{apply_style, DftStyle};
    use flh_netlist::{generate_circuit, GeneratorConfig};

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "bist".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 9,
            gates: 80,
            logic_depth: 7,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 808,
        })
        .expect("generates")
    }

    #[test]
    fn sessions_are_deterministic() {
        let n = circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let mech = flh.hold_mechanism();
        let cfg = BistConfig::with_patterns(50);
        let a = run_test_per_scan(&flh, &mech, &cfg).unwrap();
        let b = run_test_per_scan(&flh, &mech, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn signature_is_invariant_across_holding_styles() {
        // Holding only suppresses redundant switching; the captured
        // responses — and therefore the signature — must be identical.
        let n = circuit();
        let cfg = BistConfig::with_patterns(40);
        let plain = apply_style(&n, DftStyle::PlainScan).unwrap();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let es = apply_style(&n, DftStyle::EnhancedScan).unwrap();
        let sig_plain = run_test_per_scan(&plain, &plain.hold_mechanism(), &cfg).unwrap();
        let sig_flh = run_test_per_scan(&flh, &flh.hold_mechanism(), &cfg).unwrap();
        let sig_es = run_test_per_scan(&es, &es.hold_mechanism(), &cfg).unwrap();
        assert_eq!(sig_plain.signature, sig_flh.signature);
        assert_eq!(sig_plain.signature, sig_es.signature);
        // But the shift-phase switching differs dramatically.
        assert!(sig_plain.comb_toggles_during_shift > 0);
        assert_eq!(sig_flh.comb_toggles_during_shift, 0);
        assert_eq!(sig_es.comb_toggles_during_shift, 0);
    }

    #[test]
    fn signature_detects_what_pattern_level_simulation_detects() {
        let n = circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let mech = flh.hold_mechanism();
        let cfg = BistConfig::with_patterns(60);
        let outcome = run_test_per_scan(&flh, &mech, &cfg).unwrap();

        // Which stuck-at faults should this pseudo-random set catch?
        let view = TestView::new(&flh.netlist).unwrap();
        let faults = enumerate_stuck_faults(&flh.netlist);
        let expected = stuck_coverage(&view, &faults, &outcome.applied);

        // Sample the fault list and compare against signatures (aliasing
        // probability ~2^-32 is negligible at this sample size).
        for (i, fault) in faults.iter().enumerate().step_by(9) {
            let by_signature = signature_detects_fault(&flh, &mech, &cfg, fault).unwrap();
            assert_eq!(
                by_signature, expected[i],
                "fault {fault:?}: signature says {by_signature}, simulation says {}",
                expected[i]
            );
        }
    }

    #[test]
    fn coverage_grows_with_pattern_count() {
        let n = circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let mech = flh.hold_mechanism();
        let view = TestView::new(&flh.netlist).unwrap();
        let faults = enumerate_stuck_faults(&flh.netlist);
        let coverage = |patterns: usize| -> usize {
            let cfg = BistConfig::with_patterns(patterns);
            let outcome = run_test_per_scan(&flh, &mech, &cfg).unwrap();
            stuck_coverage(&view, &faults, &outcome.applied)
                .iter()
                .filter(|&&d| d)
                .count()
        };
        let few = coverage(8);
        let many = coverage(120);
        assert!(many >= few);
        assert!(
            many as f64 > 0.6 * faults.len() as f64,
            "BIST coverage too low: {many}/{}",
            faults.len()
        );
    }

    #[test]
    fn gated_cells_helper() {
        let n = circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        assert_eq!(gated_cells(&flh), flh.gated);
    }
}
