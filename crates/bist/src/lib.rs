//! Test-per-scan BIST with FLH holding — the Section IV application.
//!
//! The paper notes: *"The proposed technique can be easily applied to
//! scan-based test-per-scan BIST circuits. … If test patterns are applied
//! to the primary inputs serially, as in the scan chain, FLH technique
//! proposed for scan path can be equally used to the fanout logic gates
//! for the primary inputs to provide a transition."*
//!
//! This crate builds that infrastructure from scratch:
//!
//! * [`Lfsr`] — maximal-length Fibonacci LFSR pattern generator
//!   (pseudo-random stimulus for scan chain and primary inputs);
//! * [`Misr`] — multiple-input signature register compacting the unloaded
//!   responses and primary outputs;
//! * [`run_test_per_scan`] — a cycle-accurate test-per-scan session on the
//!   logic simulator: shift a pattern in (holding engaged, so the
//!   combinational block stays quiet), apply, capture, and compact the
//!   unload stream into the MISR — under any of the paper's three holding
//!   styles;
//! * [`signature_detects_fault`] — golden-vs-faulty signature comparison
//!   using `flh-atpg`'s structural fault injection.

pub mod controller;
pub mod lfsr;
pub mod misr;
pub mod stumps;

pub use controller::{run_test_per_scan, signature_detects_fault, BistConfig, BistOutcome};
pub use lfsr::Lfsr;
pub use misr::Misr;
pub use stumps::{run_stumps, run_stumps_on_netlist, StumpsOutcome};
