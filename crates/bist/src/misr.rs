//! Multiple-input signature register (response compactor).

use crate::lfsr::tap_mask;

/// A MISR: a linear-feedback shift register whose state additionally
/// absorbs a parallel input word each cycle. After a BIST session its
/// state is the *signature*; a defective circuit produces a different
/// unload stream and (with aliasing probability ≈ `2^−w`) a different
/// signature.
///
/// Unlike a pattern-generating LFSR, a MISR may legally pass through the
/// all-zero state — the parallel inputs reintroduce ones — so it carries
/// its own shift logic.
///
/// # Example
///
/// ```
/// use flh_bist::Misr;
///
/// let mut golden = Misr::new(16);
/// let mut faulty = Misr::new(16);
/// golden.absorb(&[true, false, true]);
/// faulty.absorb(&[true, true, true]); // one flipped response bit
/// assert_ne!(golden.signature(), faulty.signature());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Misr {
    width: u32,
    tap_mask: u64,
    state: u64,
}

impl Misr {
    /// Creates an all-ones-initialized MISR of `width` bits (2–32).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside 2–32.
    pub fn new(width: u32) -> Self {
        Misr {
            width,
            tap_mask: tap_mask(width),
            state: if width == 64 { !0 } else { (1u64 << width) - 1 },
        }
    }

    /// Register width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Absorbs one parallel response word (any length — wider words wrap
    /// around the register).
    pub fn absorb(&mut self, bits: &[bool]) {
        // Left-shift form (matching the LFSR): the dropped MSB is a tap, so
        // the linear transition is invertible and any single-bit input error
        // can never silently annihilate.
        let feedback = ((self.state & self.tap_mask).count_ones() & 1) as u64;
        let mask = if self.width == 64 {
            !0
        } else {
            (1u64 << self.width) - 1
        };
        self.state = ((self.state << 1) | feedback) & mask;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                self.state ^= 1 << (i as u32 % self.width);
            }
        }
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_sensitivity() {
        // Flipping any single response bit in a long stream must change
        // the signature.
        let make_stream = || -> Vec<Vec<bool>> {
            (0..200)
                .map(|i| (0..5).map(|j| (i * 7 + j * 3) % 4 == 0).collect())
                .collect()
        };
        let mut golden = Misr::new(20);
        for w in make_stream() {
            golden.absorb(&w);
        }
        for flip_at in [0usize, 37, 123, 199] {
            let mut m = Misr::new(20);
            for (i, mut w) in make_stream().into_iter().enumerate() {
                if i == flip_at {
                    w[2] = !w[2];
                }
                m.absorb(&w);
            }
            assert_ne!(m.signature(), golden.signature(), "flip at {flip_at}");
        }
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Misr::new(16);
        a.absorb(&[true, false]);
        a.absorb(&[false, true]);
        let mut b = Misr::new(16);
        b.absorb(&[false, true]);
        b.absorb(&[true, false]);
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn deterministic() {
        let mut a = Misr::new(24);
        let mut b = Misr::new(24);
        for i in 0..100 {
            let w: Vec<bool> = (0..8).map(|j| (i + j) % 3 == 0).collect();
            a.absorb(&w);
            b.absorb(&w);
        }
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn zero_state_is_survivable() {
        // Drive the register to zero (by absorbing its own shifted state)
        // and confirm inputs revive it — zero is legal for a MISR.
        let mut m = Misr::new(4);
        for _ in 0..64 {
            let s = m.signature();
            let feedback = ((s & tap_mask(4)).count_ones() & 1) as u64;
            let shifted = ((s << 1) | feedback) & 0xF;
            let bits: Vec<bool> = (0..4).map(|i| shifted >> i & 1 == 1).collect();
            m.absorb(&bits);
            assert_eq!(m.signature(), 0);
            m.absorb(&[true]);
            assert_ne!(m.signature(), 0);
        }
    }

    #[test]
    fn wide_words_wrap() {
        let mut m = Misr::new(4);
        m.absorb(&[true; 12]); // 12 inputs into a 4-bit register
        let _ = m.signature(); // must not panic
    }
}
