//! STUMPS — Self-Testing Using MISR and Parallel Shift-register sequence
//! generator — the multi-chain BIST architecture used when one long chain
//! makes test time unacceptable. A single LFSR feeds every chain through a
//! phase shifter (distinct XOR taps per chain, decorrelating the streams);
//! each shift cycle moves all chains one bit, and each cycle's scan-out
//! word feeds the MISR in parallel.
//!
//! With FLH engaged during the shift phases, the combinational block stays
//! quiet exactly as in the single-chain sessions — the paper's Section IV
//! argument scales to the parallel architecture unchanged.

use flh_core::DftNetlist;
use flh_netlist::Netlist;
use flh_sim::{HoldMechanism, Logic, LogicSim, MultiScanController, ScanChain};

use crate::controller::BistConfig;
use crate::lfsr::Lfsr;
use crate::misr::Misr;

/// Phase shifter: chain `i` receives the XOR of a small, per-chain set of
/// LFSR state bits. Tap choices are fixed odd offsets, the standard cheap
/// decorrelator.
fn phase_tap(lfsr: &Lfsr, chain: usize) -> bool {
    let w = lfsr.width();
    let s = lfsr.state();
    let b = |k: u32| (s >> (k % w)) & 1;
    (b(chain as u32) ^ b(2 * chain as u32 + 1) ^ b(3 * chain as u32 + 5)) != 0
}

/// Result of a STUMPS session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StumpsOutcome {
    /// Final MISR signature.
    pub signature: u64,
    /// Patterns applied.
    pub patterns_applied: usize,
    /// Total shift cycles spent (patterns × longest chain + final unload).
    pub shift_cycles: usize,
    /// Combinational toggles during shifting (zero under FLH holding).
    pub comb_toggles_during_shift: u64,
}

/// Runs a STUMPS session over `chains` balanced parallel scan chains.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
///
/// # Panics
///
/// Panics if `chains` is zero or the circuit produces unknown observation
/// values (impossible once the chains carry known values).
pub fn run_stumps(
    dft: &DftNetlist,
    mechanism: &HoldMechanism,
    chains: usize,
    config: &BistConfig,
) -> flh_netlist::Result<StumpsOutcome> {
    run_stumps_on_netlist(&dft.netlist, mechanism, chains, config)
}

/// [`run_stumps`] on a raw netlist (for injected-fault copies).
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn run_stumps_on_netlist(
    netlist: &Netlist,
    mechanism: &HoldMechanism,
    chains: usize,
    config: &BistConfig,
) -> flh_netlist::Result<StumpsOutcome> {
    let mut sim = LogicSim::new(netlist)?;
    let chain_list = ScanChain::partition(netlist, chains);
    let chain_lens: Vec<usize> = chain_list.iter().map(|c| c.len()).collect();
    let controller = MultiScanController::new(chain_list);
    let mut lfsr = Lfsr::new(config.lfsr_width, config.lfsr_seed);
    let mut misr = Misr::new(config.misr_width);

    let engage = |sim: &mut LogicSim<'_>| match mechanism {
        HoldMechanism::HoldCells => sim.set_hold(true),
        HoldMechanism::SupplyGating(_) => sim.set_sleep(true),
        HoldMechanism::None => {}
    };
    let release = |sim: &mut LogicSim<'_>| match mechanism {
        HoldMechanism::HoldCells => sim.set_hold(false),
        HoldMechanism::SupplyGating(_) => sim.set_sleep(false),
        HoldMechanism::None => {}
    };
    if let HoldMechanism::SupplyGating(cells) = mechanism {
        sim.set_gated_cells(cells);
    }

    let comb_toggles = |sim: &LogicSim<'_>| -> u64 {
        netlist
            .iter()
            .filter(|(_, c)| c.kind().is_combinational() || c.kind().is_hold_element())
            .map(|(id, _)| sim.activity().toggles(id))
            .sum()
    };

    let n_pi = netlist.inputs().len();
    let mut shift_toggles = 0u64;
    let mut shift_cycles = 0usize;

    let load_all = |sim: &mut LogicSim<'_>, lfsr: &mut Lfsr| -> Vec<Vec<Logic>> {
        // Generate each chain's pattern from its phase-shifted stream.
        let patterns: Vec<Vec<Logic>> = chain_lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len)
                    .map(|_| {
                        // One LFSR step per chain-bit keeps streams moving.
                        let bit = phase_tap(lfsr, i);
                        lfsr.step();
                        Logic::from_bool(bit)
                    })
                    .collect()
            })
            .collect();
        controller.shift_in(sim, &patterns)
    };

    for _ in 0..config.patterns {
        engage(&mut sim);
        let before = comb_toggles(&sim);
        let unloads = load_all(&mut sim, &mut lfsr);
        shift_toggles += comb_toggles(&sim) - before;
        shift_cycles += controller.load_cycles();
        // Parallel compaction: one MISR word per unload cycle (transpose).
        let depth = unloads.iter().map(Vec::len).max().unwrap_or(0);
        for cycle in 0..depth {
            let word: Vec<bool> = unloads
                .iter()
                .map(|u| u.get(cycle).and_then(|v| v.to_bool()).unwrap_or(false))
                .collect();
            misr.absorb(&word);
        }

        let pis: Vec<Logic> = lfsr.bits(n_pi).into_iter().map(Logic::from_bool).collect();
        sim.set_inputs(&pis);
        release(&mut sim);
        sim.settle();
        let po_bits: Vec<bool> = sim
            .outputs()
            .iter()
            .map(|v| v.to_bool().expect("known PO in BIST mode"))
            .collect();
        misr.absorb(&po_bits);
        sim.clock_capture();
    }

    // Final unload.
    engage(&mut sim);
    let before = comb_toggles(&sim);
    let flush: Vec<Vec<Logic>> = chain_lens
        .iter()
        .map(|&len| vec![Logic::Zero; len])
        .collect();
    let unloads = controller.shift_in(&mut sim, &flush);
    shift_toggles += comb_toggles(&sim) - before;
    shift_cycles += controller.load_cycles();
    let depth = unloads.iter().map(Vec::len).max().unwrap_or(0);
    for cycle in 0..depth {
        let word: Vec<bool> = unloads
            .iter()
            .map(|u| u.get(cycle).and_then(|v| v.to_bool()).unwrap_or(false))
            .collect();
        misr.absorb(&word);
    }

    Ok(StumpsOutcome {
        signature: misr.signature(),
        patterns_applied: config.patterns,
        shift_cycles,
        comb_toggles_during_shift: shift_toggles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_atpg::{enumerate_stuck_faults, inject_fault};
    use flh_core::{apply_style, DftStyle};
    use flh_netlist::{generate_circuit, GeneratorConfig};

    fn circuit() -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: "stumps".into(),
            primary_inputs: 5,
            primary_outputs: 4,
            flip_flops: 12,
            gates: 90,
            logic_depth: 7,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 404,
        })
        .expect("generates")
    }

    #[test]
    fn parallel_chains_cut_shift_time() {
        let n = circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let mech = flh.hold_mechanism();
        let cfg = BistConfig::with_patterns(20);
        let one = run_stumps(&flh, &mech, 1, &cfg).unwrap();
        let four = run_stumps(&flh, &mech, 4, &cfg).unwrap();
        // 12 FFs: 12 cycles/load single-chain vs 3 cycles with 4 chains.
        assert_eq!(one.shift_cycles, 21 * 12);
        assert_eq!(four.shift_cycles, 21 * 3);
        // Both stay combinationally silent under FLH.
        assert_eq!(one.comb_toggles_during_shift, 0);
        assert_eq!(four.comb_toggles_during_shift, 0);
    }

    #[test]
    fn plain_scan_stumps_still_leaks_switching() {
        let n = circuit();
        let plain = apply_style(&n, DftStyle::PlainScan).unwrap();
        let out = run_stumps(
            &plain,
            &plain.hold_mechanism(),
            3,
            &BistConfig::with_patterns(10),
        )
        .unwrap();
        assert!(out.comb_toggles_during_shift > 0);
    }

    #[test]
    fn sessions_are_deterministic() {
        let n = circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let mech = flh.hold_mechanism();
        let cfg = BistConfig::with_patterns(25);
        let a = run_stumps(&flh, &mech, 3, &cfg).unwrap();
        let b = run_stumps(&flh, &mech, 3, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn signature_detects_an_injected_fault() {
        let n = circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let mech = flh.hold_mechanism();
        let cfg = BistConfig::with_patterns(64);
        let golden = run_stumps(&flh, &mech, 3, &cfg).unwrap();
        // Find a fault whose injected signature differs; most detectable
        // faults qualify — sample a handful.
        let faults = enumerate_stuck_faults(&flh.netlist);
        let mut detected_any = false;
        for fault in faults.iter().step_by(7).take(12) {
            let faulty_netlist = inject_fault(&flh.netlist, fault);
            let faulty = run_stumps_on_netlist(&faulty_netlist, &mech, 3, &cfg).unwrap();
            if faulty.signature != golden.signature {
                detected_any = true;
                break;
            }
        }
        assert!(
            detected_any,
            "no sampled fault changed the STUMPS signature"
        );
    }

    #[test]
    fn chain_count_changes_the_stream_but_both_work() {
        // Different chain partitions apply different stimulus (phase
        // shifter), so signatures differ; both sessions must complete with
        // full isolation.
        let n = circuit();
        let flh = apply_style(&n, DftStyle::Flh).unwrap();
        let mech = flh.hold_mechanism();
        let cfg = BistConfig::with_patterns(16);
        let two = run_stumps(&flh, &mech, 2, &cfg).unwrap();
        let six = run_stumps(&flh, &mech, 6, &cfg).unwrap();
        assert_ne!(two.signature, six.signature);
        assert_eq!(two.comb_toggles_during_shift, 0);
        assert_eq!(six.comb_toggles_during_shift, 0);
    }
}
