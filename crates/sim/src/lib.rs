//! Logic simulation substrate: 4-valued evaluation, cycle-accurate
//! sequential simulation with DFT semantics, scan-chain machinery and the
//! paper's two-pattern test-application schedule (Fig. 5(b)).
//!
//! The simulator understands the three holding mechanisms the paper
//! compares:
//!
//! * **enhanced scan / MUX-based** — [`CellKind::HoldLatch`] /
//!   [`CellKind::HoldMux`] cells in the stimulus path freeze their output
//!   while [`LogicSim::set_hold`] is active;
//! * **FLH** — a set of supply-gated first-level gates
//!   ([`LogicSim::set_gated_cells`]) freeze their output while
//!   [`LogicSim::set_sleep`] is active, exactly the semantics the keeper
//!   latch of Fig. 3 provides electrically (verified independently by
//!   `flh-analog`);
//! * **plain scan** — nothing holds, and the combinational logic toggles
//!   redundantly during shifting (the energy the paper's Section IV
//!   discussion quantifies).
//!
//! Toggle counts per cell are recorded by [`Activity`] and feed the
//! `flh-power` estimates (the paper's NanoSim/100-random-vector method).
//!
//! [`CellKind::HoldLatch`]: flh_netlist::CellKind::HoldLatch
//! [`CellKind::HoldMux`]: flh_netlist::CellKind::HoldMux

// Library code surfaces failure as Result or a documented panic; unwrap
// stays legal in tests, where a panic IS the report.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod compiled_sim;
pub mod scan;
pub mod simulator;
pub mod two_pattern;
pub mod value;

pub use compiled_sim::{
    dual8_to_logic, lane_to_logic, logic_to_dual8, logic_to_lane, logic_to_superlane,
    settle_packed, settle_packed_frozen, superlane_to_logic, CompiledSim,
};
pub use scan::{MultiScanController, ScanChain, ScanController};
pub use simulator::{Activity, LogicSim};
pub use two_pattern::{HoldMechanism, TwoPatternOutcome, TwoPatternRunner};
pub use value::Logic;
