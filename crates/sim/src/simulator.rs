//! Cycle-accurate three-valued sequential simulator with DFT semantics.

use flh_netlist::{analysis, CellId, Netlist};

use crate::value::{eval3, Logic};

/// Per-cell toggle counters, the raw material of the power estimates.
///
/// A toggle is a known→known change of a cell's stable output value. The
/// simulator is zero-delay, so glitches inside a cycle are not modelled;
/// the `flh-power` crate applies a uniform glitch factor instead, which
/// affects all compared DFT styles identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Activity {
    toggles: Vec<u64>,
    cycles: u64,
}

impl Activity {
    pub(crate) fn new(cells: usize) -> Self {
        Activity {
            toggles: vec![0; cells],
            cycles: 0,
        }
    }

    /// Records one known→known output change (crate-internal: simulators
    /// feed this).
    pub(crate) fn record_toggle(&mut self, index: usize) {
        self.toggles[index] += 1;
    }

    /// Counts one clock cycle (crate-internal: simulators feed this).
    pub(crate) fn record_cycle(&mut self) {
        self.cycles += 1;
    }

    /// Toggle count of one cell output.
    pub fn toggles(&self, id: CellId) -> u64 {
        self.toggles[id.index()]
    }

    /// Total clock cycles (functional or scan) observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average toggles per cycle for one cell (its activity factor α).
    pub fn activity_factor(&self, id: CellId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[id.index()] as f64 / self.cycles as f64
        }
    }

    /// Sum of all toggles.
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Accumulates another trace of the *same circuit* into this one:
    /// per-cell toggle counts and cycle counts add. Integer sums commute,
    /// so merging independently collected shards in any grouping yields
    /// identical totals — the determinism anchor of the sharded activity
    /// collection in `flh-power`.
    ///
    /// # Panics
    ///
    /// Panics if the traces were collected on different cell counts.
    pub fn merge(&mut self, other: &Activity) {
        assert_eq!(
            self.toggles.len(),
            other.toggles.len(),
            "activity traces of different circuits cannot merge"
        );
        for (mine, theirs) in self.toggles.iter_mut().zip(&other.toggles) {
            *mine += theirs;
        }
        self.cycles += other.cycles;
    }
}

/// Three-valued zero-delay simulator over a netlist, with the holding
/// semantics of the three DFT styles layered on top.
///
/// # Example
///
/// ```
/// use flh_netlist::{CellKind, Netlist};
/// use flh_sim::{Logic, LogicSim};
///
/// # fn main() -> Result<(), flh_netlist::NetlistError> {
/// let mut n = Netlist::new("tff");
/// let t = n.add_input("t");
/// let ff = n.add_cell("ff", CellKind::Dff, vec![t]);
/// let x = n.add_cell("x", CellKind::Xor2, vec![t, ff]);
/// n.set_fanin_pin(ff, 0, x); // toggle flip-flop
/// n.add_output("q", ff);
///
/// let mut sim = LogicSim::new(&n)?;
/// sim.set_ff_by_index(0, Logic::Zero);
/// sim.set_inputs(&[Logic::One]);
/// sim.settle();
/// sim.clock_capture();
/// assert_eq!(sim.ff_state()[0], Logic::One);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LogicSim<'a> {
    netlist: &'a Netlist,
    order: Vec<CellId>,
    values: Vec<Logic>,
    hold: bool,
    sleep: bool,
    gated: Vec<bool>,
    activity: Activity,
}

impl<'a> LogicSim<'a> {
    /// Builds a simulator for a netlist.
    ///
    /// # Errors
    ///
    /// Fails if the combinational part of the netlist is cyclic.
    pub fn new(netlist: &'a Netlist) -> flh_netlist::Result<Self> {
        let order = analysis::combinational_order(netlist)?;
        Ok(LogicSim {
            netlist,
            order,
            values: vec![Logic::X; netlist.cell_count()],
            hold: false,
            sleep: false,
            gated: vec![false; netlist.cell_count()],
            activity: Activity::new(netlist.cell_count()),
        })
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Marks the supply-gated (FLH) cells; their outputs freeze while
    /// [`LogicSim::set_sleep`] is active.
    pub fn set_gated_cells(&mut self, cells: &[CellId]) {
        self.gated = vec![false; self.netlist.cell_count()];
        for &c in cells {
            self.gated[c.index()] = true;
        }
    }

    /// Engages / releases the hold latches and hold MUXes (`HOLD` signal of
    /// the enhanced-scan and MUX-based styles).
    pub fn set_hold(&mut self, hold: bool) {
        self.hold = hold;
    }

    /// Engages / releases FLH supply gating (`SLEEP` = complement of the
    /// test-control signal TC in Fig. 3).
    pub fn set_sleep(&mut self, sleep: bool) {
        self.sleep = sleep;
    }

    /// Sets one primary input by position.
    pub fn set_input(&mut self, index: usize, value: Logic) {
        let id = self.netlist.inputs()[index];
        self.values[id.index()] = value;
    }

    /// Sets all primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the input count.
    pub fn set_inputs(&mut self, values: &[Logic]) {
        assert_eq!(values.len(), self.netlist.inputs().len());
        for (i, &v) in values.iter().enumerate() {
            self.set_input(i, v);
        }
    }

    /// Sets a flip-flop's state by its position in
    /// [`Netlist::flip_flops`](flh_netlist::Netlist::flip_flops).
    pub fn set_ff_by_index(&mut self, index: usize, value: Logic) {
        let id = self.netlist.flip_flops()[index];
        self.set_ff(id, value);
    }

    /// Sets a flip-flop's state directly (as scan shifting does).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a flip-flop.
    pub fn set_ff(&mut self, id: CellId, value: Logic) {
        assert!(
            self.netlist.cell(id).kind().is_flip_flop(),
            "{id} is not a flip-flop"
        );
        self.write(id, value);
    }

    fn write(&mut self, id: CellId, value: Logic) {
        let old = self.values[id.index()];
        if old != value {
            if old.is_known() && value.is_known() {
                self.activity.toggles[id.index()] += 1;
            }
            self.values[id.index()] = value;
        }
    }

    /// Current stable value of any cell output.
    pub fn value(&self, id: CellId) -> Logic {
        self.values[id.index()]
    }

    /// Current primary-output values.
    pub fn outputs(&self) -> Vec<Logic> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// Current flip-flop states.
    pub fn ff_state(&self) -> Vec<Logic> {
        self.netlist
            .flip_flops()
            .iter()
            .map(|&f| self.values[f.index()])
            .collect()
    }

    /// Propagates the combinational logic to a stable state (single pass in
    /// topological order; the netlist is combinationally acyclic).
    ///
    /// Holding cells keep their stored output while hold is engaged;
    /// supply-gated cells keep theirs while sleep is engaged.
    pub fn settle(&mut self) {
        for i in 0..self.order.len() {
            let id = self.order[i];
            let cell = self.netlist.cell(id);
            let kind = cell.kind();
            if kind.is_hold_element() && self.hold {
                continue; // frozen
            }
            if self.sleep && self.gated[id.index()] {
                continue; // supply-gated, keeper holds the old value
            }
            let inputs: Vec<Logic> = cell
                .fanin()
                .iter()
                .map(|&f| self.values[f.index()])
                .collect();
            let new = eval3(kind, &inputs);
            self.write(id, new);
        }
    }

    /// Functional clock edge: every flip-flop captures its D input, then
    /// the combinational logic settles on the new state. Counts one cycle.
    pub fn clock_capture(&mut self) {
        let captured: Vec<(CellId, Logic)> = self
            .netlist
            .flip_flops()
            .iter()
            .map(|&ff| (ff, self.values[self.netlist.cell(ff).fanin()[0].index()]))
            .collect();
        for (ff, v) in captured {
            self.write(ff, v);
        }
        self.activity.cycles += 1;
        self.settle();
    }

    /// Counts one scan-shift cycle (the shifting itself is done by
    /// [`crate::ScanController`]).
    pub(crate) fn bump_cycle(&mut self) {
        self.activity.cycles += 1;
    }

    /// Accumulated toggle statistics.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// Clears the toggle statistics (keeps the circuit state).
    pub fn reset_activity(&mut self) {
        self.activity = Activity::new(self.netlist.cell_count());
    }

    /// Runs `vectors` random-ish functional cycles is the caller's job; this
    /// convenience applies one vector of primary inputs, settles, and
    /// clocks.
    pub fn apply_vector(&mut self, inputs: &[Logic]) {
        self.set_inputs(inputs);
        self.settle();
        self.clock_capture();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::CellKind;

    /// 2-bit counter: ff0 toggles every cycle, ff1 toggles when ff0 = 1.
    fn counter() -> Netlist {
        let mut n = Netlist::new("cnt2");
        let en = n.add_input("en");
        let ff0 = n.add_cell("ff0", CellKind::Dff, vec![en]);
        let ff1 = n.add_cell("ff1", CellKind::Dff, vec![en]);
        let d0 = n.add_cell("d0", CellKind::Xor2, vec![ff0, en]);
        let d1 = n.add_cell("c01", CellKind::And2, vec![ff0, en]);
        let d1x = n.add_cell("d1", CellKind::Xor2, vec![ff1, d1]);
        n.set_fanin_pin(ff0, 0, d0);
        n.set_fanin_pin(ff1, 0, d1x);
        n.add_output("q0", ff0);
        n.add_output("q1", ff1);
        n
    }

    #[test]
    fn counter_counts() {
        let n = counter();
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_ff_by_index(0, Logic::Zero);
        sim.set_ff_by_index(1, Logic::Zero);
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        let states: Vec<(Logic, Logic)> = (0..4)
            .map(|_| {
                sim.clock_capture();
                let s = sim.ff_state();
                (s[0], s[1])
            })
            .collect();
        use Logic::{One as I, Zero as O};
        assert_eq!(states, vec![(I, O), (O, I), (I, I), (O, O)]);
    }

    #[test]
    fn x_initial_state_propagates_until_reset() {
        let n = counter();
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        assert_eq!(sim.outputs(), vec![Logic::X, Logic::X]);
    }

    #[test]
    fn activity_counts_toggles_and_cycles() {
        let n = counter();
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_ff_by_index(0, Logic::Zero);
        sim.set_ff_by_index(1, Logic::Zero);
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        sim.reset_activity();
        for _ in 0..8 {
            sim.clock_capture();
        }
        let ff0 = n.find("ff0").unwrap();
        let ff1 = n.find("ff1").unwrap();
        assert_eq!(sim.activity().cycles(), 8);
        assert_eq!(sim.activity().toggles(ff0), 8); // toggles every cycle
        assert_eq!(sim.activity().toggles(ff1), 4); // half rate
        assert!((sim.activity().activity_factor(ff0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hold_latch_freezes_under_hold() {
        let mut n = Netlist::new("hold");
        let a = n.add_input("a");
        let h = n.add_cell("h", CellKind::HoldLatch, vec![a]);
        let g = n.add_cell("g", CellKind::Inv, vec![h]);
        n.add_output("y", g);
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        assert_eq!(sim.value(g), Logic::Zero);
        sim.set_hold(true);
        sim.set_inputs(&[Logic::Zero]);
        sim.settle();
        // Latch holds 1, so the inverter stays at 0.
        assert_eq!(sim.value(h), Logic::One);
        assert_eq!(sim.value(g), Logic::Zero);
        sim.set_hold(false);
        sim.settle();
        assert_eq!(sim.value(g), Logic::One);
    }

    #[test]
    fn supply_gated_cell_freezes_under_sleep() {
        let mut n = Netlist::new("flhsem");
        let a = n.add_input("a");
        let flg = n.add_cell("flg", CellKind::Inv, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Inv, vec![flg]);
        n.add_output("y", g2);
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_gated_cells(&[flg]);
        sim.set_inputs(&[Logic::Zero]);
        sim.settle();
        assert_eq!(sim.value(flg), Logic::One);
        sim.set_sleep(true);
        sim.set_inputs(&[Logic::One]); // input switches during sleep (Fig. 4)
        sim.settle();
        assert_eq!(sim.value(flg), Logic::One, "keeper must hold the state");
        assert_eq!(sim.value(g2), Logic::Zero);
        sim.set_sleep(false);
        sim.settle();
        assert_eq!(sim.value(flg), Logic::Zero);
    }

    #[test]
    fn ungated_cells_ignore_sleep() {
        let mut n = Netlist::new("ungated");
        let a = n.add_input("a");
        let g = n.add_cell("g", CellKind::Inv, vec![a]);
        n.add_output("y", g);
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_sleep(true);
        sim.set_inputs(&[Logic::Zero]);
        sim.settle();
        assert_eq!(sim.value(g), Logic::One);
    }

    #[test]
    #[should_panic(expected = "is not a flip-flop")]
    fn set_ff_rejects_non_ff() {
        let n = counter();
        let mut sim = LogicSim::new(&n).unwrap();
        let d0 = n.find("d0").unwrap();
        sim.set_ff(d0, Logic::One);
    }

    #[test]
    fn hold_and_sleep_are_independent_controls() {
        // A circuit with both a hold latch and a gated cell: each control
        // freezes only its own mechanism.
        let mut n = Netlist::new("both");
        let a = n.add_input("a");
        let hl = n.add_cell("hl", CellKind::HoldLatch, vec![a]);
        let flg = n.add_cell("flg", CellKind::Inv, vec![a]);
        let g = n.add_cell("g", CellKind::Xor2, vec![hl, flg]);
        n.add_output("y", g);
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_gated_cells(&[flg]);
        sim.set_inputs(&[Logic::Zero]);
        sim.settle();
        assert_eq!(sim.value(hl), Logic::Zero);
        assert_eq!(sim.value(flg), Logic::One);

        // Only hold: the latch freezes, the gated inverter follows.
        sim.set_hold(true);
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        assert_eq!(sim.value(hl), Logic::Zero, "latch must hold");
        assert_eq!(sim.value(flg), Logic::Zero, "gated cell must follow");

        // Only sleep: the reverse.
        sim.set_hold(false);
        sim.set_sleep(true);
        sim.set_inputs(&[Logic::Zero]);
        sim.settle();
        assert_eq!(sim.value(hl), Logic::Zero, "latch follows again");
        assert_eq!(sim.value(flg), Logic::Zero, "gated cell must hold");
    }

    #[test]
    fn reset_activity_clears_counts_but_not_state() {
        let n = counter();
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_ff_by_index(0, Logic::Zero);
        sim.set_ff_by_index(1, Logic::Zero);
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        sim.clock_capture();
        let state = sim.ff_state();
        assert!(sim.activity().total_toggles() > 0);
        sim.reset_activity();
        assert_eq!(sim.activity().total_toggles(), 0);
        assert_eq!(sim.activity().cycles(), 0);
        assert_eq!(sim.ff_state(), state, "state must survive the reset");
    }

    #[test]
    fn regated_cell_set_replaces_the_old_one() {
        let mut n = Netlist::new("regate");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::Inv, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Buf, vec![a]);
        n.add_output("y", g1);
        n.add_output("z", g2);
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_gated_cells(&[g1]);
        sim.set_gated_cells(&[g2]); // replaces, not extends
        sim.set_inputs(&[Logic::Zero]);
        sim.settle();
        sim.set_sleep(true);
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        assert_eq!(sim.value(g1), Logic::Zero, "g1 no longer gated: follows");
        assert_eq!(sim.value(g2), Logic::Zero, "g2 gated: holds");
    }

    #[test]
    fn x_transitions_do_not_count_as_toggles() {
        let n = counter();
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_inputs(&[Logic::One]);
        sim.settle(); // everything X -> stays X or becomes known
        let total_before = sim.activity().total_toggles();
        assert_eq!(total_before, 0, "X->known must not count");
    }
}
