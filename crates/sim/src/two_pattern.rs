//! The paper's two-pattern test-application schedule (Fig. 5(b)).
//!
//! Sequence for one (V1, V2) pair under enhanced-scan-style application:
//!
//! 1. engage holding, scan in V1's state part;
//! 2. release holding, apply V1's primary-input part — the combinational
//!    circuit stabilizes on V1 (initialization);
//! 3. engage holding, scan in V2's state part — the combinational circuit
//!    must keep seeing V1;
//! 4. apply V2's primary-input part and release holding — the V1→V2
//!    transition *launches* — and capture the response at the rated clock;
//! 5. the captured state unloads while the next V1 loads.
//!
//! [`TwoPatternRunner`] executes this schedule under any of the three
//! holding mechanisms and reports both the functional outcome and the
//! isolation quality (combinational toggles during step 3, which measure
//! the redundant-switching suppression of Section IV).

use flh_netlist::{CellId, Netlist};

use crate::scan::{ScanChain, ScanController};
use crate::simulator::LogicSim;
use crate::value::Logic;

/// Which holding hardware the circuit carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HoldMechanism {
    /// Hold latches / hold MUXes in the stimulus path (enhanced scan and
    /// MUX-based styles): driven by the `HOLD` control.
    HoldCells,
    /// FLH supply gating of the listed first-level gates, driven by the
    /// test-control signal (no extra control, per the paper).
    SupplyGating(Vec<CellId>),
    /// No holding hardware (plain scan): the schedule still runs, but the
    /// circuit cannot keep V1 while V2 shifts.
    None,
}

/// Result of one two-pattern application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoPatternOutcome {
    /// Primary-output values after the launch settled (pre-capture).
    pub po_response: Vec<Logic>,
    /// Flip-flop contents after the capture clock (the state part of the
    /// circuit's response to V2).
    pub captured: Vec<Logic>,
    /// Combinational toggles observed while V2 was shifting in (step 3);
    /// zero means perfect isolation of the combinational block.
    pub comb_toggles_during_shift: u64,
    /// Stimulus values the combinational block saw immediately before the
    /// launch — must equal V1's state part when holding works.
    pub held_state: Vec<Logic>,
}

/// Executes Fig. 5(b) schedules on a simulator.
#[derive(Clone, Debug)]
pub struct TwoPatternRunner {
    controller: ScanController,
    mechanism: HoldMechanism,
}

impl TwoPatternRunner {
    /// Creates a runner over a scan chain with the given holding mechanism.
    pub fn new(chain: ScanChain, mechanism: HoldMechanism) -> Self {
        TwoPatternRunner {
            controller: ScanController::new(chain),
            mechanism,
        }
    }

    /// Convenience: chain all flip-flops of `netlist` in declaration order.
    pub fn for_netlist(netlist: &Netlist, mechanism: HoldMechanism) -> Self {
        TwoPatternRunner::new(ScanChain::from_netlist(netlist), mechanism)
    }

    /// The scan controller in use.
    pub fn controller(&self) -> &ScanController {
        &self.controller
    }

    fn engage(&self, sim: &mut LogicSim<'_>) {
        match &self.mechanism {
            HoldMechanism::HoldCells => sim.set_hold(true),
            HoldMechanism::SupplyGating(_) => sim.set_sleep(true),
            HoldMechanism::None => {}
        }
    }

    fn release(&self, sim: &mut LogicSim<'_>) {
        match &self.mechanism {
            HoldMechanism::HoldCells => sim.set_hold(false),
            HoldMechanism::SupplyGating(_) => sim.set_sleep(false),
            HoldMechanism::None => {}
        }
    }

    /// Prepares `sim` for this mechanism (installs the gated-cell set).
    pub fn install(&self, sim: &mut LogicSim<'_>) {
        if let HoldMechanism::SupplyGating(cells) = &self.mechanism {
            sim.set_gated_cells(cells);
        }
    }

    /// Runs one full (V1, V2) application and returns the outcome.
    ///
    /// `v1_pi`/`v2_pi` are the primary-input parts; `v1_state`/`v2_state`
    /// the state (scan) parts in chain-position order.
    ///
    /// # Panics
    ///
    /// Panics on input/state length mismatches.
    pub fn apply(
        &self,
        sim: &mut LogicSim<'_>,
        v1_pi: &[Logic],
        v1_state: &[Logic],
        v2_pi: &[Logic],
        v2_state: &[Logic],
    ) -> TwoPatternOutcome {
        self.install(sim);

        // 1. Scan in V1 with the combinational block isolated.
        self.engage(sim);
        self.controller.shift_in(sim, v1_state);

        // 2. Initialize: release holding, apply V1's PI part.
        self.release(sim);
        sim.set_inputs(v1_pi);
        sim.settle();

        // 3. Hold V1 while V2 shifts in; measure isolation.
        self.engage(sim);
        let toggles_before = comb_toggles(sim);
        self.controller.shift_in(sim, v2_state);
        let comb_toggles_during_shift = comb_toggles(sim) - toggles_before;
        let held_state = self.sample_stimulus(sim);

        // 4. Launch V1→V2 and capture at the rated clock.
        sim.set_inputs(v2_pi);
        self.release(sim);
        sim.settle();
        let po_response = sim.outputs();
        sim.clock_capture();
        let captured = self.controller.read_state(sim);

        TwoPatternOutcome {
            po_response,
            captured,
            comb_toggles_during_shift,
            held_state,
        }
    }

    /// Samples what the combinational block currently "sees" as its state
    /// stimulus: the held values at the holding boundary. For hold cells
    /// that is the hold-cell outputs; for FLH the first-level-gate *inputs
    /// as witnessed by their frozen outputs* cannot be read directly, so we
    /// sample the flip-flop values the block last consumed — reconstructed
    /// from the frozen boundary. For `None` it is the live flip-flop state.
    fn sample_stimulus(&self, sim: &LogicSim<'_>) -> Vec<Logic> {
        match &self.mechanism {
            HoldMechanism::HoldCells => {
                let netlist = sim.netlist();
                netlist
                    .iter()
                    .filter(|(_, c)| c.kind().is_hold_element())
                    .map(|(id, _)| sim.value(id))
                    .collect()
            }
            HoldMechanism::SupplyGating(cells) => cells.iter().map(|&c| sim.value(c)).collect(),
            HoldMechanism::None => self.controller.read_state(sim),
        }
    }
}

/// Total toggles over combinational cells (excludes flip-flops, whose
/// shifting activity is intentional).
fn comb_toggles(sim: &LogicSim<'_>) -> u64 {
    sim.netlist()
        .iter()
        .filter(|(_, c)| c.kind().is_combinational())
        .map(|(id, _)| sim.activity().toggles(id))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::CellKind;

    /// Plain circuit: two FFs into a NAND2, PI into an XOR with the NAND.
    fn base_circuit() -> Netlist {
        let mut n = Netlist::new("base");
        let a = n.add_input("a");
        let f0 = n.add_cell("f0", CellKind::Dff, vec![a]);
        let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
        let g = n.add_cell("g", CellKind::Nand2, vec![f0, f1]);
        let h = n.add_cell("h", CellKind::Xor2, vec![g, a]);
        n.set_fanin_pin(f0, 0, h);
        n.set_fanin_pin(f1, 0, g);
        n.add_output("y", h);
        n
    }

    /// Same function with hold latches spliced between FFs and logic.
    fn hold_latch_circuit() -> Netlist {
        let mut n = Netlist::new("held");
        let a = n.add_input("a");
        let f0 = n.add_cell("f0", CellKind::Dff, vec![a]);
        let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
        let h0 = n.add_cell("h0", CellKind::HoldLatch, vec![f0]);
        let h1 = n.add_cell("h1", CellKind::HoldLatch, vec![f1]);
        let g = n.add_cell("g", CellKind::Nand2, vec![h0, h1]);
        let h = n.add_cell("h", CellKind::Xor2, vec![g, a]);
        n.set_fanin_pin(f0, 0, h);
        n.set_fanin_pin(f1, 0, g);
        n.add_output("y", h);
        n
    }

    use Logic::{One as I, Zero as O};

    #[test]
    fn enhanced_scan_isolates_shift_and_computes_v2_response() {
        let n = hold_latch_circuit();
        let mut sim = LogicSim::new(&n).unwrap();
        let runner = TwoPatternRunner::for_netlist(&n, HoldMechanism::HoldCells);
        let out = runner.apply(&mut sim, &[O], &[I, I], &[I], &[O, I]);
        assert_eq!(out.comb_toggles_during_shift, 0, "shift must be isolated");
        // Held stimulus = V1 state (latch outputs).
        assert_eq!(out.held_state, vec![I, I]);
        // Response to V2: g = NAND(0,1) = 1, y = XOR(1, a=1) = 0;
        // captured f0 = h = 0, f1 = g = 1.
        assert_eq!(out.po_response, vec![O]);
        assert_eq!(out.captured, vec![O, I]);
    }

    #[test]
    fn flh_isolates_shift_and_computes_v2_response() {
        let n = base_circuit();
        let g = n.find("g").unwrap();
        let mut sim = LogicSim::new(&n).unwrap();
        let runner = TwoPatternRunner::for_netlist(&n, HoldMechanism::SupplyGating(vec![g]));
        let out = runner.apply(&mut sim, &[O], &[I, I], &[I], &[O, I]);
        // Only the XOR sits beyond the gated NAND; it may not toggle while
        // V2 shifts because its NAND input is frozen and the PI is stable.
        assert_eq!(out.comb_toggles_during_shift, 0);
        // The frozen boundary held NAND(V1) = NAND(1,1) = 0.
        assert_eq!(out.held_state, vec![O]);
        assert_eq!(out.po_response, vec![O]);
        assert_eq!(out.captured, vec![O, I]);
    }

    #[test]
    fn plain_scan_leaks_activity_into_logic() {
        let n = base_circuit();
        let mut sim = LogicSim::new(&n).unwrap();
        let runner = TwoPatternRunner::for_netlist(&n, HoldMechanism::None);
        // Patterns chosen so shifting V2 over V1 churns the NAND inputs.
        let out = runner.apply(&mut sim, &[O], &[I, I], &[I], &[O, I]);
        assert!(
            out.comb_toggles_during_shift > 0,
            "plain scan should disturb the combinational block"
        );
        // The final response is still f(V2): holding only affects *when*
        // transitions happen, not the settled result.
        assert_eq!(out.po_response, vec![O]);
        assert_eq!(out.captured, vec![O, I]);
    }

    #[test]
    fn flh_and_enhanced_scan_agree_on_all_small_patterns() {
        let base = base_circuit();
        let held = hold_latch_circuit();
        let g = base.find("g").unwrap();
        for pattern in 0..64u32 {
            let bits: Vec<Logic> = (0..6)
                .map(|i| Logic::from_bool(pattern >> i & 1 == 1))
                .collect();
            let (v1_pi, v1_state, v2_pi, v2_state) =
                (&bits[0..1], &bits[1..3], &bits[3..4], &bits[4..6]);

            let mut sim_b = LogicSim::new(&base).unwrap();
            let run_b = TwoPatternRunner::for_netlist(&base, HoldMechanism::SupplyGating(vec![g]));
            let out_b = run_b.apply(&mut sim_b, v1_pi, v1_state, v2_pi, v2_state);

            let mut sim_h = LogicSim::new(&held).unwrap();
            let run_h = TwoPatternRunner::for_netlist(&held, HoldMechanism::HoldCells);
            let out_h = run_h.apply(&mut sim_h, v1_pi, v1_state, v2_pi, v2_state);

            assert_eq!(out_b.po_response, out_h.po_response, "pattern {pattern}");
            assert_eq!(out_b.captured, out_h.captured, "pattern {pattern}");
            assert_eq!(out_b.comb_toggles_during_shift, 0);
            assert_eq!(out_h.comb_toggles_during_shift, 0);
        }
    }
}
