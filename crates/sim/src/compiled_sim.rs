//! Bytecode-driven simulation over the lowered [`Program`].
//!
//! Two evaluators live here:
//!
//! * [`CompiledSim`] — a scalar three-valued sequential simulator with the
//!   exact semantics of [`LogicSim`](crate::LogicSim) (hold latches, FLH
//!   supply gating, toggle accounting). Since codegen v2 it no longer
//!   interprets the CSR IR cell by cell: construction lowers the circuit
//!   to a flat fused-opcode [`Program`] (or accepts a pre-lowered one) and
//!   `settle` executes it over [`Dual8`] dual-rail words — the whole value
//!   file of a mid-size circuit stays in L1.
//! * [`settle_packed`] / [`settle_packed_frozen`] — lane-parallel dual-rail
//!   settles, generic over [`LaneWord`]: [`Dual64`] for the classic 64-lane
//!   kernel and [`Dual256`] for the manual `u64x4` superword (256 patterns
//!   per instruction), both with exact Kleene X semantics.
//!
//! All engines are cross-checked bit-for-bit against the event-driven
//! simulator and `eval3` by the crate tests and
//! `tests/compiled_equivalence.rs`.

use std::sync::Arc;

use flh_netlist::{CellId, CompiledCircuit, Dual256, Dual64, Dual8, LaneWord, Program};

use crate::simulator::Activity;
use crate::value::Logic;

/// Three-valued sequential simulator executing the lowered bytecode.
///
/// Mirrors the [`LogicSim`](crate::LogicSim) API and semantics exactly —
/// same values, same captured flip-flop states, same toggle counts — so the
/// two can be swapped freely (and cross-checked; see
/// `tests/compiled_equivalence.rs`).
///
/// ```
/// use flh_netlist::{CellKind, CompiledCircuit, Netlist};
/// use flh_sim::{CompiledSim, Logic};
///
/// let mut n = Netlist::new("tff");
/// let t = n.add_input("t");
/// let ff = n.add_cell("ff", CellKind::Dff, vec![t]);
/// let x = n.add_cell("x", CellKind::Xor2, vec![t, ff]);
/// n.set_fanin_pin(ff, 0, x);
/// n.add_output("q", ff);
///
/// let c = CompiledCircuit::compile(&n).unwrap();
/// let mut sim = CompiledSim::new(&c);
/// sim.set_ff_by_index(0, Logic::Zero);
/// sim.set_inputs(&[Logic::One]);
/// sim.settle();
/// sim.clock_capture();
/// assert_eq!(sim.ff_state()[0], Logic::One);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledSim<'c> {
    compiled: &'c CompiledCircuit,
    program: Arc<Program>,
    values: Vec<Dual8>,
    hold: bool,
    sleep: bool,
    gated: Vec<bool>,
    activity: Activity,
    scratch: Vec<Dual8>,
}

/// Converts a [`Logic`] value to the replicated [`Dual8`] storage form.
#[inline]
pub fn logic_to_dual8(v: Logic) -> Dual8 {
    match v {
        Logic::One => Dual8::top(),
        Logic::Zero => Dual8::bot(),
        Logic::X => Dual8::all_x(),
    }
}

/// Reads a replicated [`Dual8`] word back as a [`Logic`] value.
#[inline]
pub fn dual8_to_logic(v: Dual8) -> Logic {
    if v.one & 1 != 0 {
        Logic::One
    } else if v.zero & 1 != 0 {
        Logic::Zero
    } else {
        Logic::X
    }
}

impl<'c> CompiledSim<'c> {
    /// Builds a simulator over a compiled circuit, lowering it to bytecode
    /// (already validated acyclic at compile time, so construction cannot
    /// fail).
    pub fn new(compiled: &'c CompiledCircuit) -> Self {
        Self::with_program(compiled, Program::lower_shared(compiled))
    }

    /// Builds a simulator over an already-lowered program (the cache path:
    /// lower once, simulate many times).
    ///
    /// # Panics
    ///
    /// Panics if `program` was not lowered from a circuit with the same
    /// cell count.
    pub fn with_program(compiled: &'c CompiledCircuit, program: Arc<Program>) -> Self {
        assert_eq!(
            program.cell_words(),
            compiled.cell_count(),
            "program does not match the circuit"
        );
        let n = compiled.cell_count();
        let scratch = vec![Dual8::all_x(); program.scratch_words()];
        CompiledSim {
            compiled,
            program,
            values: vec![Dual8::all_x(); n],
            hold: false,
            sleep: false,
            gated: vec![false; n],
            activity: Activity::new(n),
            scratch,
        }
    }

    /// The compiled circuit this simulator walks.
    pub fn compiled(&self) -> &'c CompiledCircuit {
        self.compiled
    }

    /// The lowered program this simulator executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Marks the supply-gated (FLH) cells; their outputs freeze while
    /// [`CompiledSim::set_sleep`] is active. Replaces any previous set.
    pub fn set_gated_cells(&mut self, cells: &[CellId]) {
        self.gated.fill(false);
        for &c in cells {
            self.gated[c.index()] = true;
        }
    }

    /// Engages / releases the hold latches and hold MUXes.
    pub fn set_hold(&mut self, hold: bool) {
        self.hold = hold;
    }

    /// Engages / releases FLH supply gating.
    pub fn set_sleep(&mut self, sleep: bool) {
        self.sleep = sleep;
    }

    /// Sets one primary input by position.
    pub fn set_input(&mut self, index: usize, value: Logic) {
        let id = self.compiled.inputs()[index];
        self.values[id as usize] = logic_to_dual8(value);
    }

    /// Sets all primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the input count.
    pub fn set_inputs(&mut self, values: &[Logic]) {
        assert_eq!(values.len(), self.compiled.inputs().len());
        for (i, &v) in values.iter().enumerate() {
            self.set_input(i, v);
        }
    }

    /// Sets a flip-flop's state by its position in the flip-flop registry.
    pub fn set_ff_by_index(&mut self, index: usize, value: Logic) {
        let id = self.compiled.flip_flops()[index];
        self.set_ff(CellId::from_index(id as usize), value);
    }

    /// Sets a flip-flop's state directly (as scan shifting does).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a flip-flop.
    pub fn set_ff(&mut self, id: CellId, value: Logic) {
        assert!(
            self.compiled.kind(id.index() as u32).is_flip_flop(),
            "{id} is not a flip-flop"
        );
        self.write(id.index() as u32, logic_to_dual8(value));
    }

    #[inline]
    fn write(&mut self, id: u32, value: Dual8) {
        let old = self.values[id as usize];
        if old != value {
            if old.known() != 0 && value.known() != 0 {
                self.activity.record_toggle(id as usize);
            }
            self.values[id as usize] = value;
        }
    }

    /// Current stable value of any cell output.
    pub fn value(&self, id: CellId) -> Logic {
        dual8_to_logic(self.values[id.index()])
    }

    /// Current primary-output values.
    pub fn outputs(&self) -> Vec<Logic> {
        self.compiled
            .outputs()
            .iter()
            .map(|&o| dual8_to_logic(self.values[o as usize]))
            .collect()
    }

    /// Current flip-flop states.
    pub fn ff_state(&self) -> Vec<Logic> {
        self.compiled
            .flip_flops()
            .iter()
            .map(|&f| dual8_to_logic(self.values[f as usize]))
            .collect()
    }

    /// Propagates the combinational logic to a stable state by executing
    /// the lowered program (level-major fused opcodes, one pass).
    ///
    /// Holding cells keep their stored output while hold is engaged;
    /// supply-gated cells keep theirs while sleep is engaged. Value and
    /// toggle semantics are identical to
    /// [`LogicSim::settle`](crate::LogicSim::settle).
    pub fn settle(&mut self) {
        let program = Arc::clone(&self.program);
        let hold = self.hold;
        let sleep = self.sleep;
        let CompiledSim {
            values,
            scratch,
            gated,
            activity,
            ..
        } = self;
        let mut evals = 0u64;
        let insts = program.execute_with(values, scratch, |cell, old, new, holdable| {
            if (hold && holdable) || (sleep && gated[cell as usize]) {
                return old; // frozen: keeper / hold element keeps its value
            }
            evals += 1;
            if old != new && old.known() != 0 && new.known() != 0 {
                activity.record_toggle(cell as usize);
            }
            new
        });
        if flh_obs::enabled() {
            // Cells evaluated and instructions executed per settle depend
            // only on circuit + hold/sleep state — deterministic work, one
            // gated flush per settle.
            flh_obs::add(flh_obs::Counter::SimCellEvals, evals);
            flh_obs::add(flh_obs::Counter::SimBytecodeInsts, insts);
        }
    }

    /// Functional clock edge: every flip-flop captures its D input, then
    /// the combinational logic settles on the new state. Counts one cycle.
    pub fn clock_capture(&mut self) {
        for i in 0..self.compiled.flip_flops().len() {
            let ff = self.compiled.flip_flops()[i];
            let d = self.compiled.fanin(ff)[0];
            let v = self.values[d as usize];
            self.write(ff, v);
        }
        self.activity.record_cycle();
        self.settle();
    }

    /// Accumulated toggle statistics.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// Clears the toggle statistics (keeps the circuit state).
    pub fn reset_activity(&mut self) {
        self.activity = Activity::new(self.compiled.cell_count());
    }

    /// Applies one vector of primary inputs, settles, and clocks.
    pub fn apply_vector(&mut self, inputs: &[Logic]) {
        self.set_inputs(inputs);
        self.settle();
        self.clock_capture();
    }
}

/// Converts a [`Logic`] value to one dual-rail lane.
#[inline]
pub fn logic_to_lane(v: Logic, lane: u32) -> Dual64 {
    let bit = 1u64 << lane;
    match v {
        Logic::One => Dual64 { one: bit, zero: 0 },
        Logic::Zero => Dual64 { one: 0, zero: bit },
        Logic::X => Dual64 { one: 0, zero: 0 },
    }
}

/// Reads one lane of a dual-rail word back into a [`Logic`] value.
#[inline]
pub fn lane_to_logic(v: Dual64, lane: u32) -> Logic {
    let bit = 1u64 << lane;
    if v.one & bit != 0 {
        Logic::One
    } else if v.zero & bit != 0 {
        Logic::Zero
    } else {
        Logic::X
    }
}

/// Converts a [`Logic`] value to one lane of a 256-wide superword.
#[inline]
pub fn logic_to_superlane(v: Logic, lane: u32) -> Dual256 {
    let mut w = Dual256::all_x();
    let limb = (lane / 64) as usize;
    let bit = 1u64 << (lane % 64);
    match v {
        Logic::One => w.one[limb] = bit,
        Logic::Zero => w.zero[limb] = bit,
        Logic::X => {}
    }
    w
}

/// Reads one lane of a 256-wide superword back into a [`Logic`] value.
#[inline]
pub fn superlane_to_logic(v: Dual256, lane: u32) -> Logic {
    let limb = (lane / 64) as usize;
    let bit = 1u64 << (lane % 64);
    if v.one[limb] & bit != 0 {
        Logic::One
    } else if v.zero[limb] & bit != 0 {
        Logic::Zero
    } else {
        Logic::X
    }
}

/// Lane-parallel dual-rail settle: one bytecode pass over `values`.
///
/// `values` is indexed by dense cell id; sources (primary inputs, flip-flop
/// outputs) are treated as fixed stimuli and left untouched, every evaluable
/// cell is recomputed. Each lane carries an independent pattern with exact
/// Kleene X semantics — lane `k` of the result equals a scalar `eval3`
/// sweep of lane `k`'s inputs (proven by the crate tests). Instantiate with
/// [`Dual64`] for 64 lanes or [`Dual256`] for the 256-lane superword.
///
/// # Panics
///
/// Panics if `values.len() != program.cell_words()`.
pub fn settle_packed<W: LaneWord>(program: &Program, values: &mut [W]) {
    let mut scratch = vec![W::bot(); program.scratch_words()];
    let insts = program.execute(values, &mut scratch);
    if flh_obs::enabled() {
        // The instruction stream is fixed per circuit — deterministic work.
        flh_obs::add(flh_obs::Counter::SimBytecodeInsts, insts);
    }
}

/// [`settle_packed`] with a freeze mask: cells with `frozen[id] == true`
/// keep their current `values` entry instead of being re-evaluated. This is
/// the packed analogue of hold/sleep skipping in [`CompiledSim::settle`].
///
/// # Panics
///
/// Panics if the slice lengths differ from `program.cell_words()`.
pub fn settle_packed_frozen<W: LaneWord>(program: &Program, values: &mut [W], frozen: &[bool]) {
    let mut scratch = vec![W::bot(); program.scratch_words()];
    let written = program.execute_masked(values, &mut scratch, false, Some(frozen));
    if flh_obs::enabled() {
        flh_obs::add(flh_obs::Counter::SimBytecodeInsts, written);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::eval3;
    use crate::LogicSim;
    use flh_netlist::{generate_circuit, GeneratorConfig, Netlist};
    use flh_rng::Rng;

    fn sample(seed: u64) -> Netlist {
        generate_circuit(&GeneratorConfig {
            name: format!("csim{seed}"),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 9,
            gates: 110,
            logic_depth: 8,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed,
        })
        .expect("generates")
    }

    fn random_logic(rng: &mut Rng, x_bias: bool) -> Logic {
        if x_bias && rng.gen_bool(0.2) {
            Logic::X
        } else {
            Logic::from_bool(rng.gen())
        }
    }

    #[test]
    fn compiled_sim_matches_logic_sim_cycle_by_cycle() {
        for seed in [1u64, 7, 42] {
            let n = sample(seed);
            let c = flh_netlist::CompiledCircuit::compile(&n).unwrap();
            let mut a = LogicSim::new(&n).unwrap();
            let mut b = CompiledSim::new(&c);
            let mut rng = Rng::seed_from_u64(seed ^ 0xC0DE);
            for i in 0..n.flip_flops().len() {
                let v = random_logic(&mut rng, true);
                a.set_ff_by_index(i, v);
                b.set_ff_by_index(i, v);
            }
            for _cycle in 0..30 {
                let vector: Vec<Logic> = (0..n.inputs().len())
                    .map(|_| random_logic(&mut rng, true))
                    .collect();
                a.apply_vector(&vector);
                b.apply_vector(&vector);
                assert_eq!(a.outputs(), b.outputs());
                assert_eq!(a.ff_state(), b.ff_state());
            }
            // Full per-cell value and toggle agreement, not just boundaries.
            for (id, _) in n.iter() {
                assert_eq!(a.value(id), b.value(id), "{id:?}");
                assert_eq!(
                    a.activity().toggles(id),
                    b.activity().toggles(id),
                    "toggles of {id:?}"
                );
            }
            assert_eq!(a.activity().cycles(), b.activity().cycles());
        }
    }

    #[test]
    fn hold_and_sleep_semantics_match() {
        use flh_netlist::CellKind;
        let mut n = Netlist::new("holdmix");
        let a_in = n.add_input("a");
        let hl = n.add_cell("hl", CellKind::HoldLatch, vec![a_in]);
        let flg = n.add_cell("flg", CellKind::Inv, vec![a_in]);
        let g = n.add_cell("g", CellKind::Xor2, vec![hl, flg]);
        n.add_output("y", g);
        let c = flh_netlist::CompiledCircuit::compile(&n).unwrap();
        let mut ev = LogicSim::new(&n).unwrap();
        let mut cp = CompiledSim::new(&c);
        ev.set_gated_cells(&[flg]);
        cp.set_gated_cells(&[flg]);
        let mut rng = Rng::seed_from_u64(9);
        for step in 0..40 {
            let hold = step % 4 == 1;
            let sleep = step % 4 == 2;
            ev.set_hold(hold);
            cp.set_hold(hold);
            ev.set_sleep(sleep);
            cp.set_sleep(sleep);
            let v = random_logic(&mut rng, true);
            ev.set_inputs(std::slice::from_ref(&v));
            cp.set_inputs(std::slice::from_ref(&v));
            ev.settle();
            cp.settle();
            for (id, _) in n.iter() {
                assert_eq!(ev.value(id), cp.value(id), "step {step} {id:?}");
            }
        }
    }

    #[test]
    fn packed_lanes_match_eval3_per_gate_exhaustively() {
        use flh_netlist::CellKind;
        // Every library kind, every 3-valued input combination: the packed
        // dual-rail gate evaluation must equal scalar eval3 exactly,
        // including the Mux2 consensus (X select, equal branches).
        let kinds = [
            CellKind::Const0,
            CellKind::Const1,
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::And3,
            CellKind::And4,
            CellKind::Nand2,
            CellKind::Nand3,
            CellKind::Nand4,
            CellKind::Or2,
            CellKind::Or3,
            CellKind::Or4,
            CellKind::Nor2,
            CellKind::Nor3,
            CellKind::Nor4,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Aoi21,
            CellKind::Aoi22,
            CellKind::Oai21,
            CellKind::Oai22,
            CellKind::Mux2,
            CellKind::AndN(5),
            CellKind::NandN(5),
            CellKind::OrN(5),
            CellKind::NorN(5),
            CellKind::XorN(5),
        ];
        const LUT: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];
        for kind in kinds {
            let arity = kind.arity();
            let combos = 3usize.pow(arity as u32);
            for mut code in 0..combos {
                let mut scalar = Vec::with_capacity(arity);
                let mut packed = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let v = LUT[code % 3];
                    code /= 3;
                    scalar.push(v);
                    packed.push(logic_to_lane(v, 17));
                }
                let want = eval3(kind, &scalar);
                let got = lane_to_logic(kind.eval_dual(&packed), 17);
                assert_eq!(got, want, "{kind:?} {scalar:?}");
            }
        }
    }

    #[test]
    fn packed_settle_matches_scalar_settle_on_circuit() {
        for seed in [3u64, 11] {
            let n = sample(seed);
            let c = flh_netlist::CompiledCircuit::compile(&n).unwrap();
            let p = flh_netlist::Program::lower(&c);
            let mut rng = Rng::seed_from_u64(seed ^ 0xBEEF);

            // The same stimuli (with X lanes) in 64-lane words, 256-lane
            // superwords, and 64 scalar shadows.
            let mut packed = vec![Dual64::all_x(); c.cell_count()];
            let mut superpacked = vec![Dual256::all_x(); c.cell_count()];
            let mut scalars: Vec<Vec<Logic>> = vec![vec![Logic::X; c.cell_count()]; 64];
            for &src in c.inputs().iter().chain(c.flip_flops()) {
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    let v = random_logic(&mut rng, true);
                    scalar[src as usize] = v;
                    let d = logic_to_lane(v, lane as u32);
                    let cur = &mut packed[src as usize];
                    cur.one |= d.one;
                    cur.zero |= d.zero;
                    // Superword lane 3*lane keeps a copy of the same pattern.
                    let s = logic_to_superlane(v, 3 * lane as u32);
                    let sup = &mut superpacked[src as usize];
                    for limb in 0..4 {
                        sup.one[limb] |= s.one[limb];
                        sup.zero[limb] |= s.zero[limb];
                    }
                }
            }
            settle_packed(&p, &mut packed);
            settle_packed(&p, &mut superpacked);

            for (lane, scalar) in scalars.iter().enumerate() {
                let mut sim = LogicSim::new(&n).unwrap();
                for (i, &pi) in c.inputs().iter().enumerate() {
                    let _ = i;
                    sim.set_input(
                        c.inputs().iter().position(|&p| p == pi).unwrap(),
                        scalar[pi as usize],
                    );
                }
                for (i, &ff) in c.flip_flops().iter().enumerate() {
                    sim.set_ff_by_index(i, scalar[ff as usize]);
                }
                sim.settle();
                for (id, _) in n.iter() {
                    assert_eq!(
                        lane_to_logic(packed[id.index()], lane as u32),
                        sim.value(id),
                        "lane {lane} {id:?}"
                    );
                    assert_eq!(
                        superlane_to_logic(superpacked[id.index()], 3 * lane as u32),
                        sim.value(id),
                        "superword lane {} {id:?}",
                        3 * lane
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_cells_keep_their_lanes() {
        use flh_netlist::CellKind;
        let mut n = Netlist::new("freeze");
        let a = n.add_input("a");
        let g1 = n.add_cell("g1", CellKind::Inv, vec![a]);
        let g2 = n.add_cell("g2", CellKind::Inv, vec![g1]);
        n.add_output("y", g2);
        let c = flh_netlist::CompiledCircuit::compile(&n).unwrap();
        let p = flh_netlist::Program::lower(&c);
        let mut vals = vec![Dual64::all_x(); c.cell_count()];
        vals[a.index()] = Dual64::from_word(0b1010);
        settle_packed(&p, &mut vals);
        assert_eq!(vals[g1.index()].one, !0b1010);
        let mut frozen = vec![false; c.cell_count()];
        frozen[g1.index()] = true;
        vals[a.index()] = Dual64::from_word(0b0101); // flip the input
        settle_packed_frozen(&p, &mut vals, &frozen);
        assert_eq!(vals[g1.index()].one, !0b1010, "frozen g1 must hold");
        assert_eq!(vals[g2.index()].one, 0b1010, "g2 follows frozen g1");
    }
}
