//! Three-valued logic (`0`, `1`, `X`) and pessimistic gate evaluation.

use std::fmt;

use flh_netlist::CellKind;

/// A three-valued logic level: known `Zero`, known `One`, or unknown `X`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Logic {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / uninitialized.
    #[default]
    X,
}

impl Logic {
    /// Converts from a boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for known values, `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// True if the value is known (not `X`).
    pub fn is_known(self) -> bool {
        self != Logic::X
    }

    /// Logical inverse (`X` stays `X`). Named to shadow `std::ops::Not`
    /// deliberately: three-valued negation is this type's negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "X",
        })
    }
}

/// Lane patterns assigning the `j`-th unknown input all combinations
/// across 64 bit lanes (supports exhaustive enumeration of up to 6
/// unknowns in a single word evaluation).
const LANE: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Evaluates a cell function over three-valued inputs.
///
/// The result is exact three-valued simulation for up to 16 unknown inputs:
/// all assignments of the `X` inputs are enumerated (bit-parallel, 64
/// assignments per word evaluation), and the output is a known value only
/// when every assignment agrees (so e.g. `AND(0, X) = 0` but
/// `XOR(X, X) = X` — pessimistic for reconvergent unknowns, as standard in
/// test simulators). Beyond 16 unknowns the result is conservatively `X`.
///
/// Sequential and holding cells evaluate as buffers of their first input;
/// the simulator layers state semantics on top.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the kind's arity.
pub fn eval3(kind: CellKind, inputs: &[Logic]) -> Logic {
    assert_eq!(
        inputs.len(),
        kind.arity(),
        "{kind} expects {} inputs, got {}",
        kind.arity(),
        inputs.len()
    );
    let n_x = inputs.iter().filter(|v| !v.is_known()).count();
    if n_x > 16 {
        return Logic::X;
    }
    let mut words = [0u64; 16];
    // Unknowns beyond the first 6 are enumerated by an outer loop; the
    // first 6 ride the bit lanes of a single word evaluation.
    let outer_x = n_x.saturating_sub(LANE.len());
    let inner_x = n_x - outer_x;
    let lanes = 1usize << inner_x;
    let lane_mask = if lanes == 64 {
        !0u64
    } else {
        (1u64 << lanes) - 1
    };

    let mut all_zero = true;
    let mut all_one = true;
    for combo in 0..(1u32 << outer_x) {
        let mut x_seen = 0usize;
        for (i, v) in inputs.iter().enumerate() {
            words[i] = match v {
                Logic::One => !0u64,
                Logic::Zero => 0u64,
                Logic::X => {
                    let w = if x_seen < LANE.len() {
                        LANE[x_seen]
                    } else if combo >> (x_seen - LANE.len()) & 1 == 1 {
                        !0
                    } else {
                        0
                    };
                    x_seen += 1;
                    w
                }
            };
        }
        let out = kind.eval64(&words[..inputs.len()]) & lane_mask;
        if out != 0 {
            all_zero = false;
        }
        if out != lane_mask {
            all_one = false;
        }
        if !all_zero && !all_one {
            return Logic::X;
        }
    }
    if all_one {
        Logic::One
    } else {
        Logic::Zero
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_round_trip() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert_eq!(Logic::Zero.not(), Logic::One);
        assert_eq!(Logic::X.not(), Logic::X);
    }

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(eval3(CellKind::And2, &[Logic::Zero, Logic::X]), Logic::Zero);
        assert_eq!(eval3(CellKind::Or2, &[Logic::One, Logic::X]), Logic::One);
        assert_eq!(eval3(CellKind::Nand2, &[Logic::Zero, Logic::X]), Logic::One);
        assert_eq!(eval3(CellKind::Nor2, &[Logic::One, Logic::X]), Logic::Zero);
    }

    #[test]
    fn non_controlling_x_propagates() {
        assert_eq!(eval3(CellKind::And2, &[Logic::One, Logic::X]), Logic::X);
        assert_eq!(eval3(CellKind::Xor2, &[Logic::One, Logic::X]), Logic::X);
        assert_eq!(eval3(CellKind::Inv, &[Logic::X]), Logic::X);
    }

    #[test]
    fn mux_select_behaviour_with_x() {
        // Equal data inputs make the select irrelevant.
        assert_eq!(
            eval3(CellKind::Mux2, &[Logic::One, Logic::One, Logic::X]),
            Logic::One
        );
        assert_eq!(
            eval3(CellKind::Mux2, &[Logic::Zero, Logic::One, Logic::X]),
            Logic::X
        );
        assert_eq!(
            eval3(CellKind::Mux2, &[Logic::Zero, Logic::One, Logic::One]),
            Logic::One
        );
    }

    #[test]
    fn complex_gates_with_x() {
        // AOI21 = !((a&b)|c): c=1 forces 0 regardless of a,b.
        assert_eq!(
            eval3(CellKind::Aoi21, &[Logic::X, Logic::X, Logic::One]),
            Logic::Zero
        );
        assert_eq!(
            eval3(CellKind::Aoi21, &[Logic::X, Logic::X, Logic::Zero]),
            Logic::X
        );
    }

    #[test]
    fn fully_known_matches_eval64() {
        let cases = [
            (CellKind::Nand3, vec![true, true, false]),
            (CellKind::Oai22, vec![true, false, false, true]),
            (CellKind::Xnor2, vec![true, true]),
        ];
        for (kind, bits) in cases {
            let inputs: Vec<Logic> = bits.iter().map(|&b| Logic::from_bool(b)).collect();
            assert_eq!(
                eval3(kind, &inputs),
                Logic::from_bool(kind.eval_bool(&bits)),
                "{kind}"
            );
        }
    }

    #[test]
    fn display() {
        assert_eq!(Logic::Zero.to_string(), "0");
        assert_eq!(Logic::X.to_string(), "X");
    }
}
