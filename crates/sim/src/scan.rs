//! Scan-chain modelling: shift-register behaviour over the flip-flops.
//!
//! The scan path is structural metadata (an ordered list of flip-flops)
//! rather than explicit netlist edges, matching how the paper's Fig. 1/5
//! draw it: the muxed-D scan connection is internal to the scan cell.

use flh_netlist::{CellId, Netlist};

use crate::simulator::LogicSim;
use crate::value::Logic;

/// An ordered scan chain over flip-flop cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanChain {
    cells: Vec<CellId>,
}

impl ScanChain {
    /// Builds a chain from an explicit flip-flop order.
    pub fn new(cells: Vec<CellId>) -> Self {
        ScanChain { cells }
    }

    /// Chains all flip-flops of a netlist in declaration order.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        ScanChain {
            cells: netlist.flip_flops().to_vec(),
        }
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the chain has no flip-flops.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Flip-flops in scan order (scan-in side first).
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Splits the flip-flops of a netlist into `n` balanced chains
    /// (declaration order, round-robin-free contiguous slices — the usual
    /// stitching a scan-insertion tool produces). Shift time drops from
    /// `#FF` to `ceil(#FF / n)` cycles at the cost of `n` scan ports.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn partition(netlist: &Netlist, n: usize) -> Vec<ScanChain> {
        assert!(n > 0, "at least one chain required");
        let ffs = netlist.flip_flops();
        let n = n.min(ffs.len().max(1));
        let base = ffs.len() / n;
        let extra = ffs.len() % n;
        let mut chains = Vec::with_capacity(n);
        let mut cursor = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            chains.push(ScanChain::new(ffs[cursor..cursor + len].to_vec()));
            cursor += len;
        }
        chains
    }
}

/// Drives several parallel scan chains on one simulator: each shift cycle
/// moves every chain by one bit simultaneously (one clock for all).
#[derive(Clone, Debug)]
pub struct MultiScanController {
    controllers: Vec<ScanController>,
}

impl MultiScanController {
    /// Builds a controller over parallel chains.
    pub fn new(chains: Vec<ScanChain>) -> Self {
        MultiScanController {
            controllers: chains.into_iter().map(ScanController::new).collect(),
        }
    }

    /// Number of chains.
    pub fn chain_count(&self) -> usize {
        self.controllers.len()
    }

    /// Shift cycles needed for a full load (the longest chain).
    pub fn load_cycles(&self) -> usize {
        self.controllers
            .iter()
            .map(|c| c.chain().len())
            .max()
            .unwrap_or(0)
    }

    /// Shifts full patterns into every chain in parallel; `patterns[i]`
    /// loads chain `i`. Shorter chains idle (hold their last bit) while
    /// longer ones finish. Returns the unload streams per chain.
    ///
    /// # Panics
    ///
    /// Panics if the pattern count or any pattern length mismatches.
    pub fn shift_in(&self, sim: &mut LogicSim<'_>, patterns: &[Vec<Logic>]) -> Vec<Vec<Logic>> {
        assert_eq!(
            patterns.len(),
            self.controllers.len(),
            "one pattern per chain"
        );
        for (c, p) in self.controllers.iter().zip(patterns) {
            assert_eq!(p.len(), c.chain().len(), "pattern/chain length mismatch");
        }
        let cycles = self.load_cycles();
        let mut unloads: Vec<Vec<Logic>> = vec![Vec::new(); patterns.len()];
        for step in 0..cycles {
            for (i, (ctl, pattern)) in self.controllers.iter().zip(patterns).enumerate() {
                let len = ctl.chain().len();
                // Chain i starts shifting late enough to finish exactly at
                // the common last cycle.
                let start = cycles - len;
                if step >= start {
                    let bit = pattern[len - 1 - (step - start)];
                    unloads[i].push(ctl.shift_raw(sim, bit));
                }
            }
            // All chains moved in this one clock.
            sim.bump_cycle();
            sim.settle();
        }
        unloads
    }

    /// Chain contents, one vector per chain.
    pub fn read_state(&self, sim: &LogicSim<'_>) -> Vec<Vec<Logic>> {
        self.controllers.iter().map(|c| c.read_state(sim)).collect()
    }
}

/// Drives a [`ScanChain`] on a [`LogicSim`].
#[derive(Clone, Debug)]
pub struct ScanController {
    chain: ScanChain,
}

impl ScanController {
    /// Creates a controller for a chain.
    pub fn new(chain: ScanChain) -> Self {
        ScanController { chain }
    }

    /// The controlled chain.
    pub fn chain(&self) -> &ScanChain {
        &self.chain
    }

    /// One scan-shift cycle: every flip-flop takes its predecessor's value,
    /// the first takes `scan_in`, and the chain's last value is returned as
    /// scan-out. The combinational logic then settles — if no holding
    /// mechanism is engaged this is exactly the redundant switching the
    /// paper's Section IV quantifies.
    pub fn shift(&self, sim: &mut LogicSim<'_>, scan_in: Logic) -> Logic {
        let out = self.shift_raw(sim, scan_in);
        sim.bump_cycle();
        sim.settle();
        out
    }

    /// The register move of one shift, without the clock-cycle accounting
    /// or combinational settling — the building block for parallel
    /// multi-chain shifting where several chains move in one cycle.
    fn shift_raw(&self, sim: &mut LogicSim<'_>, scan_in: Logic) -> Logic {
        let cells = self.chain.cells();
        if cells.is_empty() {
            return Logic::X;
        }
        let scan_out = sim.value(cells[cells.len() - 1]);
        for i in (1..cells.len()).rev() {
            let v = sim.value(cells[i - 1]);
            sim.set_ff(cells[i], v);
        }
        sim.set_ff(cells[0], scan_in);
        scan_out
    }

    /// Shifts a full pattern in (`pattern[i]` lands on chain position `i`),
    /// returning the bits shifted out (previous chain content, scan-out
    /// order: position `len-1` first... i.e. the unload stream).
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the chain length.
    pub fn shift_in(&self, sim: &mut LogicSim<'_>, pattern: &[Logic]) -> Vec<Logic> {
        assert_eq!(
            pattern.len(),
            self.chain.len(),
            "pattern/chain length mismatch"
        );
        pattern
            .iter()
            .rev()
            .map(|&bit| self.shift(sim, bit))
            .collect()
    }

    /// Reads the current chain content (position order).
    pub fn read_state(&self, sim: &LogicSim<'_>) -> Vec<Logic> {
        self.chain.cells().iter().map(|&c| sim.value(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::CellKind;

    fn three_ff_circuit() -> Netlist {
        let mut n = Netlist::new("chain3");
        let a = n.add_input("a");
        let f0 = n.add_cell("f0", CellKind::Dff, vec![a]);
        let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
        let f2 = n.add_cell("f2", CellKind::Dff, vec![a]);
        let g = n.add_cell("g", CellKind::Nand3, vec![f0, f1, f2]);
        n.add_output("y", g);
        n
    }

    #[test]
    fn shift_in_lands_pattern_in_position_order() {
        let n = three_ff_circuit();
        let mut sim = LogicSim::new(&n).unwrap();
        let ctl = ScanController::new(ScanChain::from_netlist(&n));
        use Logic::{One as I, Zero as O};
        ctl.shift_in(&mut sim, &[I, O, I]);
        assert_eq!(ctl.read_state(&sim), vec![I, O, I]);
    }

    #[test]
    fn scan_out_streams_previous_content() {
        let n = three_ff_circuit();
        let mut sim = LogicSim::new(&n).unwrap();
        let ctl = ScanController::new(ScanChain::from_netlist(&n));
        use Logic::{One as I, Zero as O};
        ctl.shift_in(&mut sim, &[I, I, O]);
        let out = ctl.shift_in(&mut sim, &[O, O, O]);
        // Unload order: last chain position first.
        assert_eq!(out, vec![O, I, I]);
    }

    #[test]
    fn shifting_disturbs_combinational_logic_without_holding() {
        let n = three_ff_circuit();
        let mut sim = LogicSim::new(&n).unwrap();
        let ctl = ScanController::new(ScanChain::from_netlist(&n));
        use Logic::{One as I, Zero as O};
        ctl.shift_in(&mut sim, &[I, I, I]);
        sim.reset_activity();
        ctl.shift_in(&mut sim, &[O, I, O]);
        let g = n.find("g").unwrap();
        assert!(
            sim.activity().toggles(g) > 0,
            "NAND3 should toggle during unheld shifting"
        );
        assert_eq!(sim.activity().cycles(), 3);
    }

    fn six_ff_circuit() -> Netlist {
        let mut n = Netlist::new("chain6");
        let a = n.add_input("a");
        let mut prev = a;
        for i in 0..6 {
            prev = n.add_cell(format!("f{i}"), CellKind::Dff, vec![prev]);
        }
        let g = n.add_cell("g", CellKind::Inv, vec![prev]);
        n.add_output("y", g);
        n
    }

    #[test]
    fn partition_balances_chains() {
        let n = six_ff_circuit();
        let chains = ScanChain::partition(&n, 4);
        assert_eq!(chains.len(), 4);
        let lens: Vec<usize> = chains.iter().map(|c| c.len()).collect();
        assert_eq!(lens, vec![2, 2, 1, 1]);
        // Every flip-flop appears exactly once.
        let mut all: Vec<_> = chains.iter().flat_map(|c| c.cells().to_vec()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn partition_caps_at_ff_count() {
        let n = six_ff_circuit();
        assert_eq!(ScanChain::partition(&n, 100).len(), 6);
    }

    #[test]
    fn multi_chain_load_matches_single_chain_state() {
        use Logic::{One as I, Zero as O};
        let n = six_ff_circuit();
        let target = vec![I, O, I, I, O, O];

        // Single chain load.
        let mut sim1 = LogicSim::new(&n).unwrap();
        let single = ScanController::new(ScanChain::from_netlist(&n));
        single.shift_in(&mut sim1, &target);

        // Three parallel chains loading the same values.
        let mut sim3 = LogicSim::new(&n).unwrap();
        let chains = ScanChain::partition(&n, 3);
        let multi = MultiScanController::new(chains);
        multi.shift_in(
            &mut sim3,
            &[
                target[0..2].to_vec(),
                target[2..4].to_vec(),
                target[4..6].to_vec(),
            ],
        );

        assert_eq!(sim1.ff_state(), sim3.ff_state());
        // But the multi-chain load took one third of the cycles.
        assert_eq!(sim3.activity().cycles(), 2);
        assert_eq!(sim1.activity().cycles(), 6);
    }

    #[test]
    fn multi_chain_unload_streams_previous_content() {
        use Logic::{One as I, Zero as O};
        let n = six_ff_circuit();
        let mut sim = LogicSim::new(&n).unwrap();
        let multi = MultiScanController::new(ScanChain::partition(&n, 2));
        assert_eq!(multi.chain_count(), 2);
        assert_eq!(multi.load_cycles(), 3);
        multi.shift_in(&mut sim, &[vec![I, I, I], vec![O, O, O]]);
        let unloads = multi.shift_in(&mut sim, &[vec![O, O, O], vec![I, I, I]]);
        assert_eq!(unloads[0], vec![I, I, I]);
        assert_eq!(unloads[1], vec![O, O, O]);
        let state = multi.read_state(&sim);
        assert_eq!(state[0], vec![O, O, O]);
        assert_eq!(state[1], vec![I, I, I]);
    }

    #[test]
    fn empty_chain_is_harmless() {
        let mut n = Netlist::new("noff");
        let a = n.add_input("a");
        n.add_output("y", a);
        let mut sim = LogicSim::new(&n).unwrap();
        let ctl = ScanController::new(ScanChain::from_netlist(&n));
        assert!(ctl.chain().is_empty());
        assert_eq!(ctl.shift(&mut sim, Logic::One), Logic::X);
    }
}
