//! Minimal JSON parsing and rendering for the serve protocol (the
//! workspace has no serde).
//!
//! The parser moved here from `flh-bench` (which re-exports it for its
//! `BENCH_*.json` validators) so the protocol and the report tooling agree
//! on one [`Json`] value type. [`render`] is the protocol's inverse:
//! object keys come out of the `BTreeMap` in sorted order and numbers with
//! no fractional part print as integers, so a rendered line is a
//! byte-stable function of the value — the property the `flh serve`
//! determinism gate diffs on.

use std::collections::BTreeMap;

/// A parsed JSON value (numbers are kept as `f64`; good enough for the
/// protocol and report schemas, which never use integers outside `f64`'s
/// exact range).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn object<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "byte {}: expected {:?}, found {:?}",
                self.pos,
                b as char,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("byte {}: expected {word}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(format!(
                                "byte {}: unsupported escape \\{}",
                                self.pos, other as char
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // input is valid UTF-8 (it came from `str`).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("run is cut at ASCII delimiters of a str-backed buffer");
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("byte {start}: bad number {text:?}: {e}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(map));
                        }
                        other => {
                            return Err(format!(
                                "byte {}: expected ',' or '}}', found {other:?}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        other => {
                            return Err(format!(
                                "byte {}: expected ',' or ']', found {other:?}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }
}

/// Parses a JSON document (object, array or scalar).
///
/// # Errors
///
/// Returns a byte-offset message on malformed input or trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("byte {}: trailing garbage", p.pos));
    }
    Ok(value)
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => {
            // Whole numbers in i64 range render without a fraction, so a
            // parse → render round trip of protocol integers (job counts,
            // seeds, fault totals) is the identity.
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::String(s) => render_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

/// Renders a value as a single compact line: sorted object keys, no
/// whitespace, whole numbers as integers. `parse_json(render(v)) == v` for
/// every value this module itself produces.
pub fn render(value: &Json) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse_json(
            "{\n  \"op\": \"submit\",\n  \"quick\": false,\n  \"nested\": {\"speedup\": 5.25},\n  \"xs\": [1, -2.5, 3e2],\n  \"none\": null\n}\n",
        )
        .unwrap();
        let Json::Object(map) = v else { panic!() };
        assert_eq!(map["op"], Json::String("submit".into()));
        assert_eq!(map["quick"], Json::Bool(false));
        assert_eq!(
            map["xs"],
            Json::Array(vec![
                Json::Number(1.0),
                Json::Number(-2.5),
                Json::Number(300.0)
            ])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": 01x}").is_err());
    }

    #[test]
    fn render_is_compact_sorted_and_reparses() {
        let v = Json::object([
            ("zeta", Json::Number(3.0)),
            ("alpha", Json::String("a \"quoted\"\nline".into())),
            (
                "mid",
                Json::Array(vec![Json::Null, Json::Bool(true), Json::Number(2.5)]),
            ),
        ]);
        let line = render(&v);
        assert!(line.starts_with("{\"alpha\":"), "sorted keys in {line}");
        assert!(line.contains("\"zeta\":3"), "whole float as int in {line}");
        assert!(line.contains("\\\"quoted\\\"") && line.contains("\\n"));
        assert_eq!(parse_json(&line).unwrap(), v);
    }

    #[test]
    fn render_round_trips_numbers() {
        for n in [0.0, -7.0, 71.32, 1.0e9, -2.5] {
            let line = render(&Json::Number(n));
            assert_eq!(parse_json(&line).unwrap(), Json::Number(n), "{line}");
        }
    }
}
