//! Session layer of the FLH workspace: a reusable [`JobEngine`] and the
//! `flh serve` persistent campaign service.
//!
//! Before this crate, every front end — the `flh campaign` subcommand and
//! each bench binary — owned its own copy of the parse → compile →
//! campaign → report plumbing, and every invocation paid the full
//! pipeline even when re-running the same circuit. This crate extracts
//! that plumbing once and makes compiled circuits a cached, shared
//! resource:
//!
//! * [`CircuitSource`] — the one place circuit specs (builtin profile
//!   names, `.bench` files, inline bench text) are resolved and keyed;
//! * [`CircuitCache`] — content-addressed compiled-circuit cache: FNV-1a
//!   over the canonical `write_bench` rendering, `Arc`-shared entries,
//!   LRU eviction, `serve.cache.*` counters in flh-obs;
//! * [`JobSpec`] / [`JobEngine`] / [`JobEvent`] — the shared job
//!   vocabulary and synchronous executor with streamed per-batch events
//!   and per-job deterministic metrics (flh-obs `det_delta` documents);
//! * [`JobSession`] — a bounded, back-pressured queue
//!   ([`flh_exec::BoundedQueue`]) feeding one executor thread, with
//!   deterministic job ids and barrier-drained event delivery;
//! * [`serve_lines`] — the line-delimited JSON protocol (`submit` /
//!   `status` / `cancel` / `wait` / `shutdown`) behind `flh serve`, over
//!   stdin/stdout or a Unix socket. Transcripts are byte-identical at
//!   every `FLH_THREADS` width.
//!
//! The determinism contract of the rest of the workspace extends here:
//! results, event order and protocol transcripts are pure functions of
//! the submission sequence; only wall-clock (never surfaced on the wire)
//! varies.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cache;
pub mod engine;
pub mod job;
pub mod json;
pub mod proto;
pub mod server;
pub mod session;
pub mod source;

pub use cache::{CacheLookup, CacheStats, CircuitCache, CompiledEntry, DEFAULT_CACHE_CAPACITY};
pub use engine::JobEngine;
pub use job::{
    parse_application_styles, parse_dft_style, BatchPayload, JobEvent, JobId, JobKind, JobOutcome,
    JobSpec, ProgressTiming, ALL_APPLICATION_STYLES,
};
pub use json::{parse_json, render, Json};
pub use proto::{parse_request, render_request, Request};
#[cfg(unix)]
pub use server::serve_unix_socket;
pub use server::{serve_lines, ServeConfig};
pub use session::{
    JobLatency, JobSession, SessionConfig, SessionStats, SessionSummary, SubmitError,
};
pub use source::{content_key, fnv1a, CircuitSource};
