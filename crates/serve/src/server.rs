//! The server loop: line-delimited JSON over any `BufRead`/`Write` pair —
//! stdin/stdout for `flh serve`, a Unix socket with `--socket`, in-memory
//! buffers in tests.
//!
//! [`serve_lines`] always runs its [`JobSession`] **gated**: accepted jobs
//! execute only while a `wait` or `shutdown` barrier is pumping, on one
//! executor thread, in submission order. Combined with sorted-key
//! rendering this makes the full transcript a deterministic function of
//! the request script — `scripts/ci.sh` byte-diffs transcripts at
//! `FLH_THREADS=1` and `4`. End of input acts as an implicit `shutdown`,
//! so piping a script without a trailing shutdown still drains cleanly.

use std::io::{BufRead, Write};
use std::sync::Arc;

use crate::engine::JobEngine;
use crate::proto::{
    parse_request, render_accepted, render_bye, render_cancel_ack, render_error, render_event,
    render_idle, render_rejected, render_stats, render_status, Request, StatsFull,
};
use crate::session::{JobSession, SessionConfig, SessionSummary};

/// Server tuning.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Bounded job-queue capacity (submissions beyond it are `rejected`).
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { queue_capacity: 64 }
    }
}

fn emit(output: &mut dyn Write, line: &str) -> std::io::Result<()> {
    output.write_all(line.as_bytes())?;
    output.write_all(b"\n")?;
    // Interactive clients see each response as soon as it exists.
    output.flush()
}

/// Runs one protocol session: reads request lines from `input` until a
/// `shutdown` request or end of input, writing one JSON response line per
/// protocol step to `output`. Returns the session summary.
///
/// # Errors
///
/// Only I/O errors on the transport; protocol-level problems are reported
/// in-band as `{"error":...}` lines.
pub fn serve_lines(
    input: impl BufRead,
    output: &mut dyn Write,
    engine: Arc<JobEngine>,
    config: ServeConfig,
) -> std::io::Result<SessionSummary> {
    let mut session = JobSession::new(
        engine,
        SessionConfig {
            queue_capacity: config.queue_capacity,
            autostart: false,
        },
    );

    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_request(trimmed) {
            Err(reason) => emit(output, &render_error(&reason))?,
            Ok(Request::Submit(spec)) => match session.submit(spec) {
                Ok(job) => emit(output, &render_accepted(job))?,
                Err(err) => emit(output, &render_rejected(&err.to_string()))?,
            },
            Ok(Request::Status) => emit(output, &render_status(&session.stats()))?,
            Ok(Request::Stats { full }) => {
                // Publish the ledger gauges first so the metrics document
                // answered here carries the levels as of this protocol
                // step — deterministically for a scripted session.
                session.publish_gauges();
                let metrics =
                    flh_obs::enabled().then(|| flh_obs::det_document(&flh_obs::snapshot()));
                let line = if full {
                    let nondet = flh_obs::nondeterministic_json(&flh_obs::snapshot());
                    let latency = session.latency();
                    render_stats(
                        &session.stats(),
                        session.engine().cache_stats(),
                        metrics.as_deref(),
                        Some(StatsFull {
                            nondet: &nondet,
                            latency: &latency,
                        }),
                    )
                } else {
                    render_stats(
                        &session.stats(),
                        session.engine().cache_stats(),
                        metrics.as_deref(),
                        None,
                    )
                };
                emit(output, &line)?;
            }
            Ok(Request::Cancel(job)) => {
                let known = session.cancel(job);
                emit(output, &render_cancel_ack(job, known))?;
            }
            Ok(Request::Wait) => {
                let mut io_err = None;
                let retired = session.wait(&mut |event| {
                    if io_err.is_none() {
                        io_err = emit(output, &render_event(&event)).err();
                    }
                });
                if let Some(err) = io_err {
                    return Err(err);
                }
                emit(output, &render_idle(retired))?;
            }
            Ok(Request::Shutdown) => {
                let summary = finish(session, output)?;
                return Ok(summary);
            }
        }
    }
    // End of input: implicit shutdown.
    finish(session, output)
}

fn finish(session: JobSession, output: &mut dyn Write) -> std::io::Result<SessionSummary> {
    let mut io_err = None;
    let summary = session.shutdown(&mut |event| {
        if io_err.is_none() {
            io_err = emit(output, &render_event(&event)).err();
        }
    });
    if let Some(err) = io_err {
        return Err(err);
    }
    emit(output, &render_bye(&summary))?;
    Ok(summary)
}

/// Binds a Unix socket at `path` and serves each client on its own
/// thread over a shared engine — the compiled-circuit cache persists
/// across connections, and a monitoring client (`flh top`) can poll
/// `stats` while another connection streams a campaign. Removes a stale
/// socket file first; runs until the process is killed.
///
/// Each connection gets its own [`JobSession`] (own job ids, own
/// ledger), so a single connection's transcript is still a pure function
/// of its script; only the *global* metrics observed by `stats` reflect
/// whatever every connection has run so far — that is the point of a
/// live dashboard.
///
/// # Errors
///
/// Bind/accept failures; per-connection I/O errors end that connection
/// only.
#[cfg(unix)]
pub fn serve_unix_socket(
    path: &std::path::Path,
    engine: Arc<JobEngine>,
    config: ServeConfig,
) -> std::io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    loop {
        let (stream, _) = listener.accept()?;
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let Ok(cloned) = stream.try_clone() else {
                return;
            };
            let reader = std::io::BufReader::new(cloned);
            let mut writer = stream;
            let _ = serve_lines(reader, &mut writer, engine, config);
        });
    }
}
