//! Job vocabulary shared by every front end: what to run ([`JobSpec`]),
//! what streamed out ([`JobEvent`]) and what it amounted to
//! ([`JobOutcome`]).
//!
//! The `flh campaign` subcommand, the bench binaries and the serve
//! protocol all build one of these specs and hand it to the
//! [`JobEngine`](crate::engine::JobEngine); none of them owns private
//! parse→compile→campaign plumbing anymore.

use flh_atpg::{ApplicationStyle, CampaignResult};
use flh_core::{DftStyle, EvalConfig, StyleEvaluation};

use crate::cache::CacheLookup;
use crate::source::CircuitSource;

/// Deterministic job identity: assigned in submission order, displayed as
/// `job-N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl JobId {
    /// Parses the `job-N` display form back to an id.
    pub fn parse(text: &str) -> Option<JobId> {
        text.strip_prefix("job-")?.parse().ok().map(JobId)
    }
}

/// What a job computes over its compiled circuit.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// Seeded random transition-fault campaign, one batch per application
    /// style.
    Campaign {
        /// Styles to run, in batch order.
        styles: Vec<ApplicationStyle>,
        /// Pattern pairs per style.
        pairs: usize,
        /// Campaign seed.
        seed: u64,
    },
    /// Area/delay/power overhead evaluation, one batch per DFT style.
    Evaluate {
        /// Styles to evaluate, in batch order.
        styles: Vec<DftStyle>,
        /// Shared evaluation environment.
        config: EvalConfig,
    },
}

/// A complete unit of work: a circuit source, optional DFT styling applied
/// before the computation, and the computation itself.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Where the circuit comes from.
    pub source: CircuitSource,
    /// DFT transform applied to the circuit before the job runs (campaign
    /// jobs only; evaluation styles internally).
    pub dft: Option<DftStyle>,
    /// The computation.
    pub kind: JobKind,
}

impl JobSpec {
    /// A campaign spec with the CLI defaults: all three application
    /// styles, 256 pairs, seed 7.
    pub fn campaign(source: CircuitSource) -> Self {
        JobSpec {
            source,
            dft: None,
            kind: JobKind::Campaign {
                styles: ALL_APPLICATION_STYLES.to_vec(),
                pairs: 256,
                seed: 7,
            },
        }
    }

    /// An overhead-evaluation spec over the given styles.
    pub fn evaluate(source: CircuitSource, styles: Vec<DftStyle>, config: EvalConfig) -> Self {
        JobSpec {
            source,
            dft: None,
            kind: JobKind::Evaluate { styles, config },
        }
    }

    /// Replaces the campaign style list (no-op for evaluation jobs).
    #[must_use]
    pub fn with_styles(mut self, new: Vec<ApplicationStyle>) -> Self {
        if let JobKind::Campaign { styles, .. } = &mut self.kind {
            *styles = new;
        }
        self
    }

    /// Replaces the campaign pair count (no-op for evaluation jobs).
    #[must_use]
    pub fn with_pairs(mut self, new: usize) -> Self {
        if let JobKind::Campaign { pairs, .. } = &mut self.kind {
            *pairs = new;
        }
        self
    }

    /// Replaces the campaign seed (no-op for evaluation jobs).
    #[must_use]
    pub fn with_seed(mut self, new: u64) -> Self {
        if let JobKind::Campaign { seed, .. } = &mut self.kind {
            *seed = new;
        }
        self
    }

    /// Sets the DFT transform applied before the job runs.
    #[must_use]
    pub fn with_dft(mut self, dft: Option<DftStyle>) -> Self {
        self.dft = dft;
        self
    }
}

/// The application styles in canonical (CLI table) order.
pub const ALL_APPLICATION_STYLES: [ApplicationStyle; 3] = [
    ApplicationStyle::ArbitraryTwoPattern,
    ApplicationStyle::Broadside,
    ApplicationStyle::SkewedLoad,
];

/// Parses a `--styles` list for campaign jobs: `all`, or a comma-separated
/// subset of `arbitrary` (aliases `atp`, `two-pattern`), `broadside`
/// (alias `bs`), `skewed` (aliases `skewed-load`, `sl`). Order is
/// preserved; duplicates are rejected.
///
/// # Errors
///
/// Names the unknown or repeated style.
pub fn parse_application_styles(list: &str) -> Result<Vec<ApplicationStyle>, String> {
    if list == "all" {
        return Ok(ALL_APPLICATION_STYLES.to_vec());
    }
    let mut styles = Vec::new();
    for part in list.split(',') {
        let style = match part.trim() {
            "arbitrary" | "atp" | "two-pattern" | "arbitrary-two-pattern" => {
                ApplicationStyle::ArbitraryTwoPattern
            }
            "broadside" | "bs" => ApplicationStyle::Broadside,
            "skewed" | "skewed-load" | "sl" => ApplicationStyle::SkewedLoad,
            other => return Err(format!("unknown application style {other:?}")),
        };
        if styles.contains(&style) {
            return Err(format!("application style {style} given twice"));
        }
        styles.push(style);
    }
    if styles.is_empty() {
        return Err("empty style list".into());
    }
    Ok(styles)
}

/// Parses a DFT style name as the `flh` CLI spells them (`plain`/`scan`,
/// `enhanced`/`es`, `mux`, `flh`).
pub fn parse_dft_style(name: &str) -> Option<DftStyle> {
    match name {
        "plain" | "scan" => Some(DftStyle::PlainScan),
        "enhanced" | "es" => Some(DftStyle::EnhancedScan),
        "mux" => Some(DftStyle::MuxHold),
        "flh" => Some(DftStyle::Flh),
        _ => None,
    }
}

/// One streamed result batch.
#[derive(Clone, Debug)]
pub enum BatchPayload {
    /// One application style's campaign result.
    Campaign(CampaignResult),
    /// One DFT style's overhead evaluation.
    Evaluation(StyleEvaluation),
}

/// Wall-clock throughput attached to a [`JobEvent::Progress`] event when
/// the engine opts into timings (`JobEngine::with_timings`). Off by
/// default: wall clock on the wire would break the byte-identical
/// transcript contract.
#[derive(Clone, Copy, Debug)]
pub struct ProgressTiming {
    /// Pattern pairs simulated per second in the batch just finished.
    pub pairs_per_s: f64,
    /// Estimated milliseconds to finish the job's remaining batches at
    /// that rate.
    pub eta_ms: u64,
}

/// Lifecycle events a job emits, in deterministic order: one `Started`,
/// one `Batch` per style in spec order (campaign batches each followed by
/// one `Progress`), then exactly one of `Done`, `Failed` or `Cancelled`.
#[derive(Clone, Debug)]
pub enum JobEvent {
    /// The circuit is compiled (or was already cached) and batches are
    /// about to stream.
    Started {
        /// The job.
        job: JobId,
        /// Resolved circuit name.
        circuit: String,
        /// How the compiled-circuit cache served the lookup.
        cache: CacheLookup,
    },
    /// One per-style result.
    Batch {
        /// The job.
        job: JobId,
        /// Batch index within the job, from 0, in spec style order.
        index: usize,
        /// The result.
        payload: BatchPayload,
    },
    /// Coverage progress through a campaign job, emitted after each
    /// `Batch` (campaign jobs only — evaluation batches carry no
    /// fault-coverage ledger). Deterministic fields only, unless the
    /// engine opts into timings.
    Progress {
        /// The job.
        job: JobId,
        /// Batches finished so far (1-based: the batch just streamed).
        done: usize,
        /// Total batches the job will run.
        batches: usize,
        /// Application style of the batch just finished.
        style: String,
        /// Faults detected in that batch.
        detected: usize,
        /// Total faults simulated in that batch.
        faults: usize,
        /// Coverage of that batch, percent.
        coverage_pct: f64,
        /// Pattern pairs applied so far across the job.
        pairs_done: usize,
        /// Pattern pairs planned across the whole job.
        pairs_total: usize,
        /// Wall-clock throughput/ETA, only with `with_timings(true)`.
        timing: Option<ProgressTiming>,
    },
    /// All batches delivered.
    Done {
        /// The job.
        job: JobId,
        /// Number of batches streamed.
        batches: usize,
        /// Per-job deterministic metrics document (flh-obs det-delta
        /// JSON), when the recorder is installed.
        metrics: Option<String>,
    },
    /// The job could not run to completion.
    Failed {
        /// The job.
        job: JobId,
        /// What went wrong.
        reason: String,
    },
    /// The job was cancelled while still queued.
    Cancelled {
        /// The job.
        job: JobId,
    },
}

impl JobEvent {
    /// The job the event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Started { job, .. }
            | JobEvent::Batch { job, .. }
            | JobEvent::Progress { job, .. }
            | JobEvent::Done { job, .. }
            | JobEvent::Failed { job, .. }
            | JobEvent::Cancelled { job } => *job,
        }
    }

    /// True for the last event a job ever emits.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobEvent::Done { .. } | JobEvent::Failed { .. } | JobEvent::Cancelled { .. }
        )
    }
}

/// Summary of one completed job, returned by the engine alongside the
/// streamed events.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// Every batch payload, in stream order.
    pub batches: Vec<BatchPayload>,
    /// How the compiled-circuit cache served the lookup.
    pub cache: CacheLookup,
    /// Per-job deterministic metrics document, when recording.
    pub metrics: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_round_trip_their_display_form() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(JobId::parse("job-7"), Some(JobId(7)));
        assert_eq!(JobId::parse("task-7"), None);
        assert_eq!(JobId::parse("job-x"), None);
    }

    #[test]
    fn style_lists_parse_in_order_without_duplicates() {
        assert_eq!(
            parse_application_styles("all").unwrap(),
            ALL_APPLICATION_STYLES.to_vec()
        );
        assert_eq!(
            parse_application_styles("skewed,atp").unwrap(),
            vec![
                ApplicationStyle::SkewedLoad,
                ApplicationStyle::ArbitraryTwoPattern
            ]
        );
        assert!(parse_application_styles("broadside,bs")
            .unwrap_err()
            .contains("twice"));
        assert!(parse_application_styles("sideways").is_err());
        assert!(parse_application_styles("").is_err());
    }
}
