//! The [`JobSession`]: a bounded queue, a single executor thread, and a
//! deterministic event ledger over a shared [`JobEngine`].
//!
//! Determinism is the design driver. Jobs execute on **one** executor
//! thread in submission (FIFO) order, so the concatenated event stream is
//! a pure function of the submission sequence — the engine's pool
//! parallelizes *inside* each job without touching event order. Events
//! buffer in a channel and are drained only at blocking barriers
//! ([`JobSession::wait`], [`JobSession::shutdown`]), which is what lets
//! the serve protocol emit byte-identical transcripts at any
//! `FLH_THREADS`.
//!
//! Back-pressure is the bounded queue's: [`JobSession::submit`] never
//! blocks — at capacity it returns [`SubmitError::QueueFull`] and the
//! caller decides (the protocol replies `rejected`; an embedding caller
//! may `wait` and retry).
//!
//! A session may start **gated** (`autostart: false`): the executor still
//! pops the next job eagerly but parks before running it until a barrier
//! opens the gate. Gated sessions make cancellation deterministic —
//! [`JobSession::cancel`] marks a job, and a marked job that has not run
//! by the next barrier is retired with a `Cancelled` event instead of
//! executing. In an autostarted session cancellation is safe but racy
//! (the job may complete first); the serve protocol therefore always runs
//! gated.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant; // time-ok: session latency ledger; read only in the nondet `stats --full` section

use flh_exec::{BoundedQueue, PushError};

use crate::cache::CacheStats;
use crate::engine::JobEngine;
use crate::job::{JobEvent, JobId, JobSpec};

/// Session tuning.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Bounded-queue capacity (back-pressure threshold).
    pub queue_capacity: usize,
    /// When false the session starts gated: queued jobs only execute
    /// while a barrier (`wait`/`shutdown`) is pumping.
    pub autostart: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            queue_capacity: 64,
            autostart: true,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    QueueFull,
    /// The session is shutting down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubmitError::QueueFull => "queue full",
            SubmitError::Closed => "session closed",
        })
    }
}

/// End-of-session accounting returned by [`JobSession::shutdown`].
#[derive(Clone, Copy, Debug)]
pub struct SessionSummary {
    /// Jobs accepted over the session's lifetime.
    pub submitted: u64,
    /// Jobs that reached a terminal event (done, failed or cancelled).
    pub completed: u64,
    /// Compiled-circuit cache totals from the engine.
    pub cache: CacheStats,
}

/// The live session ledger behind the `status` and `stats` protocol
/// verbs. Every count is logical — derived from the submission/retire
/// sequence, never sampled from a running thread — so the ledger observed
/// at a protocol step is deterministic for a gated session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionStats {
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs retired (done, failed or cancelled).
    pub completed: u64,
    /// Submissions refused by queue back-pressure.
    pub rejected: u64,
    /// Jobs retired as `Cancelled`.
    pub cancelled: u64,
    /// Jobs accepted but not yet retired.
    pub in_flight: u64,
}

/// One retired job's wall/exec latency, from the session's wall-clock
/// ledger (`stats --full` only: wall clock never enters a deterministic
/// document).
#[derive(Clone, Copy, Debug)]
pub struct JobLatency {
    /// The job's numeric id (`job-N`).
    pub job: u64,
    /// Submit-to-retire milliseconds (queueing included).
    pub wall_ms: f64,
    /// Milliseconds inside `JobEngine::run` on the executor (0 for jobs
    /// retired as cancelled).
    pub exec_ms: f64,
}

struct Gate {
    open: Mutex<bool>,
    changed: Condvar,
}

impl Gate {
    fn new(open: bool) -> Self {
        Gate {
            open: Mutex::new(open),
            changed: Condvar::new(),
        }
    }

    fn set(&self, open: bool) {
        let mut flag = self.open.lock().unwrap_or_else(|e| e.into_inner());
        *flag = open;
        self.changed.notify_all();
    }

    fn wait_open(&self) {
        let mut flag = self.open.lock().unwrap_or_else(|e| e.into_inner());
        while !*flag {
            flag = self.changed.wait(flag).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct QueuedJob {
    id: JobId,
    spec: JobSpec,
}

/// See the module docs.
pub struct JobSession {
    engine: Arc<JobEngine>,
    queue: Arc<BoundedQueue<QueuedJob>>,
    gate: Arc<Gate>,
    cancelled: Arc<Mutex<BTreeSet<u64>>>,
    events: mpsc::Receiver<JobEvent>,
    executor: Option<std::thread::JoinHandle<()>>,
    autostart: bool,
    next_id: u64,
    submitted: u64,
    completed: u64,
    rejected: u64,
    cancelled_jobs: u64,
    /// Logical protocol step, the tick source for the queue-depth series:
    /// one per submit and one per retire.
    step: u64,
    /// Submit instants of not-yet-retired jobs, keyed by job id.
    // time-ok: latency ledger; read only via `latency()` into `stats --full`.
    submit_clock: BTreeMap<u64, Instant>,
    /// Retired jobs' (id, submit-to-retire ns), in retire order.
    wall_ns: Vec<(u64, u64)>,
    /// Executed jobs' (id, ns inside `JobEngine::run`), shared with the
    /// executor thread.
    exec_ns: Arc<Mutex<Vec<(u64, u64)>>>,
}

impl JobSession {
    /// Starts a session (and its executor thread) over `engine`.
    pub fn new(engine: Arc<JobEngine>, config: SessionConfig) -> Self {
        // `named`: the raw queue publishes its observed depth as
        // nondeterministic gauges (`serve.queue.raw.*`) — the executor
        // races producers for it, so the deterministic ledger gauge is
        // derived from submitted/completed instead.
        let queue = Arc::new(BoundedQueue::named(
            config.queue_capacity,
            "serve.queue.raw",
        ));
        let gate = Arc::new(Gate::new(config.autostart));
        let cancelled = Arc::new(Mutex::new(BTreeSet::new()));
        let (tx, rx) = mpsc::channel();
        let exec_ns = Arc::new(Mutex::new(Vec::new()));

        let executor = {
            let queue = Arc::clone(&queue);
            let gate = Arc::clone(&gate);
            let cancelled = Arc::clone(&cancelled);
            let engine = Arc::clone(&engine);
            let exec_ns = Arc::clone(&exec_ns);
            std::thread::spawn(move || {
                while let Some(QueuedJob { id, spec }) = queue.pop_wait() {
                    gate.wait_open();
                    let was_cancelled = cancelled
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&id.0);
                    if was_cancelled {
                        if tx.send(JobEvent::Cancelled { job: id }).is_err() {
                            break;
                        }
                        continue;
                    }
                    let tx_job = tx.clone();
                    let exec_clock = Arc::clone(&exec_ns);
                    // time-ok: exec-latency ledger, read only by `latency()`.
                    let started = Instant::now();
                    // The engine already turns failures into a Failed
                    // event; nothing further to do with the Result here.
                    let _ = engine.run(id, &spec, &mut move |event| {
                        if event.is_terminal() {
                            // Ledger first, then forward: a barrier that
                            // observes the terminal event must already
                            // find this job's exec time in the ledger.
                            exec_clock
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push((id.0, started.elapsed().as_nanos() as u64));
                        }
                        let _ = tx_job.send(event);
                    });
                }
            })
        };

        JobSession {
            engine,
            queue,
            gate,
            cancelled,
            events: rx,
            executor: Some(executor),
            autostart: config.autostart,
            next_id: 0,
            submitted: 0,
            completed: 0,
            rejected: 0,
            cancelled_jobs: 0,
            step: 0,
            submit_clock: BTreeMap::new(),
            wall_ns: Vec::new(),
            exec_ns,
        }
    }

    /// The engine this session runs on.
    pub fn engine(&self) -> &Arc<JobEngine> {
        &self.engine
    }

    /// Jobs accepted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Jobs whose terminal event has been observed at a barrier so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Submissions refused by queue back-pressure so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Jobs retired as `Cancelled` so far.
    pub fn cancelled_jobs(&self) -> u64 {
        self.cancelled_jobs
    }

    /// Jobs accepted but not yet retired. In a gated session this is the
    /// logical queue depth: the executor may have eagerly popped the next
    /// job off the raw queue, but it still counts until its terminal
    /// event is observed at a barrier.
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.completed
    }

    /// The live session ledger (see [`SessionStats`]).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            submitted: self.submitted,
            completed: self.completed,
            rejected: self.rejected,
            cancelled: self.cancelled_jobs,
            in_flight: self.in_flight(),
        }
    }

    /// The wall/exec latency ledger of every retired job, in job order.
    /// Wall clock — belongs only in the nondeterministic `stats --full`
    /// section.
    pub fn latency(&self) -> Vec<JobLatency> {
        let exec = self.exec_ns.lock().unwrap_or_else(|e| e.into_inner());
        self.wall_ns
            .iter()
            .map(|&(job, wall)| {
                let exec_ns = exec
                    .iter()
                    .find(|&&(id, _)| id == job)
                    .map_or(0, |&(_, ns)| ns);
                JobLatency {
                    job,
                    wall_ms: wall as f64 / 1e6,
                    exec_ms: exec_ns as f64 / 1e6,
                }
            })
            .collect()
    }

    /// Publishes the deterministic ledger gauges — queue depth (logical),
    /// its high-watermark, in-flight count and the cache hit ratio in
    /// basis points — so the next metrics snapshot carries them. Called
    /// by the protocol layer before answering `stats`; a no-op without a
    /// recorder.
    pub fn publish_gauges(&self) {
        if !flh_obs::enabled() {
            return;
        }
        let depth = self.in_flight() as i64;
        flh_obs::gauge_set("serve.queue.depth", depth);
        flh_obs::gauge_max("serve.queue.depth_peak", depth);
        flh_obs::gauge_set("serve.jobs.in_flight", depth);
        let cache = self.engine.cache_stats();
        let lookups = cache.hits + cache.misses;
        let ratio_bp = if lookups == 0 {
            0
        } else {
            (cache.hits * 10_000 / lookups) as i64
        };
        flh_obs::gauge_set("serve.cache.hit_ratio_bp", ratio_bp);
    }

    /// Advances the logical step and records the queue-depth series point
    /// and gauges for it.
    fn note_queue_step(&mut self) {
        self.step += 1;
        if flh_obs::enabled() {
            let depth = self.in_flight() as i64;
            flh_obs::gauge_set("serve.queue.depth", depth);
            flh_obs::gauge_max("serve.queue.depth_peak", depth);
            flh_obs::series_record("serve.queue.depth", self.step, depth);
        }
    }

    /// Enqueues a job. Never blocks; at capacity the job is rejected with
    /// [`SubmitError::QueueFull`] and the would-be id is not consumed.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the queue is full or the session is closed.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let id = JobId(self.next_id + 1);
        match self.queue.try_push(QueuedJob { id, spec }) {
            Ok(()) => {
                self.next_id += 1;
                self.submitted += 1;
                // time-ok: latency ledger only (nondet section).
                self.submit_clock.insert(id.0, Instant::now());
                self.note_queue_step();
                Ok(id)
            }
            Err(PushError::Full(_)) => {
                self.rejected += 1;
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(SubmitError::Closed),
        }
    }

    /// Marks a job for cancellation. Returns true when the id names a job
    /// this session accepted; whether it is actually retired as
    /// `Cancelled` (rather than having already run) is decided at the
    /// next barrier — deterministically so for gated sessions.
    pub fn cancel(&mut self, job: JobId) -> bool {
        if job.0 == 0 || job.0 > self.next_id {
            return false;
        }
        self.cancelled
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(job.0);
        true
    }

    /// Barrier: opens the gate, streams buffered and in-flight events into
    /// `sink` until every accepted job has reached its terminal event,
    /// then restores the gate. Returns the number of jobs retired during
    /// this call.
    pub fn wait(&mut self, sink: &mut dyn FnMut(JobEvent)) -> u64 {
        self.gate.set(true);
        let retired = self.pump(sink);
        self.gate.set(self.autostart);
        retired
    }

    fn pump(&mut self, sink: &mut dyn FnMut(JobEvent)) -> u64 {
        let mut retired = 0;
        while self.completed < self.submitted {
            let Ok(event) = self.events.recv() else {
                break; // executor gone (panic); nothing more will arrive
            };
            if event.is_terminal() {
                self.retire(&event);
                retired += 1;
            }
            sink(event);
        }
        retired
    }

    /// Ledger bookkeeping for one terminal event.
    fn retire(&mut self, event: &JobEvent) {
        self.completed += 1;
        if matches!(event, JobEvent::Cancelled { .. }) {
            self.cancelled_jobs += 1;
        }
        if let Some(submitted_at) = self.submit_clock.remove(&event.job().0) {
            self.wall_ns
                .push((event.job().0, submitted_at.elapsed().as_nanos() as u64));
        }
        self.note_queue_step();
    }

    /// Closes the queue, runs every job still pending, streams the
    /// remaining events into `sink`, joins the executor and returns the
    /// session totals.
    pub fn shutdown(mut self, sink: &mut dyn FnMut(JobEvent)) -> SessionSummary {
        self.queue.close();
        self.gate.set(true);
        self.pump(sink);
        if let Some(handle) = self.executor.take() {
            let _ = handle.join();
        }
        // Anything the executor sent between the ledger converging and the
        // channel disconnecting (nothing, in practice) still drains.
        while let Ok(event) = self.events.try_recv() {
            if event.is_terminal() {
                self.retire(&event);
            }
            sink(event);
        }
        SessionSummary {
            submitted: self.submitted,
            completed: self.completed,
            cache: self.engine.cache_stats(),
        }
    }
}

impl Drop for JobSession {
    fn drop(&mut self) {
        // A session dropped without `shutdown` must not leave the executor
        // parked forever.
        self.queue.close();
        self.gate.set(true);
        if let Some(handle) = self.executor.take() {
            let _ = handle.join();
        }
    }
}
