//! Content-addressed compiled-circuit cache.
//!
//! The unit of reuse is a [`CompiledEntry`]: a styled netlist plus its
//! [`CompiledCircuit`] behind an `Arc`, keyed by `(content_key, DFT
//! style)`. Entries are found in two hops:
//!
//! 1. **raw key → content key** — a small memo over
//!    [`CircuitSource::raw_key`] lets a repeat submission skip the
//!    parse/generate step entirely (counted as `serve.cache.parse_skips`);
//! 2. **content key → entry** — the compiled table proper, shared across
//!    spellings of the same circuit, LRU-evicted at `capacity`.
//!
//! Both tables are `BTreeMap`s (deterministic iteration; this crate is
//! covered by `scripts/determinism_lint.sh`) and recency is a logical
//! tick, not wall clock, so eviction order is a pure function of the
//! access sequence. Hit/miss/eviction totals surface as flh-obs named
//! counters (`serve.cache.*`) and as a plain [`CacheStats`] for callers
//! asserting without the recorder installed.

use std::collections::BTreeMap;
use std::sync::Arc;

use flh_core::{apply_style, DftStyle};
use flh_netlist::{CompiledCircuit, Netlist, Program};

use crate::source::{content_key, CircuitSource};

/// Default number of compiled entries a cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

/// A cached, compiled circuit: the netlist *after* optional DFT styling,
/// and its compiled form, shared by `Arc` with every job that hits.
#[derive(Debug)]
pub struct CompiledEntry {
    /// The styled netlist the entry was compiled from.
    pub netlist: Netlist,
    /// Its compiled evaluation structure.
    pub compiled: Arc<CompiledCircuit>,
    /// The lowered bytecode program every simulation job executes.
    pub program: Arc<Program>,
    /// Content key of the *base* (pre-styling) netlist.
    pub content_key: u64,
}

/// How a lookup was served — reported in job `started` events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheLookup {
    /// The compiled entry was already present (no styling, no compile).
    pub hit: bool,
    /// The raw-key memo was warm, so the source was not re-parsed or
    /// regenerated (implied by `hit`, but also possible on a style miss
    /// over a known circuit).
    pub parse_skipped: bool,
}

/// Monotonic totals since the cache was created.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compiled-entry hits.
    pub hits: u64,
    /// Compiled-entry misses (entry had to be built).
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Lookups that skipped parse/generate via the raw-key memo.
    pub parse_skips: u64,
}

/// Key of one compiled entry: base-netlist content plus the DFT styling
/// applied on top (`DftStyle` has no `Ord`, so it is ranked manually).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EntryKey {
    content: u64,
    style_rank: u8,
}

fn style_rank(dft: Option<DftStyle>) -> u8 {
    match dft {
        None => 0,
        Some(DftStyle::PlainScan) => 1,
        Some(DftStyle::EnhancedScan) => 2,
        Some(DftStyle::MuxHold) => 3,
        Some(DftStyle::Flh) => 4,
    }
}

/// The cache. Not internally synchronized — the [`JobEngine`]
/// (`crate::engine`) wraps it in a `Mutex` and performs every access on
/// the executing job's thread.
#[derive(Debug)]
pub struct CircuitCache {
    capacity: usize,
    tick: u64,
    sources: BTreeMap<u64, (u64, u64)>,
    entries: BTreeMap<EntryKey, (Arc<CompiledEntry>, u64)>,
    stats: CacheStats,
}

impl CircuitCache {
    /// A cache retaining at most `capacity` compiled entries (clamped to
    /// at least one) and `4 × capacity` raw-key memos.
    pub fn new(capacity: usize) -> Self {
        CircuitCache {
            capacity: capacity.max(1),
            tick: 0,
            sources: BTreeMap::new(),
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Compiled-entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of compiled entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no compiled entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Totals since creation.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Returns the compiled entry for `source` styled with `dft`, building
    /// (and caching) it on a miss.
    ///
    /// # Errors
    ///
    /// Load, styling or compile failures, as a display string.
    pub fn get_or_compile(
        &mut self,
        source: &CircuitSource,
        dft: Option<DftStyle>,
    ) -> Result<(Arc<CompiledEntry>, CacheLookup), String> {
        let raw = source.raw_key();
        let tick = self.next_tick();

        // Hop 1: raw request → content key, skipping parse/generate when warm.
        let (content, base, parse_skipped) = match self.sources.get_mut(&raw) {
            Some((content, last_used)) => {
                *last_used = tick;
                (*content, None, true)
            }
            None => {
                let netlist = source.load()?;
                let content = content_key(&netlist);
                self.sources.insert(raw, (content, tick));
                if self.sources.len() > 4 * self.capacity {
                    if let Some(oldest) = self
                        .sources
                        .iter()
                        .min_by_key(|(_, (_, t))| *t)
                        .map(|(k, _)| *k)
                    {
                        self.sources.remove(&oldest);
                    }
                }
                (content, Some(netlist), false)
            }
        };
        if parse_skipped {
            self.stats.parse_skips += 1;
            flh_obs::named_add("serve.cache.parse_skips", 1);
        }

        // Hop 2: content × style → compiled entry.
        let key = EntryKey {
            content,
            style_rank: style_rank(dft),
        };
        if let Some((entry, last_used)) = self.entries.get_mut(&key) {
            *last_used = tick;
            self.stats.hits += 1;
            flh_obs::named_add("serve.cache.hits", 1);
            return Ok((
                Arc::clone(entry),
                CacheLookup {
                    hit: true,
                    parse_skipped,
                },
            ));
        }

        self.stats.misses += 1;
        flh_obs::named_add("serve.cache.misses", 1);
        let base = match base {
            Some(netlist) => netlist,
            // Raw memo was warm but the styled entry is gone (first style
            // request, or evicted): reload from the source.
            None => source.load()?,
        };
        let styled = match dft {
            None => base,
            Some(style) => {
                apply_style(&base, style)
                    .map_err(|e| format!("{}: applying {}: {e}", source.name(), style.label()))?
                    .netlist
            }
        };
        let compiled = CompiledCircuit::compile_shared(&styled)
            .map_err(|e| format!("{}: compile failed: {e}", source.name()))?;
        let program = Program::lower_shared(&compiled);
        let entry = Arc::new(CompiledEntry {
            netlist: styled,
            compiled,
            program,
            content_key: content,
        });
        self.entries.insert(key, (Arc::clone(&entry), tick));
        while self.entries.len() > self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
                flh_obs::named_add("serve.cache.evictions", 1);
            }
        }
        Ok((
            entry,
            CacheLookup {
                hit: false,
                parse_skipped,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_lookup_hits_and_shares_the_entry() {
        let mut cache = CircuitCache::new(4);
        let src = CircuitSource::named("s298").unwrap();
        let (first, lookup) = cache.get_or_compile(&src, None).unwrap();
        assert_eq!(
            lookup,
            CacheLookup {
                hit: false,
                parse_skipped: false
            }
        );
        let (second, lookup) = cache.get_or_compile(&src, None).unwrap();
        assert_eq!(
            lookup,
            CacheLookup {
                hit: true,
                parse_skipped: true
            }
        );
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.parse_skips), (1, 1, 1));
    }

    #[test]
    fn style_variants_are_distinct_entries_over_one_parse() {
        let mut cache = CircuitCache::new(4);
        let src = CircuitSource::named("s298").unwrap();
        let (base, _) = cache.get_or_compile(&src, None).unwrap();
        let (es, lookup) = cache
            .get_or_compile(&src, Some(DftStyle::EnhancedScan))
            .unwrap();
        // Different entry (enhanced scan inserts a hold latch per FF), but
        // the raw-key memo spared the regenerate.
        assert!(!Arc::ptr_eq(&base, &es));
        assert!(lookup.parse_skipped && !lookup.hit);
        assert_eq!(base.content_key, es.content_key);
        assert!(es.netlist.cell_count() > base.netlist.cell_count());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = CircuitCache::new(2);
        let a = CircuitSource::named("s298").unwrap();
        let b = CircuitSource::named("s344").unwrap();
        let c = CircuitSource::named("s420").unwrap();
        cache.get_or_compile(&a, None).unwrap();
        cache.get_or_compile(&b, None).unwrap();
        cache.get_or_compile(&a, None).unwrap(); // refresh a; b is now coldest
        cache.get_or_compile(&c, None).unwrap(); // evicts b
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let (_, lookup) = cache.get_or_compile(&a, None).unwrap();
        assert!(lookup.hit, "a survived");
        let (_, lookup) = cache.get_or_compile(&b, None).unwrap();
        assert!(!lookup.hit, "b was evicted");
    }
}
