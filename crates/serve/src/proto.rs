//! The serve wire protocol: line-delimited JSON requests and responses.
//!
//! One request per input line, one JSON object per output line. Responses
//! are rendered through [`crate::json::render`], so key order is sorted
//! and byte-stable; together with the session layer's barrier-drained
//! event stream this makes a transcript a pure function of the request
//! script (the `flh serve` CI gate byte-diffs transcripts across
//! `FLH_THREADS` widths).
//!
//! Requests (fields beyond `op` shown with their defaults):
//!
//! ```text
//! {"op":"submit","circuit":"s298",            // or "bench":"...","name":"x"
//!  "kind":"campaign",                         // or "eval"
//!  "styles":"all",                            // or ["arbitrary","broadside","skewed"]
//!  "pairs":256,"seed":7,"dft":null}           // campaign knobs
//! {"op":"submit","circuit":"s298","kind":"eval",
//!  "styles":"all",                            // or ["plain","enhanced","mux","flh"]
//!  "vectors":100}                             // power-vector count
//! {"op":"status"}
//! {"op":"cancel","job":"job-2"}
//! {"op":"stats"}                              // or {"op":"stats","full":true}
//! {"op":"wait"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses: `accepted`, `rejected` (queue back-pressure), `cancel`,
//! `status` (the full session ledger: submitted/completed/rejected/
//! cancelled/in_flight), the streamed job events (`started` — carrying
//! the compiled-circuit cache verdict — `batch`, `progress`, `done`,
//! `failed`, `cancelled`), `idle` (a `wait` barrier drained), `stats`,
//! `bye` (shutdown summary with cache totals), and `{"error":...}` for
//! malformed input — never a panic.
//!
//! The `progress` event streams campaign coverage after every batch:
//! `{"event":"progress","job":...,"done":d,"batches":b,"style":...,
//! "detected":...,"faults":...,"coverage_pct":...,"pairs_done":...,
//! "pairs_total":...}`, plus `pairs_per_s`/`eta_ms` only when the server
//! opted into wall-clock timings (`flh serve --timings`) — default
//! transcripts stay clock-free and byte-diffable.
//!
//! The `stats` reply carries the session ledger, cache totals and — when
//! the flh-obs recorder is installed — the full deterministic metrics
//! document (counters, histograms, gauges, time series) under
//! `"metrics"`; it is byte-identical at any `FLH_THREADS` width at the
//! same protocol step. `{"op":"stats","full":true}` additionally attaches
//! the **nondeterministic** section (span timings, worker stats,
//! scheduling counters, sampled queue depths) and the per-job wall/exec
//! latency ledger — never diffed, never deterministic.

use flh_core::{DftStyle, EvalConfig};

use crate::cache::CacheStats;
use crate::job::{
    parse_application_styles, parse_dft_style, BatchPayload, JobEvent, JobId, JobKind, JobSpec,
};
use crate::json::{parse_json, render, Json};
use crate::session::{JobLatency, SessionStats, SessionSummary};
use crate::source::CircuitSource;

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Enqueue a job.
    Submit(JobSpec),
    /// Report the session ledger.
    Status,
    /// Report live telemetry: the ledger, cache totals and the
    /// deterministic metrics document; `full` adds the nondeterministic
    /// section and the wall-clock latency ledger.
    Stats {
        /// Include the nondeterministic section.
        full: bool,
    },
    /// Mark a job for cancellation.
    Cancel(JobId),
    /// Barrier: run and stream everything accepted so far.
    Wait,
    /// Drain and end the session.
    Shutdown,
}

const ALL_DFT_STYLES: [DftStyle; 4] = [
    DftStyle::PlainScan,
    DftStyle::EnhancedScan,
    DftStyle::MuxHold,
    DftStyle::Flh,
];

fn dft_wire_name(style: DftStyle) -> &'static str {
    match style {
        DftStyle::PlainScan => "plain",
        DftStyle::EnhancedScan => "enhanced",
        DftStyle::MuxHold => "mux",
        DftStyle::Flh => "flh",
    }
}

pub(crate) fn application_wire_name(style: flh_atpg::ApplicationStyle) -> &'static str {
    match style {
        flh_atpg::ApplicationStyle::ArbitraryTwoPattern => "arbitrary",
        flh_atpg::ApplicationStyle::Broadside => "broadside",
        flh_atpg::ApplicationStyle::SkewedLoad => "skewed",
    }
}

fn field_u64(
    map: &std::collections::BTreeMap<String, Json>,
    key: &str,
) -> Result<Option<u64>, String> {
    match map.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n < 9.0e15 => {
            Ok(Some(*n as u64))
        }
        Some(other) => Err(format!(
            "{key} must be a non-negative integer, got {other:?}"
        )),
    }
}

fn style_list(map: &std::collections::BTreeMap<String, Json>) -> Result<Option<String>, String> {
    match map.get("styles") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::String(s)) => Ok(Some(s.clone())),
        Some(Json::Array(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                names.push(
                    item.as_str()
                        .ok_or_else(|| format!("styles entries must be strings, got {item:?}"))?
                        .to_string(),
                );
            }
            Ok(Some(names.join(",")))
        }
        Some(other) => Err(format!("styles must be a string or array, got {other:?}")),
    }
}

fn parse_submit(map: &std::collections::BTreeMap<String, Json>) -> Result<Request, String> {
    let source = match (map.get("circuit"), map.get("bench")) {
        (Some(circuit), None) => {
            let spec = circuit
                .as_str()
                .ok_or_else(|| "circuit must be a string".to_string())?;
            CircuitSource::named(spec)?
        }
        (None, Some(bench)) => {
            let text = bench
                .as_str()
                .ok_or_else(|| "bench must be a string".to_string())?;
            let name = match map.get("name") {
                None => "design",
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| "name must be a string".to_string())?,
            };
            CircuitSource::bench_text(name, text)
        }
        (Some(_), Some(_)) => return Err("submit takes circuit or bench, not both".into()),
        (None, None) => return Err("submit needs a circuit name or bench text".into()),
    };

    let kind = match map.get("kind") {
        None => "campaign",
        Some(v) => v
            .as_str()
            .ok_or_else(|| "kind must be a string".to_string())?,
    };
    let styles = style_list(map)?;
    match kind {
        "campaign" => {
            let mut spec = JobSpec::campaign(source);
            if let Some(list) = styles {
                spec = spec.with_styles(parse_application_styles(&list)?);
            }
            if let Some(pairs) = field_u64(map, "pairs")? {
                spec = spec.with_pairs(pairs as usize);
            }
            if let Some(seed) = field_u64(map, "seed")? {
                spec = spec.with_seed(seed);
            }
            match map.get("dft") {
                None | Some(Json::Null) => {}
                Some(v) => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| "dft must be a string".to_string())?;
                    let style = parse_dft_style(name)
                        .ok_or_else(|| format!("unknown DFT style {name:?}"))?;
                    spec = spec.with_dft(Some(style));
                }
            }
            Ok(Request::Submit(spec))
        }
        "eval" => {
            let styles = match styles {
                None => ALL_DFT_STYLES.to_vec(),
                Some(list) if list == "all" => ALL_DFT_STYLES.to_vec(),
                Some(list) => {
                    let mut parsed = Vec::new();
                    for name in list.split(',') {
                        let style = parse_dft_style(name.trim())
                            .ok_or_else(|| format!("unknown DFT style {name:?}"))?;
                        if parsed.contains(&style) {
                            return Err(format!("DFT style {} given twice", style.label()));
                        }
                        parsed.push(style);
                    }
                    if parsed.is_empty() {
                        return Err("empty style list".into());
                    }
                    parsed
                }
            };
            let mut config = EvalConfig::paper_default();
            if let Some(vectors) = field_u64(map, "vectors")? {
                config.vectors = vectors as usize;
            }
            Ok(Request::Submit(JobSpec::evaluate(source, styles, config)))
        }
        other => Err(format!("unknown kind {other:?} (campaign or eval)")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable reason; the server replies `{"error":...}` with it.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = parse_json(line)?;
    let map = value
        .as_object()
        .ok_or_else(|| "request must be a JSON object".to_string())?;
    let op = map
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string \"op\" field".to_string())?;
    match op {
        "submit" => parse_submit(map),
        "status" => Ok(Request::Status),
        "stats" => {
            let full = match map.get("full") {
                None | Some(Json::Null) => false,
                Some(Json::Bool(b)) => *b,
                Some(other) => return Err(format!("full must be a boolean, got {other:?}")),
            };
            Ok(Request::Stats { full })
        }
        "cancel" => {
            let text = map
                .get("job")
                .and_then(Json::as_str)
                .ok_or_else(|| "cancel needs a \"job\":\"job-N\" field".to_string())?;
            let job = JobId::parse(text).ok_or_else(|| format!("bad job id {text:?}"))?;
            Ok(Request::Cancel(job))
        }
        "wait" => Ok(Request::Wait),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Renders a request back to its canonical line (sorted keys, explicit
/// campaign knobs). `parse_request(render_request(r))` reproduces `r`, and
/// rendering is idempotent — the round-trip test's contract.
pub fn render_request(request: &Request) -> String {
    let value = match request {
        Request::Status => Json::object([("op", Json::String("status".into()))]),
        Request::Stats { full } => {
            let mut kv = vec![("op", Json::String("stats".into()))];
            if *full {
                kv.push(("full", Json::Bool(true)));
            }
            Json::object(kv)
        }
        Request::Wait => Json::object([("op", Json::String("wait".into()))]),
        Request::Shutdown => Json::object([("op", Json::String("shutdown".into()))]),
        Request::Cancel(job) => Json::object([
            ("job", Json::String(job.to_string())),
            ("op", Json::String("cancel".into())),
        ]),
        Request::Submit(spec) => {
            let mut pairs_kv: Vec<(&'static str, Json)> = Vec::new();
            match &spec.source {
                CircuitSource::Profile(p) => {
                    pairs_kv.push(("circuit", Json::String(p.name.to_string())));
                }
                CircuitSource::BenchText { name, text } => {
                    pairs_kv.push(("bench", Json::String(text.clone())));
                    pairs_kv.push(("name", Json::String(name.clone())));
                }
            }
            pairs_kv.push(("op", Json::String("submit".into())));
            match &spec.kind {
                JobKind::Campaign {
                    styles,
                    pairs,
                    seed,
                } => {
                    pairs_kv.push(("kind", Json::String("campaign".into())));
                    pairs_kv.push((
                        "styles",
                        Json::Array(
                            styles
                                .iter()
                                .map(|&s| Json::String(application_wire_name(s).into()))
                                .collect(),
                        ),
                    ));
                    pairs_kv.push(("pairs", Json::Number(*pairs as f64)));
                    pairs_kv.push(("seed", Json::Number(*seed as f64)));
                    if let Some(dft) = spec.dft {
                        pairs_kv.push(("dft", Json::String(dft_wire_name(dft).into())));
                    }
                }
                JobKind::Evaluate { styles, config } => {
                    pairs_kv.push(("kind", Json::String("eval".into())));
                    pairs_kv.push((
                        "styles",
                        Json::Array(
                            styles
                                .iter()
                                .map(|&s| Json::String(dft_wire_name(s).into()))
                                .collect(),
                        ),
                    ));
                    pairs_kv.push(("vectors", Json::Number(config.vectors as f64)));
                }
            }
            Json::object(pairs_kv)
        }
    };
    render(&value)
}

fn round4(x: f64) -> f64 {
    (x * 1.0e4).round() / 1.0e4
}

fn job_kv(job: JobId) -> (&'static str, Json) {
    ("job", Json::String(job.to_string()))
}

/// Renders one streamed job event as a response line.
pub fn render_event(event: &JobEvent) -> String {
    let value = match event {
        JobEvent::Started {
            job,
            circuit,
            cache,
        } => Json::object([
            (
                "cache",
                Json::String(if cache.hit { "hit" } else { "miss" }.into()),
            ),
            ("circuit", Json::String(circuit.clone())),
            ("event", Json::String("started".into())),
            job_kv(*job),
            ("parse_skipped", Json::Bool(cache.parse_skipped)),
        ]),
        JobEvent::Batch {
            job,
            index,
            payload,
        } => {
            let mut kv: Vec<(&'static str, Json)> = vec![
                ("event", Json::String("batch".into())),
                ("index", Json::Number(*index as f64)),
                job_kv(*job),
            ];
            match payload {
                BatchPayload::Campaign(r) => {
                    kv.push(("coverage_pct", Json::Number(round4(r.coverage_pct()))));
                    kv.push(("detected", Json::Number(r.detected as f64)));
                    kv.push(("faults", Json::Number(r.total_faults as f64)));
                    kv.push(("pairs", Json::Number(r.pairs as f64)));
                    kv.push(("style", Json::String(r.style.to_string())));
                }
                BatchPayload::Evaluation(e) => {
                    kv.push(("area_pct", Json::Number(round4(e.area_increase_pct()))));
                    kv.push(("area_um2", Json::Number(round4(e.area_um2))));
                    kv.push(("delay_pct", Json::Number(round4(e.delay_increase_pct()))));
                    kv.push(("delay_ps", Json::Number(round4(e.delay_ps))));
                    kv.push(("power_pct", Json::Number(round4(e.power_increase_pct()))));
                    kv.push(("power_uw", Json::Number(round4(e.power_uw))));
                    kv.push(("style", Json::String(e.style.label().into())));
                }
            }
            Json::object(kv)
        }
        JobEvent::Progress {
            job,
            done,
            batches,
            style,
            detected,
            faults,
            coverage_pct,
            pairs_done,
            pairs_total,
            timing,
        } => {
            let mut kv: Vec<(&'static str, Json)> = vec![
                ("batches", Json::Number(*batches as f64)),
                ("coverage_pct", Json::Number(round4(*coverage_pct))),
                ("detected", Json::Number(*detected as f64)),
                ("done", Json::Number(*done as f64)),
                ("event", Json::String("progress".into())),
                ("faults", Json::Number(*faults as f64)),
                job_kv(*job),
                ("pairs_done", Json::Number(*pairs_done as f64)),
                ("pairs_total", Json::Number(*pairs_total as f64)),
                ("style", Json::String(style.clone())),
            ];
            if let Some(t) = timing {
                kv.push(("eta_ms", Json::Number(t.eta_ms as f64)));
                kv.push(("pairs_per_s", Json::Number(round4(t.pairs_per_s))));
            }
            Json::object(kv)
        }
        JobEvent::Done {
            job,
            batches,
            metrics,
        } => {
            let mut kv: Vec<(&'static str, Json)> = vec![
                ("batches", Json::Number(*batches as f64)),
                ("event", Json::String("done".into())),
                job_kv(*job),
            ];
            if let Some(doc) = metrics {
                // The det-delta document is this workspace's own JSON; on
                // the off chance it ever fails to reparse, ship it as a
                // string rather than dropping it.
                kv.push((
                    "metrics",
                    parse_json(doc.trim()).unwrap_or_else(|_| Json::String(doc.clone())),
                ));
            }
            Json::object(kv)
        }
        JobEvent::Failed { job, reason } => Json::object([
            ("event", Json::String("failed".into())),
            job_kv(*job),
            ("reason", Json::String(reason.clone())),
        ]),
        JobEvent::Cancelled { job } => {
            Json::object([("event", Json::String("cancelled".into())), job_kv(*job)])
        }
    };
    render(&value)
}

/// `accepted` ack for a submission.
pub fn render_accepted(job: JobId) -> String {
    render(&Json::object([
        ("event", Json::String("accepted".into())),
        job_kv(job),
    ]))
}

/// `rejected` reply (queue back-pressure or closed session).
pub fn render_rejected(reason: &str) -> String {
    render(&Json::object([
        ("event", Json::String("rejected".into())),
        ("reason", Json::String(reason.into())),
    ]))
}

/// `{"error":...}` reply for malformed input.
pub fn render_error(reason: &str) -> String {
    render(&Json::object([("error", Json::String(reason.into()))]))
}

/// `cancel` ack; `known` is whether the id names an accepted job.
pub fn render_cancel_ack(job: JobId, known: bool) -> String {
    render(&Json::object([
        ("event", Json::String("cancel".into())),
        job_kv(job),
        ("known", Json::Bool(known)),
    ]))
}

/// `status` reply: the deterministic session ledger.
pub fn render_status(stats: &SessionStats) -> String {
    render(&Json::object([
        ("cancelled", Json::Number(stats.cancelled as f64)),
        ("completed", Json::Number(stats.completed as f64)),
        ("event", Json::String("status".into())),
        ("in_flight", Json::Number(stats.in_flight as f64)),
        ("rejected", Json::Number(stats.rejected as f64)),
        ("submitted", Json::Number(stats.submitted as f64)),
    ]))
}

/// The nondeterministic payload attached to a `stats --full` reply.
pub struct StatsFull<'a> {
    /// The flh-obs nondeterministic section
    /// (`flh_obs::nondeterministic_json`).
    pub nondet: &'a str,
    /// The session's per-job wall/exec latency ledger.
    pub latency: &'a [JobLatency],
}

/// `stats` reply: the session ledger, cache totals and the deterministic
/// metrics document (`None` → `"metrics":null` when no recorder is
/// installed). With `full`, also the nondeterministic section and the
/// wall-clock latency ledger.
pub fn render_stats(
    stats: &SessionStats,
    cache: CacheStats,
    metrics: Option<&str>,
    full: Option<StatsFull<'_>>,
) -> String {
    let mut kv: Vec<(&'static str, Json)> = vec![
        ("cache", cache_json(cache)),
        ("cancelled", Json::Number(stats.cancelled as f64)),
        ("completed", Json::Number(stats.completed as f64)),
        ("event", Json::String("stats".into())),
        ("in_flight", Json::Number(stats.in_flight as f64)),
        (
            "metrics",
            match metrics {
                // The det document is this workspace's own JSON; ship it
                // as a string rather than dropping it if it ever fails to
                // reparse (same policy as the done event).
                Some(doc) => parse_json(doc.trim()).unwrap_or_else(|_| Json::String(doc.into())),
                None => Json::Null,
            },
        ),
        ("rejected", Json::Number(stats.rejected as f64)),
        ("submitted", Json::Number(stats.submitted as f64)),
    ];
    if let Some(full) = full {
        let latency: Vec<Json> = full
            .latency
            .iter()
            .map(|l| {
                Json::object([
                    ("exec_ms", Json::Number(round4(l.exec_ms))),
                    ("job", Json::String(format!("job-{}", l.job))),
                    ("wall_ms", Json::Number(round4(l.wall_ms))),
                ])
            })
            .collect();
        kv.push(("latency", Json::Array(latency)));
        kv.push((
            "nondeterministic",
            parse_json(full.nondet).unwrap_or_else(|_| Json::String(full.nondet.into())),
        ));
    }
    render(&Json::object(kv))
}

/// `idle` reply ending a `wait` barrier.
pub fn render_idle(retired: u64) -> String {
    render(&Json::object([
        ("event", Json::String("idle".into())),
        ("retired", Json::Number(retired as f64)),
    ]))
}

fn cache_json(stats: CacheStats) -> Json {
    Json::object([
        ("evictions", Json::Number(stats.evictions as f64)),
        ("hits", Json::Number(stats.hits as f64)),
        ("misses", Json::Number(stats.misses as f64)),
        ("parse_skips", Json::Number(stats.parse_skips as f64)),
    ])
}

/// `bye` reply ending the session, with cache totals.
pub fn render_bye(summary: &SessionSummary) -> String {
    render(&Json::object([
        ("cache", cache_json(summary.cache)),
        ("completed", Json::Number(summary.completed as f64)),
        ("event", Json::String("bye".into())),
        ("submitted", Json::Number(summary.submitted as f64)),
    ]))
}
