//! Where a job's circuit comes from, and the two-level cache key it hashes
//! to.
//!
//! Every front end of the workspace (the `flh` CLI, the bench binaries,
//! the serve protocol) names circuits in one of two ways: a builtin
//! ISCAS89 profile, or ISCAS89 `.bench` text. [`CircuitSource`] is the
//! single place both spellings are resolved and keyed, so a circuit
//! submitted twice — by name, by path, or inline over the protocol — maps
//! to the same cache entry no matter which front end asked.
//!
//! Two keys, two jobs:
//!
//! * [`CircuitSource::raw_key`] hashes the *request* (profile generator
//!   config, or the verbatim bench text). A raw-key hit lets the cache
//!   skip even the parse/generate step on repeat submissions.
//! * [`content_key`] hashes the *normalized netlist* — the canonical
//!   [`write_bench`] rendering — so two different spellings of the same
//!   circuit (a file and the equivalent inline text) still share one
//!   compiled entry.

use flh_netlist::bench_io::{parse_bench, write_bench};
use flh_netlist::mapper::map_netlist;
use flh_netlist::{generate_circuit, iscas89_profile, CircuitProfile, Netlist};

/// FNV-1a 64-bit — the same deterministic, platform-stable hash the
/// circuit generator seeds profiles with.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A circuit a job wants compiled.
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitSource {
    /// A builtin ISCAS89 profile, regenerated deterministically from its
    /// generator config.
    Profile(CircuitProfile),
    /// ISCAS89 `.bench` text carried with the job (inline protocol
    /// submissions, or a file read at spec-build time so the key always
    /// reflects the content actually submitted).
    BenchText {
        /// Design name (the file stem, or the protocol's `name` field).
        name: String,
        /// The verbatim `.bench` source.
        text: String,
    },
}

impl CircuitSource {
    /// Source for a builtin profile.
    pub fn profile(profile: CircuitProfile) -> Self {
        CircuitSource::Profile(profile)
    }

    /// Source for inline `.bench` text.
    pub fn bench_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        CircuitSource::BenchText {
            name: name.into(),
            text: text.into(),
        }
    }

    /// Resolves a CLI-style circuit spec: a builtin profile name
    /// (`s298` … `s13207`), else a path to a `.bench` file. Files are read
    /// here, eagerly, so the returned source is self-contained and its raw
    /// key reflects the file's content, not its name.
    ///
    /// # Errors
    ///
    /// When the spec is neither a known profile nor a readable file.
    pub fn named(spec: &str) -> Result<Self, String> {
        if let Some(profile) = iscas89_profile(spec) {
            return Ok(CircuitSource::Profile(profile));
        }
        let text = std::fs::read_to_string(spec)
            .map_err(|e| format!("{spec}: {e} (and not a builtin profile)"))?;
        let name = std::path::Path::new(spec)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("design");
        Ok(CircuitSource::bench_text(name, text))
    }

    /// The display name of the circuit this source describes.
    pub fn name(&self) -> &str {
        match self {
            CircuitSource::Profile(p) => p.name,
            CircuitSource::BenchText { name, .. } => name,
        }
    }

    /// Request-level cache key: a deterministic hash of how the circuit
    /// was asked for, computable without parsing or generating anything.
    pub fn raw_key(&self) -> u64 {
        match self {
            CircuitSource::Profile(p) => {
                fnv1a(format!("profile\u{0}{:?}", p.generator_config()).as_bytes())
            }
            CircuitSource::BenchText { name, text } => {
                fnv1a(format!("bench\u{0}{name}\u{0}{text}").as_bytes())
            }
        }
    }

    /// Loads (generates or parses + tech-maps) the netlist.
    ///
    /// # Errors
    ///
    /// Generator/parse/mapping failures, labeled with the source name.
    pub fn load(&self) -> Result<Netlist, String> {
        match self {
            CircuitSource::Profile(p) => generate_circuit(&p.generator_config())
                .map_err(|e| format!("generating {}: {e}", p.name)),
            CircuitSource::BenchText { name, text } => {
                let parsed = parse_bench(text, name).map_err(|e| format!("{name}: {e}"))?;
                map_netlist(&parsed).map_err(|e| format!("{name}: mapping failed: {e}"))
            }
        }
    }
}

/// Content-level cache key: FNV-1a over the canonical [`write_bench`]
/// rendering of the loaded netlist (including its `# name` header, so two
/// same-structure designs with different names stay distinct entries and
/// reports keep their labels).
pub fn content_key(netlist: &Netlist) -> u64 {
    fnv1a(write_bench(netlist).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_resolves_profiles_and_files() {
        let p = CircuitSource::named("s298").unwrap();
        assert_eq!(p.name(), "s298");
        assert!(matches!(p, CircuitSource::Profile(_)));
        assert!(CircuitSource::named("no_such_circuit_anywhere")
            .unwrap_err()
            .contains("not a builtin profile"));
    }

    #[test]
    fn raw_keys_separate_requests_and_content_keys_unify_them() {
        let a = CircuitSource::named("s298").unwrap();
        let b = CircuitSource::named("s344").unwrap();
        assert_ne!(a.raw_key(), b.raw_key());
        assert_eq!(a.raw_key(), CircuitSource::named("s298").unwrap().raw_key());

        // The same circuit text submitted in two spellings (here: with and
        // without a comment line the parser ignores) keys differently at
        // the request level but identically at the content level.
        let text = write_bench(&a.load().unwrap());
        let inline = CircuitSource::bench_text("s298", text.clone());
        let commented = CircuitSource::bench_text("s298", format!("{text}# resubmitted\n"));
        assert_ne!(inline.raw_key(), commented.raw_key());
        assert_eq!(
            content_key(&inline.load().unwrap()),
            content_key(&commented.load().unwrap())
        );
    }
}
