//! The [`JobEngine`]: one compiled-circuit cache, one thread pool, one
//! `run` path every front end shares.
//!
//! An engine is cheap state — a [`ThreadPool`] (logical width; results are
//! bit-identical at every width) and a mutexed [`CircuitCache`]. Running a
//! job is synchronous on the caller's thread: the engine resolves the
//! circuit through the cache, streams [`JobEvent`]s into the caller's
//! sink in a deterministic order (`Started`, one `Batch` per style in
//! spec order, `Done`/`Failed`), and returns a [`JobOutcome`]. Queueing,
//! cancellation and cross-thread delivery live one layer up in
//! [`JobSession`](crate::session::JobSession).
//!
//! When the flh-obs recorder is installed, each run brackets itself with
//! snapshots and attaches `det_delta` of the two — the job's own
//! deterministic counters, unpolluted by neighbours — to its `Done` event,
//! and feeds the per-job cost histograms (`serve.job.*`) and the
//! per-style coverage time series (`serve.coverage.<style>`, logical
//! batch ticks) from the same delta. Campaign batches additionally stream
//! a `Progress` event; its wall-clock throughput/ETA fields exist only
//! when the engine opts in via [`JobEngine::with_timings`], keeping
//! default transcripts clock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use flh_atpg::transition::enumerate_transition_faults;
use flh_atpg::{transition_campaign_with_view, TestView};
use flh_core::evaluate_style;
use flh_exec::ThreadPool;

use crate::cache::{CacheLookup, CacheStats, CircuitCache, CompiledEntry};
use crate::job::{BatchPayload, JobEvent, JobId, JobKind, JobOutcome, JobSpec, ProgressTiming};
use crate::source::CircuitSource;

/// Shared campaign/evaluation executor. See the module docs.
#[derive(Debug)]
pub struct JobEngine {
    pool: ThreadPool,
    cache: Mutex<CircuitCache>,
    /// Logical tick for coverage time series: one per campaign batch, in
    /// execution order — deterministic on a session's single executor.
    tick: AtomicU64,
    /// When true, campaign `Progress` events carry wall-clock throughput
    /// and ETA. Off by default — wall clock on the wire would break the
    /// byte-identical transcript contract.
    timings: bool,
}

impl JobEngine {
    /// An engine over the given pool, caching up to `cache_capacity`
    /// compiled entries.
    pub fn new(pool: ThreadPool, cache_capacity: usize) -> Self {
        JobEngine {
            pool,
            cache: Mutex::new(CircuitCache::new(cache_capacity)),
            tick: AtomicU64::new(0),
            timings: false,
        }
    }

    /// An engine on the environment-configured pool
    /// (`FLH_THREADS`) with the default cache capacity.
    pub fn from_env() -> Self {
        JobEngine::new(ThreadPool::from_env(), crate::cache::DEFAULT_CACHE_CAPACITY)
    }

    /// Opts campaign `Progress` events into wall-clock throughput/ETA
    /// fields (`flh serve --timings`).
    #[must_use]
    pub fn with_timings(mut self, on: bool) -> Self {
        self.timings = on;
        self
    }

    /// Whether progress events carry wall-clock throughput.
    pub fn timings(&self) -> bool {
        self.timings
    }

    /// The engine's pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Cache totals since the engine was created.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, CircuitCache> {
        // A poisoned cache mutex only means another job panicked mid-
        // insert; the BTreeMaps are still structurally sound.
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves a compiled circuit through the cache without running a
    /// job — for callers (bench ceilings, perf harnesses) that drive the
    /// simulator directly but want the shared keying and reuse.
    ///
    /// # Errors
    ///
    /// Load/style/compile failures, as a display string.
    pub fn compiled(
        &self,
        source: &CircuitSource,
        dft: Option<flh_core::DftStyle>,
    ) -> Result<(Arc<CompiledEntry>, CacheLookup), String> {
        self.lock_cache().get_or_compile(source, dft)
    }

    /// Runs one job synchronously, streaming events into `emit`.
    ///
    /// # Errors
    ///
    /// Returns the failure reason (also emitted as a `Failed` event).
    pub fn run(
        &self,
        job: JobId,
        spec: &JobSpec,
        emit: &mut dyn FnMut(JobEvent),
    ) -> Result<JobOutcome, String> {
        let _span = flh_obs::span("serve.job.exec");
        let before = flh_obs::enabled().then(flh_obs::snapshot);
        let fail = |reason: String, emit: &mut dyn FnMut(JobEvent)| {
            emit(JobEvent::Failed {
                job,
                reason: reason.clone(),
            });
            Err(reason)
        };

        let (entry, cache) = match self.compiled(&spec.source, spec.dft) {
            Ok(found) => found,
            Err(reason) => return fail(reason, emit),
        };
        emit(JobEvent::Started {
            job,
            circuit: spec.source.name().to_string(),
            cache,
        });

        let mut batches = Vec::new();
        match &spec.kind {
            JobKind::Campaign {
                styles,
                pairs,
                seed,
            } => {
                let view = match TestView::with_program(
                    &entry.netlist,
                    Arc::clone(&entry.compiled),
                    Arc::clone(&entry.program),
                ) {
                    Ok(view) => view,
                    Err(e) => return fail(e.to_string(), emit),
                };
                let faults = enumerate_transition_faults(&entry.netlist);
                let pairs_total = styles.len() * *pairs;
                let mut pairs_done = 0usize;
                for (index, &style) in styles.iter().enumerate() {
                    // Lands in Progress fields that are absent by default;
                    // time-ok: sampled only when --timings opted in.
                    let batch_start = self.timings.then(std::time::Instant::now);
                    let result = transition_campaign_with_view(
                        &view, &faults, style, *pairs, *seed, &self.pool,
                    );
                    pairs_done += *pairs;
                    if flh_obs::enabled() {
                        flh_obs::named_add("serve.campaign.pairs", *pairs as u64);
                        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
                        flh_obs::series_record(
                            &format!(
                                "serve.coverage.{}",
                                crate::proto::application_wire_name(style)
                            ),
                            tick,
                            (result.coverage_pct() * 100.0).round() as i64,
                        );
                    }
                    let timing = batch_start.map(|start| {
                        // time-ok: --timings only; see above.
                        let secs = start.elapsed().as_secs_f64().max(1e-9);
                        let pairs_per_s = *pairs as f64 / secs;
                        let remaining = (pairs_total - pairs_done) as f64;
                        ProgressTiming {
                            pairs_per_s,
                            eta_ms: (remaining / pairs_per_s * 1e3).round() as u64,
                        }
                    });
                    batches.push(BatchPayload::Campaign(result.clone()));
                    emit(JobEvent::Batch {
                        job,
                        index,
                        payload: BatchPayload::Campaign(result.clone()),
                    });
                    emit(JobEvent::Progress {
                        job,
                        done: index + 1,
                        batches: styles.len(),
                        style: result.style.to_string(),
                        detected: result.detected,
                        faults: result.total_faults,
                        coverage_pct: result.coverage_pct(),
                        pairs_done,
                        pairs_total,
                        timing,
                    });
                }
            }
            JobKind::Evaluate { styles, config } => {
                for (index, &style) in styles.iter().enumerate() {
                    let eval = match evaluate_style(&entry.netlist, style, config) {
                        Ok(eval) => eval,
                        Err(e) => return fail(e.to_string(), emit),
                    };
                    batches.push(BatchPayload::Evaluation(eval.clone()));
                    emit(JobEvent::Batch {
                        job,
                        index,
                        payload: BatchPayload::Evaluation(eval),
                    });
                }
            }
        }

        let metrics = before.map(|before| {
            let delta = flh_obs::snapshot().det_delta(&before);
            let counter = |name: &str| {
                delta
                    .counters
                    .iter()
                    .find(|&&(n, _)| n == name)
                    .map_or(0, |&(_, v)| v)
            };
            // The per-job latency ledger in deterministic units: the
            // job's own simulator/replay work, from its counter delta.
            // Recorded after the delta is taken, so it lands between this
            // job's `after` and the next job's `before` snapshot and
            // cancels out of every per-job document while still reaching
            // the global `stats` histograms.
            flh_obs::record(
                flh_obs::Hist::ServeJobBytecodeInsts,
                counter("sim.bytecode_insts"),
            );
            flh_obs::record(
                flh_obs::Hist::ServeJobReplayEvents,
                counter("replay.events"),
            );
            flh_obs::det_document(&delta)
        });
        emit(JobEvent::Done {
            job,
            batches: batches.len(),
            metrics: metrics.clone(),
        });
        Ok(JobOutcome {
            job,
            batches,
            cache,
            metrics,
        })
    }
}
