//! The [`JobEngine`]: one compiled-circuit cache, one thread pool, one
//! `run` path every front end shares.
//!
//! An engine is cheap state — a [`ThreadPool`] (logical width; results are
//! bit-identical at every width) and a mutexed [`CircuitCache`]. Running a
//! job is synchronous on the caller's thread: the engine resolves the
//! circuit through the cache, streams [`JobEvent`]s into the caller's
//! sink in a deterministic order (`Started`, one `Batch` per style in
//! spec order, `Done`/`Failed`), and returns a [`JobOutcome`]. Queueing,
//! cancellation and cross-thread delivery live one layer up in
//! [`JobSession`](crate::session::JobSession).
//!
//! When the flh-obs recorder is installed, each run brackets itself with
//! snapshots and attaches `det_delta` of the two — the job's own
//! deterministic counters, unpolluted by neighbours — to its `Done` event.
//! The bracket only reads the registry, so installing the recorder never
//! changes global totals.

use std::sync::{Arc, Mutex};

use flh_atpg::transition::enumerate_transition_faults;
use flh_atpg::{transition_campaign_with_view, TestView};
use flh_core::evaluate_style;
use flh_exec::ThreadPool;

use crate::cache::{CacheLookup, CacheStats, CircuitCache, CompiledEntry};
use crate::job::{BatchPayload, JobEvent, JobId, JobKind, JobOutcome, JobSpec};
use crate::source::CircuitSource;

/// Shared campaign/evaluation executor. See the module docs.
#[derive(Debug)]
pub struct JobEngine {
    pool: ThreadPool,
    cache: Mutex<CircuitCache>,
}

impl JobEngine {
    /// An engine over the given pool, caching up to `cache_capacity`
    /// compiled entries.
    pub fn new(pool: ThreadPool, cache_capacity: usize) -> Self {
        JobEngine {
            pool,
            cache: Mutex::new(CircuitCache::new(cache_capacity)),
        }
    }

    /// An engine on the environment-configured pool
    /// (`FLH_THREADS`) with the default cache capacity.
    pub fn from_env() -> Self {
        JobEngine::new(ThreadPool::from_env(), crate::cache::DEFAULT_CACHE_CAPACITY)
    }

    /// The engine's pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Cache totals since the engine was created.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, CircuitCache> {
        // A poisoned cache mutex only means another job panicked mid-
        // insert; the BTreeMaps are still structurally sound.
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves a compiled circuit through the cache without running a
    /// job — for callers (bench ceilings, perf harnesses) that drive the
    /// simulator directly but want the shared keying and reuse.
    ///
    /// # Errors
    ///
    /// Load/style/compile failures, as a display string.
    pub fn compiled(
        &self,
        source: &CircuitSource,
        dft: Option<flh_core::DftStyle>,
    ) -> Result<(Arc<CompiledEntry>, CacheLookup), String> {
        self.lock_cache().get_or_compile(source, dft)
    }

    /// Runs one job synchronously, streaming events into `emit`.
    ///
    /// # Errors
    ///
    /// Returns the failure reason (also emitted as a `Failed` event).
    pub fn run(
        &self,
        job: JobId,
        spec: &JobSpec,
        emit: &mut dyn FnMut(JobEvent),
    ) -> Result<JobOutcome, String> {
        let before = flh_obs::enabled().then(flh_obs::snapshot);
        let fail = |reason: String, emit: &mut dyn FnMut(JobEvent)| {
            emit(JobEvent::Failed {
                job,
                reason: reason.clone(),
            });
            Err(reason)
        };

        let (entry, cache) = match self.compiled(&spec.source, spec.dft) {
            Ok(found) => found,
            Err(reason) => return fail(reason, emit),
        };
        emit(JobEvent::Started {
            job,
            circuit: spec.source.name().to_string(),
            cache,
        });

        let mut batches = Vec::new();
        match &spec.kind {
            JobKind::Campaign {
                styles,
                pairs,
                seed,
            } => {
                let view = match TestView::with_program(
                    &entry.netlist,
                    Arc::clone(&entry.compiled),
                    Arc::clone(&entry.program),
                ) {
                    Ok(view) => view,
                    Err(e) => return fail(e.to_string(), emit),
                };
                let faults = enumerate_transition_faults(&entry.netlist);
                for (index, &style) in styles.iter().enumerate() {
                    let result = transition_campaign_with_view(
                        &view, &faults, style, *pairs, *seed, &self.pool,
                    );
                    batches.push(BatchPayload::Campaign(result.clone()));
                    emit(JobEvent::Batch {
                        job,
                        index,
                        payload: BatchPayload::Campaign(result),
                    });
                }
            }
            JobKind::Evaluate { styles, config } => {
                for (index, &style) in styles.iter().enumerate() {
                    let eval = match evaluate_style(&entry.netlist, style, config) {
                        Ok(eval) => eval,
                        Err(e) => return fail(e.to_string(), emit),
                    };
                    batches.push(BatchPayload::Evaluation(eval.clone()));
                    emit(JobEvent::Batch {
                        job,
                        index,
                        payload: BatchPayload::Evaluation(eval),
                    });
                }
            }
        }

        let metrics =
            before.map(|before| flh_obs::det_document(&flh_obs::snapshot().det_delta(&before)));
        emit(JobEvent::Done {
            job,
            batches: batches.len(),
            metrics: metrics.clone(),
        });
        Ok(JobOutcome {
            job,
            batches,
            cache,
            metrics,
        })
    }
}
