//! Protocol-level integration tests: canonical request round-trips,
//! malformed-input error replies (the server must answer in-band, never
//! panic), the compiled-circuit cache observed through a scripted
//! session, and byte-identical transcripts across pool widths.

use std::io::BufReader;
use std::sync::Arc;

use flh_exec::ThreadPool;
use flh_serve::{
    parse_json, parse_request, render_request, serve_lines, JobEngine, Json, ServeConfig,
};

/// Runs one scripted session over in-memory buffers and returns the
/// response lines.
fn transcript(script: &str, workers: usize) -> Vec<String> {
    let engine = Arc::new(JobEngine::new(ThreadPool::new(workers), 8));
    let mut out = Vec::new();
    serve_lines(
        BufReader::new(script.as_bytes()),
        &mut out,
        engine,
        ServeConfig::default(),
    )
    .expect("in-memory transport cannot fail");
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn canonical_request_lines_round_trip() {
    let canonical = [
        r#"{"op":"status"}"#,
        r#"{"op":"stats"}"#,
        r#"{"full":true,"op":"stats"}"#,
        r#"{"op":"wait"}"#,
        r#"{"op":"shutdown"}"#,
        r#"{"job":"job-3","op":"cancel"}"#,
        r#"{"circuit":"s298","kind":"campaign","op":"submit","pairs":96,"seed":7,"styles":["arbitrary","broadside","skewed"]}"#,
        r#"{"circuit":"s344","dft":"flh","kind":"campaign","op":"submit","pairs":32,"seed":11,"styles":["arbitrary"]}"#,
        r#"{"circuit":"s420","kind":"eval","op":"submit","styles":["plain","enhanced","mux","flh"],"vectors":64}"#,
        r#"{"bench":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","kind":"eval","name":"inv","op":"submit","styles":["plain","flh"],"vectors":16}"#,
    ];
    for line in canonical {
        let request = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(render_request(&request), line, "round trip of {line}");
    }
}

#[test]
fn sparse_submits_normalize_to_explicit_canonical_form() {
    // A minimal submit renders with every campaign knob made explicit.
    let request = parse_request(r#"{"op":"submit","circuit":"s298"}"#).expect("parse");
    let rendered = render_request(&request);
    assert_eq!(
        rendered,
        r#"{"circuit":"s298","kind":"campaign","op":"submit","pairs":256,"seed":7,"styles":["arbitrary","broadside","skewed"]}"#
    );
    // Rendering is idempotent: canonical text parses back to itself.
    let again = parse_request(&rendered).expect("canonical text parses");
    assert_eq!(render_request(&again), rendered);
    // Styles also accept the comma-list spelling and alias names.
    let listed =
        parse_request(r#"{"op":"submit","circuit":"s298","styles":"atp,bs"}"#).expect("parse");
    let listed = render_request(&listed);
    assert!(
        listed.contains(r#""styles":["arbitrary","broadside"]"#),
        "{listed}"
    );
}

#[test]
fn malformed_requests_get_error_replies_not_panics() {
    let script = concat!(
        "this is not json\n",
        "[1,2,3]\n",
        "{\"op\":\"frobnicate\"}\n",
        "{\"op\":\"submit\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"s298\",\"bench\":\"x\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"no-such-circuit\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"s298\",\"kind\":\"nope\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"s298\",\"styles\":\"warp-speed\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":-4}\n",
        "{\"op\":\"cancel\"}\n",
        "{\"op\":\"cancel\",\"job\":\"job-99\"}\n",
        "{\"op\":\"shutdown\"}\n",
    );
    let lines = transcript(script, 1);
    // Every response line is itself valid JSON.
    for line in &lines {
        parse_json(line).unwrap_or_else(|e| panic!("unparsable response {line}: {e}"));
    }
    // Ten problems -> ten error lines, in request order.
    let errors: Vec<_> = lines
        .iter()
        .filter(|l| l.starts_with(r#"{"error""#))
        .collect();
    assert_eq!(errors.len(), 10, "{lines:#?}");
    assert!(errors[0].contains("expected"), "{}", errors[0]);
    assert!(errors[2].contains("unknown op"), "{}", errors[2]);
    assert!(
        errors[3].contains("circuit name or bench text"),
        "{}",
        errors[3]
    );
    assert!(errors[4].contains("not both"), "{}", errors[4]);
    assert!(errors[5].contains("not a builtin profile"), "{}", errors[5]);
    assert!(errors[6].contains("unknown kind"), "{}", errors[6]);
    assert!(
        errors[7].contains("unknown application style"),
        "{}",
        errors[7]
    );
    assert!(errors[9].contains("cancel needs"), "{}", errors[9]);
    // The unknown-but-well-formed cancel is acknowledged, not an error.
    assert!(
        lines.iter().any(|l| l.contains(r#""known":false"#)),
        "{lines:#?}"
    );
    // The session still shuts down cleanly with an empty summary.
    let bye = lines.last().expect("bye line");
    assert!(
        bye.contains(r#""bye""#) && bye.contains(r#""submitted":0"#),
        "{bye}"
    );
}

/// The scripted session the cache and width tests share: two distinct
/// circuits plus an exact duplicate of the first submission.
const CACHE_SCRIPT: &str = concat!(
    "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":32,\"seed\":7}\n",
    "{\"op\":\"submit\",\"circuit\":\"s344\",\"pairs\":32,\"seed\":7}\n",
    "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":32,\"seed\":7}\n",
    "{\"op\":\"status\"}\n",
    "{\"op\":\"wait\"}\n",
    "{\"op\":\"shutdown\"}\n",
);

fn field(line: &str, key: &str) -> Option<Json> {
    let value = parse_json(line).ok()?;
    let map = value.as_object()?;
    map.get(key).cloned()
}

#[test]
fn duplicate_submission_is_served_from_the_cache() {
    let lines = transcript(CACHE_SCRIPT, 1);
    let started: Vec<_> = lines
        .iter()
        .filter(|l| l.contains(r#""event":"started""#))
        .collect();
    assert_eq!(started.len(), 3, "{lines:#?}");
    // Jobs 1 and 2 compile fresh; the duplicate job 3 hits the cache and
    // skips the parse/generate step entirely.
    assert!(started[0].contains(r#""cache":"miss""#), "{}", started[0]);
    assert!(started[1].contains(r#""cache":"miss""#), "{}", started[1]);
    assert!(
        started[2].contains(r#""cache":"hit""#) && started[2].contains(r#""parse_skipped":true"#),
        "{}",
        started[2]
    );
    // Identical spec + shared compiled circuit -> identical batch lines,
    // differing only in the job id.
    let batches = |job: &str| -> Vec<String> {
        lines
            .iter()
            .filter(|l| l.contains(r#""event":"batch""#))
            .filter(|l| l.contains(&format!(r#""job":"{job}""#)))
            .map(|l| l.replace(&format!(r#""job":"{job}""#), r#""job":"X""#))
            .collect()
    };
    let first = batches("job-1");
    assert!(!first.is_empty());
    assert_eq!(first, batches("job-3"));
    // The farewell summary carries the cache counters.
    let bye = lines.last().expect("bye line");
    let cache = field(bye, "cache").expect("bye cache object");
    let cache = cache.as_object().expect("cache is an object");
    assert_eq!(cache.get("hits"), Some(&Json::Number(1.0)), "{bye}");
    assert_eq!(cache.get("misses"), Some(&Json::Number(2.0)), "{bye}");
    assert_eq!(cache.get("parse_skips"), Some(&Json::Number(1.0)), "{bye}");
}

#[test]
fn transcripts_are_byte_identical_across_pool_widths() {
    let narrow = transcript(CACHE_SCRIPT, 1);
    let wide = transcript(CACHE_SCRIPT, 4);
    assert_eq!(narrow, wide);
}

/// CACHE_SCRIPT with `stats` probes before and after the barrier, plus a
/// full variant at the end.
const STATS_SCRIPT: &str = concat!(
    "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":32,\"seed\":7}\n",
    "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":32,\"seed\":7}\n",
    "{\"op\":\"status\"}\n",
    "{\"op\":\"stats\"}\n",
    "{\"op\":\"wait\"}\n",
    "{\"op\":\"stats\"}\n",
    "{\"op\":\"stats\",\"full\":true}\n",
    "{\"op\":\"shutdown\"}\n",
);

fn number(line: &str, key: &str) -> f64 {
    match field(line, key) {
        Some(Json::Number(n)) => n,
        other => panic!("{key} is {other:?} in {line}"),
    }
}

#[test]
fn stats_and_status_carry_the_session_ledger() {
    // NOTE: no flh-obs recorder installed here (tests share a process, so
    // protocol tests never install one) — the deterministic metrics slot
    // of a stats reply must then be an explicit null, not absent.
    let lines = transcript(STATS_SCRIPT, 1);

    let status = lines
        .iter()
        .find(|l| l.contains(r#""event":"status""#))
        .expect("status line");
    for key in [
        "submitted",
        "completed",
        "rejected",
        "cancelled",
        "in_flight",
    ] {
        assert!(
            matches!(field(status, key), Some(Json::Number(_))),
            "status lacks {key}: {status}"
        );
    }
    assert_eq!(number(status, "submitted"), 2.0, "{status}");
    assert_eq!(number(status, "in_flight"), 2.0, "gate is closed: {status}");

    let stats: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains(r#""event":"stats""#))
        .collect();
    assert_eq!(stats.len(), 3, "{lines:#?}");

    // Before the barrier: both jobs pending, nothing run, cache untouched.
    assert_eq!(number(stats[0], "in_flight"), 2.0, "{}", stats[0]);
    assert_eq!(number(stats[0], "completed"), 0.0, "{}", stats[0]);
    assert_eq!(field(stats[0], "metrics"), Some(Json::Null), "{}", stats[0]);

    // After the barrier: both retired, the duplicate hit the cache.
    assert_eq!(number(stats[1], "completed"), 2.0, "{}", stats[1]);
    assert_eq!(number(stats[1], "in_flight"), 0.0, "{}", stats[1]);
    let cache = field(stats[1], "cache").expect("cache object");
    let cache = cache.as_object().expect("cache is an object");
    assert_eq!(cache.get("hits"), Some(&Json::Number(1.0)), "{}", stats[1]);
    assert!(
        field(stats[1], "latency").is_none(),
        "plain stats must not carry the wall-clock ledger: {}",
        stats[1]
    );

    // The full variant adds the nondeterministic section and one latency
    // entry per retired job (wall >= exec for an executed job).
    let full = stats[2];
    assert!(field(full, "nondeterministic").is_some(), "{full}");
    let Some(Json::Array(latency)) = field(full, "latency") else {
        panic!("full stats lacks latency array: {full}");
    };
    assert_eq!(latency.len(), 2, "{full}");
    for entry in &latency {
        let entry = entry.as_object().expect("latency entry");
        let wall = entry["wall_ms"].as_f64().expect("wall_ms");
        let exec = entry["exec_ms"].as_f64().expect("exec_ms");
        assert!(wall >= exec && exec > 0.0, "{full}");
    }
}

#[test]
fn campaign_batches_stream_matching_progress_events() {
    let lines = transcript(CACHE_SCRIPT, 1);
    let batches: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains(r#""event":"batch""#))
        .collect();
    let progress: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains(r#""event":"progress""#))
        .collect();
    assert_eq!(
        batches.len(),
        progress.len(),
        "one progress event per campaign batch: {lines:#?}"
    );
    assert!(!progress.is_empty());

    for (batch, prog) in batches.iter().zip(&progress) {
        // Each progress event mirrors the batch it follows.
        for key in ["job", "style"] {
            assert_eq!(field(batch, key), field(prog, key), "{batch} vs {prog}");
        }
        for key in ["coverage_pct", "detected", "faults"] {
            assert_eq!(number(batch, key), number(prog, key), "{batch} vs {prog}");
        }
        // Default transcripts are clock-free: the wall-clock fields only
        // appear when the server opted into --timings.
        assert!(field(prog, "pairs_per_s").is_none(), "{prog}");
        assert!(field(prog, "eta_ms").is_none(), "{prog}");
    }

    // Per job, `done` counts 1..=batches and the last event covers every
    // pair the spec asked for.
    for job in ["job-1", "job-2", "job-3"] {
        let mine: Vec<&&String> = progress
            .iter()
            .filter(|l| l.contains(&format!(r#""job":"{job}""#)))
            .collect();
        assert!(!mine.is_empty(), "{job} streamed no progress");
        for (i, line) in mine.iter().enumerate() {
            assert_eq!(number(line, "done"), (i + 1) as f64, "{line}");
            assert_eq!(number(line, "batches"), mine.len() as f64, "{line}");
        }
        let last = mine.last().expect("at least one");
        assert_eq!(
            number(last, "pairs_done"),
            number(last, "pairs_total"),
            "final progress covers the full spec: {last}"
        );
    }
}
