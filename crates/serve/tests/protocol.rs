//! Protocol-level integration tests: canonical request round-trips,
//! malformed-input error replies (the server must answer in-band, never
//! panic), the compiled-circuit cache observed through a scripted
//! session, and byte-identical transcripts across pool widths.

use std::io::BufReader;
use std::sync::Arc;

use flh_exec::ThreadPool;
use flh_serve::{
    parse_json, parse_request, render_request, serve_lines, JobEngine, Json, ServeConfig,
};

/// Runs one scripted session over in-memory buffers and returns the
/// response lines.
fn transcript(script: &str, workers: usize) -> Vec<String> {
    let engine = Arc::new(JobEngine::new(ThreadPool::new(workers), 8));
    let mut out = Vec::new();
    serve_lines(
        BufReader::new(script.as_bytes()),
        &mut out,
        engine,
        ServeConfig::default(),
    )
    .expect("in-memory transport cannot fail");
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn canonical_request_lines_round_trip() {
    let canonical = [
        r#"{"op":"status"}"#,
        r#"{"op":"wait"}"#,
        r#"{"op":"shutdown"}"#,
        r#"{"job":"job-3","op":"cancel"}"#,
        r#"{"circuit":"s298","kind":"campaign","op":"submit","pairs":96,"seed":7,"styles":["arbitrary","broadside","skewed"]}"#,
        r#"{"circuit":"s344","dft":"flh","kind":"campaign","op":"submit","pairs":32,"seed":11,"styles":["arbitrary"]}"#,
        r#"{"circuit":"s420","kind":"eval","op":"submit","styles":["plain","enhanced","mux","flh"],"vectors":64}"#,
        r#"{"bench":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","kind":"eval","name":"inv","op":"submit","styles":["plain","flh"],"vectors":16}"#,
    ];
    for line in canonical {
        let request = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(render_request(&request), line, "round trip of {line}");
    }
}

#[test]
fn sparse_submits_normalize_to_explicit_canonical_form() {
    // A minimal submit renders with every campaign knob made explicit.
    let request = parse_request(r#"{"op":"submit","circuit":"s298"}"#).expect("parse");
    let rendered = render_request(&request);
    assert_eq!(
        rendered,
        r#"{"circuit":"s298","kind":"campaign","op":"submit","pairs":256,"seed":7,"styles":["arbitrary","broadside","skewed"]}"#
    );
    // Rendering is idempotent: canonical text parses back to itself.
    let again = parse_request(&rendered).expect("canonical text parses");
    assert_eq!(render_request(&again), rendered);
    // Styles also accept the comma-list spelling and alias names.
    let listed =
        parse_request(r#"{"op":"submit","circuit":"s298","styles":"atp,bs"}"#).expect("parse");
    let listed = render_request(&listed);
    assert!(
        listed.contains(r#""styles":["arbitrary","broadside"]"#),
        "{listed}"
    );
}

#[test]
fn malformed_requests_get_error_replies_not_panics() {
    let script = concat!(
        "this is not json\n",
        "[1,2,3]\n",
        "{\"op\":\"frobnicate\"}\n",
        "{\"op\":\"submit\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"s298\",\"bench\":\"x\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"no-such-circuit\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"s298\",\"kind\":\"nope\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"s298\",\"styles\":\"warp-speed\"}\n",
        "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":-4}\n",
        "{\"op\":\"cancel\"}\n",
        "{\"op\":\"cancel\",\"job\":\"job-99\"}\n",
        "{\"op\":\"shutdown\"}\n",
    );
    let lines = transcript(script, 1);
    // Every response line is itself valid JSON.
    for line in &lines {
        parse_json(line).unwrap_or_else(|e| panic!("unparsable response {line}: {e}"));
    }
    // Ten problems -> ten error lines, in request order.
    let errors: Vec<_> = lines
        .iter()
        .filter(|l| l.starts_with(r#"{"error""#))
        .collect();
    assert_eq!(errors.len(), 10, "{lines:#?}");
    assert!(errors[0].contains("expected"), "{}", errors[0]);
    assert!(errors[2].contains("unknown op"), "{}", errors[2]);
    assert!(
        errors[3].contains("circuit name or bench text"),
        "{}",
        errors[3]
    );
    assert!(errors[4].contains("not both"), "{}", errors[4]);
    assert!(errors[5].contains("not a builtin profile"), "{}", errors[5]);
    assert!(errors[6].contains("unknown kind"), "{}", errors[6]);
    assert!(
        errors[7].contains("unknown application style"),
        "{}",
        errors[7]
    );
    assert!(errors[9].contains("cancel needs"), "{}", errors[9]);
    // The unknown-but-well-formed cancel is acknowledged, not an error.
    assert!(
        lines.iter().any(|l| l.contains(r#""known":false"#)),
        "{lines:#?}"
    );
    // The session still shuts down cleanly with an empty summary.
    let bye = lines.last().expect("bye line");
    assert!(
        bye.contains(r#""bye""#) && bye.contains(r#""submitted":0"#),
        "{bye}"
    );
}

/// The scripted session the cache and width tests share: two distinct
/// circuits plus an exact duplicate of the first submission.
const CACHE_SCRIPT: &str = concat!(
    "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":32,\"seed\":7}\n",
    "{\"op\":\"submit\",\"circuit\":\"s344\",\"pairs\":32,\"seed\":7}\n",
    "{\"op\":\"submit\",\"circuit\":\"s298\",\"pairs\":32,\"seed\":7}\n",
    "{\"op\":\"status\"}\n",
    "{\"op\":\"wait\"}\n",
    "{\"op\":\"shutdown\"}\n",
);

fn field(line: &str, key: &str) -> Option<Json> {
    let value = parse_json(line).ok()?;
    let map = value.as_object()?;
    map.get(key).cloned()
}

#[test]
fn duplicate_submission_is_served_from_the_cache() {
    let lines = transcript(CACHE_SCRIPT, 1);
    let started: Vec<_> = lines
        .iter()
        .filter(|l| l.contains(r#""event":"started""#))
        .collect();
    assert_eq!(started.len(), 3, "{lines:#?}");
    // Jobs 1 and 2 compile fresh; the duplicate job 3 hits the cache and
    // skips the parse/generate step entirely.
    assert!(started[0].contains(r#""cache":"miss""#), "{}", started[0]);
    assert!(started[1].contains(r#""cache":"miss""#), "{}", started[1]);
    assert!(
        started[2].contains(r#""cache":"hit""#) && started[2].contains(r#""parse_skipped":true"#),
        "{}",
        started[2]
    );
    // Identical spec + shared compiled circuit -> identical batch lines,
    // differing only in the job id.
    let batches = |job: &str| -> Vec<String> {
        lines
            .iter()
            .filter(|l| l.contains(r#""event":"batch""#))
            .filter(|l| l.contains(&format!(r#""job":"{job}""#)))
            .map(|l| l.replace(&format!(r#""job":"{job}""#), r#""job":"X""#))
            .collect()
    };
    let first = batches("job-1");
    assert!(!first.is_empty());
    assert_eq!(first, batches("job-3"));
    // The farewell summary carries the cache counters.
    let bye = lines.last().expect("bye line");
    let cache = field(bye, "cache").expect("bye cache object");
    let cache = cache.as_object().expect("cache is an object");
    assert_eq!(cache.get("hits"), Some(&Json::Number(1.0)), "{bye}");
    assert_eq!(cache.get("misses"), Some(&Json::Number(2.0)), "{bye}");
    assert_eq!(cache.get("parse_skips"), Some(&Json::Number(1.0)), "{bye}");
}

#[test]
fn transcripts_are_byte_identical_across_pool_widths() {
    let narrow = transcript(CACHE_SCRIPT, 1);
    let wide = transcript(CACHE_SCRIPT, 4);
    assert_eq!(narrow, wide);
}
