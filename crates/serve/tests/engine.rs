//! Engine and session integration tests: JobEngine campaigns must equal
//! the direct pooled campaign API bit-for-bit, repeat runs must be served
//! from the compiled-circuit cache with identical batches, and gated
//! sessions must expose deterministic back-pressure and cancel behavior.

use std::sync::Arc;

use flh_atpg::{random_transition_campaign_pooled, ApplicationStyle};
use flh_exec::ThreadPool;
use flh_netlist::iscas89_profile;
use flh_serve::{
    BatchPayload, CircuitSource, JobEngine, JobEvent, JobId, JobSession, JobSpec, SessionConfig,
    SubmitError,
};

const PAIRS: usize = 48;
const SEED: u64 = 0xfeed;

fn s298_spec() -> JobSpec {
    let profile = iscas89_profile("s298").expect("builtin profile");
    JobSpec::campaign(CircuitSource::profile(profile))
        .with_styles(vec![ApplicationStyle::ArbitraryTwoPattern])
        .with_pairs(PAIRS)
        .with_seed(SEED)
}

#[test]
fn engine_campaign_matches_direct_pooled_campaign() {
    let engine = JobEngine::new(ThreadPool::new(2), 4);
    let outcome = engine
        .run(JobId(1), &s298_spec(), &mut |_| {})
        .expect("campaign job");
    let BatchPayload::Campaign(ref via_engine) = outcome.batches[0] else {
        panic!("campaign job produced a non-campaign batch");
    };

    let profile = iscas89_profile("s298").expect("builtin profile");
    let netlist = CircuitSource::profile(profile)
        .load()
        .expect("builtin circuit generates");
    let direct = random_transition_campaign_pooled(
        &netlist,
        ApplicationStyle::ArbitraryTwoPattern,
        PAIRS,
        SEED,
        &ThreadPool::new(2),
    )
    .expect("direct campaign");
    assert_eq!(via_engine.total_faults, direct.total_faults);
    assert_eq!(via_engine.detected, direct.detected);
    assert_eq!(via_engine.pairs, direct.pairs);
}

#[test]
fn repeat_run_hits_the_cache_with_identical_batches() {
    let engine = JobEngine::new(ThreadPool::new(1), 4);
    let spec = s298_spec();
    let mut events = Vec::new();
    let first = engine
        .run(JobId(1), &spec, &mut |e| events.push(e))
        .expect("first run");
    assert!(!first.cache.hit);
    let second = engine
        .run(JobId(2), &spec, &mut |e| events.push(e))
        .expect("second run");
    assert!(second.cache.hit && second.cache.parse_skipped);
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.parse_skips), (1, 1, 1));

    assert_eq!(first.batches.len(), second.batches.len());
    for (a, b) in first.batches.iter().zip(&second.batches) {
        let (BatchPayload::Campaign(a), BatchPayload::Campaign(b)) = (a, b) else {
            panic!("campaign jobs produced non-campaign batches");
        };
        assert_eq!(a.total_faults, b.total_faults);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.pairs, b.pairs);
    }
    // Both runs streamed a Started and a Done event for their job.
    for id in [1, 2] {
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::Started { job, .. } if job.0 == id)));
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::Done { job, .. } if job.0 == id)));
    }
}

#[test]
fn campaign_progress_tracks_batches_and_matches_the_final_outcome() {
    let engine = JobEngine::new(ThreadPool::new(2), 4);
    let profile = iscas89_profile("s298").expect("builtin profile");
    let spec = JobSpec::campaign(CircuitSource::profile(profile))
        .with_styles(vec![
            ApplicationStyle::ArbitraryTwoPattern,
            ApplicationStyle::Broadside,
        ])
        .with_pairs(PAIRS)
        .with_seed(SEED);

    let mut events = Vec::new();
    let outcome = engine
        .run(JobId(1), &spec, &mut |e| events.push(e))
        .expect("campaign job");

    let progress: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Progress {
                done,
                batches,
                style,
                detected,
                coverage_pct,
                pairs_done,
                pairs_total,
                timing,
                ..
            } => Some((
                *done,
                *batches,
                style.clone(),
                *detected,
                *coverage_pct,
                *pairs_done,
                *pairs_total,
                timing.is_some(),
            )),
            _ => None,
        })
        .collect();
    assert_eq!(
        progress.len(),
        outcome.batches.len(),
        "one progress event per batch"
    );

    for (i, (done, batches, style, detected, coverage, pairs_done, pairs_total, timed)) in
        progress.iter().enumerate()
    {
        assert_eq!(*done, i + 1);
        assert_eq!(*batches, outcome.batches.len());
        assert_eq!(*pairs_total, 2 * PAIRS);
        assert_eq!(*pairs_done, (i + 1) * PAIRS);
        assert!(!timed, "timings are off by default");
        // Each progress event restates its batch's result exactly.
        let BatchPayload::Campaign(ref result) = outcome.batches[i] else {
            panic!("campaign job produced a non-campaign batch");
        };
        assert_eq!(style, &result.style.to_string());
        assert_eq!(*detected, result.detected);
        assert!((coverage - result.coverage_pct()).abs() < 1e-9);
    }
    // The final event's coverage IS the job's final per-style outcome.
    let last = progress.last().expect("progress streamed");
    assert_eq!(last.5, last.6, "final progress covers all pairs");

    // Opting into timings fills the wall-clock fields — and only then.
    let timed_engine = JobEngine::new(ThreadPool::new(2), 4).with_timings(true);
    assert!(timed_engine.timings());
    let mut timed_events = Vec::new();
    timed_engine
        .run(JobId(2), &spec, &mut |e| timed_events.push(e))
        .expect("timed campaign job");
    let timings: Vec<_> = timed_events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Progress { timing, .. } => Some(*timing),
            _ => None,
        })
        .collect();
    assert!(!timings.is_empty());
    for t in timings {
        let t = t.expect("--timings populates every progress event");
        assert!(t.pairs_per_s > 0.0);
    }
}

#[test]
fn gated_session_backpressure_cancel_and_event_order() {
    let engine = Arc::new(JobEngine::new(ThreadPool::new(1), 4));
    let mut session = JobSession::new(
        Arc::clone(&engine),
        SessionConfig {
            queue_capacity: 2,
            autostart: false,
        },
    );

    // The gate is closed: both submissions sit in the bounded queue, so
    // the third is rejected with back-pressure rather than blocking.
    let first = session.submit(s298_spec()).expect("first submit");
    let second = session.submit(s298_spec()).expect("second submit");
    assert_eq!((first.0, second.0), (1, 2));
    assert!(matches!(
        session.submit(s298_spec()),
        Err(SubmitError::QueueFull)
    ));

    // Cancelling a queued job before any barrier runs is deterministic.
    assert!(session.cancel(second));
    assert!(
        !session.cancel(JobId(99)),
        "unknown ids are not cancellable"
    );

    let mut events = Vec::new();
    let retired = session.wait(&mut |e| events.push(e));
    assert_eq!(retired, 2);
    // Job 1 runs to completion before the cancelled job 2 is retired.
    let order: Vec<(u64, bool)> = events
        .iter()
        .map(|e| (e.job().0, e.is_terminal()))
        .collect();
    assert_eq!(order.first(), Some(&(1, false)), "job 1 starts first");
    assert!(
        matches!(events.last(), Some(JobEvent::Cancelled { job }) if job.0 == 2),
        "cancelled job retires last: {order:?}"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, JobEvent::Done { job, .. } if job.0 == 1)));

    // After the barrier the queue has drained: submissions flow again.
    let third = session.submit(s298_spec()).expect("post-wait submit");
    assert_eq!(third.0, 3);
    let mut tail = Vec::new();
    let summary = session.shutdown(&mut |e| tail.push(e));
    assert_eq!(summary.submitted, 3);
    assert_eq!(summary.completed, 3);
    // The resubmitted spec was served from the cache.
    assert!(summary.cache.hits >= 1);
    assert!(
        matches!(tail.last(), Some(JobEvent::Done { job, .. }) if job.0 == 3),
        "shutdown drains the remaining job"
    );
}
