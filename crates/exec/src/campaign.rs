//! Campaign fan-out over shared immutable state.
//!
//! A [`Campaign`] pairs an `Arc`-owned immutable payload — typically a
//! compiled circuit, a profile list, or a whole evaluation context — with
//! a [`ThreadPool`], and fans independent work units (partitions of a
//! fault list, vector shards, circuit × style cells) out over the pool.
//! Owning the payload through an `Arc` lets a campaign outlive the scope
//! that built it and be handed between layers without re-borrowing.

use std::ops::Range;
use std::sync::Arc;

use crate::pool::ThreadPool;

/// Shared-state fan-out: an `Arc<C>` payload plus the pool that runs the
/// partitions. All determinism rules of [`ThreadPool`] apply unchanged.
#[derive(Clone, Debug)]
pub struct Campaign<C> {
    shared: Arc<C>,
    pool: ThreadPool,
    /// Minimum items per partition of [`Campaign::run_partitioned`]; shards
    /// smaller than this are not worth their setup cost.
    min_unit: usize,
}

impl<C: Send + Sync> Campaign<C> {
    /// Campaign owning `shared`, running on `pool`.
    pub fn new(shared: C, pool: ThreadPool) -> Self {
        Campaign {
            shared: Arc::new(shared),
            pool,
            min_unit: 1,
        }
    }

    /// Campaign over an already-shared payload (no clone of the data).
    pub fn with_arc(shared: Arc<C>, pool: ThreadPool) -> Self {
        Campaign {
            shared,
            pool,
            min_unit: 1,
        }
    }

    /// Sets the minimum work-unit granularity: partitioned runs produce no
    /// shard smaller than `min_unit` items (unless the whole set is), so
    /// per-shard setup cost is amortized over real work. Purely a
    /// throughput knob — the decomposition depends only on the lengths, so
    /// results are unchanged.
    pub fn with_min_unit(mut self, min_unit: usize) -> Self {
        self.min_unit = min_unit.max(1);
        self
    }

    /// Minimum items per partitioned shard.
    pub fn min_unit(&self) -> usize {
        self.min_unit
    }

    /// Campaign on the environment-selected pool ([`ThreadPool::from_env`]).
    pub fn from_env(shared: C) -> Self {
        Campaign::new(shared, ThreadPool::from_env())
    }

    /// The shared payload.
    pub fn shared(&self) -> &C {
        &self.shared
    }

    /// A new handle on the shared payload.
    pub fn arc(&self) -> Arc<C> {
        Arc::clone(&self.shared)
    }

    /// The pool the campaign runs on.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Runs `cells` independent work units against the shared payload,
    /// results in cell order (see [`ThreadPool::run`]).
    pub fn run_cells<T, F>(&self, cells: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&C, usize) -> T + Sync,
    {
        if flh_obs::enabled() {
            flh_obs::sched_add("campaign.cell_runs", 1);
            flh_obs::sched_add("campaign.cells", cells as u64);
        }
        let shared = &*self.shared;
        self.pool.run(cells, move |i| f(shared, i))
    }

    /// Partitions `0..len` one range per worker — but never below the
    /// campaign's [`Campaign::min_unit`] items per range — and runs `f` on
    /// each against the shared payload; `(range, result)` pairs in
    /// partition order (see [`ThreadPool::run_partitioned_min`]).
    pub fn run_partitioned<T, F>(&self, len: usize, f: F) -> Vec<(Range<usize>, T)>
    where
        T: Send,
        F: Fn(&C, Range<usize>) -> T + Sync,
    {
        if flh_obs::enabled() {
            // Partition stats vary with pool width: sched section only.
            flh_obs::sched_add("campaign.partitioned_runs", 1);
            flh_obs::sched_add("campaign.partitioned_items", len as u64);
        }
        let shared = &*self.shared;
        self.pool
            .run_partitioned_min(len, self.min_unit, move |r| f(shared, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_share_one_payload() {
        let campaign = Campaign::new(vec![2u64, 3, 5, 7, 11], ThreadPool::new(4));
        let doubled = campaign.run_cells(5, |data, i| data[i] * 2);
        assert_eq!(doubled, vec![4, 6, 10, 14, 22]);
        assert_eq!(campaign.pool().size(), 4);
    }

    #[test]
    fn partitioned_fanout_is_deterministic() {
        let data: Vec<u64> = (0..513).collect();
        let serial = Campaign::new(data.clone(), ThreadPool::serial());
        let reference = serial.run_partitioned(513, |d, r| d[r].iter().sum::<u64>());
        let total: u64 = reference.iter().map(|(_, s)| s).sum();
        for workers in [2, 4, 8] {
            let campaign = Campaign::new(data.clone(), ThreadPool::new(workers));
            let parts = campaign.run_partitioned(513, |d, r| d[r].iter().sum::<u64>());
            let sum: u64 = parts.iter().map(|(_, s)| s).sum();
            assert_eq!(sum, total, "workers = {workers}");
        }
    }

    #[test]
    fn min_unit_coarsens_shards_without_changing_results() {
        let data: Vec<u64> = (0..100).collect();
        let fine = Campaign::new(data.clone(), ThreadPool::new(4));
        let coarse = Campaign::new(data.clone(), ThreadPool::new(4)).with_min_unit(64);
        assert_eq!(coarse.min_unit(), 64);
        let fine_parts = fine.run_partitioned(100, |d, r| d[r].iter().sum::<u64>());
        let coarse_parts = coarse.run_partitioned(100, |d, r| d[r].iter().sum::<u64>());
        assert_eq!(fine_parts.len(), 4);
        assert_eq!(coarse_parts.len(), 1);
        let fine_total: u64 = fine_parts.iter().map(|(_, s)| s).sum();
        let coarse_total: u64 = coarse_parts.iter().map(|(_, s)| s).sum();
        assert_eq!(fine_total, coarse_total);
    }

    #[test]
    fn arc_payloads_are_not_cloned() {
        let payload = Arc::new(vec![1u8; 1024]);
        let campaign = Campaign::with_arc(Arc::clone(&payload), ThreadPool::new(2));
        assert_eq!(Arc::strong_count(&payload), 2);
        let ones = campaign.run_cells(3, |d, _| d.iter().map(|&b| b as usize).sum::<usize>());
        assert_eq!(ones, vec![1024; 3]);
        assert!(Arc::ptr_eq(&payload, &campaign.arc()));
    }
}
