//! Execution layer: a dependency-free, deterministic scoped thread pool
//! plus the [`Campaign`] fan-out abstraction the batch APIs of the
//! workspace are built on.
//!
//! The paper's evaluation is embarrassingly parallel at two granularities
//! — across circuit × holding-style cells, and across fault/vector
//! partitions within one circuit — but parallel execution is only useful
//! here if it is **reproducible**: every campaign in this workspace is
//! seeded, and CI diffs complete outputs. The contract of this crate is
//! therefore:
//!
//! > *Anything computed through [`ThreadPool`] returns bit-identical
//! > results at every worker count, including 1.*
//!
//! Three rules make that hold:
//!
//! * **Deterministic decomposition** — work is split by *index* (job ids,
//!   contiguous partitions via [`ThreadPool::partition`]), never by timing,
//!   queue pressure, wall clock or OS randomness;
//! * **Deterministic merge** — results are collected in index/partition
//!   order, never in completion order;
//! * **Independent units** — a job may only read shared immutable state
//!   (e.g. an `Arc<CompiledCircuit>` held by a [`Campaign`]); all mutable
//!   state is job-local and returned by value.
//!
//! The worker count defaults to the `FLH_THREADS` environment variable and
//! falls back to [`std::thread::available_parallelism`]; serial paths are
//! the same code run with `pool_size = 1`, not separate implementations.
//! The logical worker count only governs *decomposition* (and therefore
//! results); the OS threads actually spawned are clamped to the host's
//! available parallelism ([`ThreadPool::dispatch`]), so an oversubscribed
//! pool on a small host degrades to fewer threads — or a plain serial loop
//! — with bit-identical output. Staged campaigns persist detected-fault
//! flags across calls and shards through [`DropMask`]. Long-running
//! front ends (the `flh-serve` session layer) feed work to a single
//! executor through the bounded, back-pressured [`BoundedQueue`].

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod campaign;
pub mod drops;
pub mod pool;
pub mod queue;

pub use campaign::Campaign;
pub use drops::DropMask;
pub use pool::{ThreadPool, THREADS_ENV};
pub use queue::{BoundedQueue, PushError};
