//! Bounded MPSC job queue with explicit back-pressure.
//!
//! [`BoundedQueue`] is the admission-control primitive behind the
//! `flh-serve` session layer: producers submit work with [`try_push`]
//! (fails fast with [`PushError::Full`] — the back-pressure signal a
//! protocol front end turns into a `rejected` reply) or [`push_wait`]
//! (blocks until a slot frees), and a consumer drains with [`pop_wait`].
//! Closing the queue wakes every waiter; a closed queue rejects new items
//! but still hands out what was already enqueued, so shutdown drains
//! instead of dropping work.
//!
//! The queue is strictly FIFO. With a single consumer (the job-engine
//! executor), pop order equals push order — which is what keeps
//! session-level job execution deterministic.
//!
//! [`try_push`]: BoundedQueue::try_push
//! [`push_wait`]: BoundedQueue::push_wait
//! [`pop_wait`]: BoundedQueue::pop_wait

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back to the caller.
    Full(T),
    /// The queue was closed; the item is handed back to the caller.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue: blocking pop, fail-fast or blocking push,
/// drain-on-close semantics.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
    /// Metric prefix for [`named`](BoundedQueue::named) queues; depth is
    /// published to the **nondeterministic** gauge bank on every push/pop
    /// (the level observed by a racing producer or consumer is scheduling
    /// shape, never a result).
    stat: Option<&'static str>,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            stat: None,
        }
    }

    /// Like [`new`](BoundedQueue::new), but every push/pop publishes the
    /// observed depth as nondeterministic gauges `<prefix>.depth` and
    /// `<prefix>.depth_peak` (no-ops while no recorder is installed).
    pub fn named(capacity: usize, prefix: &'static str) -> Self {
        let mut q = Self::new(capacity);
        q.stat = Some(prefix);
        q
    }

    /// Publishes a depth observation taken while the lock was held.
    fn publish_depth(&self, len: usize) {
        if let Some(prefix) = self.stat {
            if flh_obs::enabled() {
                flh_obs::nondet_gauge_set(&format!("{prefix}.depth"), len as i64);
                flh_obs::nondet_gauge_max(&format!("{prefix}.depth_peak"), len as i64);
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A poisoning panic in a producer must not wedge the consumer.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// True once [`close`](BoundedQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after close;
    /// both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        self.publish_depth(depth);
        Ok(())
    }

    /// Enqueues, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] if the queue is (or becomes) closed before a
    /// slot frees.
    pub fn push_wait(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                let depth = inner.items.len();
                drop(inner);
                self.not_empty.notify_one();
                self.publish_depth(depth);
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` only when the queue is closed **and** drained.
    pub fn pop_wait(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                let depth = inner.items.len();
                drop(inner);
                self.not_full.notify_one();
                self.publish_depth(depth);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues without blocking; `None` when empty (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.lock();
        let item = inner.items.pop_front();
        let depth = inner.items.len();
        drop(inner);
        if item.is_some() {
            self.not_full.notify_one();
            self.publish_depth(depth);
        }
        item
    }

    /// Closes the queue: new pushes fail, queued items remain poppable,
    /// every blocked waiter wakes.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_len() {
        let q = BoundedQueue::new(4);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            q.try_push(i).expect("under capacity");
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_exerts_back_pressure_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("slot 1");
        q.try_push(2).expect("slot 2");
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.try_pop(), Some(1));
        q.try_push(3).expect("slot freed");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(3);
        q.try_push("a").expect("open");
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.push_wait("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop_wait(), Some("a"));
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(7).expect("one slot");
        assert_eq!(q.try_push(8).map_err(PushError::into_inner), Err(8));
    }

    #[test]
    fn blocking_push_waits_for_a_slot() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).expect("fill");
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(1))
        };
        // The producer blocks until the consumer pops.
        assert_eq!(q.pop_wait(), Some(0));
        producer
            .join()
            .expect("producer thread")
            .expect("slot freed");
        assert_eq!(q.pop_wait(), Some(1));
    }

    #[test]
    fn pop_wait_wakes_on_push_from_another_thread() {
        let q = Arc::new(BoundedQueue::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_wait())
        };
        q.try_push(42).expect("push");
        assert_eq!(consumer.join().expect("consumer thread"), Some(42));
    }
}
