//! Deterministic scoped thread pool.
//!
//! [`ThreadPool`] is a *configuration* of parallelism, not a set of
//! long-lived threads: each [`ThreadPool::run`] call spawns scoped workers
//! ([`std::thread::scope`]), so jobs may borrow from the caller's stack —
//! fault lists, pattern sets, test views — without `Arc`-wrapping or
//! lifetime erasure. The units of work in this workspace (fault
//! partitions, vector shards, circuit × style cells) run for milliseconds
//! to seconds, so the microseconds of spawn cost per call are noise.
//!
//! Scheduling is chunk-based and free of timing dependence: workers claim
//! job indices from an atomic counter, and every job's result is stored in
//! the slot of its *index*, so the returned `Vec` is ordered by job id
//! regardless of which worker finished first.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable selecting the default worker count
/// ([`ThreadPool::from_env`]).
pub const THREADS_ENV: &str = "FLH_THREADS";

/// A deterministic scoped thread pool with a fixed worker count.
///
/// The *logical* worker count ([`ThreadPool::size`]) governs work
/// decomposition and therefore results; the *dispatch* count
/// ([`ThreadPool::dispatch`]) — the logical count clamped to the host's
/// [`std::thread::available_parallelism`] — governs how many OS threads are
/// actually spawned. On a 1-core host a 4-worker pool still partitions work
/// four ways (bit-identical results) but runs the partitions serially on
/// the calling thread instead of paying thread spawn and contention for
/// parallelism that does not exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
    /// Threads actually spawned by [`ThreadPool::run`]:
    /// `min(workers, available_parallelism)`, resolved at construction.
    dispatch: usize,
}

impl ThreadPool {
    /// Pool with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool {
            workers,
            dispatch: workers.min(cores),
        }
    }

    /// The single-worker pool: every `run` degenerates to an in-place
    /// serial loop in job-id order. Serial APIs across the workspace are
    /// thin wrappers passing this pool to the partitioned implementation.
    pub fn serial() -> Self {
        ThreadPool::new(1)
    }

    /// Worker count from the `FLH_THREADS` environment variable, falling
    /// back to [`std::thread::available_parallelism`] (then 1).
    pub fn from_env() -> Self {
        let workers = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ThreadPool::new(workers)
    }

    /// Fixed logical worker count of this pool (the decomposition width).
    pub fn size(&self) -> usize {
        self.workers
    }

    /// Threads actually spawned per [`ThreadPool::run`] call:
    /// `min(size, available_parallelism)`. Purely a throughput knob —
    /// results depend only on [`ThreadPool::size`].
    pub fn dispatch(&self) -> usize {
        self.dispatch
    }

    /// True for the single-worker pool.
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Runs `jobs` independent jobs, returning their results **in job-id
    /// order** (never completion order). With a dispatch count of 1 (one
    /// logical worker, or a 1-core host) or at most one job, this is a
    /// plain serial loop on the calling thread; otherwise
    /// `min(dispatch, jobs)` scoped threads claim job ids from an atomic
    /// counter. Results are identical either way.
    ///
    /// # Panics
    ///
    /// Propagates the panic of any job.
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let obs = flh_obs::enabled();
        let _span = flh_obs::span("exec.pool.run");
        if self.dispatch == 1 || jobs <= 1 {
            if obs {
                // time-ok: busy wall clock feeds worker stats (nondet section only).
                let t0 = std::time::Instant::now();
                let out: Vec<T> = (0..jobs).map(job).collect();
                flh_obs::worker_busy("exec.pool", 0, t0.elapsed(), jobs as u64);
                return out;
            }
            return (0..jobs).map(job).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (slots, next, job) = (&slots, &next, &job);
            for w in 0..self.dispatch.min(jobs) {
                scope.spawn(move || {
                    // Worker stats (busy wall clock, jobs claimed) are
                    // scheduling shape: nondeterministic section only.
                    let t0 = obs.then(|| {
                        flh_obs::bind_worker_shard(w);
                        std::time::Instant::now() // time-ok: worker stats only
                    });
                    let mut claimed = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        let value = job(i);
                        *slots[i].lock().expect("result slot poisoned") = Some(value);
                        claimed += 1;
                    }
                    if let Some(t0) = t0 {
                        flh_obs::worker_busy("exec.pool", w, t0.elapsed(), claimed);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("scoped worker completed every claimed job")
            })
            .collect()
    }

    /// Splits `0..len` into `parts` contiguous balanced ranges (the first
    /// `len % parts` ranges are one longer). Pure arithmetic on the
    /// arguments — the decomposition never depends on scheduling.
    /// `parts` is clamped to `1..=len` (one non-empty range per part);
    /// `len == 0` yields a single empty range.
    pub fn partition(len: usize, parts: usize) -> Vec<Range<usize>> {
        let parts = parts.clamp(1, len.max(1));
        let base = len / parts;
        let extra = len % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let size = base + usize::from(p < extra);
            ranges.push(start..start + size);
            start += size;
        }
        ranges
    }

    /// Partitions `0..len` into one contiguous range per worker (see
    /// [`ThreadPool::partition`]), runs `f` on each range, and returns
    /// `(range, result)` pairs **in partition order**. The canonical
    /// building block for fault-list and vector-set sharding.
    pub fn run_partitioned<T, F>(&self, len: usize, f: F) -> Vec<(Range<usize>, T)>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let ranges = Self::partition(len, self.workers);
        if flh_obs::enabled() {
            flh_obs::sched_add("pool.partition.calls", 1);
            flh_obs::sched_add("pool.partition.shards", ranges.len() as u64);
            flh_obs::sched_add("pool.partition.items", len as u64);
        }
        let results = self.run(ranges.len(), |i| f(ranges[i].clone()));
        ranges.into_iter().zip(results).collect()
    }

    /// [`ThreadPool::partition`] with a minimum range length: the part
    /// count is first capped at `len / min_len` (at least 1), so no range
    /// is shorter than `min_len` unless `len` itself is. Still pure
    /// arithmetic — for a given `(len, parts, min_len)` the decomposition
    /// is fixed.
    pub fn partition_min(len: usize, parts: usize, min_len: usize) -> Vec<Range<usize>> {
        let min_len = min_len.max(1);
        Self::partition(len, parts.min((len / min_len).max(1)))
    }

    /// [`ThreadPool::run_partitioned`] with a minimum work-unit size: fewer
    /// ranges than workers are produced when `len` is small, so per-shard
    /// setup cost (a fresh simulator, a good-machine evaluation) is not
    /// paid for shards too small to amortize it. The decomposition depends
    /// only on `(len, size, min_len)` — results stay bit-identical across
    /// hosts and dispatch counts.
    pub fn run_partitioned_min<T, F>(
        &self,
        len: usize,
        min_len: usize,
        f: F,
    ) -> Vec<(Range<usize>, T)>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let ranges = Self::partition_min(len, self.workers, min_len);
        if flh_obs::enabled() {
            // Partition shape follows the pool width — nondeterministic
            // (sched) section only, never a deterministic counter.
            flh_obs::sched_add("pool.partition.calls", 1);
            flh_obs::sched_add("pool.partition.shards", ranges.len() as u64);
            flh_obs::sched_add("pool.partition.items", len as u64);
        }
        let results = self.run(ranges.len(), |i| f(ranges[i].clone()));
        ranges.into_iter().zip(results).collect()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order_at_every_size() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = ThreadPool::new(workers);
            assert_eq!(pool.size(), workers);
            let got = pool.run(97, |i| i * i);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn workers_are_clamped_to_at_least_one() {
        assert_eq!(ThreadPool::new(0).size(), 1);
        assert!(ThreadPool::serial().is_serial());
        assert!(!ThreadPool::new(2).is_serial());
    }

    #[test]
    fn dispatch_is_clamped_to_host_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for workers in [1, 2, 4, 64] {
            let pool = ThreadPool::new(workers);
            assert_eq!(pool.size(), workers);
            assert_eq!(pool.dispatch(), workers.min(cores));
            assert!(pool.dispatch() >= 1);
        }
    }

    #[test]
    fn partition_min_respects_the_floor() {
        // 100 items at a 64 floor: only one 64+ shard fits.
        assert_eq!(ThreadPool::partition_min(100, 4, 64), vec![0..100]);
        // 128 items: exactly two.
        assert_eq!(ThreadPool::partition_min(128, 4, 64), vec![0..64, 64..128]);
        // A large set still fans out to every worker.
        assert_eq!(ThreadPool::partition_min(1000, 4, 64).len(), 4);
        // Floor of 0/1 degenerates to the plain partition.
        assert_eq!(
            ThreadPool::partition_min(10, 3, 0),
            ThreadPool::partition(10, 3)
        );
        // Ranges still cover 0..len contiguously and respect the floor.
        for (len, parts, min) in [(0, 4, 64), (1, 4, 64), (257, 8, 32), (64, 64, 64)] {
            let ranges = ThreadPool::partition_min(len, parts, min);
            let mut cursor = 0;
            for r in &ranges {
                assert_eq!(r.start, cursor);
                cursor = r.end;
                assert!(r.len() >= min.min(len), "len={len} parts={parts} min={min}");
            }
            assert_eq!(cursor, len);
        }
    }

    #[test]
    fn run_partitioned_min_matches_plain_sums() {
        let data: Vec<u64> = (0..300).collect();
        let expected: u64 = data.iter().sum();
        for workers in [1, 2, 4, 8] {
            let pool = ThreadPool::new(workers);
            let parts = pool.run_partitioned_min(data.len(), 128, |r| data[r].iter().sum::<u64>());
            assert!(parts.len() <= 2, "workers = {workers}");
            let total: u64 = parts.iter().map(|(_, s)| s).sum();
            assert_eq!(total, expected, "workers = {workers}");
        }
    }

    #[test]
    fn partition_is_balanced_and_exhaustive() {
        for (len, parts) in [(10, 3), (7, 7), (7, 20), (64, 4), (1, 1), (0, 5)] {
            let ranges = ThreadPool::partition(len, parts);
            // Contiguous cover of 0..len.
            let mut cursor = 0;
            for r in &ranges {
                assert_eq!(r.start, cursor);
                cursor = r.end;
            }
            assert_eq!(cursor, len, "len={len} parts={parts}");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced {sizes:?}");
            // Never more parts than items (except the len == 0 singleton).
            assert!(ranges.len() <= len.max(1));
        }
    }

    #[test]
    fn run_partitioned_merges_in_partition_order() {
        let data: Vec<u64> = (0..1000).collect();
        let serial_sum: u64 = data.iter().sum();
        for workers in [1, 2, 4, 8] {
            let pool = ThreadPool::new(workers);
            let parts = pool.run_partitioned(data.len(), |r| data[r].iter().sum::<u64>());
            // Ranges come back sorted by start, results aligned.
            let mut cursor = 0;
            let mut total = 0u64;
            for (r, s) in &parts {
                assert_eq!(r.start, cursor);
                cursor = r.end;
                total += s;
            }
            assert_eq!(total, serial_sum, "workers = {workers}");
        }
    }

    #[test]
    fn jobs_can_borrow_from_the_caller() {
        let text = String::from("borrowed");
        let pool = ThreadPool::new(3);
        let lens = pool.run(5, |i| text.len() + i);
        assert_eq!(lens, vec![8, 9, 10, 11, 12]);
    }

    #[test]
    fn from_env_parses_and_falls_back() {
        // NOTE: mutates the process environment; kept as a single test so
        // there is no concurrent reader of FLH_THREADS in this binary.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(ThreadPool::from_env().size(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(ThreadPool::from_env().size() >= 1);
        std::env::set_var(THREADS_ENV, "not a number");
        assert!(ThreadPool::from_env().size() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(ThreadPool::from_env().size() >= 1);
    }
}
