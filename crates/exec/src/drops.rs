//! Cross-batch fault dropping.
//!
//! A fault-simulation campaign drops a fault the moment it is detected:
//! later batches and later calls must never replay it again. Inside one
//! shard that is a local `detected` flag — but a campaign that runs in
//! *stages* (incremental pattern blocks, repeated pooled calls) needs the
//! flags to survive between calls and to round-trip through the shard
//! partitioning. [`DropMask`] is that persistent flag set: shards borrow a
//! contiguous snapshot of it on the way in ([`DropMask::shard`]) and merge
//! their updated flags back by range on the way out
//! ([`DropMask::merge_shard`]). Because shards are contiguous index ranges
//! and flags only ever go `false → true`, the merged mask is independent of
//! shard count and completion order — the same determinism contract as the
//! rest of this crate.

use std::ops::Range;

/// Persistent per-fault drop flags for a staged simulation campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DropMask {
    flags: Vec<bool>,
}

impl DropMask {
    /// All-clear mask for `len` faults.
    pub fn new(len: usize) -> Self {
        DropMask {
            flags: vec![false; len],
        }
    }

    /// Number of faults tracked.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True if the mask tracks no faults.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// The full flag slice, indexed by fault id.
    pub fn flags(&self) -> &[bool] {
        &self.flags
    }

    /// True if fault `i` has been dropped.
    pub fn is_dropped(&self, i: usize) -> bool {
        self.flags[i]
    }

    /// Drops fault `i` directly (collapsing, external verdicts).
    pub fn drop_fault(&mut self, i: usize) {
        self.flags[i] = true;
    }

    /// Number of dropped faults.
    pub fn dropped(&self) -> usize {
        self.flags.iter().filter(|&&f| f).count()
    }

    /// Snapshot of the flags for one contiguous shard, to seed a worker's
    /// local `detected` vector.
    pub fn shard(&self, range: Range<usize>) -> Vec<bool> {
        self.flags[range].to_vec()
    }

    /// Merges a shard's updated flags back. Flags are monotone (`false →
    /// true` only): a fault dropped before the shard ran stays dropped even
    /// if the shard's copy went stale.
    ///
    /// # Panics
    ///
    /// Panics if `flags` does not match the range length.
    pub fn merge_shard(&mut self, range: Range<usize>, flags: &[bool]) {
        assert_eq!(range.len(), flags.len(), "shard flag length mismatch");
        let mut newly_dropped = 0u64;
        for (slot, &f) in self.flags[range].iter_mut().zip(flags) {
            newly_dropped += u64::from(f && !*slot);
            *slot |= f;
        }
        if flh_obs::enabled() {
            // Which faults flip is decided by the patterns alone; the
            // per-range merges partition the flag set, so the total is
            // shard-count invariant.
            flh_obs::add(flh_obs::Counter::FaultsDropped, newly_dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn shard_round_trip_is_monotone_and_order_free() {
        let mut mask = DropMask::new(10);
        mask.drop_fault(3);
        assert!(mask.is_dropped(3));
        assert_eq!(mask.dropped(), 1);

        // Two shards, merged in either order, agree with a serial pass.
        let ranges = ThreadPool::partition(10, 2);
        let mut shards: Vec<Vec<bool>> = ranges.iter().map(|r| mask.shard(r.clone())).collect();
        shards[0][1] = true; // fault 1 detected by shard 0
        shards[1][9 - ranges[1].start] = true; // fault 9 detected by shard 1
        for (r, s) in ranges.iter().zip(&shards).rev() {
            mask.merge_shard(r.clone(), s);
        }
        let expected: Vec<bool> = (0..10).map(|i| matches!(i, 1 | 3 | 9)).collect();
        assert_eq!(mask.flags(), expected.as_slice());
        // Merging again (idempotent) and merging stale all-false shards
        // never clears a flag.
        mask.merge_shard(0..10, &vec![false; 10]);
        assert_eq!(mask.flags(), expected.as_slice());
    }

    #[test]
    #[should_panic(expected = "shard flag length mismatch")]
    fn merge_rejects_wrong_length() {
        DropMask::new(4).merge_shard(0..4, &[true]);
    }
}
