//! Power estimation: activity-based dynamic power, clock power and
//! subthreshold leakage, in the paper's NanoSim-style methodology
//! (simulate random vectors, count node toggles, multiply by node
//! capacitance).
//!
//! The three DFT styles differ exactly as the paper argues:
//!
//! * **enhanced scan / MUX-based** — the holding cells are in the netlist
//!   and toggle with the flip-flop outputs (which switch at nearly every
//!   cycle under random vectors), so they burn dynamic power
//!   proportionally to their sizable internal capacitance;
//! * **FLH** — the gating transistors do not switch in normal mode; the
//!   only overheads are the keeper's INV1/transmission-gate capacitance on
//!   the first-level-gate outputs and the keeper leakage, *minus* the
//!   stack-effect leakage reduction of the gated gates — which is how a
//!   large circuit can come out below the unmodified baseline (the
//!   paper's s13207 observation).

use std::sync::Arc;

use flh_exec::{Campaign, ThreadPool};
use flh_netlist::{CellId, CellKind, CompiledCircuit, Netlist};
use flh_rng::Rng;
use flh_sim::{Activity, CompiledSim, Logic};
use flh_tech::{CellLibrary, FlhPhysical};

/// Environment knobs for power estimation.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerConfig {
    /// Multiplier on zero-delay toggle counts to account for glitching
    /// (applied uniformly; it cancels in style-vs-style comparisons).
    pub glitch_factor: f64,
    /// Wire capacitance per fanout pin (fF), kept consistent with
    /// `flh_timing::TimingConfig`.
    pub wire_cap_per_fanout_ff: f64,
    /// Primary-output pad load (fF).
    pub po_load_ff: f64,
}

impl PowerConfig {
    /// Defaults used across the reproduction.
    pub fn paper_default() -> Self {
        PowerConfig {
            glitch_factor: 1.15,
            wire_cap_per_fanout_ff: 0.25,
            po_load_ff: 5.0,
        }
    }
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig::paper_default()
    }
}

/// Which operating regime the estimate models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperatingMode {
    /// Functional operation at the functional clock.
    Normal,
    /// Scan shifting at the scan clock with the combinational block
    /// possibly asleep (FLH) or blocked (holding cells).
    ScanShift,
}

/// FLH annotation for power estimation.
#[derive(Clone, Debug)]
pub struct FlhPowerAnnotation<'a> {
    /// Supply-gated first-level gates.
    pub gated: &'a [CellId],
    /// Derived gating/keeper costs.
    pub physical: &'a FlhPhysical,
}

/// Estimated power, decomposed.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerBreakdown {
    /// Data-activity dynamic power (µW).
    pub dynamic_uw: f64,
    /// Clock-tree / sequential-internal power (µW).
    pub clock_uw: f64,
    /// Static leakage power (µW).
    pub leakage_uw: f64,
}

impl PowerBreakdown {
    /// Total power (µW).
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.clock_uw + self.leakage_uw
    }
}

/// Estimates power from recorded activity.
///
/// `activity` must have been collected on the same netlist (same cell ids).
///
/// # Panics
///
/// Panics if the netlist contains unmapped generic gates or is
/// combinationally cyclic (an activity trace implies it simulated, and
/// simulation already requires acyclicity).
pub fn estimate(
    netlist: &Netlist,
    library: &CellLibrary,
    activity: &flh_sim::Activity,
    config: &PowerConfig,
    flh: Option<&FlhPowerAnnotation<'_>>,
    mode: OperatingMode,
) -> PowerBreakdown {
    let compiled = CompiledCircuit::compile(netlist).expect("activity implies acyclic netlist");
    estimate_compiled(&compiled, library, activity, config, flh, mode)
}

/// [`estimate`] over an already-compiled circuit: the capacitance assembly
/// walks the dense id space and CSR reader lists directly, so repeated
/// estimates (mode sweeps, style comparisons) share one compile.
///
/// # Panics
///
/// Panics if the circuit contains unmapped generic gates.
pub fn estimate_compiled(
    compiled: &CompiledCircuit,
    library: &CellLibrary,
    activity: &flh_sim::Activity,
    config: &PowerConfig,
    flh: Option<&FlhPowerAnnotation<'_>>,
    mode: OperatingMode,
) -> PowerBreakdown {
    let tech = library.technology();
    let vdd2 = tech.vdd * tech.vdd;
    let freq_ghz = match mode {
        OperatingMode::Normal => tech.clock_freq_ghz,
        OperatingMode::ScanShift => tech.scan_freq_ghz,
    };

    let mut gated = vec![false; compiled.cell_count()];
    if let Some(ann) = flh {
        for &c in ann.gated {
            gated[c.index()] = true;
        }
    }

    let mut dynamic_uw = 0.0;
    let mut clock_uw = 0.0;
    let mut leakage_uw = 0.0;

    for id in 0..compiled.cell_count() as u32 {
        let kind = compiled.kind(id);
        if kind == CellKind::Output {
            continue;
        }
        let phys = library.physical(kind);

        // Capacitance switched per output toggle: own diffusion + hidden
        // internal nodes + readers' input caps + wire.
        let mut c_node = phys.output_cap_ff + phys.internal_sw_cap_ff;
        for &r in compiled.readers(id) {
            let rk = compiled.kind(r);
            c_node += if rk == CellKind::Output {
                config.po_load_ff
            } else {
                library.physical(rk).input_cap_ff
            };
            c_node += config.wire_cap_per_fanout_ff;
        }

        let mut leak_na = phys.leakage_na;
        if gated[id as usize] {
            let ann = flh.expect("gated implies annotation");
            // Keeper INV1 gate + TG diffusion ride on the node, and the
            // keeper's internal node toggles along with it.
            c_node += ann.physical.keeper_load_ff + ann.physical.keeper_toggle_cap_ff;
            let factor = match mode {
                OperatingMode::Normal => ann.physical.stack_leak_factor,
                OperatingMode::ScanShift => ann.physical.sleep_leak_factor,
            };
            leak_na = leak_na * factor + ann.physical.keeper_leakage_na;
        }

        let alpha = activity.activity_factor(CellId::from_index(id as usize));
        dynamic_uw += 0.5 * alpha * c_node * vdd2 * freq_ghz * config.glitch_factor;
        clock_uw += phys.clock_cap_ff * vdd2 * freq_ghz;
        leakage_uw += leak_na * tech.vdd * 1e-3;
    }

    PowerBreakdown {
        dynamic_uw,
        clock_uw,
        leakage_uw,
    }
}

/// The paper's measurement: apply `vectors` random primary-input vectors in
/// normal mode (holding released), collect toggle activity, and estimate
/// power. Deterministic in `seed`.
///
/// Flip-flops are initialized to random known values so activity is not
/// suppressed by `X` propagation.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
pub fn random_vector_power(
    netlist: &Netlist,
    library: &CellLibrary,
    config: &PowerConfig,
    flh: Option<&FlhPowerAnnotation<'_>>,
    vectors: usize,
    seed: u64,
) -> flh_netlist::Result<PowerBreakdown> {
    // Single shard on the serial pool: exactly the legacy collector — one
    // RNG, one FF init, one warmup, `vectors` applications.
    random_vector_power_pooled(
        netlist,
        library,
        config,
        flh,
        vectors,
        seed,
        vectors.max(1),
        &ThreadPool::serial(),
    )
}

/// Pooled [`random_vector_power`]: the vector budget is cut into fixed
/// `shard_vectors`-sized shards fanned over the pool (see
/// [`random_activity_sharded`]). For a fixed `shard_vectors` the result is
/// bit-identical at any pool size; with `shard_vectors >= vectors` it
/// degenerates to the legacy serial collector.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
#[allow(clippy::too_many_arguments)]
pub fn random_vector_power_pooled(
    netlist: &Netlist,
    library: &CellLibrary,
    config: &PowerConfig,
    flh: Option<&FlhPowerAnnotation<'_>>,
    vectors: usize,
    seed: u64,
    shard_vectors: usize,
    pool: &ThreadPool,
) -> flh_netlist::Result<PowerBreakdown> {
    let compiled = CompiledCircuit::compile_shared(netlist)?;
    let gated = flh.map(|ann| ann.gated);
    let activity = random_activity_sharded(&compiled, gated, vectors, seed, shard_vectors, pool);
    Ok(estimate_compiled(
        &compiled,
        library,
        &activity,
        config,
        flh,
        OperatingMode::Normal,
    ))
}

/// Seed of activity shard `k`. Shard 0 inherits the campaign seed
/// unchanged — a single-shard run consumes the RNG exactly like the legacy
/// serial collector — and later shards decorrelate through a
/// splitmix-style mix of `(seed, k)`.
pub fn shard_seed(seed: u64, shard: u64) -> u64 {
    if shard == 0 {
        return seed;
    }
    let mut z = seed ^ shard.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One shard of random-vector activity: its own RNG, its own random FF
/// init and warmup vector, then `vectors` applications — an independent
/// miniature of the legacy collector, so shards compose by summation.
fn collect_activity_shard(
    compiled: &CompiledCircuit,
    gated: Option<&[CellId]>,
    vectors: usize,
    seed: u64,
) -> Activity {
    let mut rng = Rng::seed_from_u64(seed);
    let mut sim = CompiledSim::new(compiled);
    if let Some(cells) = gated {
        sim.set_gated_cells(cells);
    }
    for i in 0..compiled.flip_flops().len() {
        sim.set_ff_by_index(i, Logic::from_bool(rng.gen()));
    }
    let inputs = compiled.inputs().len();
    let warmup: Vec<Logic> = (0..inputs).map(|_| Logic::from_bool(rng.gen())).collect();
    sim.set_inputs(&warmup);
    sim.settle();
    sim.reset_activity();
    for _ in 0..vectors {
        let v: Vec<Logic> = (0..inputs).map(|_| Logic::from_bool(rng.gen())).collect();
        sim.apply_vector(&v);
    }
    sim.activity().clone()
}

/// Sharded random-vector activity collection: `vectors` is cut into
/// `shard_vectors`-sized shards (the last one smaller), shard `k` runs as
/// an independent collector seeded [`shard_seed`]`(seed, k)`, and the
/// toggle counts are summed **in shard-index order** over a
/// [`Campaign`] on `pool`. The shard structure depends only on
/// `(vectors, shard_vectors)` — never on the pool — so toggle counts are
/// bit-identical at any pool size (integer sums, no float order effects).
pub fn random_activity_sharded(
    compiled: &Arc<CompiledCircuit>,
    gated: Option<&[CellId]>,
    vectors: usize,
    seed: u64,
    shard_vectors: usize,
    pool: &ThreadPool,
) -> Activity {
    let shard_vectors = shard_vectors.max(1);
    let shards = vectors.div_ceil(shard_vectors).max(1);
    let campaign = Campaign::with_arc(Arc::clone(compiled), pool.clone());
    let parts = campaign.run_cells(shards, |compiled, k| {
        let lo = k * shard_vectors;
        let hi = ((k + 1) * shard_vectors).min(vectors);
        collect_activity_shard(compiled, gated, hi - lo, shard_seed(seed, k as u64))
    });
    let mut iter = parts.into_iter();
    let mut total = iter.next().expect("at least one shard");
    for part in iter {
        total.merge(&part);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_sim::LogicSim;
    use flh_tech::{FlhConfig, Technology};

    fn lib() -> CellLibrary {
        CellLibrary::new(Technology::bptm70())
    }

    /// Toggle flip-flop driving a small cone.
    fn toggler() -> Netlist {
        let mut n = Netlist::new("tgl");
        let en = n.add_input("en");
        let ff = n.add_cell("ff", CellKind::Dff, vec![en]);
        let d = n.add_cell("d", CellKind::Xor2, vec![ff, en]);
        n.set_fanin_pin(ff, 0, d);
        let g1 = n.add_cell("g1", CellKind::Inv, vec![ff]);
        let g2 = n.add_cell("g2", CellKind::Nand2, vec![g1, en]);
        n.add_output("y", g2);
        n
    }

    #[test]
    fn power_components_are_positive_and_plausible() {
        let n = toggler();
        let lib = lib();
        let p = random_vector_power(&n, &lib, &PowerConfig::paper_default(), None, 100, 7).unwrap();
        assert!(p.dynamic_uw > 0.0, "dynamic {p:?}");
        assert!(p.clock_uw > 0.0);
        assert!(p.leakage_uw > 0.0);
        // A five-cell circuit at 500 MHz: single-digit µW at most.
        assert!(p.total_uw() < 10.0, "total {} µW", p.total_uw());
    }

    #[test]
    fn random_vector_power_is_deterministic() {
        let n = toggler();
        let lib = lib();
        let cfg = PowerConfig::paper_default();
        let a = random_vector_power(&n, &lib, &cfg, None, 50, 42).unwrap();
        let b = random_vector_power(&n, &lib, &cfg, None, 50, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_activity_is_pool_size_invariant() {
        let n = toggler();
        let compiled = CompiledCircuit::compile_shared(&n).unwrap();
        let serial = random_activity_sharded(&compiled, None, 100, 9, 16, &ThreadPool::serial());
        for workers in [2, 4, 8] {
            let pooled =
                random_activity_sharded(&compiled, None, 100, 9, 16, &ThreadPool::new(workers));
            assert_eq!(pooled, serial, "workers = {workers}");
        }
    }

    #[test]
    fn single_shard_matches_legacy_collector() {
        // random_vector_power is the single-shard serial case; the pooled
        // entry with shard_vectors >= vectors must agree bit for bit.
        let n = toggler();
        let lib = lib();
        let cfg = PowerConfig::paper_default();
        let legacy = random_vector_power(&n, &lib, &cfg, None, 80, 21).unwrap();
        let pooled =
            random_vector_power_pooled(&n, &lib, &cfg, None, 80, 21, 1000, &ThreadPool::new(4))
                .unwrap();
        assert_eq!(legacy, pooled);
        assert_eq!(shard_seed(21, 0), 21);
        assert_ne!(shard_seed(21, 1), shard_seed(21, 2));
    }

    #[test]
    fn more_activity_means_more_dynamic_power() {
        // en=1 keeps the toggle FF toggling; a dead input would stop it.
        // Compare against a circuit where the XOR is replaced by a buffer
        // (stable state).
        let n = toggler();
        let lib = lib();
        let cfg = PowerConfig::paper_default();
        let live = random_vector_power(&n, &lib, &cfg, None, 100, 3).unwrap();

        let mut quiet = Netlist::new("quiet");
        let en = quiet.add_input("en");
        let ff = quiet.add_cell("ff", CellKind::Dff, vec![en]);
        let d = quiet.add_cell("d", CellKind::Buf, vec![ff]); // holds state
        quiet.set_fanin_pin(ff, 0, d);
        let g1 = quiet.add_cell("g1", CellKind::Inv, vec![ff]);
        let g2 = quiet.add_cell("g2", CellKind::Nand2, vec![g1, en]);
        quiet.add_output("y", g2);
        let still = random_vector_power(&quiet, &lib, &cfg, None, 100, 3).unwrap();
        assert!(live.dynamic_uw > still.dynamic_uw);
    }

    #[test]
    fn hold_latch_cells_add_dynamic_power() {
        // Same function, with a hold latch on the FF output: the latch
        // toggles with the FF and burns extra power.
        let lib = lib();
        let cfg = PowerConfig::paper_default();
        let base = toggler();

        let mut held = Netlist::new("tgl_es");
        let en = held.add_input("en");
        let ff = held.add_cell("ff", CellKind::Dff, vec![en]);
        let hl = held.add_cell("hl", CellKind::HoldLatch, vec![ff]);
        let d = held.add_cell("d", CellKind::Xor2, vec![hl, en]);
        held.set_fanin_pin(ff, 0, d);
        let g1 = held.add_cell("g1", CellKind::Inv, vec![hl]);
        let g2 = held.add_cell("g2", CellKind::Nand2, vec![g1, en]);
        held.add_output("y", g2);

        let p_base = random_vector_power(&base, &lib, &cfg, None, 100, 9).unwrap();
        let p_held = random_vector_power(&held, &lib, &cfg, None, 100, 9).unwrap();
        assert!(
            p_held.total_uw() > p_base.total_uw() * 1.05,
            "latch overhead too small: {} vs {}",
            p_held.total_uw(),
            p_base.total_uw()
        );
    }

    #[test]
    fn flh_overhead_is_small_and_leakage_can_drop() {
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let cfg = PowerConfig::paper_default();
        let n = toggler();
        let g1 = n.find("g1").unwrap();
        let phys = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let ann = FlhPowerAnnotation {
            gated: &[g1],
            physical: &phys,
        };
        let p_base = random_vector_power(&n, &lib, &cfg, None, 100, 11).unwrap();
        let p_flh = random_vector_power(&n, &lib, &cfg, Some(&ann), 100, 11).unwrap();
        let overhead = p_flh.total_uw() - p_base.total_uw();
        // This 5-cell circuit is pathological (the gated gate's output
        // toggles every cycle), so the keeper overhead is proportionally at
        // its worst; it must still stay small. Realistic circuit-level
        // percentages are checked by the Table III bench.
        assert!(
            overhead.abs() < 0.12 * p_base.total_uw(),
            "FLH overhead {overhead} µW on {} µW",
            p_base.total_uw()
        );
    }

    #[test]
    fn scan_shift_mode_uses_scan_clock_and_sleep_leakage() {
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let cfg = PowerConfig::paper_default();
        let n = toggler();
        let g1 = n.find("g1").unwrap();
        let phys = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let ann = FlhPowerAnnotation {
            gated: &[g1],
            physical: &phys,
        };
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_gated_cells(&[g1]);
        // No activity: pure static comparison.
        let p_normal = estimate(
            &n,
            &lib,
            sim.activity(),
            &cfg,
            Some(&ann),
            OperatingMode::Normal,
        );
        let p_sleep = estimate(
            &n,
            &lib,
            sim.activity(),
            &cfg,
            Some(&ann),
            OperatingMode::ScanShift,
        );
        assert!(
            p_sleep.leakage_uw < p_normal.leakage_uw,
            "sleep leakage {} !< normal {}",
            p_sleep.leakage_uw,
            p_normal.leakage_uw
        );
    }

    #[test]
    fn glitch_factor_scales_dynamic_only() {
        let n = toggler();
        let lib = lib();
        let mut cfg = PowerConfig::paper_default();
        let a = random_vector_power(&n, &lib, &cfg, None, 50, 5).unwrap();
        cfg.glitch_factor *= 2.0;
        let b = random_vector_power(&n, &lib, &cfg, None, 50, 5).unwrap();
        assert!((b.dynamic_uw - 2.0 * a.dynamic_uw).abs() < 1e-9);
        assert!((b.clock_uw - a.clock_uw).abs() < 1e-12);
        assert!((b.leakage_uw - a.leakage_uw).abs() < 1e-12);
    }
    #[test]
    fn flh_area_of_dynamic_includes_keeper_caps_exactly() {
        // Same activity, with vs without the FLH annotation: the dynamic
        // delta must equal the keeper capacitance times the gated cells'
        // switching, analytically.
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let cfg = PowerConfig::paper_default();
        let n = toggler();
        let g1 = n.find("g1").unwrap();
        let phys = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_ff_by_index(0, Logic::Zero);
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        sim.reset_activity();
        for _ in 0..20 {
            sim.clock_capture();
        }
        let act = sim.activity().clone();
        let ann = FlhPowerAnnotation {
            gated: &[g1],
            physical: &phys,
        };
        let base = estimate(&n, &lib, &act, &cfg, None, OperatingMode::Normal);
        let flh = estimate(&n, &lib, &act, &cfg, Some(&ann), OperatingMode::Normal);
        let alpha = act.activity_factor(g1);
        let expect_dyn = 0.5
            * alpha
            * (phys.keeper_load_ff + phys.keeper_toggle_cap_ff)
            * tech.vdd
            * tech.vdd
            * tech.clock_freq_ghz
            * cfg.glitch_factor;
        let got = flh.dynamic_uw - base.dynamic_uw;
        assert!(
            (got - expect_dyn).abs() < 1e-9,
            "keeper dynamic {got} vs analytic {expect_dyn}"
        );
    }

    #[test]
    fn hold_mux_burns_less_than_hold_latch() {
        let lib = lib();
        let cfg = PowerConfig::paper_default();
        let build = |kind: CellKind| -> Netlist {
            let mut n = Netlist::new("h");
            let en = n.add_input("en");
            let ff = n.add_cell("ff", CellKind::Dff, vec![en]);
            let h = n.add_cell("h", kind, vec![ff]);
            let d = n.add_cell("d", CellKind::Xor2, vec![h, en]);
            n.set_fanin_pin(ff, 0, d);
            n.add_output("y", d);
            n
        };
        let latch = build(CellKind::HoldLatch);
        let mux = build(CellKind::HoldMux);
        let p_latch = random_vector_power(&latch, &lib, &cfg, None, 100, 2).unwrap();
        let p_mux = random_vector_power(&mux, &lib, &cfg, None, 100, 2).unwrap();
        assert!(p_mux.total_uw() < p_latch.total_uw());
    }

    #[test]
    fn scan_shift_mode_runs_at_the_scan_clock() {
        // Same activity, both modes: dynamic power scales by the clock
        // ratio exactly.
        let n = toggler();
        let lib = lib();
        let cfg = PowerConfig::paper_default();
        let mut sim = LogicSim::new(&n).unwrap();
        sim.set_ff_by_index(0, Logic::Zero);
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        sim.reset_activity();
        for _ in 0..10 {
            sim.clock_capture();
        }
        let normal = estimate(&n, &lib, sim.activity(), &cfg, None, OperatingMode::Normal);
        let shift = estimate(
            &n,
            &lib,
            sim.activity(),
            &cfg,
            None,
            OperatingMode::ScanShift,
        );
        let tech = lib.technology();
        let ratio = tech.scan_freq_ghz / tech.clock_freq_ghz;
        assert!((shift.dynamic_uw - normal.dynamic_uw * ratio).abs() < 1e-9);
        assert!((shift.leakage_uw - normal.leakage_uw).abs() < 1e-12);
    }
}
