//! Static timing analysis over mapped netlists.
//!
//! Implements the delay view the paper measures with HSPICE on the critical
//! path: a logical-effort-style arc model where each cell contributes
//! `intrinsic + R_drive · C_load`, with loads assembled from the fanout's
//! input capacitances plus wire capacitance. The DFT styles perturb timing
//! exactly as in the paper:
//!
//! * enhanced scan / MUX-based — the `HoldLatch` / `HoldMux` cells are real
//!   netlist cells in the stimulus path, so their arc appears on every
//!   flip-flop-to-logic path automatically;
//! * FLH — supply-gated first-level gates drive through the on gating
//!   transistors (extra series resistance) and carry the keeper as extra
//!   output load; no new level of logic appears ("it does not introduce
//!   extra level of logic in the timing path"), which is why the overhead
//!   is a small fraction of a gate delay instead of a full latch arc.

use flh_netlist::{CellId, CellKind, CompiledCircuit, Netlist};
use flh_tech::{CellLibrary, FlhPhysical};

/// Environment knobs for the analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingConfig {
    /// Wire capacitance per fanout pin (fF).
    pub wire_cap_per_fanout_ff: f64,
    /// Flip-flop setup time added at D endpoints (ps).
    pub ff_setup_ps: f64,
    /// Load presented by a primary output / pad (fF).
    pub po_load_ff: f64,
}

impl TimingConfig {
    /// Defaults used across the reproduction.
    pub fn paper_default() -> Self {
        TimingConfig {
            wire_cap_per_fanout_ff: 0.25,
            ff_setup_ps: 20.0,
            po_load_ff: 5.0,
        }
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::paper_default()
    }
}

/// Optional FLH annotation: which cells are supply-gated and with what
/// physical cost. A subset may carry wider gating devices (the paper's
/// Section III mixed sizing for critical-path gates).
#[derive(Clone, Debug)]
pub struct FlhAnnotation<'a> {
    /// Supply-gated cells (the first-level gates).
    pub gated: &'a [CellId],
    /// Derived gating/keeper costs for the default sizing.
    pub physical: &'a FlhPhysical,
    /// Subset of `gated` using the wide sizing (empty = uniform default).
    pub wide: &'a [CellId],
    /// Costs of the wide sizing; required when `wide` is nonempty.
    pub wide_physical: Option<&'a FlhPhysical>,
}

impl<'a> FlhAnnotation<'a> {
    /// Uniform-sizing annotation.
    pub fn new(gated: &'a [CellId], physical: &'a FlhPhysical) -> Self {
        FlhAnnotation {
            gated,
            physical,
            wide: &[],
            wide_physical: None,
        }
    }

    /// Adds a wide-sized subset.
    pub fn with_wide(mut self, wide: &'a [CellId], physical: &'a FlhPhysical) -> Self {
        self.wide = wide;
        self.wide_physical = Some(physical);
        self
    }

    fn physical_for(&self, id: CellId) -> &FlhPhysical {
        if self.wide.contains(&id) {
            self.wide_physical.expect("wide set implies wide_physical")
        } else {
            self.physical
        }
    }
}

/// Result of a timing analysis.
#[derive(Clone, Debug)]
pub struct TimingReport {
    arrival_ps: Vec<f64>,
    worst_fanin: Vec<Option<CellId>>,
    critical_delay_ps: f64,
    critical_endpoint: Option<CellId>,
}

impl TimingReport {
    /// Arrival time at a cell's output (ps). For `Output` markers this is
    /// the endpoint arrival; for flip-flops the clk→q availability.
    pub fn arrival_ps(&self, id: CellId) -> f64 {
        self.arrival_ps[id.index()]
    }

    /// Worst (critical) register-to-register / register-to-output delay
    /// including setup (ps).
    pub fn critical_delay_ps(&self) -> f64 {
        self.critical_delay_ps
    }

    /// The endpoint cell of the critical path (a flip-flop whose D closes
    /// the path, or a primary-output marker).
    pub fn critical_endpoint(&self) -> Option<CellId> {
        self.critical_endpoint
    }

    /// Traces the critical path from endpoint back to its source, returned
    /// source-first.
    ///
    /// A flip-flop endpoint may lie on its own critical path (a register
    /// whose worst D-cone loops back from its own output); the trace stops
    /// when it would revisit a cell, so the returned path covers exactly
    /// one register-to-register traversal.
    pub fn critical_path(&self) -> Vec<CellId> {
        let mut path = Vec::new();
        let mut seen = vec![false; self.arrival_ps.len()];
        let mut cursor = self.critical_endpoint;
        while let Some(id) = cursor {
            if seen[id.index()] {
                break;
            }
            seen[id.index()] = true;
            path.push(id);
            cursor = self.worst_fanin[id.index()];
        }
        path.reverse();
        path
    }

    /// Slack against a clock period (ps); negative means a violation.
    pub fn slack_ps(&self, clock_period_ps: f64) -> f64 {
        clock_period_ps - self.critical_delay_ps
    }
}

/// Per-cell required times and slacks against a clock period: the backward
/// propagation pass complementing [`analyze`]'s forward arrival pass.
#[derive(Clone, Debug)]
pub struct SlackReport {
    required_ps: Vec<f64>,
    slack_ps: Vec<f64>,
}

impl SlackReport {
    /// Computes required times by walking the timing graph backward from
    /// the endpoints (primary outputs at `clock_period_ps`, flip-flop D
    /// pins at `clock_period_ps − setup`). A cell's required time is the
    /// minimum over its readers of *their* required time minus *their*
    /// stage delay (arrival(reader) − arrival(cell)).
    ///
    /// # Errors
    ///
    /// Fails on combinationally cyclic netlists.
    pub fn compute(
        netlist: &Netlist,
        report: &TimingReport,
        config: &TimingConfig,
        clock_period_ps: f64,
    ) -> flh_netlist::Result<Self> {
        let compiled = CompiledCircuit::compile(netlist)?;
        Ok(Self::compute_compiled(
            &compiled,
            report,
            config,
            clock_period_ps,
        ))
    }

    /// [`SlackReport::compute`] over an already-compiled circuit; walking
    /// the precomputed level order in reverse, it cannot fail.
    pub fn compute_compiled(
        compiled: &CompiledCircuit,
        report: &TimingReport,
        config: &TimingConfig,
        clock_period_ps: f64,
    ) -> Self {
        let n = compiled.cell_count();
        let mut required = vec![f64::INFINITY; n];

        // Endpoint requirements.
        for id in 0..n as u32 {
            match compiled.kind(id) {
                CellKind::Output => required[id as usize] = clock_period_ps,
                k if k.is_flip_flop() => {
                    let d = compiled.fanin(id)[0];
                    let r = clock_period_ps - config.ff_setup_ps;
                    if r < required[d as usize] {
                        required[d as usize] = r;
                    }
                }
                _ => {}
            }
        }
        // Backward pass in reverse topological order: each cell constrains
        // its fanins through its own stage delay.
        for &id in compiled.order().iter().rev() {
            let r_here = required[id as usize];
            if !r_here.is_finite() {
                continue;
            }
            let stage = if compiled.kind(id) == CellKind::Output {
                0.0
            } else {
                // Stage delay as realized in the forward pass.
                let worst_in = compiled
                    .fanin(id)
                    .iter()
                    .map(|&f| report.arrival_ps[f as usize])
                    .fold(0.0, f64::max);
                report.arrival_ps[id as usize] - worst_in
            };
            for &f in compiled.fanin(id) {
                let r = r_here - stage;
                if r < required[f as usize] {
                    required[f as usize] = r;
                }
            }
        }
        let slack: Vec<f64> = (0..n)
            .map(|i| {
                if required[i].is_finite() {
                    required[i] - report.arrival_ps[i]
                } else {
                    f64::INFINITY // unobserved cells constrain nothing
                }
            })
            .collect();
        SlackReport {
            required_ps: required,
            slack_ps: slack,
        }
    }

    /// Required time at a cell (ps); `+inf` for unobserved cells.
    pub fn required_ps(&self, id: CellId) -> f64 {
        self.required_ps[id.index()]
    }

    /// Slack at a cell (ps); negative on violating paths.
    pub fn slack_at(&self, id: CellId) -> f64 {
        self.slack_ps[id.index()]
    }
}

/// Runs static timing analysis.
///
/// # Errors
///
/// Fails on combinationally cyclic netlists.
///
/// # Panics
///
/// Panics if the netlist contains unmapped generic gates.
///
/// # Example
///
/// ```
/// use flh_netlist::{CellKind, Netlist};
/// use flh_tech::{CellLibrary, Technology};
/// use flh_timing::{analyze, TimingConfig};
///
/// # fn main() -> Result<(), flh_netlist::NetlistError> {
/// let mut n = Netlist::new("chain");
/// let a = n.add_input("a");
/// let g1 = n.add_cell("g1", CellKind::Inv, vec![a]);
/// let g2 = n.add_cell("g2", CellKind::Inv, vec![g1]);
/// n.add_output("y", g2);
/// let lib = CellLibrary::new(Technology::bptm70());
/// let report = analyze(&n, &lib, &TimingConfig::paper_default(), None)?;
/// assert!(report.critical_delay_ps() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn analyze(
    netlist: &Netlist,
    library: &CellLibrary,
    config: &TimingConfig,
    flh: Option<FlhAnnotation<'_>>,
) -> flh_netlist::Result<TimingReport> {
    let compiled = CompiledCircuit::compile(netlist)?;
    Ok(analyze_compiled(&compiled, library, config, flh))
}

/// [`analyze`] over an already-compiled circuit. The forward pass walks the
/// precomputed level order and CSR fanin/fanout arrays — no per-call
/// levelization or fanout-map construction — so repeated analyses (sizing
/// sweeps, per-style comparisons) share one compile.
///
/// # Panics
///
/// Panics if the netlist contains unmapped generic gates.
pub fn analyze_compiled(
    compiled: &CompiledCircuit,
    library: &CellLibrary,
    config: &TimingConfig,
    flh: Option<FlhAnnotation<'_>>,
) -> TimingReport {
    let n = compiled.cell_count();

    let mut gated = vec![false; n];
    if let Some(ann) = &flh {
        for &c in ann.gated {
            gated[c.index()] = true;
        }
    }

    // Output load per driving cell.
    let load_ff = |id: u32| -> f64 {
        let mut c = 0.0;
        for &r in compiled.readers(id) {
            let kind = compiled.kind(r);
            c += if kind == CellKind::Output {
                config.po_load_ff
            } else {
                library.physical(kind).input_cap_ff
            };
            c += config.wire_cap_per_fanout_ff;
        }
        if gated[id as usize] {
            let ann = flh.as_ref().expect("gated implies annotation");
            c += ann
                .physical_for(CellId::from_index(id as usize))
                .keeper_load_ff;
        }
        c
    };

    let mut arrival = vec![0.0f64; n];
    let mut worst_fanin: Vec<Option<CellId>> = vec![None; n];

    // Sources: primary inputs arrive at t = their driver delay; flip-flops
    // at clk→q. (Constants sit in the level order and are handled below.)
    for &id in compiled.inputs() {
        let phys = library.physical(CellKind::Input);
        arrival[id as usize] = phys.drive_res_kohm * load_ff(id);
    }
    for &id in compiled.flip_flops() {
        let phys = library.physical(compiled.kind(id));
        arrival[id as usize] = phys.intrinsic_ps + phys.drive_res_kohm * load_ff(id);
    }

    for &id in compiled.order() {
        let kind = compiled.kind(id);
        let (base, from) = compiled
            .fanin(id)
            .iter()
            .map(|&f| (arrival[f as usize], Some(CellId::from_index(f as usize))))
            .fold((0.0, None), |acc, x| if x.0 > acc.0 { x } else { acc });
        if kind == CellKind::Output {
            arrival[id as usize] = base;
            worst_fanin[id as usize] = from;
            continue;
        }
        let phys = library.physical(kind);
        let mut res = phys.drive_res_kohm;
        let mut intrinsic = phys.intrinsic_ps;
        if gated[id as usize] {
            let ann = flh.as_ref().expect("gated implies annotation");
            let gphys = ann.physical_for(CellId::from_index(id as usize));
            res += gphys.extra_drive_res_kohm;
            // The extra resistance also slows the discharge of the cell's
            // own parasitics.
            intrinsic += gphys.extra_drive_res_kohm * phys.output_cap_ff;
        }
        arrival[id as usize] = base + intrinsic + res * load_ff(id);
        worst_fanin[id as usize] = from;
    }

    // Endpoints: primary outputs and flip-flop D pins (+ setup), scanned in
    // id order (ties resolve exactly as the graph walk did).
    let mut critical = 0.0f64;
    let mut endpoint = None;
    for id in 0..n as u32 {
        let t = match compiled.kind(id) {
            CellKind::Output => arrival[id as usize],
            k if k.is_flip_flop() => arrival[compiled.fanin(id)[0] as usize] + config.ff_setup_ps,
            _ => continue,
        };
        if t > critical {
            critical = t;
            endpoint = Some(CellId::from_index(id as usize));
        }
    }
    // Make flip-flop endpoints traceable through their D pin.
    if let Some(ep) = endpoint {
        if compiled.kind(ep.index() as u32).is_flip_flop() {
            let d = compiled.fanin(ep.index() as u32)[0];
            worst_fanin[ep.index()] = Some(CellId::from_index(d as usize));
        }
    }

    TimingReport {
        arrival_ps: arrival,
        worst_fanin,
        critical_delay_ps: critical,
        critical_endpoint: endpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_tech::{FlhConfig, Technology};

    fn lib() -> CellLibrary {
        CellLibrary::new(Technology::bptm70())
    }

    fn inv_chain(len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let mut prev = a;
        for i in 0..len {
            prev = n.add_cell(format!("i{i}"), CellKind::Inv, vec![prev]);
        }
        n.add_output("y", prev);
        n
    }

    #[test]
    fn longer_chains_are_slower() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let d4 = analyze(&inv_chain(4), &lib, &cfg, None)
            .unwrap()
            .critical_delay_ps();
        let d8 = analyze(&inv_chain(8), &lib, &cfg, None)
            .unwrap()
            .critical_delay_ps();
        // The pad-load stage is common to both, so compare net of it.
        assert!(d8 > d4 + 20.0, "d4={d4} d8={d8}");
    }

    #[test]
    fn per_stage_delay_is_plausible() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let d10 = analyze(&inv_chain(10), &lib, &cfg, None)
            .unwrap()
            .critical_delay_ps();
        let d20 = analyze(&inv_chain(20), &lib, &cfg, None)
            .unwrap()
            .critical_delay_ps();
        let per_stage = (d20 - d10) / 10.0;
        assert!(
            (3.0..30.0).contains(&per_stage),
            "FO1 inverter stage {per_stage} ps"
        );
    }

    #[test]
    fn fanout_increases_delay() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let mut n1 = Netlist::new("fo1");
        let a = n1.add_input("a");
        let g = n1.add_cell("g", CellKind::Inv, vec![a]);
        let s = n1.add_cell("s", CellKind::Inv, vec![g]);
        n1.add_output("y", s);

        let mut n4 = Netlist::new("fo4");
        let a = n4.add_input("a");
        let g = n4.add_cell("g", CellKind::Inv, vec![a]);
        let s = n4.add_cell("s", CellKind::Inv, vec![g]);
        for i in 0..3 {
            n4.add_cell(format!("l{i}"), CellKind::Inv, vec![g]);
        }
        n4.add_output("y", s);

        let d1 = analyze(&n1, &lib, &cfg, None).unwrap();
        let d4 = analyze(&n4, &lib, &cfg, None).unwrap();
        let sid1 = n1.find("s").unwrap();
        let sid4 = n4.find("s").unwrap();
        assert!(d4.arrival_ps(sid4) > d1.arrival_ps(sid1));
    }

    /// FF → gate → gate → FF circuit, with optional hold latch.
    fn seq_path(with_latch: bool) -> Netlist {
        let mut n = Netlist::new("seq");
        let a = n.add_input("a");
        let ff = n.add_cell("ff", CellKind::Dff, vec![a]);
        let stim: CellId = if with_latch {
            n.add_cell("hl", CellKind::HoldLatch, vec![ff])
        } else {
            ff
        };
        let g1 = n.add_cell("g1", CellKind::Nand2, vec![stim, a]);
        let g2 = n.add_cell("g2", CellKind::Nor2, vec![g1, a]);
        let ff2 = n.add_cell("ff2", CellKind::Dff, vec![g2]);
        n.add_output("y", ff2);
        n
    }

    #[test]
    fn hold_latch_adds_a_full_arc() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let base = analyze(&seq_path(false), &lib, &cfg, None)
            .unwrap()
            .critical_delay_ps();
        let latched = analyze(&seq_path(true), &lib, &cfg, None)
            .unwrap()
            .critical_delay_ps();
        let overhead = latched - base;
        assert!(
            (15.0..80.0).contains(&overhead),
            "latch arc overhead {overhead} ps"
        );
    }

    #[test]
    fn flh_penalty_is_much_smaller_than_a_latch_arc() {
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let cfg = TimingConfig::paper_default();
        let n = seq_path(false);
        let g1 = n.find("g1").unwrap();
        let flh_phys = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let base = analyze(&n, &lib, &cfg, None).unwrap().critical_delay_ps();
        let gated = analyze(&n, &lib, &cfg, Some(FlhAnnotation::new(&[g1], &flh_phys)))
            .unwrap()
            .critical_delay_ps();
        let flh_overhead = gated - base;
        let latched = analyze(&seq_path(true), &lib, &cfg, None)
            .unwrap()
            .critical_delay_ps();
        let latch_overhead = latched - base;
        assert!(flh_overhead > 0.0, "gating must cost something");
        assert!(
            flh_overhead < 0.55 * latch_overhead,
            "FLH {flh_overhead} ps vs latch {latch_overhead} ps"
        );
    }

    #[test]
    fn wide_gating_reduces_the_flh_penalty() {
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let cfg = TimingConfig::paper_default();
        let n = seq_path(false);
        let g1 = n.find("g1").unwrap();
        let base = analyze(&n, &lib, &cfg, None).unwrap().critical_delay_ps();
        let run = |c: FlhConfig| {
            let phys = FlhPhysical::derive(&tech, &c);
            analyze(&n, &lib, &cfg, Some(FlhAnnotation::new(&[g1], &phys)))
                .unwrap()
                .critical_delay_ps()
                - base
        };
        let narrow = run(FlhConfig::paper_default());
        let wide = run(FlhConfig::wide_gating());
        assert!(wide < narrow, "wide {wide} !< narrow {narrow}");
    }

    #[test]
    fn critical_path_traces_from_source_to_endpoint() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let n = seq_path(true);
        let report = analyze(&n, &lib, &cfg, None).unwrap();
        let path = report.critical_path();
        assert!(path.len() >= 3);
        let last = *path.last().unwrap();
        assert_eq!(Some(last), report.critical_endpoint());
        // Consecutive path elements must be connected.
        for w in path.windows(2) {
            let (src, dst) = (w[0], w[1]);
            assert!(
                n.cell(dst).fanin().contains(&src),
                "{src} -> {dst} not an edge"
            );
        }
    }

    #[test]
    fn critical_path_terminates_on_self_loop_registers() {
        // A flip-flop whose worst D-cone starts at its own output: tracing
        // the critical path must not cycle forever.
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let mut n = Netlist::new("selfloop");
        let a = n.add_input("a");
        let ff = n.add_cell("ff", CellKind::Dff, vec![a]);
        let g1 = n.add_cell("g1", CellKind::Nand2, vec![ff, a]);
        let g2 = n.add_cell("g2", CellKind::Inv, vec![g1]);
        n.set_fanin_pin(ff, 0, g2);
        n.add_output("y", g2);
        // Load the FF->g1->g2->ff loop so it dominates the PO path.
        for i in 0..6 {
            n.add_cell(format!("l{i}"), CellKind::Inv, vec![g1]);
        }
        let report = analyze(&n, &lib, &cfg, None).unwrap();
        let path = report.critical_path();
        assert!(path.len() <= n.cell_count());
        // No repeats.
        let mut sorted = path.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), path.len());
    }

    #[test]
    fn slack_math() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let report = analyze(&inv_chain(4), &lib, &cfg, None).unwrap();
        let d = report.critical_delay_ps();
        assert!((report.slack_ps(d + 100.0) - 100.0).abs() < 1e-9);
        assert!(report.slack_ps(d - 1.0) < 0.0);
    }

    #[test]
    fn slack_report_zero_on_critical_path() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let n = seq_path(true);
        let report = analyze(&n, &lib, &cfg, None).unwrap();
        let period = report.critical_delay_ps();
        let slack = SlackReport::compute(&n, &report, &cfg, period).unwrap();
        // Every combinational cell on the critical path has (near-)zero
        // slack at a clock equal to the critical delay. (A flip-flop
        // endpoint's *output* slack reflects its readers, not its D pin,
        // so sequential cells are excluded.)
        for &id in &report.critical_path() {
            if !n.cell(id).kind().is_combinational() {
                continue;
            }
            assert!(
                slack.slack_at(id).abs() < 1e-6,
                "cell {id} slack {} on critical path",
                slack.slack_at(id)
            );
        }
        // Every cell has non-negative slack at that period.
        for id in n.ids() {
            assert!(slack.slack_at(id) > -1e-6, "negative slack at {id}");
        }
    }

    #[test]
    fn slack_report_scales_with_period() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let n = seq_path(false);
        let report = analyze(&n, &lib, &cfg, None).unwrap();
        let base = report.critical_delay_ps();
        let tight = SlackReport::compute(&n, &report, &cfg, base).unwrap();
        let loose = SlackReport::compute(&n, &report, &cfg, base + 100.0).unwrap();
        let g1 = n.find("g1").unwrap();
        assert!((loose.slack_at(g1) - tight.slack_at(g1) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn unobserved_cells_have_infinite_slack() {
        let lib = lib();
        let cfg = TimingConfig::paper_default();
        let mut n = Netlist::new("dangling");
        let a = n.add_input("a");
        let g = n.add_cell("g", CellKind::Inv, vec![a]);
        let dead = n.add_cell("dead", CellKind::Inv, vec![a]);
        n.add_output("y", g);
        let report = analyze(&n, &lib, &cfg, None).unwrap();
        let slack = SlackReport::compute(&n, &report, &cfg, 1000.0).unwrap();
        assert!(slack.slack_at(dead).is_infinite());
        assert!(slack.required_ps(dead).is_infinite());
        assert!(slack.slack_at(g).is_finite());
    }

    #[test]
    fn compiled_entry_points_match_graph_entry_points() {
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let cfg = TimingConfig::paper_default();
        let n = flh_netlist::generate_circuit(&flh_netlist::GeneratorConfig {
            name: "timing_eq".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 8,
            gates: 90,
            logic_depth: 7,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 2026,
        })
        .unwrap();
        let compiled = CompiledCircuit::compile(&n).unwrap();
        let fanouts = flh_netlist::FanoutMap::compute(&n);
        let gated: Vec<CellId> = flh_netlist::analysis::first_level_gates(&n, &fanouts)
            .into_iter()
            .take(4)
            .collect();
        let phys = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let ann = || Some(FlhAnnotation::new(&gated, &phys));
        let via_graph = analyze(&n, &lib, &cfg, ann()).unwrap();
        let via_compiled = analyze_compiled(&compiled, &lib, &cfg, ann());
        assert_eq!(
            via_graph.critical_delay_ps(),
            via_compiled.critical_delay_ps()
        );
        assert_eq!(
            via_graph.critical_endpoint(),
            via_compiled.critical_endpoint()
        );
        assert_eq!(via_graph.critical_path(), via_compiled.critical_path());
        for id in n.ids() {
            assert_eq!(via_graph.arrival_ps(id), via_compiled.arrival_ps(id));
        }
        let period = via_graph.critical_delay_ps() + 25.0;
        let s1 = SlackReport::compute(&n, &via_graph, &cfg, period).unwrap();
        let s2 = SlackReport::compute_compiled(&compiled, &via_compiled, &cfg, period);
        for id in n.ids() {
            assert_eq!(s1.slack_at(id), s2.slack_at(id));
            assert_eq!(s1.required_ps(id), s2.required_ps(id));
        }
    }

    #[test]
    fn ff_setup_is_included() {
        let lib = lib();
        let mut cfg = TimingConfig::paper_default();
        let n = seq_path(false);
        let d0 = analyze(&n, &lib, &cfg, None).unwrap().critical_delay_ps();
        cfg.ff_setup_ps += 50.0;
        let d1 = analyze(&n, &lib, &cfg, None).unwrap().critical_delay_ps();
        assert!((d1 - d0 - 50.0).abs() < 1e-9);
    }
}
