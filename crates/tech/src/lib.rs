//! 70 nm technology model and transistor-level standard-cell library.
//!
//! The paper evaluates FLH on ISCAS89 circuits mapped to the LEDA 0.25 µm
//! library and scaled to the 70 nm Berkeley Predictive Technology Model.
//! This crate provides the equivalent physical substrate:
//!
//! * [`Technology`] — compact 70 nm MOSFET model: alpha-power-law on-current,
//!   subthreshold leakage with DIBL, gate/diffusion capacitance densities,
//!   and the supply/threshold voltages. Consumed numerically by
//!   `flh-analog`'s transient simulator and analytically by the cell
//!   library.
//! * [`CellLibrary`] / [`CellPhysical`] — per-`CellKind` transistor-level
//!   sizing, from which all paper metrics derive: **area** is the total
//!   transistor active area Σ W·L exactly as in the paper ("Since the layout
//!   rules for the 70nm node are not available, the measure used for area is
//!   the total transistor active area"), **delay** is a logical-effort style
//!   `intrinsic + R_drive · C_load` arc, **power** is capacitance-based
//!   dynamic energy plus subthreshold leakage.
//! * [`FlhPhysical`] — the incremental cost of supply-gating one first-level
//!   gate (header + footer gating transistors sized for delay, plus the
//!   minimum-sized keeper latch of Fig. 3), and the stack-effect leakage
//!   factor the paper credits for the s13207 power win.
//!
//! # Units
//!
//! Consistent engineering units are used across the workspace:
//! micrometres (µm) for geometry, femtofarads (fF) for capacitance,
//! kiloohms (kΩ) for resistance, picoseconds (ps = kΩ·fF) for delay,
//! volts (V), nanoamperes (nA) for leakage and microwatts (µW) for power.

pub mod cells;
pub mod device;
pub mod flh;

pub use cells::{CellLibrary, CellPhysical};
pub use device::{Mosfet, Polarity, Technology};
pub use flh::{FlhConfig, FlhPhysical};
