//! Transistor-level standard-cell library.
//!
//! Every concrete [`CellKind`] maps to a [`CellPhysical`]: an explicit
//! transistor sizing (multiples of the technology's minimum width) from
//! which area, delay-arc parameters, capacitances and leakage derive. The
//! sizing follows the usual static-CMOS rules — series stacks widened to
//! preserve drive, PMOS at twice NMOS width, AND/OR realized as
//! NAND/NOR + inverter, the DFF as a ~24-transistor master–slave and the
//! scan DFF as the same plus an input scan mux — and the DFT holding cells
//! (Fig. 6 of the paper) are drive-sized because they sit in the
//! flip-flop → logic stimulus path.

use std::collections::HashMap;

use flh_netlist::{CellKind, Netlist};

use crate::device::Technology;

/// Per-kind transistor recipe (widths in multiples of `w_min`).
struct Recipe {
    n_widths: &'static [f64],
    p_widths: &'static [f64],
    /// Series stack depth of the pull-down / pull-up network.
    stack_n: f64,
    stack_p: f64,
    /// Width multiple of the devices that actually drive the output node.
    drive_w_n: f64,
    drive_w_p: f64,
    /// Total gate width (in `w_min` multiples) seen by one input pin.
    input_w_per_pin: f64,
    /// Fixed extra delay of internal stages (ps) — nonzero for multi-stage
    /// cells (buffers, AND/OR with output inverter, XOR, MUX, flip-flops,
    /// holding elements).
    extra_ps: f64,
}

fn recipe(kind: CellKind) -> Option<Recipe> {
    use CellKind::*;
    // Shorthand for static width tables.
    macro_rules! r {
        ($n:expr, $p:expr, $sn:expr, $sp:expr, $dn:expr, $dp:expr, $pin:expr, $ex:expr) => {
            Some(Recipe {
                n_widths: $n,
                p_widths: $p,
                stack_n: $sn,
                stack_p: $sp,
                drive_w_n: $dn,
                drive_w_p: $dp,
                input_w_per_pin: $pin,
                extra_ps: $ex,
            })
        };
    }
    match kind {
        // Boundary pseudo-cells: a primary input is driven by the pad /
        // input-buffer tree, which is sized for its (often large) fanout —
        // so its effective drive is strong and primary-input arrival is
        // negligible next to the flip-flops' clk→q. Costs no core area.
        Input => r!(&[], &[], 1.0, 1.0, 40.0, 80.0, 0.0, 0.0),
        Output => r!(&[], &[], 1.0, 1.0, 1.0, 2.0, 2.0, 0.0),
        Const0 | Const1 => r!(&[], &[], 1.0, 1.0, 1.0, 2.0, 0.0, 0.0),

        Inv => r!(&[1.0], &[2.0], 1.0, 1.0, 1.0, 2.0, 3.0, 0.0),
        Buf => r!(&[1.0, 1.0], &[2.0, 2.0], 1.0, 1.0, 1.0, 2.0, 3.0, 8.0),

        Nand2 => r!(&[2.0, 2.0], &[2.0, 2.0], 2.0, 1.0, 2.0, 2.0, 4.0, 0.0),
        Nand3 => r!(
            &[3.0, 3.0, 3.0],
            &[2.0, 2.0, 2.0],
            3.0,
            1.0,
            3.0,
            2.0,
            5.0,
            0.0
        ),
        Nand4 => r!(
            &[4.0, 4.0, 4.0, 4.0],
            &[2.0, 2.0, 2.0, 2.0],
            4.0,
            1.0,
            4.0,
            2.0,
            6.0,
            0.0
        ),
        Nor2 => r!(&[1.0, 1.0], &[4.0, 4.0], 1.0, 2.0, 1.0, 4.0, 5.0, 0.0),
        Nor3 => r!(
            &[1.0, 1.0, 1.0],
            &[6.0, 6.0, 6.0],
            1.0,
            3.0,
            1.0,
            6.0,
            7.0,
            0.0
        ),
        Nor4 => r!(
            &[1.0, 1.0, 1.0, 1.0],
            &[8.0, 8.0, 8.0, 8.0],
            1.0,
            4.0,
            1.0,
            8.0,
            9.0,
            0.0
        ),

        And2 => r!(
            &[2.0, 2.0, 1.0],
            &[2.0, 2.0, 2.0],
            1.0,
            1.0,
            1.0,
            2.0,
            4.0,
            8.0
        ),
        And3 => r!(
            &[3.0, 3.0, 3.0, 1.0],
            &[2.0, 2.0, 2.0, 2.0],
            1.0,
            1.0,
            1.0,
            2.0,
            5.0,
            10.0
        ),
        And4 => r!(
            &[4.0, 4.0, 4.0, 4.0, 1.0],
            &[2.0, 2.0, 2.0, 2.0, 2.0],
            1.0,
            1.0,
            1.0,
            2.0,
            6.0,
            12.0
        ),
        Or2 => r!(
            &[1.0, 1.0, 1.0],
            &[4.0, 4.0, 2.0],
            1.0,
            1.0,
            1.0,
            2.0,
            5.0,
            9.0
        ),
        Or3 => r!(
            &[1.0, 1.0, 1.0, 1.0],
            &[6.0, 6.0, 6.0, 2.0],
            1.0,
            1.0,
            1.0,
            2.0,
            7.0,
            11.0
        ),
        Or4 => r!(
            &[1.0, 1.0, 1.0, 1.0, 1.0],
            &[8.0, 8.0, 8.0, 8.0, 2.0],
            1.0,
            1.0,
            1.0,
            2.0,
            9.0,
            13.0
        ),

        Xor2 | Xnor2 => r!(
            &[1.0, 1.0, 1.0, 1.0, 1.0],
            &[2.0, 2.0, 2.0, 2.0, 2.0],
            2.0,
            2.0,
            1.0,
            2.0,
            6.0,
            10.0
        ),

        Aoi21 => r!(
            &[2.0, 2.0, 1.0],
            &[4.0, 4.0, 4.0],
            2.0,
            2.0,
            2.0,
            4.0,
            6.0,
            0.0
        ),
        Aoi22 => r!(
            &[2.0, 2.0, 2.0, 2.0],
            &[4.0, 4.0, 4.0, 4.0],
            2.0,
            2.0,
            2.0,
            4.0,
            6.0,
            0.0
        ),
        Oai21 => r!(
            &[2.0, 2.0, 2.0],
            &[4.0, 4.0, 2.0],
            2.0,
            2.0,
            2.0,
            4.0,
            6.0,
            0.0
        ),
        Oai22 => r!(
            &[2.0, 2.0, 2.0, 2.0],
            &[4.0, 4.0, 4.0, 4.0],
            2.0,
            2.0,
            2.0,
            4.0,
            6.0,
            0.0
        ),
        // Transmission-gate 2:1 mux with select inverter and output buffer.
        Mux2 => r!(
            &[1.0, 1.0, 1.0, 1.0],
            &[2.0, 2.0, 2.0, 2.0],
            2.0,
            2.0,
            1.0,
            2.0,
            4.0,
            12.0
        ),

        // Master–slave DFF (~24T) and muxed-D scan DFF (~30T); both carry a
        // 2×-drive output buffer (drive widths 2/4).
        Dff => r!(&[1.0; 12], &[2.0; 12], 1.0, 1.0, 2.0, 4.0, 4.0, 30.0),
        ScanDff => r!(&[1.0; 15], &[2.0; 15], 1.0, 1.0, 2.0, 4.0, 4.0, 30.0),

        // Enhanced-scan hold latch (Fig. 6a): input TG, cross-coupled
        // inverter pair with feedback TG, local HOLD buffering, drive-sized
        // output inverter (it sits in the stimulus path). Its transparent
        // D→Q path is TG + two restoring stages: ~2 loaded gate delays.
        HoldLatch => r!(
            &[2.0, 2.0, 1.0, 1.0, 2.0, 3.0, 2.0, 1.0],
            &[4.0, 4.0, 2.0, 2.0, 4.0, 6.0, 4.0, 2.0],
            1.0,
            1.0,
            2.0,
            4.0,
            6.0,
            55.0
        ),
        // MUX-based holding element (Fig. 6b): TG mux with self-feedback,
        // local select buffering, drive-sized output stage. Slower than the
        // latch through its series TG + restoring stages (the paper finds
        // the MUX-based method has the largest delay increase).
        HoldMux => r!(
            &[2.0, 2.0, 1.5, 2.0, 2.0, 2.0, 1.0],
            &[4.0, 4.0, 3.0, 4.0, 4.0, 4.0, 2.0],
            2.0,
            2.0,
            2.0,
            4.0,
            6.0,
            70.0
        ),

        AndN(_) | NandN(_) | OrN(_) | NorN(_) | XorN(_) => None,
    }
}

/// Physical characterization of one library cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellPhysical {
    /// The characterized kind.
    pub kind: CellKind,
    /// Transistor count.
    pub transistor_count: usize,
    /// Total active area Σ W·L (µm²) — the paper's area measure.
    pub active_area_um2: f64,
    /// Input capacitance per pin (fF).
    pub input_cap_ff: f64,
    /// Output (diffusion) self-capacitance (fF).
    pub output_cap_ff: f64,
    /// Effective drive resistance (kΩ); `delay ≈ intrinsic + R · C_load`.
    pub drive_res_kohm: f64,
    /// Load-independent delay component (ps).
    pub intrinsic_ps: f64,
    /// Static leakage current (nA).
    pub leakage_na: f64,
    /// Capacitance switched by the clock every cycle (fF); nonzero only for
    /// sequential cells. The holding latch and MUX of the DFT styles are
    /// *not* clocked — their power cost is data-activity driven.
    pub clock_cap_ff: f64,
    /// Internal capacitance switched per *output* toggle (fF): the hidden
    /// nodes of multi-stage cells. Dominant for the holding latch/MUX —
    /// their keeper and buffer nodes all swing with the data, which is the
    /// root of the enhanced-scan power overhead in Table III.
    pub internal_sw_cap_ff: f64,
}

/// Characterized library over a [`Technology`].
///
/// # Example
///
/// ```
/// use flh_netlist::CellKind;
/// use flh_tech::{CellLibrary, Technology};
///
/// let lib = CellLibrary::new(Technology::bptm70());
/// let inv = lib.physical(CellKind::Inv);
/// assert_eq!(inv.transistor_count, 2);
/// assert!(inv.active_area_um2 > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct CellLibrary {
    tech: Technology,
    cells: HashMap<CellKind, CellPhysical>,
}

/// All concrete (mappable) kinds the library characterizes.
const CONCRETE_KINDS: [CellKind; 29] = [
    CellKind::Input,
    CellKind::Output,
    CellKind::Const0,
    CellKind::Const1,
    CellKind::Buf,
    CellKind::Inv,
    CellKind::Dff,
    CellKind::ScanDff,
    CellKind::HoldLatch,
    CellKind::HoldMux,
    CellKind::And2,
    CellKind::And3,
    CellKind::And4,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Nand4,
    CellKind::Or2,
    CellKind::Or3,
    CellKind::Or4,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::Nor4,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Aoi21,
    CellKind::Aoi22,
    CellKind::Oai21,
    CellKind::Oai22,
    CellKind::Mux2,
];

impl CellLibrary {
    /// Characterizes the full library for `tech`.
    pub fn new(tech: Technology) -> Self {
        let mut cells = HashMap::new();
        for kind in CONCRETE_KINDS {
            cells
                .entry(kind)
                .or_insert_with(|| characterize(&tech, kind));
        }
        CellLibrary { tech, cells }
    }

    /// The underlying technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Physical data for a concrete kind.
    ///
    /// # Panics
    ///
    /// Panics for generic wide gates — run `flh_netlist::mapper` first.
    pub fn physical(&self, kind: CellKind) -> &CellPhysical {
        self.try_physical(kind)
            .unwrap_or_else(|| panic!("{kind} is not a library cell; map the netlist first"))
    }

    /// Physical data for a concrete kind, or `None` for generic wide gates.
    pub fn try_physical(&self, kind: CellKind) -> Option<&CellPhysical> {
        self.cells.get(&kind)
    }

    /// Total transistor active area of a netlist (µm²) — the paper's area
    /// measure summed over every cell.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains unmapped generic gates.
    pub fn netlist_area_um2(&self, netlist: &Netlist) -> f64 {
        netlist
            .iter()
            .map(|(_, c)| self.physical(c.kind()).active_area_um2)
            .sum()
    }

    /// Total transistor count of a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains unmapped generic gates.
    pub fn netlist_transistors(&self, netlist: &Netlist) -> usize {
        netlist
            .iter()
            .map(|(_, c)| self.physical(c.kind()).transistor_count)
            .sum()
    }

    /// Total static leakage of a netlist (nA).
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains unmapped generic gates.
    pub fn netlist_leakage_na(&self, netlist: &Netlist) -> f64 {
        netlist
            .iter()
            .map(|(_, c)| self.physical(c.kind()).leakage_na)
            .sum()
    }
}

fn characterize(tech: &Technology, kind: CellKind) -> CellPhysical {
    let r = recipe(kind).expect("characterize called on concrete kinds only");
    let wmin = tech.w_min_um;
    let total_mult: f64 = r.n_widths.iter().sum::<f64>() + r.p_widths.iter().sum::<f64>();
    let active_area_um2 = tech.active_area_um2(total_mult * wmin);
    let drive_res_kohm = 0.5
        * (tech.r_n_kohm_um * r.stack_n / (r.drive_w_n * wmin)
            + tech.r_p_kohm_um * r.stack_p / (r.drive_w_p * wmin));
    let output_cap_ff = tech.diff_cap_ff((r.drive_w_n + r.drive_w_p) * wmin);
    let input_cap_ff = tech.gate_cap_ff(r.input_w_per_pin * wmin);
    // Half the devices are off on average; series stacks leak less.
    let stack_suppress = 0.7f64.powf(0.5 * (r.stack_n + r.stack_p) - 1.0);
    let leakage_na = tech.i0_leak_na_per_um * wmin * total_mult * 0.5 * stack_suppress;
    // Clocked internal devices plus local clock wiring.
    let clock_cap_ff = match kind {
        CellKind::Dff => tech.gate_cap_ff(8.0 * wmin),
        CellKind::ScanDff => tech.gate_cap_ff(10.0 * wmin),
        _ => 0.0,
    };
    // Hidden per-toggle internal node capacitance of multi-stage cells.
    let internal_sw_cap_ff = match kind {
        CellKind::HoldLatch => 6.0,
        CellKind::HoldMux => 5.0,
        CellKind::Dff => 2.0,
        CellKind::ScanDff => 2.5,
        CellKind::Xor2 | CellKind::Xnor2 | CellKind::Mux2 => 0.8,
        CellKind::Buf
        | CellKind::And2
        | CellKind::And3
        | CellKind::And4
        | CellKind::Or2
        | CellKind::Or3
        | CellKind::Or4 => 0.5,
        _ => 0.0,
    };
    CellPhysical {
        kind,
        transistor_count: r.n_widths.len() + r.p_widths.len(),
        active_area_um2,
        input_cap_ff,
        output_cap_ff,
        drive_res_kohm,
        intrinsic_ps: r.extra_ps + drive_res_kohm * output_cap_ff,
        leakage_na,
        clock_cap_ff,
        internal_sw_cap_ff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::new(Technology::bptm70())
    }

    #[test]
    fn inverter_is_two_transistors() {
        let lib = lib();
        let inv = lib.physical(CellKind::Inv);
        assert_eq!(inv.transistor_count, 2);
        // Area = (1 + 2) * 0.15 µm * 0.07 µm.
        let expect = 3.0 * 0.15 * 0.07;
        assert!((inv.active_area_um2 - expect).abs() < 1e-12);
    }

    #[test]
    fn flip_flop_sizes() {
        let lib = lib();
        assert_eq!(lib.physical(CellKind::Dff).transistor_count, 24);
        assert_eq!(lib.physical(CellKind::ScanDff).transistor_count, 30);
        assert!(
            lib.physical(CellKind::ScanDff).active_area_um2
                > lib.physical(CellKind::Dff).active_area_um2
        );
    }

    #[test]
    fn holding_cells_relative_areas() {
        // The enhanced-scan latch must cost more than the MUX alternative,
        // and both must dwarf a minimum inverter.
        let lib = lib();
        let latch = lib.physical(CellKind::HoldLatch).active_area_um2;
        let mux = lib.physical(CellKind::HoldMux).active_area_um2;
        let inv = lib.physical(CellKind::Inv).active_area_um2;
        assert!(latch > mux, "latch {latch} <= mux {mux}");
        assert!(mux > 4.0 * inv);
        // The paper's Table I averages imply FLH_extra ≈ 0.67 × latch at
        // 1.8 gates/FF; the per-gate FLH budget check lives in flh.rs.
        assert!(
            latch / mux > 1.05 && latch / mux < 1.35,
            "ratio {}",
            latch / mux
        );
    }

    #[test]
    fn balanced_gates_have_similar_drive() {
        let lib = lib();
        let nand = lib.physical(CellKind::Nand2);
        let nor = lib.physical(CellKind::Nor2);
        let ratio = nand.drive_res_kohm / nor.drive_res_kohm;
        assert!((0.6..1.6).contains(&ratio), "NAND/NOR drive ratio {ratio}");
    }

    #[test]
    fn wider_gates_load_inputs_more() {
        let lib = lib();
        assert!(
            lib.physical(CellKind::Nand4).input_cap_ff > lib.physical(CellKind::Nand2).input_cap_ff
        );
        assert!(
            lib.physical(CellKind::Nor4).input_cap_ff > lib.physical(CellKind::Nor2).input_cap_ff
        );
    }

    #[test]
    fn multi_stage_cells_have_extra_intrinsic() {
        let lib = lib();
        assert!(
            lib.physical(CellKind::And2).intrinsic_ps > lib.physical(CellKind::Nand2).intrinsic_ps
        );
        assert!(lib.physical(CellKind::Dff).intrinsic_ps >= 30.0);
    }

    #[test]
    fn gate_delay_scale_is_plausible() {
        // NAND2 driving 3 NAND2 pins: should be a few tens of ps at 70 nm.
        let lib = lib();
        let g = lib.physical(CellKind::Nand2);
        let load = 3.0 * g.input_cap_ff;
        let d = g.intrinsic_ps + g.drive_res_kohm * load;
        assert!((10.0..60.0).contains(&d), "NAND2 FO3 delay {d} ps");
    }

    #[test]
    fn leakage_scale_is_plausible() {
        let lib = lib();
        let inv = lib.physical(CellKind::Inv).leakage_na;
        // 0.45 µm total width, half off: ~ 6-7 nA.
        assert!((2.0..15.0).contains(&inv), "inverter leakage {inv} nA");
        // Stacked NAND leaks less per width than the inverter.
        let nand = lib.physical(CellKind::Nand4);
        let per_width_nand = nand.leakage_na / 24.0;
        let per_width_inv = inv / 3.0;
        assert!(per_width_nand < per_width_inv);
    }

    #[test]
    fn generic_kinds_are_rejected() {
        let lib = lib();
        assert!(lib.try_physical(CellKind::NandN(6)).is_none());
    }

    #[test]
    #[should_panic(expected = "not a library cell")]
    fn physical_panics_on_generic() {
        lib().physical(CellKind::AndN(5));
    }

    #[test]
    fn netlist_accounting() {
        let mut n = Netlist::new("acc");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::Nand2, vec![a, b]);
        let f = n.add_cell("f", CellKind::Dff, vec![g]);
        n.add_output("y", f);
        let lib = lib();
        assert_eq!(lib.netlist_transistors(&n), 4 + 24);
        let area = lib.netlist_area_um2(&n);
        let expect = (8.0 + 36.0) * 0.15 * 0.07;
        assert!((area - expect).abs() < 1e-9, "area {area} vs {expect}");
        assert!(lib.netlist_leakage_na(&n) > 0.0);
    }

    #[test]
    fn boundary_cells_are_free() {
        let lib = lib();
        assert_eq!(lib.physical(CellKind::Input).active_area_um2, 0.0);
        assert_eq!(lib.physical(CellKind::Output).active_area_um2, 0.0);
        assert_eq!(lib.physical(CellKind::Input).transistor_count, 0);
    }
}
