//! Compact 70 nm MOSFET model.
//!
//! An alpha-power-law strong-inversion model combined with an exponential
//! subthreshold model with DIBL, calibrated to the ballpark of the 70 nm
//! Berkeley Predictive Technology Model the paper simulates with: 1.0 V
//! supply, ≈ 0.2 V thresholds, on-current around 1 mA/µm and off-current
//! tens of nA/µm. The model is deliberately simple — continuous, explicit
//! and fast — because the transient simulator in `flh-analog` evaluates it
//! millions of times, and the behaviours under study (floating-node decay
//! rate, keeper contention, short-circuit current) depend only on the
//! on/off current ratio and capacitance scale, not on deep-submicron I-V
//! curvature details.

/// MOSFET polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device (pulls down).
    Nmos,
    /// P-channel device (pulls up).
    Pmos,
}

/// Technology parameters. [`Technology::bptm70`] (also [`Default`]) is the
/// 70 nm operating point used throughout the reproduction.
#[derive(Clone, Debug, PartialEq)]
pub struct Technology {
    /// Supply voltage (V).
    pub vdd: f64,
    /// NMOS threshold voltage (V).
    pub vth_n: f64,
    /// PMOS threshold voltage magnitude (V).
    pub vth_p: f64,
    /// Drawn channel length (µm).
    pub l_min_um: f64,
    /// Minimum transistor width (µm); all cell sizes are multiples of it.
    pub w_min_um: f64,
    /// Alpha-power-law velocity-saturation index.
    pub alpha: f64,
    /// NMOS saturation transconductance: `Id_sat = k · W · Vov^alpha`
    /// (mA/µm at 1 V overdrive).
    pub k_n_ma_per_um: f64,
    /// PMOS saturation transconductance (mA/µm).
    pub k_p_ma_per_um: f64,
    /// Subthreshold leakage at `Vgs = 0`, `Vds = Vdd` (nA/µm).
    pub i0_leak_na_per_um: f64,
    /// Subthreshold slope ideality factor `n` (slope = n·vT·ln10 per decade).
    pub subthreshold_n: f64,
    /// DIBL coefficient: threshold reduction per volt of `Vds`.
    pub dibl: f64,
    /// Thermal voltage kT/q (V).
    pub v_thermal: f64,
    /// Channel-length modulation coefficient (1/V).
    pub lambda: f64,
    /// Gate capacitance density (fF per µm of width).
    pub c_gate_ff_per_um: f64,
    /// Source/drain diffusion capacitance density (fF per µm of width).
    pub c_diff_ff_per_um: f64,
    /// Gate–drain overlap capacitance density (fF per µm of width); this is
    /// the crosstalk coupling path of Section II of the paper.
    pub c_gd_overlap_ff_per_um: f64,
    /// NMOS effective switching resistance (kΩ·µm, includes the RC fitting
    /// factor so that `delay ≈ R_eff/W · C_load`).
    pub r_n_kohm_um: f64,
    /// PMOS effective switching resistance (kΩ·µm).
    pub r_p_kohm_um: f64,
    /// Normal-mode (functional) clock frequency (GHz).
    pub clock_freq_ghz: f64,
    /// Scan-shift frequency (GHz); the paper assumes a 1 GHz scan clock for
    /// the 1 µs / 1000-bit chain argument.
    pub scan_freq_ghz: f64,
}

impl Technology {
    /// The 70 nm BPTM-like operating point used by the paper's experiments.
    pub fn bptm70() -> Self {
        Technology {
            vdd: 1.0,
            vth_n: 0.20,
            vth_p: 0.22,
            l_min_um: 0.07,
            w_min_um: 0.15,
            alpha: 1.3,
            k_n_ma_per_um: 1.3,
            k_p_ma_per_um: 0.65,
            i0_leak_na_per_um: 30.0,
            subthreshold_n: 1.5,
            dibl: 0.08,
            v_thermal: 0.026,
            lambda: 0.10,
            c_gate_ff_per_um: 1.1,
            c_diff_ff_per_um: 0.8,
            c_gd_overlap_ff_per_um: 0.25,
            r_n_kohm_um: 1.6,
            r_p_kohm_um: 3.2,
            clock_freq_ghz: 0.5,
            scan_freq_ghz: 1.0,
        }
    }

    /// Drain current of an NMOS of width `w_um`, with `vgs`/`vds` in source
    /// reference, in amperes. Requires `vds >= 0` (callers handle
    /// source/drain symmetry, see [`Mosfet::current`]).
    pub fn nmos_ids(&self, w_um: f64, vgs: f64, vds: f64) -> f64 {
        self.ids(
            w_um,
            vgs,
            vds,
            self.vth_n,
            self.k_n_ma_per_um,
            self.i0_leak_na_per_um,
        )
    }

    /// Drain (source) current magnitude of a PMOS of width `w_um`, with
    /// `vsg`/`vsd` in source reference, in amperes. Requires `vsd >= 0`.
    pub fn pmos_ids(&self, w_um: f64, vsg: f64, vsd: f64) -> f64 {
        // PMOS leakage per µm is taken equal to NMOS at this abstraction.
        self.ids(
            w_um,
            vsg,
            vsd,
            self.vth_p,
            self.k_p_ma_per_um,
            self.i0_leak_na_per_um,
        )
    }

    fn ids(&self, w_um: f64, vgs: f64, vds: f64, vth: f64, k_ma: f64, i0_na: f64) -> f64 {
        debug_assert!(vds >= -1e-12, "ids called with negative vds ({vds})");
        let vds = vds.max(0.0);
        let vth_eff = vth - self.dibl * vds;
        let nvt = self.subthreshold_n * self.v_thermal;

        // Subthreshold component, with the gate drive clamped at threshold
        // so the exponential hands over to the alpha-power term smoothly.
        // `i0` is defined at (Vgs = 0, Vds = Vdd); DIBL enters as an
        // effective gate-drive shift relative to that reference point.
        let vg_sub = vgs.min(vth_eff);
        let sub = i0_na
            * 1e-9
            * w_um
            * ((vg_sub + self.dibl * (vds - self.vdd)) / nvt).exp()
            * (1.0 - (-vds / self.v_thermal).exp());

        // Strong-inversion alpha-power component.
        let strong = if vgs > vth_eff {
            let vov = vgs - vth_eff;
            let idsat = k_ma * 1e-3 * w_um * vov.powf(self.alpha);
            let vdsat = vov; // alpha-power simplification
            if vds >= vdsat {
                idsat * (1.0 + self.lambda * (vds - vdsat))
            } else {
                idsat * (2.0 - vds / vdsat) * (vds / vdsat)
            }
        } else {
            0.0
        };
        sub + strong
    }

    /// Gate capacitance of a device of width `w_um` (fF).
    pub fn gate_cap_ff(&self, w_um: f64) -> f64 {
        self.c_gate_ff_per_um * w_um
    }

    /// Source/drain diffusion capacitance of a device of width `w_um` (fF).
    pub fn diff_cap_ff(&self, w_um: f64) -> f64 {
        self.c_diff_ff_per_um * w_um
    }

    /// Gate–drain overlap (Miller/crosstalk coupling) capacitance (fF).
    pub fn gd_overlap_ff(&self, w_um: f64) -> f64 {
        self.c_gd_overlap_ff_per_um * w_um
    }

    /// Active area of one transistor of width `w_um` (µm²) — the paper's
    /// area unit is the sum of these over the whole circuit.
    pub fn active_area_um2(&self, w_um: f64) -> f64 {
        w_um * self.l_min_um
    }

    /// Normal-mode clock period (ps).
    pub fn clock_period_ps(&self) -> f64 {
        1e3 / self.clock_freq_ghz
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::bptm70()
    }
}

/// A sized transistor instance, used by the analog simulator's circuit
/// builder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mosfet {
    /// Device polarity.
    pub polarity: Polarity,
    /// Width (µm).
    pub w_um: f64,
    /// Per-device threshold-voltage shift (V) modelling local process
    /// variation (random dopant fluctuation); positive = slower/less leaky.
    pub vth_shift_v: f64,
}

impl Mosfet {
    /// Minimum-width NMOS.
    pub fn nmos(tech: &Technology, w_mult: f64) -> Self {
        Mosfet {
            polarity: Polarity::Nmos,
            w_um: tech.w_min_um * w_mult,
            vth_shift_v: 0.0,
        }
    }

    /// PMOS at `w_mult` times minimum width (note: multipliers are applied
    /// to the same `w_min`; P/N drive ratio comes from the model's k values,
    /// so cell recipes use ~2× wider PMOS explicitly).
    pub fn pmos(tech: &Technology, w_mult: f64) -> Self {
        Mosfet {
            polarity: Polarity::Pmos,
            w_um: tech.w_min_um * w_mult,
            vth_shift_v: 0.0,
        }
    }

    /// Returns the device with a local threshold shift applied.
    pub fn with_vth_shift(mut self, volts: f64) -> Self {
        self.vth_shift_v = volts;
        self
    }

    /// Signed current flowing **into the drain terminal and out of the
    /// source terminal** given absolute node voltages, in amperes.
    ///
    /// Handles source/drain symmetry: for an NMOS with `vd < vs` the roles
    /// swap and the current reverses sign, so a transmission-gate device
    /// conducts correctly in both directions.
    pub fn current(&self, tech: &Technology, vg: f64, vs: f64, vd: f64) -> f64 {
        // A +dVth shift is equivalent to reducing the gate drive by dVth.
        let dv = self.vth_shift_v;
        match self.polarity {
            Polarity::Nmos => {
                if vd >= vs {
                    tech.nmos_ids(self.w_um, vg - vs - dv, vd - vs)
                } else {
                    -tech.nmos_ids(self.w_um, vg - vd - dv, vs - vd)
                }
            }
            Polarity::Pmos => {
                if vd <= vs {
                    -tech.pmos_ids(self.w_um, vs - vg - dv, vs - vd)
                } else {
                    tech.pmos_ids(self.w_um, vd - vg - dv, vd - vs)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Technology {
        Technology::bptm70()
    }

    #[test]
    fn on_current_is_ma_class() {
        let tech = t();
        // 1 µm NMOS, full drive: should be around 1 mA.
        let i = tech.nmos_ids(1.0, tech.vdd, tech.vdd);
        assert!(i > 5e-4 && i < 3e-3, "on current {i} A");
        // PMOS roughly half.
        let ip = tech.pmos_ids(1.0, tech.vdd, tech.vdd);
        assert!(ip > 2e-4 && ip < 1.5e-3, "pmos on current {ip} A");
        assert!(ip < i);
    }

    #[test]
    fn off_current_is_na_class() {
        let tech = t();
        let i = tech.nmos_ids(1.0, 0.0, tech.vdd);
        let nominal = tech.i0_leak_na_per_um * 1e-9;
        assert!((i - nominal).abs() / nominal < 0.05, "off current {i} A");
    }

    #[test]
    fn on_off_ratio_exceeds_1e4() {
        let tech = t();
        let on = tech.nmos_ids(1.0, tech.vdd, tech.vdd);
        let off = tech.nmos_ids(1.0, 0.0, tech.vdd);
        assert!(on / off > 1e4, "Ion/Ioff = {}", on / off);
    }

    #[test]
    fn subthreshold_slope_about_90mv_per_decade() {
        let tech = t();
        // Stay well below the (DIBL-reduced) threshold of 0.12 V.
        let i1 = tech.nmos_ids(1.0, 0.00, tech.vdd);
        let i2 = tech.nmos_ids(1.0, 0.09, tech.vdd);
        let decades = (i2 / i1).log10();
        let slope = 0.09 / decades * 1e3; // mV per decade
        assert!((80.0..110.0).contains(&slope), "slope {slope} mV/dec");
    }

    #[test]
    fn current_is_monotonic_in_vgs_and_vds() {
        let tech = t();
        let mut prev = 0.0;
        for step in 0..=20 {
            let vgs = step as f64 * 0.05;
            let i = tech.nmos_ids(1.0, vgs, 1.0);
            assert!(i >= prev, "non-monotonic in vgs at {vgs}");
            prev = i;
        }
        let mut prev = 0.0;
        for step in 0..=20 {
            let vds = step as f64 * 0.05;
            let i = tech.nmos_ids(1.0, 1.0, vds);
            assert!(i >= prev - 1e-15, "non-monotonic in vds at {vds}");
            prev = i;
        }
    }

    #[test]
    fn current_is_continuous_at_threshold() {
        let tech = t();
        let below = tech.nmos_ids(1.0, tech.vth_n - 1e-6, 0.5);
        let above = tech.nmos_ids(1.0, tech.vth_n + 1e-6, 0.5);
        assert!(
            (above - below).abs() / below < 0.01,
            "discontinuity at threshold: {below} -> {above}"
        );
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let tech = t();
        assert_eq!(tech.nmos_ids(1.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn mosfet_source_drain_symmetry() {
        let tech = t();
        let m = Mosfet::nmos(&tech, 2.0);
        let forward = m.current(&tech, 1.0, 0.0, 0.6);
        let reverse = m.current(&tech, 1.0, 0.6, 0.0);
        assert!(forward > 0.0);
        assert!(
            (forward + reverse).abs() < 1e-15,
            "asymmetric TG conduction"
        );
    }

    #[test]
    fn pmos_pulls_up() {
        let tech = t();
        let m = Mosfet::pmos(&tech, 2.0);
        // Gate low, source at VDD, drain at 0.4 V: current flows from
        // source (VDD) into the drain node, i.e. *out of* the drain
        // terminal: negative by our sign convention.
        let i = m.current(&tech, 0.0, 1.0, 0.4);
        assert!(i < 0.0, "pmos should source current into the drain node");
    }

    #[test]
    fn fo4_inverter_delay_is_about_25ps() {
        // Sanity-check the effective-resistance calibration: an inverter of
        // (n=1x, p=2x) driving four copies of itself.
        let tech = t();
        let wn = tech.w_min_um;
        let wp = 2.0 * tech.w_min_um;
        let r = 0.5 * (tech.r_n_kohm_um / wn + tech.r_p_kohm_um / wp);
        let c_in = tech.gate_cap_ff(wn + wp);
        let c_out = tech.diff_cap_ff(wn + wp);
        let d = r * (4.0 * c_in + c_out);
        assert!((15.0..40.0).contains(&d), "FO4 = {d} ps");
    }

    #[test]
    fn clock_period() {
        assert!((t().clock_period_ps() - 2000.0).abs() < 1e-9);
    }
}
