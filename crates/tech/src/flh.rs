//! Physical cost model of the First Level Hold gating hardware.
//!
//! FLH adds, to each first-level gate (Fig. 3 of the paper):
//!
//! * a PMOS *header* between VDD and the pull-up network and an NMOS
//!   *footer* between the pull-down network and GND, driven by the existing
//!   test-control signal and its complement — no new control routing;
//! * a minimum-sized keeper: two cross-coupled inverters closed through a
//!   transmission gate that conducts only in the hold (sleep) mode, so the
//!   gated output never floats.
//!
//! In the normal mode the gating transistors are on (adding series
//! resistance, i.e. a small delay penalty, plus a stack-effect leakage
//! *reduction*), the transmission gate is off, and the only switching
//! overhead is INV1 of the keeper plus the transmission-gate diffusion on
//! the gate output — which is why the paper measures near-zero FLH power
//! overhead in the normal mode.

use crate::device::Technology;

/// Sizing knobs for the FLH gating hardware, in multiples of minimum width.
#[derive(Clone, Debug, PartialEq)]
pub struct FlhConfig {
    /// NMOS footer width multiple (shared by the whole gated gate).
    pub gating_n_mult: f64,
    /// PMOS header width multiple.
    pub gating_p_mult: f64,
    /// Keeper inverter NMOS width multiple (minimum-sized per the paper).
    pub keeper_n_mult: f64,
    /// Keeper inverter PMOS width multiple.
    pub keeper_p_mult: f64,
    /// Keeper transmission-gate NMOS width multiple.
    pub tg_n_mult: f64,
    /// Keeper transmission-gate PMOS width multiple.
    pub tg_p_mult: f64,
    /// Normal-mode leakage multiplier applied to gated gates (stack effect
    /// of the always-on series sleep devices, paper ref. \[9\]).
    pub stack_leak_factor: f64,
    /// Sleep-mode leakage multiplier applied to gated gates (both sleep
    /// devices off: strong stack suppression; used by the test-mode power
    /// experiment).
    pub sleep_leak_factor: f64,
}

impl FlhConfig {
    /// Default sizing used throughout the reproduction: gating devices at
    /// 3×/6× minimum (delay-optimized under the paper's area constraint),
    /// narrow long-channel keeper inverters (a weak keeper only has to
    /// overpower leakage — its restoring current is still three orders of
    /// magnitude above the floating-node leakage) and a sub-minimum
    /// transmission gate.
    pub fn paper_default() -> Self {
        FlhConfig {
            gating_n_mult: 3.0,
            gating_p_mult: 6.0,
            keeper_n_mult: 0.6,
            keeper_p_mult: 1.2,
            tg_n_mult: 0.4,
            tg_p_mult: 0.8,
            stack_leak_factor: 0.55,
            sleep_leak_factor: 0.08,
        }
    }

    /// A larger-gating variant for critical-path gates ("Larger-sized sleep
    /// transistors for gates in the critical path can be used to further
    /// reduce the delay penalty", Section III).
    pub fn wide_gating() -> Self {
        FlhConfig {
            gating_n_mult: 6.0,
            gating_p_mult: 12.0,
            ..FlhConfig::paper_default()
        }
    }
}

impl Default for FlhConfig {
    fn default() -> Self {
        FlhConfig::paper_default()
    }
}

/// Derived per-gated-gate physical costs.
#[derive(Clone, Debug, PartialEq)]
pub struct FlhPhysical {
    /// Extra transistors per gated gate (2 gating + 4 keeper inverter +
    /// 2 transmission gate = 8).
    pub extra_transistors: usize,
    /// Extra active area per gated gate (µm²).
    pub extra_area_um2: f64,
    /// Series resistance the on gating devices add to the gate's drive (kΩ,
    /// averaged over pull-up/pull-down).
    pub extra_drive_res_kohm: f64,
    /// Static capacitance added to the gated gate's output node: keeper
    /// INV1 gate plus transmission-gate diffusion (fF).
    pub keeper_load_ff: f64,
    /// Internal keeper capacitance that toggles whenever the gated gate's
    /// output toggles in normal mode (INV1 output + TG diffusion, fF).
    pub keeper_toggle_cap_ff: f64,
    /// Static leakage of the keeper itself (nA).
    pub keeper_leakage_na: f64,
    /// Normal-mode leakage multiplier for the gated gate.
    pub stack_leak_factor: f64,
    /// Sleep-mode leakage multiplier for the gated gate.
    pub sleep_leak_factor: f64,
}

impl FlhPhysical {
    /// Derives the costs from a sizing configuration.
    ///
    /// # Example
    ///
    /// ```
    /// use flh_tech::{FlhConfig, FlhPhysical, Technology};
    ///
    /// let tech = Technology::bptm70();
    /// let flh = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
    /// assert_eq!(flh.extra_transistors, 8);
    /// assert!(flh.extra_area_um2 > 0.0);
    /// ```
    pub fn derive(tech: &Technology, config: &FlhConfig) -> Self {
        let wmin = tech.w_min_um;
        let total_mult = config.gating_n_mult
            + config.gating_p_mult
            + 2.0 * (config.keeper_n_mult + config.keeper_p_mult)
            + config.tg_n_mult
            + config.tg_p_mult;
        let extra_area_um2 = tech.active_area_um2(total_mult * wmin);
        let extra_drive_res_kohm = 0.5
            * (tech.r_n_kohm_um / (config.gating_n_mult * wmin)
                + tech.r_p_kohm_um / (config.gating_p_mult * wmin));
        let keeper_load_ff = tech.gate_cap_ff((config.keeper_n_mult + config.keeper_p_mult) * wmin)
            + tech.diff_cap_ff((config.tg_n_mult + config.tg_p_mult) * wmin);
        let keeper_toggle_cap_ff = tech
            .diff_cap_ff((config.keeper_n_mult + config.keeper_p_mult) * wmin)
            + tech.diff_cap_ff((config.tg_n_mult + config.tg_p_mult) * wmin);
        // The keeper inverters are minimum-sized and can be implemented
        // with long-channel devices; INV2 is additionally source-gated by
        // the off transmission gate in normal mode.
        let keeper_leakage_na =
            tech.i0_leak_na_per_um * wmin * (config.keeper_n_mult + config.keeper_p_mult) * 0.5;
        FlhPhysical {
            extra_transistors: 8,
            extra_area_um2,
            extra_drive_res_kohm,
            keeper_load_ff,
            keeper_toggle_cap_ff,
            keeper_leakage_na,
            stack_leak_factor: config.stack_leak_factor,
            sleep_leak_factor: config.sleep_leak_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use flh_netlist::CellKind;

    #[test]
    fn default_costs_eight_transistors() {
        let tech = Technology::bptm70();
        let flh = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        assert_eq!(flh.extra_transistors, 8);
        // 13.8 wmin·L units: (3 + 6 + 2·1.8 + 1.2) × 0.15 × 0.07.
        let expect = 13.8 * 0.15 * 0.07;
        assert!((flh.extra_area_um2 - expect).abs() < 1e-12);
    }

    #[test]
    fn table1_area_budget_beats_enhanced_scan() {
        // The paper's Table I average: at ~1.8 unique first-level gates per
        // flip-flop, FLH area overhead should be roughly two-thirds of the
        // hold-latch overhead, and below the MUX overhead.
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let flh = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let latch = lib.physical(CellKind::HoldLatch).active_area_um2;
        let mux = lib.physical(CellKind::HoldMux).active_area_um2;
        let flh_per_ff = 1.8 * flh.extra_area_um2;
        let vs_latch = 1.0 - flh_per_ff / latch;
        let vs_mux = 1.0 - flh_per_ff / mux;
        assert!(
            (0.20..0.45).contains(&vs_latch),
            "improvement vs enhanced scan {vs_latch}"
        );
        assert!(
            (0.10..0.40).contains(&vs_mux),
            "improvement vs MUX {vs_mux}"
        );
    }

    #[test]
    fn gating_penalty_is_a_fraction_of_gate_drive() {
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let flh = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let nand = lib.physical(CellKind::Nand2);
        let penalty = flh.extra_drive_res_kohm / nand.drive_res_kohm;
        assert!(
            (0.2..0.8).contains(&penalty),
            "gating resistance penalty {penalty}"
        );
    }

    #[test]
    fn wide_gating_halves_the_penalty() {
        let tech = Technology::bptm70();
        let d = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let w = FlhPhysical::derive(&tech, &FlhConfig::wide_gating());
        assert!((w.extra_drive_res_kohm - d.extra_drive_res_kohm / 2.0).abs() < 1e-9);
        assert!(w.extra_area_um2 > d.extra_area_um2);
    }

    #[test]
    fn keeper_is_light() {
        // The keeper load must be well under a typical gate input load so
        // the normal-mode power overhead stays near zero.
        let tech = Technology::bptm70();
        let lib = CellLibrary::new(tech.clone());
        let flh = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        let latch_in = lib.physical(CellKind::HoldLatch).input_cap_ff;
        assert!(flh.keeper_load_ff < latch_in);
        assert!(
            flh.keeper_toggle_cap_ff < 1.5,
            "{}",
            flh.keeper_toggle_cap_ff
        );
    }

    #[test]
    fn leak_factors_are_sane() {
        let tech = Technology::bptm70();
        let flh = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
        assert!(flh.stack_leak_factor < 1.0 && flh.stack_leak_factor > 0.0);
        assert!(flh.sleep_leak_factor < flh.stack_leak_factor);
    }
}
