//! Frozen replica of the pre-`CompiledCircuit` simulation path, kept as the
//! reference point for the `perf_report` speedup measurement.
//!
//! This is the algorithm the repository shipped before the compiled-IR
//! refactor: per-instance Kahn levelization, pointer-chasing graph walks
//! through [`Netlist::cell`], a `HashMap`-backed fanout-cone cache whose
//! entries are cloned per fault, a full good-value clone per fault, and a
//! full observation-list scan per fault. Do **not** use it for real work —
//! [`flh_atpg::StuckSimulator`] produces identical results and is what the
//! speedup is measured against.

use std::collections::HashMap;

use flh_atpg::Fault;
use flh_netlist::{analysis, CellId, Netlist};

/// Graph-walking equivalent of `flh_atpg::TestView`, as seeded.
pub struct BaselineView<'a> {
    netlist: &'a Netlist,
    order: Vec<CellId>,
    assignable: Vec<CellId>,
    /// Observed cells: `fanin[0]` of every output marker and flip-flop.
    observed: Vec<CellId>,
    fanouts: analysis::FanoutMap,
}

impl<'a> BaselineView<'a> {
    /// Builds the view (panics on cyclic netlists — benchmark input only).
    pub fn new(netlist: &'a Netlist) -> Self {
        let order = analysis::combinational_order(netlist).expect("acyclic benchmark circuit");
        let mut assignable: Vec<CellId> = netlist.inputs().to_vec();
        assignable.extend_from_slice(netlist.flip_flops());
        let observed: Vec<CellId> = netlist
            .outputs()
            .iter()
            .chain(netlist.flip_flops())
            .map(|&o| netlist.cell(o).fanin()[0])
            .collect();
        BaselineView {
            fanouts: analysis::FanoutMap::compute(netlist),
            netlist,
            order,
            assignable,
            observed,
        }
    }

    /// Assignable cells, primary inputs first.
    pub fn assignable(&self) -> &[CellId] {
        &self.assignable
    }

    /// 64-way good-machine evaluation by graph walk.
    pub fn eval64(&self, assignment: &[u64]) -> Vec<u64> {
        assert_eq!(assignment.len(), self.assignable.len());
        let mut values = vec![0u64; self.netlist.cell_count()];
        for (i, &cell) in self.assignable.iter().enumerate() {
            values[cell.index()] = assignment[i];
        }
        let mut inputs: Vec<u64> = Vec::with_capacity(4);
        for &id in &self.order {
            let cell = self.netlist.cell(id);
            inputs.clear();
            inputs.extend(cell.fanin().iter().map(|&x| values[x.index()]));
            values[id.index()] = cell.kind().eval64(&inputs);
        }
        values
    }

    /// Full observation scan.
    pub fn observe64(&self, values: &[u64]) -> Vec<u64> {
        self.observed.iter().map(|&d| values[d.index()]).collect()
    }
}

/// The seed's 64-way stuck-at fault simulator: `HashMap` cone cache with a
/// clone per lookup, full good-array clone and full observation scan per
/// fault.
pub struct BaselineStuckSimulator<'v, 'a> {
    view: &'v BaselineView<'a>,
    topo_pos: Vec<usize>,
    cones: HashMap<CellId, Vec<CellId>>,
}

impl<'v, 'a> BaselineStuckSimulator<'v, 'a> {
    /// Builds a simulator (re-deriving the topological order, as seeded).
    pub fn new(view: &'v BaselineView<'a>) -> Self {
        let netlist = view.netlist;
        let order = analysis::combinational_order(netlist).expect("acyclic benchmark circuit");
        let mut topo_pos = vec![usize::MAX; netlist.cell_count()];
        for (pos, &id) in order.iter().enumerate() {
            topo_pos[id.index()] = pos;
        }
        BaselineStuckSimulator {
            view,
            topo_pos,
            cones: HashMap::new(),
        }
    }

    fn cone(&mut self, site: CellId) -> Vec<CellId> {
        let view = self.view;
        let topo_pos = &self.topo_pos;
        self.cones
            .entry(site)
            .or_insert_with(|| {
                let mut cone = analysis::fanout_cone(view.netlist, &view.fanouts, &[site]);
                cone.sort_by_key(|c| topo_pos[c.index()]);
                cone
            })
            .clone()
    }

    /// Seed-path equivalent of [`flh_atpg::StuckSimulator::run_batch`]
    /// (stem faults only — the benchmark fault list).
    pub fn run_batch(
        &mut self,
        words: &[u64],
        active_mask: u64,
        faults: &[Fault],
        detected: &mut [bool],
    ) -> usize {
        let good = self.view.eval64(words);
        let obs_good = self.view.observe64(&good);
        let netlist = self.view.netlist;
        let mut new_hits = 0;

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let driver = fault.driver(netlist);
            let line = good[driver.index()];
            let active_lanes = if fault.stuck.as_bool() { !line } else { line };
            let lanes = active_lanes & active_mask;
            if lanes == 0 {
                continue;
            }
            let mut faulty = good.clone();
            let seed = driver;
            faulty[seed.index()] = fault.stuck.word();
            let cone = self.cone(seed);
            let mut inputs: Vec<u64> = Vec::with_capacity(4);
            for &id in &cone {
                if id == seed {
                    continue;
                }
                let cell = netlist.cell(id);
                if cell.kind().is_flip_flop() {
                    continue;
                }
                inputs.clear();
                inputs.extend(cell.fanin().iter().map(|&x| faulty[x.index()]));
                faulty[id.index()] = cell.kind().eval64(&inputs);
            }
            let obs_faulty = self.view.observe64(&faulty);
            let miscompare = obs_good
                .iter()
                .zip(&obs_faulty)
                .fold(0u64, |acc, (g, b)| acc | (g ^ b));
            if miscompare & lanes != 0 {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        new_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_atpg::{enumerate_stuck_faults, FaultSite, StuckSimulator, TestView};
    use flh_netlist::{generate_circuit, GeneratorConfig, Packed256, PatternWord};
    use flh_rng::Rng;

    #[test]
    fn baseline_agrees_with_the_compiled_fault_simulator() {
        let n = generate_circuit(&GeneratorConfig {
            name: "baseline_eq".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 8,
            gates: 120,
            logic_depth: 8,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 55,
        })
        .unwrap();
        let stems: Vec<Fault> = enumerate_stuck_faults(&n)
            .into_iter()
            .filter(|f| matches!(f.site, FaultSite::Stem(_)))
            .collect();
        let view = TestView::new(&n).unwrap();
        let baseline_view = BaselineView::new(&n);
        let mut rng = Rng::seed_from_u64(99);
        let words: Vec<u64> = (0..view.assignable().len()).map(|_| rng.gen()).collect();

        let mut fast = StuckSimulator::new(&view);
        let mut slow = BaselineStuckSimulator::new(&baseline_view);
        let mut d_fast = vec![false; stems.len()];
        let mut d_slow = vec![false; stems.len()];
        let wide: Vec<Packed256> = words.iter().map(|&w| Packed256::from_word(w)).collect();
        fast.run_batch(&wide, Packed256::mask_lanes(64), &stems, &mut d_fast);
        slow.run_batch(&words, !0, &stems, &mut d_slow);
        assert_eq!(d_fast, d_slow);
        assert!(d_fast.iter().any(|&d| d), "batch detected nothing");
    }
}
