//! Shared harness for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2_floating_decay` | Fig. 2 — gated stage without keeper: floating-node decay and stage-2 short-circuit current |
//! | `fig4_flh_hold` | Fig. 4 — FLH keeper holds through input toggling |
//! | `table1_area` | Table I — % area increase per style |
//! | `table2_delay` | Table II — % delay increase per style |
//! | `table3_power` | Table III — % normal-mode power increase per style |
//! | `table4_fanout_opt` | Table IV — Section V fanout optimization |
//! | `coverage_invariance` | §IV — fault coverage unchanged by FLH insertion |
//! | `coverage_styles` | §I — broadside / skewed-load / arbitrary coverage comparison |
//! | `testmode_power` | §IV — redundant-switching suppression during scan shifting |

use flh_core::{evaluate_all, DftStyle, EvalConfig, StyleEvaluation};
use flh_netlist::{generate_circuit, CircuitProfile, Netlist};

pub mod seed_baseline;

/// Generates the benchmark circuit for a profile.
///
/// # Panics
///
/// Panics on generator misconfiguration — the shipped profiles are
/// validated by tests.
pub fn build_circuit(profile: &CircuitProfile) -> Netlist {
    generate_circuit(&profile.generator_config())
        .unwrap_or_else(|e| panic!("{}: {e}", profile.name))
}

/// Per-circuit evaluation of all four styles.
///
/// # Panics
///
/// Panics if the generated circuit fails structural validation.
pub fn evaluate_profile(profile: &CircuitProfile, config: &EvalConfig) -> Vec<StyleEvaluation> {
    let circuit = build_circuit(profile);
    evaluate_all(&circuit, config).unwrap_or_else(|e| panic!("{}: {e}", profile.name))
}

/// Pulls one style out of an evaluation set.
///
/// # Panics
///
/// Panics if the style was not evaluated.
pub fn style(evals: &[StyleEvaluation], style: DftStyle) -> &StyleEvaluation {
    evals
        .iter()
        .find(|e| e.style == style)
        .expect("style evaluated")
}

/// Prints a horizontal rule sized for the tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::iscas89_profile;

    #[test]
    fn helpers_work_end_to_end() {
        let p = iscas89_profile("s298").unwrap();
        let cfg = EvalConfig {
            vectors: 20,
            ..EvalConfig::paper_default()
        };
        let evals = evaluate_profile(&p, &cfg);
        assert_eq!(evals.len(), 4);
        let flh = style(&evals, DftStyle::Flh);
        assert!(flh.first_level_gates > 0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
