//! Shared harness for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2_floating_decay` | Fig. 2 — gated stage without keeper: floating-node decay and stage-2 short-circuit current |
//! | `fig4_flh_hold` | Fig. 4 — FLH keeper holds through input toggling |
//! | `table1_area` | Table I — % area increase per style |
//! | `table2_delay` | Table II — % delay increase per style |
//! | `table3_power` | Table III — % normal-mode power increase per style |
//! | `table4_fanout_opt` | Table IV — Section V fanout optimization |
//! | `coverage_invariance` | §IV — fault coverage unchanged by FLH insertion |
//! | `coverage_styles` | §I — broadside / skewed-load / arbitrary coverage comparison |
//! | `testmode_power` | §IV — redundant-switching suppression during scan shifting |

use flh_core::{evaluate_all, evaluate_style, DftStyle, EvalConfig, StyleEvaluation};
use flh_exec::ThreadPool;
use flh_netlist::{generate_circuit, CircuitProfile, Netlist};

pub mod json;
pub mod seed_baseline;
pub mod transition_baseline;

/// The four styles in the canonical [`evaluate_all`] order.
pub const ALL_STYLES: [DftStyle; 4] = [
    DftStyle::PlainScan,
    DftStyle::EnhancedScan,
    DftStyle::MuxHold,
    DftStyle::Flh,
];

/// Generates the benchmark circuit for a profile.
///
/// # Panics
///
/// Panics on generator misconfiguration — the shipped profiles are
/// validated by tests.
pub fn build_circuit(profile: &CircuitProfile) -> Netlist {
    generate_circuit(&profile.generator_config())
        .unwrap_or_else(|e| panic!("{}: {e}", profile.name))
}

/// Per-circuit evaluation of all four styles.
///
/// # Panics
///
/// Panics if the generated circuit fails structural validation.
pub fn evaluate_profile(profile: &CircuitProfile, config: &EvalConfig) -> Vec<StyleEvaluation> {
    let circuit = build_circuit(profile);
    evaluate_all(&circuit, config).unwrap_or_else(|e| panic!("{}: {e}", profile.name))
}

/// Evaluates every profile × style cell on the pool, one self-contained
/// cell per `(circuit, style)` pair (the cell regenerates its circuit and
/// evaluates one style against a freshly built plain-scan baseline —
/// [`evaluate_style`] recomputes the same baseline metrics
/// [`evaluate_all`] shares, so the two agree exactly). Rows follow
/// `profiles` order, columns [`ALL_STYLES`] order; results are identical
/// at any pool size.
///
/// # Panics
///
/// Panics if a generated circuit fails structural validation.
pub fn evaluate_profiles_pooled(
    profiles: &[CircuitProfile],
    config: &EvalConfig,
    pool: &ThreadPool,
) -> Vec<Vec<StyleEvaluation>> {
    let cells = profiles.len() * ALL_STYLES.len();
    let evals = pool.run(cells, |i| {
        let profile = &profiles[i / ALL_STYLES.len()];
        let style = ALL_STYLES[i % ALL_STYLES.len()];
        let circuit = build_circuit(profile);
        evaluate_style(&circuit, style, config).unwrap_or_else(|e| panic!("{}: {e}", profile.name))
    });
    let mut rows = Vec::with_capacity(profiles.len());
    let mut it = evals.into_iter();
    for _ in profiles {
        rows.push(it.by_ref().take(ALL_STYLES.len()).collect());
    }
    rows
}

/// Pulls one style out of an evaluation set.
///
/// # Panics
///
/// Panics if the style was not evaluated.
pub fn style(evals: &[StyleEvaluation], style: DftStyle) -> &StyleEvaluation {
    evals
        .iter()
        .find(|e| e.style == style)
        .expect("style evaluated")
}

/// Prints a horizontal rule sized for the tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::iscas89_profile;

    #[test]
    fn helpers_work_end_to_end() {
        let p = iscas89_profile("s298").unwrap();
        let cfg = EvalConfig {
            vectors: 20,
            ..EvalConfig::paper_default()
        };
        let evals = evaluate_profile(&p, &cfg);
        assert_eq!(evals.len(), 4);
        let flh = style(&evals, DftStyle::Flh);
        assert!(flh.first_level_gates > 0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_profile_grid_matches_per_profile_evaluation() {
        let profiles = vec![
            iscas89_profile("s298").unwrap(),
            iscas89_profile("s344").unwrap(),
        ];
        let cfg = EvalConfig {
            vectors: 20,
            ..EvalConfig::paper_default()
        };
        let expected: Vec<Vec<_>> = profiles.iter().map(|p| evaluate_profile(p, &cfg)).collect();
        for workers in [1, 4] {
            let rows = evaluate_profiles_pooled(&profiles, &cfg, &ThreadPool::new(workers));
            assert_eq!(rows.len(), expected.len());
            for (row, exp) in rows.iter().zip(&expected) {
                for (r, e) in row.iter().zip(exp) {
                    assert_eq!(r.style, e.style, "workers = {workers}");
                    assert_eq!(r.area_um2, e.area_um2);
                    assert_eq!(r.delay_ps, e.delay_ps);
                    assert_eq!(r.power_uw, e.power_uw);
                    assert_eq!(r.base_power_uw, e.base_power_uw);
                }
            }
        }
    }
}
