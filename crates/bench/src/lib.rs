//! Shared harness for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2_floating_decay` | Fig. 2 — gated stage without keeper: floating-node decay and stage-2 short-circuit current |
//! | `fig4_flh_hold` | Fig. 4 — FLH keeper holds through input toggling |
//! | `table1_area` | Table I — % area increase per style |
//! | `table2_delay` | Table II — % delay increase per style |
//! | `table3_power` | Table III — % normal-mode power increase per style |
//! | `table4_fanout_opt` | Table IV — Section V fanout optimization |
//! | `coverage_invariance` | §IV — fault coverage unchanged by FLH insertion |
//! | `coverage_styles` | §I — broadside / skewed-load / arbitrary coverage comparison |
//! | `testmode_power` | §IV — redundant-switching suppression during scan shifting |

use std::sync::Arc;

use flh_atpg::{ApplicationStyle, CampaignResult};
use flh_core::{evaluate_all, DftStyle, EvalConfig, StyleEvaluation};
use flh_exec::ThreadPool;
use flh_netlist::{CircuitProfile, Netlist};
use flh_serve::{BatchPayload, CircuitSource, CompiledEntry, JobEngine, JobId, JobSpec};

pub mod json;
pub mod replay64;
pub mod seed_baseline;
pub mod transition_baseline;

/// The four styles in the canonical [`evaluate_all`] order.
pub const ALL_STYLES: [DftStyle; 4] = [
    DftStyle::PlainScan,
    DftStyle::EnhancedScan,
    DftStyle::MuxHold,
    DftStyle::Flh,
];

/// The [`CircuitSource`] for a benchmark profile — the single place the
/// bench binaries turn a profile into a loadable, cache-keyed source, so
/// every binary computes the same `flh-serve` cache keys.
pub fn circuit_source(profile: &CircuitProfile) -> CircuitSource {
    CircuitSource::profile(profile.clone())
}

/// Generates the benchmark circuit for a profile (through the shared
/// [`CircuitSource`] loader).
///
/// # Panics
///
/// Panics on generator misconfiguration — the shipped profiles are
/// validated by tests.
pub fn build_circuit(profile: &CircuitProfile) -> Netlist {
    circuit_source(profile)
        .load()
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fetches (or builds) the cached compiled entry for a profile on the
/// given engine — the netlist plus its compiled form, shared with every
/// job that names the same profile.
///
/// # Panics
///
/// Panics on generator or compile failure.
pub fn cached_circuit(engine: &JobEngine, profile: &CircuitProfile) -> Arc<CompiledEntry> {
    engine
        .compiled(&circuit_source(profile), None)
        .unwrap_or_else(|e| panic!("{e}"))
        .0
}

/// Per-circuit evaluation of all four styles.
///
/// # Panics
///
/// Panics if the generated circuit fails structural validation.
pub fn evaluate_profile(profile: &CircuitProfile, config: &EvalConfig) -> Vec<StyleEvaluation> {
    let circuit = build_circuit(profile);
    evaluate_all(&circuit, config).unwrap_or_else(|e| panic!("{}: {e}", profile.name))
}

/// Evaluates every profile on the engine: one `Evaluate` job per profile
/// covering [`ALL_STYLES`], the circuit built once per profile through
/// the engine's compiled-circuit cache. Per-style metrics are
/// deterministic functions of `(netlist, style, config)`, so rows equal
/// [`evaluate_profile`] exactly, at any pool width. Rows follow
/// `profiles` order, columns [`ALL_STYLES`] order.
///
/// # Panics
///
/// Panics if a generated circuit fails structural validation.
pub fn evaluate_profiles_engine(
    profiles: &[CircuitProfile],
    config: &EvalConfig,
    engine: &JobEngine,
) -> Vec<Vec<StyleEvaluation>> {
    profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let spec =
                JobSpec::evaluate(circuit_source(profile), ALL_STYLES.to_vec(), config.clone());
            let outcome = engine
                .run(JobId(i as u64 + 1), &spec, &mut |_| {})
                .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
            outcome
                .batches
                .into_iter()
                .map(|batch| match batch {
                    BatchPayload::Evaluation(eval) => eval,
                    BatchPayload::Campaign(_) => {
                        panic!("{}: evaluate job produced a campaign batch", profile.name)
                    }
                })
                .collect()
        })
        .collect()
}

/// [`evaluate_profiles_engine`] on a throwaway engine of the given pool's
/// width — kept for callers that think in pools rather than engines.
///
/// # Panics
///
/// Panics if a generated circuit fails structural validation.
pub fn evaluate_profiles_pooled(
    profiles: &[CircuitProfile],
    config: &EvalConfig,
    pool: &ThreadPool,
) -> Vec<Vec<StyleEvaluation>> {
    let engine = JobEngine::new(ThreadPool::new(pool.size()), profiles.len().max(1));
    evaluate_profiles_engine(profiles, config, &engine)
}

/// Runs the per-profile random transition campaign grid on the engine:
/// one `Campaign` job per profile over `styles`, sharing compiled
/// circuits with everything else the engine ran. Rows follow `profiles`
/// order, columns `styles` order; results are bit-identical to serial
/// per-cell campaigns at any pool width.
///
/// # Panics
///
/// Panics if a circuit fails to build or is combinationally cyclic.
pub fn campaign_profiles_engine(
    profiles: &[CircuitProfile],
    styles: &[ApplicationStyle],
    pairs: usize,
    seed: u64,
    engine: &JobEngine,
) -> Vec<Vec<CampaignResult>> {
    profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let spec = JobSpec::campaign(circuit_source(profile))
                .with_styles(styles.to_vec())
                .with_pairs(pairs)
                .with_seed(seed);
            let outcome = engine
                .run(JobId(i as u64 + 1), &spec, &mut |_| {})
                .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
            outcome
                .batches
                .into_iter()
                .map(|batch| match batch {
                    BatchPayload::Campaign(result) => result,
                    BatchPayload::Evaluation(_) => {
                        panic!("{}: campaign job produced an evaluate batch", profile.name)
                    }
                })
                .collect()
        })
        .collect()
}

/// Pulls one style out of an evaluation set.
///
/// # Panics
///
/// Panics if the style was not evaluated.
pub fn style(evals: &[StyleEvaluation], style: DftStyle) -> &StyleEvaluation {
    evals
        .iter()
        .find(|e| e.style == style)
        .expect("style evaluated")
}

/// Prints a horizontal rule sized for the tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_netlist::iscas89_profile;

    #[test]
    fn helpers_work_end_to_end() {
        let p = iscas89_profile("s298").unwrap();
        let cfg = EvalConfig {
            vectors: 20,
            ..EvalConfig::paper_default()
        };
        let evals = evaluate_profile(&p, &cfg);
        assert_eq!(evals.len(), 4);
        let flh = style(&evals, DftStyle::Flh);
        assert!(flh.first_level_gates > 0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn engine_grid_reuses_cached_circuits_with_equal_results() {
        let profiles = vec![iscas89_profile("s298").unwrap()];
        let cfg = EvalConfig {
            vectors: 20,
            ..EvalConfig::paper_default()
        };
        let engine = JobEngine::new(ThreadPool::new(1), 4);
        let first = evaluate_profiles_engine(&profiles, &cfg, &engine);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let again = evaluate_profiles_engine(&profiles, &cfg, &engine);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.parse_skips), (1, 1, 1));
        for (a, b) in first[0].iter().zip(&again[0]) {
            assert_eq!(a.style, b.style);
            assert_eq!(a.area_um2, b.area_um2);
            assert_eq!(a.delay_ps, b.delay_ps);
            assert_eq!(a.power_uw, b.power_uw);
        }
    }

    #[test]
    fn pooled_profile_grid_matches_per_profile_evaluation() {
        let profiles = vec![
            iscas89_profile("s298").unwrap(),
            iscas89_profile("s344").unwrap(),
        ];
        let cfg = EvalConfig {
            vectors: 20,
            ..EvalConfig::paper_default()
        };
        let expected: Vec<Vec<_>> = profiles.iter().map(|p| evaluate_profile(p, &cfg)).collect();
        for workers in [1, 4] {
            let rows = evaluate_profiles_pooled(&profiles, &cfg, &ThreadPool::new(workers));
            assert_eq!(rows.len(), expected.len());
            for (row, exp) in rows.iter().zip(&expected) {
                for (r, e) in row.iter().zip(exp) {
                    assert_eq!(r.style, e.style, "workers = {workers}");
                    assert_eq!(r.area_um2, e.area_um2);
                    assert_eq!(r.delay_ps, e.delay_ps);
                    assert_eq!(r.power_uw, e.power_uw);
                    assert_eq!(r.base_power_uw, e.base_power_uw);
                }
            }
        }
    }
}
