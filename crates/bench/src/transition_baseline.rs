//! Frozen replica of the pre-replay-engine transition fault simulator,
//! kept as the reference point for the `BENCH_transition_fsim.json`
//! speedup measurement and the `transition_equivalence` test suite.
//!
//! This is the algorithm the repository shipped before the shared
//! [`flh_atpg::DeviationReplay`] engine: per fault, a full clone of the
//! good V2 value array, a `HashMap`-backed static fanout-cone cache whose
//! entries are cloned per lookup, a re-evaluation of *every* cell in the
//! cone regardless of whether the deviation actually reaches it, and a
//! full observation-list scan — with no early exit when an activation
//! lane already miscompares. Do **not** use it for real work —
//! [`flh_atpg::TransitionSimulator`] produces identical results and is
//! what the speedup is measured against.

use std::collections::HashMap;

use flh_atpg::{TestView, TransitionFault};
use flh_netlist::{analysis, CellId};

/// The pre-PR full-cone transition fault simulator: good-array clone,
/// interned-cone walk and full observation scan per activated fault.
pub struct BaselineTransitionSimulator<'v, 'a> {
    view: &'v TestView<'a>,
    fanouts: analysis::FanoutMap,
    cones: HashMap<CellId, Vec<CellId>>,
}

impl<'v, 'a> BaselineTransitionSimulator<'v, 'a> {
    /// Builds a simulator over the same [`TestView`] the event-driven
    /// path uses, so any result difference is the algorithm's alone.
    pub fn new(view: &'v TestView<'a>) -> Self {
        BaselineTransitionSimulator {
            fanouts: analysis::FanoutMap::compute(view.netlist()),
            view,
            cones: HashMap::new(),
        }
    }

    fn cone(&mut self, site: CellId) -> Vec<CellId> {
        let view = self.view;
        let fanouts = &self.fanouts;
        self.cones
            .entry(site)
            .or_insert_with(|| {
                let mut cone = analysis::fanout_cone(view.netlist(), fanouts, &[site]);
                let compiled = view.compiled();
                cone.sort_by_key(|c| compiled.topo_pos(c.index() as u32));
                cone
            })
            .clone()
    }

    /// Full-cone replay of the V2 machine under `fault`'s stuck
    /// equivalent; returns the observation miscompare word.
    fn faulty_miscompare(&mut self, fault: &TransitionFault, good2: &[u64]) -> u64 {
        let netlist = self.view.netlist();
        let seed = fault.site;
        let mut faulty = good2.to_vec();
        faulty[seed.index()] = fault.stuck_equivalent().stuck.word();
        let cone = self.cone(seed);
        let mut inputs: Vec<u64> = Vec::with_capacity(4);
        for &id in &cone {
            if id == seed {
                continue;
            }
            let cell = netlist.cell(id);
            if cell.kind().is_flip_flop() {
                continue;
            }
            inputs.clear();
            inputs.extend(cell.fanin().iter().map(|&x| faulty[x.index()]));
            faulty[id.index()] = cell.kind().eval64(&inputs);
        }
        let obs_good = self.view.observe64(good2);
        let obs_faulty = self.view.observe64(&faulty);
        obs_good
            .iter()
            .zip(&obs_faulty)
            .fold(0u64, |acc, (g, b)| acc | (g ^ b))
    }

    /// Lanes where V1 sets the initial value and V2 the final value.
    fn activation_lanes(fault: &TransitionFault, good1: &[u64], good2: &[u64]) -> u64 {
        let site = fault.site.index();
        let init = if fault.initial_value() {
            good1[site]
        } else {
            !good1[site]
        };
        let launch = if fault.final_value() {
            good2[site]
        } else {
            !good2[site]
        };
        init & launch
    }

    /// Legacy equivalent of [`flh_atpg::TransitionSimulator::run_batch`].
    pub fn run_batch(
        &mut self,
        v1_words: &[u64],
        v2_words: &[u64],
        active_mask: u64,
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        let good1 = self.view.eval64(v1_words, None);
        let good2 = self.view.eval64(v2_words, None);
        let mut new_hits = 0;
        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let lanes = Self::activation_lanes(fault, &good1, &good2) & active_mask;
            if lanes == 0 {
                continue;
            }
            if self.faulty_miscompare(fault, &good2) & lanes != 0 {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        new_hits
    }

    /// Legacy equivalent of
    /// [`flh_atpg::TransitionSimulator::run_batch_counting`].
    pub fn run_batch_counting(
        &mut self,
        v1_words: &[u64],
        v2_words: &[u64],
        active_mask: u64,
        faults: &[TransitionFault],
        counts: &mut [u32],
        target: u32,
    ) -> usize {
        let good1 = self.view.eval64(v1_words, None);
        let good2 = self.view.eval64(v2_words, None);
        let mut newly_saturated = 0;
        for (fi, fault) in faults.iter().enumerate() {
            if counts[fi] >= target {
                continue;
            }
            let lanes = Self::activation_lanes(fault, &good1, &good2) & active_mask;
            if lanes == 0 {
                continue;
            }
            let hits = (self.faulty_miscompare(fault, &good2) & lanes).count_ones();
            if hits > 0 {
                let before = counts[fi];
                counts[fi] = (counts[fi] + hits).min(target);
                if before < target && counts[fi] >= target {
                    newly_saturated += 1;
                }
            }
        }
        newly_saturated
    }
}

/// Serial whole-campaign detection map via the legacy simulator: packs the
/// pair set into 64-lane batches exactly like
/// [`flh_atpg::simulate_transition_patterns`] and marks detected faults.
pub fn baseline_transition_detects(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    patterns: &[flh_atpg::TransitionPattern],
) -> Vec<bool> {
    let mut sim = BaselineTransitionSimulator::new(view);
    let n = view.assignable().len();
    let mut detected = vec![false; faults.len()];
    let mut v1_words = vec![0u64; n];
    let mut v2_words = vec![0u64; n];
    for chunk in patterns.chunks(64) {
        v1_words.fill(0);
        v2_words.fill(0);
        for (lane, p) in chunk.iter().enumerate() {
            for i in 0..n {
                if p.v1[i] {
                    v1_words[i] |= 1 << lane;
                }
                if p.v2[i] {
                    v2_words[i] |= 1 << lane;
                }
            }
        }
        let mask = if chunk.len() == 64 {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        sim.run_batch(&v1_words, &v2_words, mask, faults, &mut detected);
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use flh_atpg::{
        enumerate_transition_faults, transition_detects_reference, TransitionSimulator,
    };
    use flh_netlist::{generate_circuit, GeneratorConfig, Packed256, PatternWord};
    use flh_rng::Rng;

    #[test]
    fn baseline_agrees_with_the_event_driven_simulator() {
        let n = generate_circuit(&GeneratorConfig {
            name: "tbaseline_eq".into(),
            primary_inputs: 6,
            primary_outputs: 5,
            flip_flops: 8,
            gates: 120,
            logic_depth: 8,
            avg_ff_fanout: 2.3,
            unique_flg_ratio: 1.8,
            hot_ff_fanout: None,
            seed: 56,
        })
        .unwrap();
        let view = TestView::new(&n).unwrap();
        let faults = enumerate_transition_faults(&n);
        let mut rng = Rng::seed_from_u64(100);
        let na = view.assignable().len();
        let v1: Vec<u64> = (0..na).map(|_| rng.gen()).collect();
        let v2: Vec<u64> = (0..na).map(|_| rng.gen()).collect();

        let mut fast = TransitionSimulator::new(&view);
        let mut slow = BaselineTransitionSimulator::new(&view);
        let mut d_fast = vec![false; faults.len()];
        let mut d_slow = vec![false; faults.len()];
        let w1: Vec<Packed256> = v1.iter().map(|&w| Packed256::from_word(w)).collect();
        let w2: Vec<Packed256> = v2.iter().map(|&w| Packed256::from_word(w)).collect();
        fast.run_batch(&w1, &w2, Packed256::mask_lanes(64), &faults, &mut d_fast);
        slow.run_batch(&v1, &v2, !0, &faults, &mut d_slow);
        assert_eq!(d_fast, d_slow);
        assert!(d_fast.iter().any(|&d| d), "batch detected nothing");

        // And both agree with the from-scratch per-fault reference.
        for (fault, &d) in faults.iter().zip(&d_fast) {
            let word = transition_detects_reference(&view, fault, &v1, &v2, !0);
            assert_eq!(word != 0, d, "{fault:?}");
        }
    }
}
