//! Schema validation for the `BENCH_*.json` reports, over the workspace's
//! shared JSON value type (the parser lives in [`flh_serve::json`], where
//! the serve protocol also renders with it; re-exported here so report
//! tooling keeps its old import path).
//!
//! [`validate_bench_json`] enforces the contract `scripts/ci.sh` smokes on
//! every committed and freshly generated report: the file must parse, it
//! must carry at least one numeric key containing `"speedup"` plus at
//! least one boolean key matching `target_*_met` — the two fields the
//! roadmap's acceptance gates read — and it must carry the `host`
//! provenance block and the flh-obs `metrics` section.

use std::collections::BTreeMap;

pub use flh_serve::json::{parse_json, Json};

fn walk<'j>(value: &'j Json, path: &str, out: &mut Vec<(String, &'j Json)>) {
    match value {
        Json::Object(map) => {
            for (k, v) in map {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                out.push((child.clone(), v));
                walk(v, &child, out);
            }
        }
        Json::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                let child = format!("{path}[{i}]");
                out.push((child.clone(), v));
                walk(v, &child, out);
            }
        }
        _ => {}
    }
}

/// Validates the top-level `host` provenance block every report carries:
/// numeric `available_parallelism`, string `os`, and `flh_threads` that is
/// either a number or `null` (unset `FLH_THREADS`).
fn validate_host(map: &BTreeMap<String, Json>) -> Result<(), String> {
    let Some(Json::Object(host)) = map.get("host") else {
        return Err("missing top-level \"host\" object".into());
    };
    if !matches!(host.get("available_parallelism"), Some(Json::Number(_))) {
        return Err("host.available_parallelism is not a number".into());
    }
    if !matches!(host.get("os"), Some(Json::String(_))) {
        return Err("host.os is not a string".into());
    }
    match host.get("flh_threads") {
        Some(Json::Number(_)) | Some(Json::Null) => Ok(()),
        _ => Err("host.flh_threads is not a number or null".into()),
    }
}

/// Validates the top-level `metrics` section: `{"recorded": false}` when
/// the flh-obs recorder was off, or `recorded: true` plus a
/// `deterministic` object with a `counters` map and a `nondeterministic`
/// object (the wall-clock side) when it was on.
fn validate_metrics(map: &BTreeMap<String, Json>) -> Result<(), String> {
    let Some(Json::Object(metrics)) = map.get("metrics") else {
        return Err("missing top-level \"metrics\" object".into());
    };
    match metrics.get("recorded") {
        Some(Json::Bool(false)) => Ok(()),
        Some(Json::Bool(true)) => {
            let Some(Json::Object(det)) = metrics.get("deterministic") else {
                return Err("metrics.recorded is true without a deterministic object".into());
            };
            if !matches!(det.get("counters"), Some(Json::Object(_))) {
                return Err("metrics.deterministic.counters is not an object".into());
            }
            if !matches!(metrics.get("nondeterministic"), Some(Json::Object(_))) {
                return Err("metrics.recorded is true without a nondeterministic object".into());
            }
            Ok(())
        }
        _ => Err("metrics.recorded is not a boolean".into()),
    }
}

/// Validates one `BENCH_*.json` report: must parse as a JSON object,
/// carry, anywhere in its tree, at least one numeric key containing
/// `"speedup"` and at least one boolean key of the form `target_*_met`,
/// and carry well-formed top-level `host` and `metrics` sections.
///
/// # Errors
///
/// Returns a message naming the first violated rule.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let value = parse_json(text)?;
    let Json::Object(ref map) = value else {
        return Err("top level is not a JSON object".into());
    };
    let mut keyed = Vec::new();
    walk(&value, "", &mut keyed);
    let leaf = |path: &str| path.rsplit('.').next().unwrap_or(path).to_string();
    let has_speedup = keyed
        .iter()
        .any(|(p, v)| leaf(p).contains("speedup") && matches!(v, Json::Number(_)));
    if !has_speedup {
        return Err("no numeric key containing \"speedup\"".into());
    }
    let has_target = keyed.iter().any(|(p, v)| {
        let k = leaf(p);
        k.starts_with("target_") && k.ends_with("_met") && matches!(v, Json::Bool(_))
    });
    if !has_target {
        return Err("no boolean key matching target_*_met".into());
    }
    validate_host(map)?;
    validate_metrics(map)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal valid host + metrics tail shared by the schema tests.
    const TAIL: &str = "\"host\": {\"available_parallelism\": 1, \"flh_threads\": null, \
\"os\": \"linux\"}, \"metrics\": {\"recorded\": false}";

    #[test]
    fn validates_required_report_fields() {
        let ok =
            format!("{{\"fault_sim\": {{\"speedup\": 7.1, \"target_5x_met\": true}}, {TAIL}}}");
        assert!(validate_bench_json(&ok).is_ok());
        // Required keys may live at different nesting levels.
        let split = format!(
            "{{\"speedup_4_workers\": 2.2, \"inner\": {{\"target_2x_met\": false}}, {TAIL}}}"
        );
        assert!(validate_bench_json(&split).is_ok());

        let no_speedup = format!("{{\"target_5x_met\": true, {TAIL}}}");
        assert!(validate_bench_json(&no_speedup)
            .unwrap_err()
            .contains("speedup"));
        let no_target = format!("{{\"speedup\": 3.0, {TAIL}}}");
        assert!(validate_bench_json(&no_target)
            .unwrap_err()
            .contains("target_*_met"));
        // Wrong types don't satisfy the rules.
        let wrong_types = format!("{{\"speedup\": \"7\", \"target_5x_met\": \"yes\", {TAIL}}}");
        assert!(validate_bench_json(&wrong_types).is_err());
        assert!(validate_bench_json("[1, 2]").is_err());
    }

    #[test]
    fn validates_host_block() {
        let base = "\"speedup\": 3.0, \"target_5x_met\": true";
        let no_host = format!("{{{base}, \"metrics\": {{\"recorded\": false}}}}");
        assert!(validate_bench_json(&no_host).unwrap_err().contains("host"));
        let bad_parallelism = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": \"1\", \"flh_threads\": null, \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&bad_parallelism)
            .unwrap_err()
            .contains("available_parallelism"));
        let bad_threads = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": 1, \"flh_threads\": \"4\", \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&bad_threads)
            .unwrap_err()
            .contains("flh_threads"));
        // FLH_THREADS set: a number is fine too.
        let numeric_threads = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": 1, \"flh_threads\": 4, \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&numeric_threads).is_ok());
    }

    #[test]
    fn validates_metrics_section() {
        let base = "\"speedup\": 3.0, \"target_5x_met\": true, \"host\": \
{\"available_parallelism\": 1, \"flh_threads\": null, \"os\": \"linux\"}";
        let no_metrics = format!("{{{base}}}");
        assert!(validate_bench_json(&no_metrics)
            .unwrap_err()
            .contains("metrics"));
        // recorded: true demands both halves of the report.
        let half = format!("{{{base}, \"metrics\": {{\"recorded\": true}}}}");
        assert!(validate_bench_json(&half)
            .unwrap_err()
            .contains("deterministic"));
        let no_counters = format!(
            "{{{base}, \"metrics\": {{\"recorded\": true, \"deterministic\": {{}}, \
\"nondeterministic\": {{}}}}}}"
        );
        assert!(validate_bench_json(&no_counters)
            .unwrap_err()
            .contains("counters"));
        let full = format!(
            "{{{base}, \"metrics\": {{\"recorded\": true, \"deterministic\": \
{{\"counters\": {{\"replay.calls\": 3}}}}, \"nondeterministic\": {{\"spans\": []}}}}}}"
        );
        assert!(validate_bench_json(&full).is_ok());
    }
}
