//! Minimal JSON parsing and schema validation for the `BENCH_*.json`
//! reports (the workspace has no serde; the reports are hand-written and
//! this keeps them honest).
//!
//! [`validate_bench_json`] enforces the contract `scripts/ci.sh` smokes on
//! every committed and freshly generated report: the file must parse, it
//! must carry at least one numeric key containing `"speedup"` plus at
//! least one boolean key matching `target_*_met` — the two fields the
//! roadmap's acceptance gates read — and it must carry the `host`
//! provenance block and the flh-obs `metrics` section.

use std::collections::BTreeMap;

/// A parsed JSON value (numbers are kept as `f64`; good enough for the
/// report schema, which never uses integers outside `f64`'s exact range).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "byte {}: expected {:?}, found {:?}",
                self.pos,
                b as char,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("byte {}: expected {word}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(format!(
                                "byte {}: unsupported escape \\{}",
                                self.pos, other as char
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // input is valid UTF-8 (it came from `str`).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("byte {start}: bad number {text:?}: {e}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(map));
                        }
                        other => {
                            return Err(format!(
                                "byte {}: expected ',' or '}}', found {other:?}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        other => {
                            return Err(format!(
                                "byte {}: expected ',' or ']', found {other:?}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }
}

/// Parses a JSON document (object, array or scalar).
///
/// # Errors
///
/// Returns a byte-offset message on malformed input or trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("byte {}: trailing garbage", p.pos));
    }
    Ok(value)
}

fn walk<'j>(value: &'j Json, path: &str, out: &mut Vec<(String, &'j Json)>) {
    match value {
        Json::Object(map) => {
            for (k, v) in map {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                out.push((child.clone(), v));
                walk(v, &child, out);
            }
        }
        Json::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                let child = format!("{path}[{i}]");
                out.push((child.clone(), v));
                walk(v, &child, out);
            }
        }
        _ => {}
    }
}

/// Validates the top-level `host` provenance block every report carries:
/// numeric `available_parallelism`, string `os`, and `flh_threads` that is
/// either a number or `null` (unset `FLH_THREADS`).
fn validate_host(map: &BTreeMap<String, Json>) -> Result<(), String> {
    let Some(Json::Object(host)) = map.get("host") else {
        return Err("missing top-level \"host\" object".into());
    };
    if !matches!(host.get("available_parallelism"), Some(Json::Number(_))) {
        return Err("host.available_parallelism is not a number".into());
    }
    if !matches!(host.get("os"), Some(Json::String(_))) {
        return Err("host.os is not a string".into());
    }
    match host.get("flh_threads") {
        Some(Json::Number(_)) | Some(Json::Null) => Ok(()),
        _ => Err("host.flh_threads is not a number or null".into()),
    }
}

/// Validates the top-level `metrics` section: `{"recorded": false}` when
/// the flh-obs recorder was off, or `recorded: true` plus a
/// `deterministic` object with a `counters` map and a `nondeterministic`
/// object (the wall-clock side) when it was on.
fn validate_metrics(map: &BTreeMap<String, Json>) -> Result<(), String> {
    let Some(Json::Object(metrics)) = map.get("metrics") else {
        return Err("missing top-level \"metrics\" object".into());
    };
    match metrics.get("recorded") {
        Some(Json::Bool(false)) => Ok(()),
        Some(Json::Bool(true)) => {
            let Some(Json::Object(det)) = metrics.get("deterministic") else {
                return Err("metrics.recorded is true without a deterministic object".into());
            };
            if !matches!(det.get("counters"), Some(Json::Object(_))) {
                return Err("metrics.deterministic.counters is not an object".into());
            }
            if !matches!(metrics.get("nondeterministic"), Some(Json::Object(_))) {
                return Err("metrics.recorded is true without a nondeterministic object".into());
            }
            Ok(())
        }
        _ => Err("metrics.recorded is not a boolean".into()),
    }
}

/// Validates one `BENCH_*.json` report: must parse as a JSON object,
/// carry, anywhere in its tree, at least one numeric key containing
/// `"speedup"` and at least one boolean key of the form `target_*_met`,
/// and carry well-formed top-level `host` and `metrics` sections.
///
/// # Errors
///
/// Returns a message naming the first violated rule.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let value = parse_json(text)?;
    let Json::Object(ref map) = value else {
        return Err("top level is not a JSON object".into());
    };
    let mut keyed = Vec::new();
    walk(&value, "", &mut keyed);
    let leaf = |path: &str| path.rsplit('.').next().unwrap_or(path).to_string();
    let has_speedup = keyed
        .iter()
        .any(|(p, v)| leaf(p).contains("speedup") && matches!(v, Json::Number(_)));
    if !has_speedup {
        return Err("no numeric key containing \"speedup\"".into());
    }
    let has_target = keyed.iter().any(|(p, v)| {
        let k = leaf(p);
        k.starts_with("target_") && k.ends_with("_met") && matches!(v, Json::Bool(_))
    });
    if !has_target {
        return Err("no boolean key matching target_*_met".into());
    }
    validate_host(map)?;
    validate_metrics(map)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_report_shapes() {
        let v = parse_json(
            "{\n  \"bench\": \"x\",\n  \"quick\": false,\n  \"nested\": {\"speedup\": 5.25},\n  \"xs\": [1, -2.5, 3e2],\n  \"none\": null\n}\n",
        )
        .unwrap();
        let Json::Object(map) = v else { panic!() };
        assert_eq!(map["bench"], Json::String("x".into()));
        assert_eq!(map["quick"], Json::Bool(false));
        assert_eq!(
            map["xs"],
            Json::Array(vec![
                Json::Number(1.0),
                Json::Number(-2.5),
                Json::Number(300.0)
            ])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": 01x}").is_err());
    }

    /// Minimal valid host + metrics tail shared by the schema tests.
    const TAIL: &str = "\"host\": {\"available_parallelism\": 1, \"flh_threads\": null, \
\"os\": \"linux\"}, \"metrics\": {\"recorded\": false}";

    #[test]
    fn validates_required_report_fields() {
        let ok =
            format!("{{\"fault_sim\": {{\"speedup\": 7.1, \"target_5x_met\": true}}, {TAIL}}}");
        assert!(validate_bench_json(&ok).is_ok());
        // Required keys may live at different nesting levels.
        let split = format!(
            "{{\"speedup_4_workers\": 2.2, \"inner\": {{\"target_2x_met\": false}}, {TAIL}}}"
        );
        assert!(validate_bench_json(&split).is_ok());

        let no_speedup = format!("{{\"target_5x_met\": true, {TAIL}}}");
        assert!(validate_bench_json(&no_speedup)
            .unwrap_err()
            .contains("speedup"));
        let no_target = format!("{{\"speedup\": 3.0, {TAIL}}}");
        assert!(validate_bench_json(&no_target)
            .unwrap_err()
            .contains("target_*_met"));
        // Wrong types don't satisfy the rules.
        let wrong_types = format!("{{\"speedup\": \"7\", \"target_5x_met\": \"yes\", {TAIL}}}");
        assert!(validate_bench_json(&wrong_types).is_err());
        assert!(validate_bench_json("[1, 2]").is_err());
    }

    #[test]
    fn validates_host_block() {
        let base = "\"speedup\": 3.0, \"target_5x_met\": true";
        let no_host = format!("{{{base}, \"metrics\": {{\"recorded\": false}}}}");
        assert!(validate_bench_json(&no_host).unwrap_err().contains("host"));
        let bad_parallelism = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": \"1\", \"flh_threads\": null, \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&bad_parallelism)
            .unwrap_err()
            .contains("available_parallelism"));
        let bad_threads = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": 1, \"flh_threads\": \"4\", \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&bad_threads)
            .unwrap_err()
            .contains("flh_threads"));
        // FLH_THREADS set: a number is fine too.
        let numeric_threads = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": 1, \"flh_threads\": 4, \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&numeric_threads).is_ok());
    }

    #[test]
    fn validates_metrics_section() {
        let base = "\"speedup\": 3.0, \"target_5x_met\": true, \"host\": \
{\"available_parallelism\": 1, \"flh_threads\": null, \"os\": \"linux\"}";
        let no_metrics = format!("{{{base}}}");
        assert!(validate_bench_json(&no_metrics)
            .unwrap_err()
            .contains("metrics"));
        // recorded: true demands both halves of the report.
        let half = format!("{{{base}, \"metrics\": {{\"recorded\": true}}}}");
        assert!(validate_bench_json(&half)
            .unwrap_err()
            .contains("deterministic"));
        let no_counters = format!(
            "{{{base}, \"metrics\": {{\"recorded\": true, \"deterministic\": {{}}, \
\"nondeterministic\": {{}}}}}}"
        );
        assert!(validate_bench_json(&no_counters)
            .unwrap_err()
            .contains("counters"));
        let full = format!(
            "{{{base}, \"metrics\": {{\"recorded\": true, \"deterministic\": \
{{\"counters\": {{\"replay.calls\": 3}}}}, \"nondeterministic\": {{\"spans\": []}}}}}}"
        );
        assert!(validate_bench_json(&full).is_ok());
    }
}
