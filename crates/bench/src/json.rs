//! Schema validation for the `BENCH_*.json` reports, over the workspace's
//! shared JSON value type (the parser lives in [`flh_serve::json`], where
//! the serve protocol also renders with it; re-exported here so report
//! tooling keeps its old import path).
//!
//! [`validate_bench_json`] enforces the contract `scripts/ci.sh` smokes on
//! every committed and freshly generated report: the file must parse, it
//! must carry at least one numeric key containing `"speedup"` plus at
//! least one boolean key matching `target_*_met` — the two fields the
//! roadmap's acceptance gates read — and it must carry the `host`
//! provenance block and the flh-obs `metrics` section.
//!
//! [`compare_trend`] is the second gate: it diffs the speedup leaves of
//! two reports (committed baseline vs fresh run) and fails on any leaf
//! that regressed past a fractional tolerance or disappeared — what
//! `check_bench --trend old.json new.json` runs.

use std::collections::BTreeMap;

pub use flh_serve::json::{parse_json, render, Json};

fn walk<'j>(value: &'j Json, path: &str, out: &mut Vec<(String, &'j Json)>) {
    match value {
        Json::Object(map) => {
            for (k, v) in map {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                out.push((child.clone(), v));
                walk(v, &child, out);
            }
        }
        Json::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                let child = format!("{path}[{i}]");
                out.push((child.clone(), v));
                walk(v, &child, out);
            }
        }
        _ => {}
    }
}

/// Validates the top-level `host` provenance block every report carries:
/// numeric `available_parallelism`, string `os`, and `flh_threads` that is
/// either a number or `null` (unset `FLH_THREADS`).
fn validate_host(map: &BTreeMap<String, Json>) -> Result<(), String> {
    let Some(Json::Object(host)) = map.get("host") else {
        return Err("missing top-level \"host\" object".into());
    };
    if !matches!(host.get("available_parallelism"), Some(Json::Number(_))) {
        return Err("host.available_parallelism is not a number".into());
    }
    if !matches!(host.get("os"), Some(Json::String(_))) {
        return Err("host.os is not a string".into());
    }
    match host.get("flh_threads") {
        Some(Json::Number(_)) | Some(Json::Null) => Ok(()),
        _ => Err("host.flh_threads is not a number or null".into()),
    }
}

/// Validates the top-level `metrics` section: `{"recorded": false}` when
/// the flh-obs recorder was off, or `recorded: true` plus a
/// `deterministic` object with a `counters` map and a `nondeterministic`
/// object (the wall-clock side) when it was on.
fn validate_metrics(map: &BTreeMap<String, Json>) -> Result<(), String> {
    let Some(Json::Object(metrics)) = map.get("metrics") else {
        return Err("missing top-level \"metrics\" object".into());
    };
    match metrics.get("recorded") {
        Some(Json::Bool(false)) => Ok(()),
        Some(Json::Bool(true)) => {
            let Some(Json::Object(det)) = metrics.get("deterministic") else {
                return Err("metrics.recorded is true without a deterministic object".into());
            };
            if !matches!(det.get("counters"), Some(Json::Object(_))) {
                return Err("metrics.deterministic.counters is not an object".into());
            }
            if !matches!(metrics.get("nondeterministic"), Some(Json::Object(_))) {
                return Err("metrics.recorded is true without a nondeterministic object".into());
            }
            Ok(())
        }
        _ => Err("metrics.recorded is not a boolean".into()),
    }
}

/// Validates one `BENCH_*.json` report: must parse as a JSON object,
/// carry, anywhere in its tree, at least one numeric key containing
/// `"speedup"` and at least one boolean key of the form `target_*_met`,
/// and carry well-formed top-level `host` and `metrics` sections.
///
/// # Errors
///
/// Returns a message naming the first violated rule.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let value = parse_json(text)?;
    let Json::Object(ref map) = value else {
        return Err("top level is not a JSON object".into());
    };
    let mut keyed = Vec::new();
    walk(&value, "", &mut keyed);
    let leaf = |path: &str| path.rsplit('.').next().unwrap_or(path).to_string();
    let has_speedup = keyed
        .iter()
        .any(|(p, v)| leaf(p).contains("speedup") && matches!(v, Json::Number(_)));
    if !has_speedup {
        return Err("no numeric key containing \"speedup\"".into());
    }
    let has_target = keyed.iter().any(|(p, v)| {
        let k = leaf(p);
        k.starts_with("target_") && k.ends_with("_met") && matches!(v, Json::Bool(_))
    });
    if !has_target {
        return Err("no boolean key matching target_*_met".into());
    }
    validate_host(map)?;
    validate_metrics(map)?;
    Ok(())
}

/// Extracts every numeric speedup leaf of a report: dotted path → value,
/// for each number whose final key segment contains `"speedup"`. These are
/// the headline figures the roadmap's acceptance gates read, and the unit
/// of comparison for [`compare_trend`].
///
/// # Errors
///
/// Returns the parse error for malformed JSON.
pub fn speedup_leaves(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let value = parse_json(text)?;
    let mut keyed = Vec::new();
    walk(&value, "", &mut keyed);
    let mut leaves = BTreeMap::new();
    for (path, v) in keyed {
        let leaf = path.rsplit('.').next().unwrap_or(&path);
        if leaf.contains("speedup") {
            if let Json::Number(n) = v {
                leaves.insert(path, *n);
            }
        }
    }
    Ok(leaves)
}

/// One speedup leaf present in both reports.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendRow {
    /// Dotted path of the leaf (e.g. `fault_sim.speedup`).
    pub path: String,
    /// Value in the old (committed baseline) report.
    pub old: f64,
    /// Value in the new (freshly generated) report.
    pub new: f64,
}

impl TrendRow {
    /// Whether this leaf regressed by more than `tol` (fractional): a new
    /// value below `old * (1 - tol)` fails; improvements never do.
    pub fn regressed(&self, tol: f64) -> bool {
        self.new < self.old * (1.0 - tol)
    }
}

/// The result of comparing two reports' speedup leaves.
#[derive(Clone, Debug)]
pub struct TrendReport {
    /// Leaves present in both reports, in path order.
    pub rows: Vec<TrendRow>,
    /// Leaves the old report had but the new one lost — a gate failure
    /// (a renamed or dropped section silently escapes the trend check
    /// otherwise).
    pub missing: Vec<String>,
    /// New-only leaves — fine, reported for visibility.
    pub added: Vec<String>,
    /// Fractional regression tolerance the gate was run with.
    pub tol: f64,
}

impl TrendReport {
    /// The rows that regressed past the tolerance.
    pub fn regressions(&self) -> Vec<&TrendRow> {
        self.rows.iter().filter(|r| r.regressed(self.tol)).collect()
    }

    /// Gate verdict: no regressions and no lost leaves.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.regressions().is_empty()
    }
}

/// Compares the speedup leaves of two reports: every leaf of `old_text`
/// must still exist in `new_text` and sit within `tol` (fractional) of its
/// old value. This is the `check_bench --trend` gate `scripts/ci.sh` runs
/// between the committed `BENCH_*.json` baselines and a fresh quick run.
///
/// # Errors
///
/// Returns the parse error of whichever report is malformed.
pub fn compare_trend(old_text: &str, new_text: &str, tol: f64) -> Result<TrendReport, String> {
    let old = speedup_leaves(old_text).map_err(|e| format!("old report: {e}"))?;
    let new = speedup_leaves(new_text).map_err(|e| format!("new report: {e}"))?;
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (path, &old_value) in &old {
        match new.get(path) {
            Some(&new_value) => rows.push(TrendRow {
                path: path.clone(),
                old: old_value,
                new: new_value,
            }),
            None => missing.push(path.clone()),
        }
    }
    let added = new
        .keys()
        .filter(|p| !old.contains_key(*p))
        .cloned()
        .collect();
    Ok(TrendReport {
        rows,
        missing,
        added,
        tol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal valid host + metrics tail shared by the schema tests.
    const TAIL: &str = "\"host\": {\"available_parallelism\": 1, \"flh_threads\": null, \
\"os\": \"linux\"}, \"metrics\": {\"recorded\": false}";

    #[test]
    fn validates_required_report_fields() {
        let ok =
            format!("{{\"fault_sim\": {{\"speedup\": 7.1, \"target_5x_met\": true}}, {TAIL}}}");
        assert!(validate_bench_json(&ok).is_ok());
        // Required keys may live at different nesting levels.
        let split = format!(
            "{{\"speedup_4_workers\": 2.2, \"inner\": {{\"target_2x_met\": false}}, {TAIL}}}"
        );
        assert!(validate_bench_json(&split).is_ok());

        let no_speedup = format!("{{\"target_5x_met\": true, {TAIL}}}");
        assert!(validate_bench_json(&no_speedup)
            .unwrap_err()
            .contains("speedup"));
        let no_target = format!("{{\"speedup\": 3.0, {TAIL}}}");
        assert!(validate_bench_json(&no_target)
            .unwrap_err()
            .contains("target_*_met"));
        // Wrong types don't satisfy the rules.
        let wrong_types = format!("{{\"speedup\": \"7\", \"target_5x_met\": \"yes\", {TAIL}}}");
        assert!(validate_bench_json(&wrong_types).is_err());
        assert!(validate_bench_json("[1, 2]").is_err());
    }

    #[test]
    fn validates_host_block() {
        let base = "\"speedup\": 3.0, \"target_5x_met\": true";
        let no_host = format!("{{{base}, \"metrics\": {{\"recorded\": false}}}}");
        assert!(validate_bench_json(&no_host).unwrap_err().contains("host"));
        let bad_parallelism = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": \"1\", \"flh_threads\": null, \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&bad_parallelism)
            .unwrap_err()
            .contains("available_parallelism"));
        let bad_threads = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": 1, \"flh_threads\": \"4\", \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&bad_threads)
            .unwrap_err()
            .contains("flh_threads"));
        // FLH_THREADS set: a number is fine too.
        let numeric_threads = format!(
            "{{{base}, \"host\": {{\"available_parallelism\": 1, \"flh_threads\": 4, \
\"os\": \"linux\"}}, \"metrics\": {{\"recorded\": false}}}}"
        );
        assert!(validate_bench_json(&numeric_threads).is_ok());
    }

    #[test]
    fn trend_gate_extracts_compares_and_flags_regressions() {
        let old = "{\"fault_sim\": {\"speedup\": 10.0, \"runs\": 3}, \
\"replay\": {\"superword_speedup\": 4.0}, \"gone_speedup\": 2.0}";
        let new = "{\"fault_sim\": {\"speedup\": 9.0, \"runs\": 9}, \
\"replay\": {\"superword_speedup\": 3.0}, \"extra_speedup\": 1.0}";

        // Extraction: dotted paths, numeric speedup leaves only.
        let leaves = speedup_leaves(old).unwrap();
        assert_eq!(leaves["fault_sim.speedup"], 10.0);
        assert_eq!(leaves["replay.superword_speedup"], 4.0);
        assert!(!leaves.contains_key("fault_sim.runs"));

        // 15% tolerance: 10 -> 9 holds, 4 -> 3 regresses; the lost leaf
        // fails the gate and the new-only leaf is merely reported.
        let report = compare_trend(old, new, 0.15).unwrap();
        assert_eq!(report.missing, vec!["gone_speedup".to_string()]);
        assert_eq!(report.added, vec!["extra_speedup".to_string()]);
        let regressed: Vec<&str> = report
            .regressions()
            .iter()
            .map(|r| r.path.as_str())
            .collect();
        assert_eq!(regressed, vec!["replay.superword_speedup"]);
        assert!(!report.passed());

        // Identity comparison passes even with zero tolerance, and
        // improvements are never regressions.
        assert!(compare_trend(old, old, 0.0).unwrap().passed());
        let improved = "{\"fault_sim\": {\"speedup\": 20.0}, \
\"replay\": {\"superword_speedup\": 8.0}, \"gone_speedup\": 2.0}";
        assert!(compare_trend(old, improved, 0.0).unwrap().passed());

        assert!(compare_trend("nope", new, 0.15)
            .unwrap_err()
            .contains("old report"));
    }

    #[test]
    fn validates_metrics_section() {
        let base = "\"speedup\": 3.0, \"target_5x_met\": true, \"host\": \
{\"available_parallelism\": 1, \"flh_threads\": null, \"os\": \"linux\"}";
        let no_metrics = format!("{{{base}}}");
        assert!(validate_bench_json(&no_metrics)
            .unwrap_err()
            .contains("metrics"));
        // recorded: true demands both halves of the report.
        let half = format!("{{{base}, \"metrics\": {{\"recorded\": true}}}}");
        assert!(validate_bench_json(&half)
            .unwrap_err()
            .contains("deterministic"));
        let no_counters = format!(
            "{{{base}, \"metrics\": {{\"recorded\": true, \"deterministic\": {{}}, \
\"nondeterministic\": {{}}}}}}"
        );
        assert!(validate_bench_json(&no_counters)
            .unwrap_err()
            .contains("counters"));
        let full = format!(
            "{{{base}, \"metrics\": {{\"recorded\": true, \"deterministic\": \
{{\"counters\": {{\"replay.calls\": 3}}}}, \"nondeterministic\": {{\"spans\": []}}}}}}"
        );
        assert!(validate_bench_json(&full).is_ok());
    }
}
