//! Don't-care fill strategies vs scan-shift power — an orthogonal
//! low-power-test lever that composes with FLH: the gating keeps the
//! combinational block quiet, so the remaining shift power is the scan
//! chain's own rippling, which the X-fill of the test cubes controls.
//!
//! For every transition fault: PODEM's (mostly unspecified) V1/V2 cubes are
//! filled three ways — random, 0-fill, adjacent — and each load is shifted
//! through the chain with FLH sleep engaged, counting flip-flop toggles.

use flh_atpg::transition::enumerate_transition_faults;
use flh_atpg::{Podem, PodemConfig, TestView};
use flh_bench::{build_circuit, rule};
use flh_core::{apply_style, DftStyle};
use flh_netlist::iscas89_profiles;
use flh_rng::Rng;
use flh_sim::{Logic, LogicSim, ScanChain, ScanController};

fn main() {
    println!("X-FILL STRATEGY vs SCAN-SHIFT TOGGLES (FLH sleep engaged)");
    rule(96);
    println!(
        "{:>8} {:>8} | {:>12} {:>12} {:>12} | {:>12}",
        "Ckt", "cubes", "random", "zero-fill", "adjacent", "adj saves %"
    );
    rule(96);

    for profile in iscas89_profiles().into_iter().filter(|p| p.gates <= 700) {
        let circuit = build_circuit(&profile);
        let flh = apply_style(&circuit, DftStyle::Flh).expect("flh");
        let view = TestView::new(&flh.netlist).expect("view");
        let podem = Podem::new(&view, PodemConfig::paper_default());
        let n_pi = view.primary_input_count();

        // Collect V1 cubes for a sample of faults (the V1 load dominates
        // shift activity; V2 behaves identically).
        let faults = enumerate_transition_faults(&flh.netlist);
        let cubes: Vec<_> = faults
            .iter()
            .step_by(5)
            .filter_map(|f| podem.justify(f.site, f.initial_value()))
            .take(60)
            .collect();

        let mut rng = Rng::seed_from_u64(0xf111);
        let mut toggles = [0u64; 3];
        for (strategy, total) in toggles.iter_mut().enumerate() {
            let mut sim = LogicSim::new(&flh.netlist).expect("sim");
            sim.set_gated_cells(&flh.gated);
            sim.set_sleep(true);
            let controller = ScanController::new(ScanChain::from_netlist(&flh.netlist));
            for cube in &cubes {
                let bits = match strategy {
                    0 => cube.fill_random(&mut rng),
                    1 => cube.fill_constant(false),
                    _ => cube.fill_adjacent(),
                };
                let state: Vec<Logic> = bits[n_pi..].iter().map(|&b| Logic::from_bool(b)).collect();
                controller.shift_in(&mut sim, &state);
            }
            *total = flh
                .netlist
                .flip_flops()
                .iter()
                .map(|&ff| sim.activity().toggles(ff))
                .sum();
        }

        let saves = 100.0 * (toggles[0] as f64 - toggles[2] as f64) / toggles[0] as f64;
        println!(
            "{:>8} {:>8} | {:>12} {:>12} {:>12} | {:>12.1}",
            profile.name,
            cubes.len(),
            toggles[0],
            toggles[1],
            toggles[2],
            saves
        );
    }

    rule(96);
    println!();
    println!("adjacent fill turns the mostly-unspecified PODEM cubes into long constant");
    println!("runs, cutting chain ripple during the scan loads that dominate two-pattern");
    println!("test time — on top of FLH's complete combinational isolation.");
}
