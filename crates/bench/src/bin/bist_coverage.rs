//! Regenerates the paper's **Section IV BIST** claim: "The proposed
//! technique can be easily applied to scan-based test-per-scan BIST
//! circuits" — FLH isolates the combinational logic during every BIST
//! shift phase while leaving the signature (and therefore the BIST verdict
//! and fault coverage) identical to the unheld circuit.
//!
//! Per circuit: run a test-per-scan session under plain scan, enhanced
//! scan and FLH; report the signature, the shift-phase combinational
//! toggles, and the stuck-at coverage of the pseudo-random pattern set.

use flh_atpg::{enumerate_stuck_faults, stuck_coverage, TestView};
use flh_bench::{build_circuit, rule};
use flh_bist::controller::run_test_per_scan;
use flh_bist::BistConfig;
use flh_core::{apply_style, DftStyle};
use flh_netlist::iscas89_profiles;

fn main() {
    const PATTERNS: usize = 256;
    println!("TEST-PER-SCAN BIST WITH FLH ({PATTERNS} pseudo-random patterns)");
    rule(118);
    println!(
        "{:>8} | {:>18} {:>10} | {:>12} {:>12} {:>12} | {:>9}",
        "Ckt", "signature", "coverage%", "plain tgl", "enh tgl", "FLH tgl", "match?"
    );
    rule(118);

    for profile in iscas89_profiles().into_iter().filter(|p| p.gates <= 1000) {
        let circuit = build_circuit(&profile);
        let cfg = BistConfig::with_patterns(PATTERNS);

        let plain = apply_style(&circuit, DftStyle::PlainScan).expect("plain");
        let es = apply_style(&circuit, DftStyle::EnhancedScan).expect("es");
        let flh = apply_style(&circuit, DftStyle::Flh).expect("flh");

        let out_plain = run_test_per_scan(&plain, &plain.hold_mechanism(), &cfg).expect("session");
        let out_es = run_test_per_scan(&es, &es.hold_mechanism(), &cfg).expect("session");
        let out_flh = run_test_per_scan(&flh, &flh.hold_mechanism(), &cfg).expect("session");

        let view = TestView::new(&flh.netlist).expect("view");
        let faults = enumerate_stuck_faults(&flh.netlist);
        let detected = stuck_coverage(&view, &faults, &out_flh.applied)
            .iter()
            .filter(|&&d| d)
            .count();
        let coverage = 100.0 * detected as f64 / faults.len() as f64;

        let signatures_match =
            out_plain.signature == out_flh.signature && out_es.signature == out_flh.signature;
        println!(
            "{:>8} | {:>18} {:>10.1} | {:>12} {:>12} {:>12} | {:>9}",
            profile.name,
            format!("{:#012x}", out_flh.signature),
            coverage,
            out_plain.comb_toggles_during_shift,
            out_es.comb_toggles_during_shift,
            out_flh.comb_toggles_during_shift,
            if signatures_match { "YES" } else { "NO" }
        );
        assert!(signatures_match, "{}: signature changed!", profile.name);
        assert_eq!(out_flh.comb_toggles_during_shift, 0);
    }

    rule(118);
    println!();
    println!("paper: FLH applies unchanged to test-per-scan BIST and suppresses all redundant switching during shifting");
    println!("measured: identical signatures across styles; zero combinational toggles in every FLH/enhanced-scan shift phase (asserted)");
}
