//! Regenerates **Table I** of the paper: percentage area increase of
//! enhanced scan, the MUX-based method and FLH over the plain full-scan
//! implementation, with the flip-flop fanout statistics.
//!
//! Paper reference points: FLH smallest for most circuits, an average
//! improvement of ≈33% over enhanced scan and ≈26% over the MUX method,
//! ≈2.3 total fanouts and ≈1.8 unique first-level gates per flip-flop on
//! average, with s838 as the high-fanout outlier where FLH can cost more.

use flh_bench::{cached_circuit, evaluate_profiles_engine, mean, rule, style};
use flh_core::{overhead_improvement_pct, DftStyle, EvalConfig};
use flh_netlist::{iscas89_profiles, CircuitStats};
use flh_serve::JobEngine;

fn main() {
    let config = EvalConfig::paper_default();
    println!("TABLE I: COMPARISON OF PERCENTAGE AREA INCREASE");
    rule(118);
    println!(
        "{:>8} {:>6} {:>8} {:>8} {:>7} | {:>10} {:>10} {:>8} | {:>10} {:>10}",
        "Ckt",
        "FFs",
        "TotalFO",
        "UniqueFO",
        "Ratio",
        "Enh.scan%",
        "MUX%",
        "FLH%",
        "impr/MUX%",
        "impr/Enh%"
    );
    rule(118);

    let mut enh_ovh = Vec::new();
    let mut mux_ovh = Vec::new();
    let mut flh_ovh = Vec::new();
    let mut impr_mux = Vec::new();
    let mut impr_enh = Vec::new();
    let mut ratios = Vec::new();
    let mut avg_fo = Vec::new();

    let profiles = iscas89_profiles();
    let engine = JobEngine::from_env();
    let rows = evaluate_profiles_engine(&profiles, &config, &engine);
    for (profile, evals) in profiles.iter().zip(&rows) {
        let entry = cached_circuit(&engine, profile);
        let stats = CircuitStats::compute(&entry.netlist).expect("generated circuit is valid");
        let enh = style(&evals, DftStyle::EnhancedScan).area_increase_pct();
        let mux = style(&evals, DftStyle::MuxHold).area_increase_pct();
        let flh = style(&evals, DftStyle::Flh).area_increase_pct();
        let im = overhead_improvement_pct(flh, mux);
        let ie = overhead_improvement_pct(flh, enh);
        println!(
            "{:>8} {:>6} {:>8} {:>8} {:>7.2} | {:>10.2} {:>10.2} {:>8.2} | {:>10.1} {:>10.1}",
            profile.name,
            stats.flip_flops,
            stats.total_ff_fanouts,
            stats.unique_first_level_gates,
            stats.unique_fanout_ratio(),
            enh,
            mux,
            flh,
            im,
            ie
        );
        enh_ovh.push(enh);
        mux_ovh.push(mux);
        flh_ovh.push(flh);
        impr_mux.push(im);
        impr_enh.push(ie);
        ratios.push(stats.unique_fanout_ratio());
        avg_fo.push(stats.avg_ff_fanout());
    }

    rule(118);
    println!(
        "{:>8} {:>6} {:>8.2} {:>8} {:>7.2} | {:>10.2} {:>10.2} {:>8.2} | {:>10.1} {:>10.1}",
        "avg",
        "",
        mean(&avg_fo),
        "",
        mean(&ratios),
        mean(&enh_ovh),
        mean(&mux_ovh),
        mean(&flh_ovh),
        mean(&impr_mux),
        mean(&impr_enh)
    );
    println!();
    println!(
        "paper: avg fanouts/FF = 2.3, unique/FF = 1.8, FLH improvement 33% over enhanced scan, 26% over MUX"
    );
    println!(
        "measured: avg fanouts/FF = {:.2}, unique/FF = {:.2}, FLH improvement {:.0}% over enhanced scan, {:.0}% over MUX",
        mean(&avg_fo), mean(&ratios), mean(&impr_enh), mean(&impr_mux)
    );
}
