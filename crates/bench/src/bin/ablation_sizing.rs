//! Ablation study of the FLH sizing choices (paper Section III/V):
//!
//! 1. **gating transistor width** — "The size of the supply gating
//!    transistors can be optimized for delay under the given area
//!    constraint. … Larger-sized sleep transistors for gates in the
//!    critical path can be used to further reduce the delay penalty. It
//!    increases the area overhead but does not affect the switching power
//!    of the gates." Swept at the circuit level (area% / delay% / power%).
//! 2. **keeper strength vs. electrical hold** — "Minimum sized inverters
//!    are large enough to be able to hold the state of the output node in
//!    the hold mode despite the presence of leakage and noise." Swept at
//!    the transistor level (worst held voltage over a 1 µs sleep).
//! 3. **gating width vs. keeperless decay** — wider sleep devices leak
//!    more, so the unkept node dies even faster; quantifies why the keeper
//!    is mandatory at every sizing.

use flh_analog::{
    gated_chain, simulate, steady_state_initial, GatedChainConfig, InputStimulus, TransientConfig,
};
use flh_bench::{build_circuit, rule};
use flh_core::{evaluate_all, DftStyle, EvalConfig};
use flh_netlist::iscas89_profile;
use flh_tech::{FlhConfig, Technology};

fn main() {
    let tech = Technology::bptm70();

    // 1. Gating width sweep on s1423.
    println!("ABLATION 1: GATING TRANSISTOR WIDTH (s1423, keeper fixed)");
    rule(82);
    println!(
        "{:>12} | {:>10} {:>10} {:>10}",
        "Wgate (xmin)", "area %", "delay %", "power %"
    );
    rule(82);
    let profile = iscas89_profile("s1423").expect("profile");
    let circuit = build_circuit(&profile);
    for mult in [1.5, 2.0, 3.0, 4.0, 6.0, 8.0] {
        let mut cfg = EvalConfig::paper_default();
        cfg.flh.gating_n_mult = mult;
        cfg.flh.gating_p_mult = 2.0 * mult;
        let evals = evaluate_all(&circuit, &cfg).expect("evaluates");
        let flh = evals
            .iter()
            .find(|e| e.style == DftStyle::Flh)
            .expect("flh present");
        println!(
            "{:>12.1} | {:>10.2} {:>10.2} {:>10.2}",
            mult,
            flh.area_increase_pct(),
            flh.delay_increase_pct(),
            flh.power_increase_pct()
        );
    }
    println!("expectation: delay falls and area rises monotonically; power barely moves");
    println!();

    // 2. Keeper strength vs. electrical hold quality (quiet 1 µs sleep).
    println!("ABLATION 2: KEEPER STRENGTH vs 1 us HOLD (Fig. 3 stage)");
    rule(60);
    println!(
        "{:>14} | {:>16} {:>10}",
        "Wkeeper (xmin)", "OUT1 min (V)", "held?"
    );
    rule(60);
    for mult in [0.2, 0.3, 0.45, 0.6, 1.0, 2.0] {
        let mut flh = FlhConfig::paper_default();
        flh.keeper_n_mult = mult;
        flh.keeper_p_mult = 2.0 * mult;
        let config = GatedChainConfig {
            with_keeper: true,
            sleep_start_ns: 2.0,
            input: InputStimulus::Step { at_ns: 7.0 },
            aggressor_cap_ff: 0.0,
            flh,
        };
        let (c, probes) = gated_chain(&tech, &config);
        let init = steady_state_initial(&tech, &probes, &c);
        let trace = simulate(&c, &TransientConfig::for_window_ns(1000.0), &init);
        let worst = trace.min_in_window(probes.out1, 2.0, 1000.0);
        println!(
            "{:>14.2} | {:>16.3} {:>10}",
            mult,
            worst,
            if worst > 0.8 * tech.vdd { "yes" } else { "NO" }
        );
    }
    println!("expectation: even deep sub-minimum keepers hold a quiet sleep (leakage is nA-scale)");
    println!();

    // 3. Gating width vs. keeperless decay speed.
    println!("ABLATION 3: GATING WIDTH vs KEEPERLESS DECAY (Fig. 2 stage)");
    rule(64);
    println!(
        "{:>12} | {:>22} {:>12}",
        "Wgate (xmin)", "OUT1 < 600 mV after", "1 us safe?"
    );
    rule(64);
    for mult in [1.5, 3.0, 6.0, 12.0] {
        let mut cfg = GatedChainConfig::fig2();
        cfg.flh.gating_n_mult = mult;
        cfg.flh.gating_p_mult = 2.0 * mult;
        let (c, probes) = gated_chain(&tech, &cfg);
        let init = steady_state_initial(&tech, &probes, &c);
        let trace = simulate(&c, &TransientConfig::for_window_ns(1000.0), &init);
        match trace.first_time_below(probes.out1, 0.6, 7.0) {
            Some(t) => println!(
                "{:>12.1} | {:>19.1} ns {:>12}",
                mult,
                t - 7.0,
                if t - 7.0 > 1000.0 { "yes" } else { "NO" }
            ),
            None => println!("{:>12.1} | {:>22} {:>12}", mult, "> window", "yes"),
        }
    }
    println!("expectation: every sizing decays far inside the 1 us scan window — the keeper is mandatory");
    println!();

    // 4. Mixed sizing: widen only the critical-path gated gates.
    println!("ABLATION 4: MIXED CRITICAL-PATH GATING (wide devices on the critical gates only)");
    rule(108);
    println!(
        "{:>8} | {:>6} {:>6} | {:>14} {:>12} {:>12} | {:>14}",
        "Ckt", "gated", "wide", "uniform (ps)", "mixed (ps)", "saved (ps)", "area add (um2)"
    );
    rule(108);
    for name in ["s526", "s838", "s1423"] {
        let profile = iscas89_profile(name).expect("profile");
        let circuit = build_circuit(&profile);
        let flh = flh_core::apply_style(&circuit, flh_core::DftStyle::Flh).expect("flh");
        let result = flh_core::select_critical_gating(
            &flh,
            &EvalConfig::paper_default(),
            &FlhConfig::wide_gating(),
            8,
        )
        .expect("selector");
        println!(
            "{:>8} | {:>6} {:>6} | {:>14.0} {:>12.0} {:>12.1} | {:>14.3}",
            name,
            flh.gated.len(),
            result.wide.len(),
            result.delay_uniform_ps,
            result.delay_mixed_ps,
            result.delay_saved_ps(),
            result.extra_area_um2
        );
    }
    println!(
        "expectation: a handful of wide gates recover most of the gating delay at a tiny area cost"
    );
}
