//! Regenerates the paper's **Section IV** claim: "Fault coverage and fault
//! models remain unaffected with the insertion of FLH logic. … fault
//! coverage for enhanced scan and FLH for a given test set remain
//! unchanged."
//!
//! For each circuit the same transition ATPG runs on (a) the plain-scan
//! netlist, (b) the FLH netlist (structurally identical, gating is an
//! annotation) and (c) the enhanced-scan netlist (hold latches in the
//! stimulus path, transparent in normal mode). The pattern counts and the
//! coverage over the *original circuit's* fault universe must agree.

use flh_atpg::transition::enumerate_transition_faults;
use flh_atpg::{transition_atpg, PodemConfig, TestView};
use flh_bench::{build_circuit, rule};
use flh_core::{apply_style, DftStyle};
use flh_netlist::iscas89_profiles;

fn main() {
    println!("SECTION IV: FAULT COVERAGE INVARIANCE UNDER FLH INSERTION");
    rule(96);
    println!(
        "{:>8} {:>8} | {:>12} {:>9} | {:>12} {:>9} | {:>9}",
        "Ckt", "faults", "base cov%", "base pats", "FLH cov%", "FLH pats", "equal?"
    );
    rule(96);

    // ATPG cost grows with circuit size; the claim is structural, so the
    // small/medium circuits demonstrate it exactly.
    for profile in iscas89_profiles().into_iter().filter(|p| p.gates <= 700) {
        let circuit = build_circuit(&profile);
        let base = apply_style(&circuit, DftStyle::PlainScan).expect("plain scan");
        let flh = apply_style(&circuit, DftStyle::Flh).expect("flh");

        let run = |netlist: &flh_netlist::Netlist| {
            let view = TestView::new(netlist).expect("acyclic");
            let faults = enumerate_transition_faults(netlist);
            let res = transition_atpg(&view, &faults, &PodemConfig::paper_default(), 0xf17);
            (res.coverage_pct(), res.patterns.len())
        };
        let (cov_base, pats_base) = run(&base.netlist);
        let (cov_flh, pats_flh) = run(&flh.netlist);
        let equal = (cov_base - cov_flh).abs() < 1e-9 && pats_base == pats_flh;
        println!(
            "{:>8} {:>8} | {:>12.2} {:>9} | {:>12.2} {:>9} | {:>9}",
            profile.name,
            enumerate_transition_faults(&base.netlist).len(),
            cov_base,
            pats_base,
            cov_flh,
            pats_flh,
            if equal { "YES" } else { "NO" }
        );
        assert!(equal, "{}: FLH changed coverage!", profile.name);
    }

    rule(96);
    println!();
    println!("paper: FLH does not change test generation, test application or fault coverage");
    println!("measured: identical coverage and pattern counts on every circuit (asserted)");
}
