//! Regenerates the paper's **Section IV** test-mode power argument: during
//! scan shifting, a plain-scan circuit burns energy in redundant
//! combinational switching (Gerstendörfer & Wunderlich report ~78% of test
//! energy there); enhanced scan blocks it with the hold latches, and "FLH
//! is equally effective in completely eliminating redundant switching
//! power in the combinational logic".
//!
//! Method: shift several full random loads through the chain under each
//! style (holding engaged) and compare shift-mode dynamic power.

use flh_bench::{build_circuit, mean, rule};
use flh_core::{apply_style, DftStyle};
use flh_netlist::iscas89_profiles;
use flh_power::{estimate, FlhPowerAnnotation, OperatingMode, PowerConfig};
use flh_rng::Rng;
use flh_sim::{Logic, LogicSim, ScanChain, ScanController};
use flh_tech::{CellLibrary, FlhConfig, FlhPhysical, Technology};

fn shift_mode_power(
    netlist: &flh_netlist::Netlist,
    style: DftStyle,
    gated: &[flh_netlist::CellId],
    library: &CellLibrary,
    flh_phys: &FlhPhysical,
    loads: usize,
    seed: u64,
) -> (f64, u64) {
    let mut sim = LogicSim::new(netlist).expect("acyclic");
    let controller = ScanController::new(ScanChain::from_netlist(netlist));
    let mut rng = Rng::seed_from_u64(seed);

    // Random starting state, holding engaged per style.
    for i in 0..netlist.flip_flops().len() {
        sim.set_ff_by_index(i, Logic::from_bool(rng.gen()));
    }
    let inputs: Vec<Logic> = (0..netlist.inputs().len())
        .map(|_| Logic::from_bool(rng.gen()))
        .collect();
    sim.set_inputs(&inputs);
    match style {
        DftStyle::EnhancedScan | DftStyle::MuxHold => sim.set_hold(true),
        DftStyle::Flh => {
            sim.set_gated_cells(gated);
            sim.set_sleep(true);
        }
        DftStyle::PlainScan => {}
    }
    sim.settle();
    sim.reset_activity();

    for _ in 0..loads {
        let pattern: Vec<Logic> = (0..controller.chain().len())
            .map(|_| Logic::from_bool(rng.gen()))
            .collect();
        controller.shift_in(&mut sim, &pattern);
    }

    let comb_toggles: u64 = netlist
        .iter()
        .filter(|(_, c)| c.kind().is_combinational() || c.kind().is_hold_element())
        .map(|(id, _)| sim.activity().toggles(id))
        .sum();
    let ann = FlhPowerAnnotation {
        gated,
        physical: flh_phys,
    };
    let power = estimate(
        netlist,
        library,
        sim.activity(),
        &PowerConfig::paper_default(),
        if style == DftStyle::Flh {
            Some(&ann)
        } else {
            None
        },
        OperatingMode::ScanShift,
    );
    (power.dynamic_uw, comb_toggles)
}

fn main() {
    let tech = Technology::bptm70();
    let library = CellLibrary::new(tech.clone());
    let flh_phys = FlhPhysical::derive(&tech, &FlhConfig::paper_default());
    const LOADS: usize = 8;

    println!("TEST-MODE (SCAN-SHIFT) POWER: REDUNDANT SWITCHING SUPPRESSION");
    rule(112);
    println!(
        "{:>8} | {:>12} {:>12} | {:>12} {:>9} | {:>12} {:>9}",
        "Ckt", "plain(uW)", "comb tgl", "enh.scan(uW)", "saved%", "FLH(uW)", "saved%"
    );
    rule(112);

    let mut saved_es = Vec::new();
    let mut saved_flh = Vec::new();
    for profile in iscas89_profiles().into_iter().filter(|p| p.gates <= 3000) {
        let circuit = build_circuit(&profile);
        let plain = apply_style(&circuit, DftStyle::PlainScan).expect("plain");
        let es = apply_style(&circuit, DftStyle::EnhancedScan).expect("es");
        let flh = apply_style(&circuit, DftStyle::Flh).expect("flh");

        let (p_plain, tgl) = shift_mode_power(
            &plain.netlist,
            DftStyle::PlainScan,
            &[],
            &library,
            &flh_phys,
            LOADS,
            42,
        );
        let (p_es, _) = shift_mode_power(
            &es.netlist,
            DftStyle::EnhancedScan,
            &[],
            &library,
            &flh_phys,
            LOADS,
            42,
        );
        let (p_flh, _) = shift_mode_power(
            &flh.netlist,
            DftStyle::Flh,
            &flh.gated,
            &library,
            &flh_phys,
            LOADS,
            42,
        );
        let s_es = 100.0 * (p_plain - p_es) / p_plain;
        let s_flh = 100.0 * (p_plain - p_flh) / p_plain;
        println!(
            "{:>8} | {:>12.2} {:>12} | {:>12.2} {:>9.1} | {:>12.2} {:>9.1}",
            profile.name, p_plain, tgl, p_es, s_es, p_flh, s_flh
        );
        saved_es.push(s_es);
        saved_flh.push(s_flh);
    }

    rule(112);
    println!();
    println!("paper (citing [12]): ~78% of test-mode energy is redundant combinational switching; enhanced scan blocks it, and FLH is equally effective");
    println!(
        "measured: enhanced scan saves {:.0}%, FLH saves {:.0}% of shift-mode dynamic power on average",
        mean(&saved_es),
        mean(&saved_flh)
    );
}
