//! Test-application-time comparison across the three styles — the cost
//! side of the coverage argument in the paper's introduction. Arbitrary
//! two-pattern application (enhanced scan / FLH) pays two scan loads per
//! test; broadside and skewed-load pay one. The question the tester
//! economics ask: *cycles to reach a coverage target*.
//!
//! Per circuit: the broadside random campaign's coverage ceiling (at a
//! large pair budget) is the target; each style then runs until it reaches
//! that target (or exhausts the budget), and the pair counts convert to
//! tester cycles through the scan-time model.

use flh_atpg::{
    cycles_per_pattern, pairs_to_reach_coverage, random_transition_campaign, ApplicationStyle,
};
use flh_bench::{build_circuit, rule};
use flh_netlist::iscas89_profiles;

fn main() {
    const BUDGET: usize = 4096;
    const SEED: u64 = 0x7e57;

    println!("CYCLES TO REACH THE BROADSIDE COVERAGE CEILING ({BUDGET}-pair budget)");
    rule(118);
    println!(
        "{:>8} {:>6} | {:>9} | {:>16} {:>16} {:>16} | {:>14}",
        "Ckt", "FFs", "target %", "arbitrary", "broadside", "skewed-load", "arb speedup"
    );
    rule(118);

    for profile in iscas89_profiles().into_iter().filter(|p| p.gates <= 3000) {
        let circuit = build_circuit(&profile);
        let load = circuit.flip_flops().len();

        // Coverage ceiling of broadside at the full budget.
        let ceiling =
            random_transition_campaign(&circuit, ApplicationStyle::Broadside, BUDGET, SEED)
                .expect("campaign");
        let target = ceiling.coverage_pct();

        let mut row: Vec<(ApplicationStyle, u64)> = Vec::new();
        for style in [
            ApplicationStyle::ArbitraryTwoPattern,
            ApplicationStyle::Broadside,
            ApplicationStyle::SkewedLoad,
        ] {
            let run =
                pairs_to_reach_coverage(&circuit, style, target, BUDGET, SEED).expect("campaign");
            let reached = run.coverage_pct() >= target;
            let cycles = run.pairs as u64 * cycles_per_pattern(style, load) as u64;
            row.push((style, if reached { cycles } else { u64::MAX }));
        }
        let fmt = |c: u64| {
            if c == u64::MAX {
                "not reached".to_string()
            } else {
                format!("{c}")
            }
        };
        let arb = row[0].1;
        let brd = row[1].1;
        let speedup = if arb != u64::MAX && brd != u64::MAX {
            format!("{:.2}x", brd as f64 / arb as f64)
        } else {
            "-".into()
        };
        println!(
            "{:>8} {:>6} | {:>9.1} | {:>16} {:>16} {:>16} | {:>14}",
            profile.name,
            load,
            target,
            fmt(row[0].1),
            fmt(row[1].1),
            fmt(row[2].1),
            speedup
        );
    }

    rule(118);
    println!();
    println!("arbitrary pairs pay 2 scan loads per test but need far fewer tests for the");
    println!("same coverage — and they reach coverage broadside never can. This is the");
    println!("test-economics case for enhanced-scan-style application, which FLH provides");
    println!("at a third of the hardware cost.");
}
