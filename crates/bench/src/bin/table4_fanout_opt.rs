//! Regenerates **Table IV** of the paper: the Section V local fanout
//! optimization — first-level-gate count, FLH area overhead and
//! combinational power before and after, under an unchanged critical-path
//! delay.
//!
//! Paper reference points: up to ≈37% (average ≈18%) improvement in area
//! overhead; for some circuits (s5378) the number of first-level gates
//! drops below the flip-flop count; normal-mode power stays comparable.

use flh_bench::{build_circuit, mean, rule};
use flh_core::{apply_style, optimize_fanout, DftStyle, EvalConfig, FanoutOptConfig};
use flh_netlist::profiles::table4_profiles;
use flh_power::{random_vector_power, FlhPowerAnnotation, PowerConfig};
use flh_tech::{CellLibrary, FlhPhysical};

fn main() {
    let eval = EvalConfig::paper_default();
    let opt_config = FanoutOptConfig {
        fanout_threshold: 2,
        eval: eval.clone(),
    };
    let library = CellLibrary::new(eval.technology.clone());
    let flh_phys = FlhPhysical::derive(&eval.technology, &eval.flh);
    let power_cfg = PowerConfig::paper_default();

    println!("TABLE IV: AREA AND POWER BEFORE/AFTER FANOUT OPTIMIZATION");
    rule(122);
    println!(
        "{:>8} {:>6} | {:>9} {:>9} | {:>12} {:>12} {:>8} | {:>11} {:>11} | {:>5}",
        "Ckt",
        "FFs",
        "FLG(bef)",
        "FLG(aft)",
        "ovh bef(um2)",
        "ovh aft(um2)",
        "improv%",
        "P bef(uW)",
        "P aft(uW)",
        "invs"
    );
    rule(122);

    let mut improvements = Vec::new();
    for profile in table4_profiles() {
        let circuit = build_circuit(&profile);
        let flh = apply_style(&circuit, DftStyle::Flh).expect("FLH applies");
        let result = optimize_fanout(&flh, &opt_config).expect("optimizer runs");

        let power_before = random_vector_power(
            &flh.netlist,
            &library,
            &power_cfg,
            Some(&FlhPowerAnnotation {
                gated: &flh.gated,
                physical: &flh_phys,
            }),
            eval.vectors,
            eval.seed,
        )
        .expect("power estimation")
        .total_uw();
        let power_after = random_vector_power(
            &result.netlist,
            &library,
            &power_cfg,
            Some(&FlhPowerAnnotation {
                gated: &result.gated,
                physical: &flh_phys,
            }),
            eval.vectors,
            eval.seed,
        )
        .expect("power estimation")
        .total_uw();

        println!(
            "{:>8} {:>6} | {:>9} {:>9} | {:>12.3} {:>12.3} {:>8.1} | {:>11.1} {:>11.1} | {:>5}",
            profile.name,
            profile.flip_flops,
            result.flg_before,
            result.flg_after,
            result.area_overhead_before_um2,
            result.area_overhead_after_um2,
            result.area_improvement_pct(),
            power_before,
            power_after,
            result.inverters_added,
        );
        improvements.push(result.area_improvement_pct());
    }

    rule(122);
    let max = improvements
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    println!();
    println!("paper: up to 37% improvement (avg 18%) in FLH area overhead; power comparable; s5378 ends with fewer first-level gates than flip-flops");
    println!(
        "measured: avg improvement = {:.1}%, max = {:.1}%",
        mean(&improvements),
        max
    );
}
