//! Regenerates **Fig. 4** of the paper: the FLH scheme (supply gating plus
//! the minimum-sized keeper of Fig. 3) applied to the same inverter chain.
//! The input toggles at the 1 GHz scan rate during sleep; OUT1–OUT3 hold
//! their state solidly.
//!
//! Paper reference point: "the circuit can strongly hold its state (OUT1,
//! OUT2, and OUT3) despite the switching at the input (IN)".

use flh_analog::{gated_chain, simulate, steady_state_initial, GatedChainConfig, TransientConfig};
use flh_tech::Technology;

fn main() {
    let tech = Technology::bptm70();
    // 100 ns of 1 GHz toggling (200 edges) inside the sleep window.
    let config = GatedChainConfig::fig4(200);
    let (circuit, probes) = gated_chain(&tech, &config);
    let init = steady_state_initial(&tech, &probes, &circuit);
    let window_ns = 120.0;
    let trace = simulate(&circuit, &TransientConfig::for_window_ns(window_ns), &init);

    println!("FIG. 4: FLH KEEPER HOLD THROUGH 1 GHz INPUT TOGGLING");
    println!("sleep asserted at 2 ns, IN toggles every 0.5 ns from 7 ns");
    println!();
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8}",
        "t (ns)", "IN (V)", "OUT1", "OUT2", "OUT3"
    );
    for &t in &[0.5, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 119.0] {
        let idx = trace.sample_at(t);
        let volts = trace.snapshot(idx);
        println!(
            "{:>10.1} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            trace.time_ns()[idx],
            volts[probes.input.index()],
            volts[probes.out1.index()],
            volts[probes.out2.index()],
            volts[probes.out3.index()],
        );
    }

    let worst_out1 = trace.min_in_window(probes.out1, 2.0, window_ns);
    let worst_out2 = trace.max_in_window(probes.out2, 10.0, window_ns);
    let worst_out3 = trace.min_in_window(probes.out3, 10.0, window_ns);
    println!();
    println!(
        "hold quality over the window: OUT1 min = {worst_out1:.3} V (must stay ~VDD), OUT2 max = {worst_out2:.3} V (~0), OUT3 min = {worst_out3:.3} V (~VDD)"
    );
    let held =
        worst_out1 > 0.8 * tech.vdd && worst_out2 < 0.2 * tech.vdd && worst_out3 > 0.8 * tech.vdd;
    println!(
        "paper: state strongly held despite input switching  |  measured: {}",
        if held {
            "HELD"
        } else {
            "LOST — calibration drift!"
        }
    );
}
