//! Monte Carlo robustness of the FLH hold under local process variation —
//! closing the loop on the paper's own motivation: "with growing impact of
//! process variation in sub-100nm technology regime, designers face more
//! uncertainty … and delay faults become more likely". The DFT hardware
//! that tests for those faults must itself survive the variation.
//!
//! Every transistor of the Fig. 2/Fig. 3 stage receives an independent
//! N(0, σ) threshold shift; per sample we measure the keeperless decay
//! time and the kept node's worst voltage over a 1.5 µs window.

use flh_analog::monte_carlo_hold_robustness;
use flh_bench::rule;
use flh_tech::Technology;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    const SAMPLES: usize = 60;
    const WINDOW_NS: f64 = 1500.0;
    let tech = Technology::bptm70();

    println!("MONTE CARLO HOLD ROBUSTNESS ({SAMPLES} samples per sigma, {WINDOW_NS} ns window)");
    rule(112);
    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>12} | {:>14} {:>12}",
        "sigma(mV)", "decay p10", "median", "p90 (ns)", "survive 1us", "kept min (V)", "all held?"
    );
    rule(112);

    for sigma_mv in [10.0, 20.0, 30.0, 50.0] {
        let samples =
            monte_carlo_hold_robustness(&tech, sigma_mv * 1e-3, SAMPLES, 0xbeef, WINDOW_NS);
        let mut decays: Vec<f64> = samples
            .iter()
            .filter_map(|s| s.keeperless_decay_ns)
            .collect();
        decays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let survived = samples
            .iter()
            .filter(|s| s.keeperless_decay_ns.is_none_or(|d| d > 1000.0))
            .count();
        let kept_min = samples
            .iter()
            .map(|s| s.kept_min_v)
            .fold(f64::INFINITY, f64::min);
        let all_held = samples.iter().all(|s| s.kept_min_v > 0.75 * tech.vdd);
        println!(
            "{:>10.0} | {:>12.1} {:>12.1} {:>12.1} {:>12} | {:>14.3} {:>12}",
            sigma_mv,
            percentile(&decays, 0.10),
            percentile(&decays, 0.50),
            percentile(&decays, 0.90),
            survived,
            kept_min,
            if all_held { "yes" } else { "NO" }
        );
    }

    rule(112);
    println!();
    println!("the keeperless floating node dies well inside the 1 us scan window on the");
    println!("typical die at every sigma, while the FLH keeper holds in every sampled");
    println!("corner — the hold mechanism is robust to the same variation that motivates");
    println!("delay testing in the first place.");
}
