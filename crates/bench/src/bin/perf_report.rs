//! Throughput report for the compiled-IR refactor (`BENCH_compiled_ir.json`).
//!
//! Measures two hot paths on the s13207 profile and compares the compiled
//! [`flh_netlist::CompiledCircuit`] pipeline against the frozen seed path
//! (`flh_bench::seed_baseline`):
//!
//! * logic simulation — full functional cycles (settle + clock capture),
//!   reported as nominal gate evaluations per second;
//! * 64-pattern stuck-at fault simulation — one `run_batch` over the stem
//!   fault list, reported as patterns per second.
//!
//! Usage: `perf_report [--quick] [--out PATH]`. `--quick` shrinks the
//! iteration counts so `scripts/ci.sh` can run it as a smoke test; the
//! speedup target (≥ 5× on fault simulation) is only meaningful in the
//! full run. The JSON report is hand-written (no serde in this workspace).
//!
//! `--metrics-json PATH` turns the flh-obs recorder on and writes the full
//! metrics report (deterministic counters plus the nondeterministic timing
//! section); `FLH_TRACE=<path>` additionally writes a Chrome trace-event
//! file of the per-stage spans. Every `BENCH_*.json` report carries a
//! `host` block (parallelism, `FLH_THREADS`, OS) and a `metrics` section —
//! `{"recorded": false}` unless the recorder was on.

use std::fs;
use std::time::Instant;

use flh_atpg::{
    enumerate_stuck_faults, enumerate_transition_faults, order_stuck_faults,
    order_transition_faults, stuck_coverage_partitioned, Fault, FaultSite, StuckSimulator,
    TestView, TransitionSimulator, PATTERN_BLOCK,
};
use flh_bench::build_circuit;
use flh_bench::replay64::{StuckSimulator64, TransitionSimulator64};
use flh_bench::seed_baseline::{BaselineStuckSimulator, BaselineView};
use flh_bench::transition_baseline::BaselineTransitionSimulator;
use flh_exec::ThreadPool;
use flh_netlist::{
    iscas89_profile, CompiledCircuit, Dual256, Dual64, LaneWord, Netlist, Packed256, Program,
};
use flh_rng::Rng;
use flh_sim::{settle_packed, CompiledSim, Logic, LogicSim};

const CIRCUIT: &str = "s13207";
/// Pattern lanes per simulation block on the compiled path (one
/// [`Packed256`] superword); the seed/legacy baselines run 64-lane words,
/// so each rep feeds them the same block as four sub-batches.
const LANES: u64 = PATTERN_BLOCK as u64;

struct Options {
    quick: bool,
    out: String,
    out_parallel: String,
    out_transition: String,
    metrics_json: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        out: "BENCH_compiled_ir.json".to_string(),
        out_parallel: "BENCH_parallel_fsim.json".to_string(),
        out_transition: "BENCH_transition_fsim.json".to_string(),
        metrics_json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = args.next().expect("--out requires a path"),
            "--out-parallel" => {
                opts.out_parallel = args.next().expect("--out-parallel requires a path")
            }
            "--out-transition" => {
                opts.out_transition = args.next().expect("--out-transition requires a path")
            }
            "--metrics-json" => {
                opts.metrics_json = Some(args.next().expect("--metrics-json requires a path"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_report [--quick] [--out PATH] [--out-parallel PATH] [--out-transition PATH] [--metrics-json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The `host` block embedded in every `BENCH_*.json` report: what the
/// numbers were measured on. One line, comma-terminated.
fn host_json_block(host_threads: usize) -> String {
    let flh_threads = std::env::var("FLH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or("null".to_string(), |n| n.to_string());
    format!(
        "  \"host\": {{\"available_parallelism\": {host_threads}, \"flh_threads\": {flh_threads}, \"os\": \"{}\"}},\n",
        std::env::consts::OS
    )
}

/// The `metrics` section embedded in every `BENCH_*.json` report. Last
/// member of the document: newline-terminated, no trailing comma.
fn metrics_json_block() -> String {
    if flh_obs::enabled() {
        let snap = flh_obs::snapshot();
        format!(
            "  \"metrics\": {{\"recorded\": true, \"deterministic\": {}, \"nondeterministic\": {}}}\n",
            flh_obs::deterministic_json(&snap),
            flh_obs::nondeterministic_json(&snap)
        )
    } else {
        "  \"metrics\": {\"recorded\": false}\n".to_string()
    }
}

fn random_vector(rng: &mut Rng, width: usize) -> Vec<Logic> {
    (0..width)
        .map(|_| {
            if rng.gen::<u64>() & 1 == 0 {
                Logic::Zero
            } else {
                Logic::One
            }
        })
        .collect()
}

struct LogicSimResult {
    cycles: usize,
    nominal_events: u64,
    event_driven_s: f64,
    compiled_s: f64,
}

fn bench_logic_sim(netlist: &Netlist, compiled: &CompiledCircuit, cycles: usize) -> LogicSimResult {
    let width = netlist.inputs().len();
    let vectors: Vec<Vec<Logic>> = {
        let mut rng = Rng::seed_from_u64(0xC1C0);
        (0..cycles)
            .map(|_| random_vector(&mut rng, width))
            .collect()
    };

    let mut event_sim = LogicSim::new(netlist).expect("acyclic benchmark circuit");
    let t0 = Instant::now();
    for v in &vectors {
        event_sim.apply_vector(v);
    }
    let event_elapsed = t0.elapsed().as_secs_f64();

    let mut compiled_sim = CompiledSim::new(compiled);
    let t0 = Instant::now();
    for v in &vectors {
        compiled_sim.apply_vector(v);
    }
    let compiled_elapsed = t0.elapsed().as_secs_f64();

    // Both simulators must agree cycle-for-cycle; spot-check the end state.
    assert_eq!(
        event_sim.outputs(),
        compiled_sim.outputs(),
        "event-driven and compiled logic sim diverged"
    );

    // Nominal events: one evaluation of every levelized cell per settle, two
    // settles per applied vector (pre- and post-capture). The event-driven
    // simulator evaluates fewer cells per cycle; using the same nominal
    // count for both sides compares wall-clock per cycle directly.
    let nominal_events = (cycles as u64) * 2 * compiled.order().len() as u64;
    LogicSimResult {
        cycles,
        nominal_events,
        event_driven_s: nominal_events as f64 / event_elapsed,
        compiled_s: nominal_events as f64 / compiled_elapsed,
    }
}

struct CodegenResult {
    instructions: usize,
    micro_ops: u64,
    fused_micro_ops: u64,
    scratch_words: usize,
    batches: usize,
    dual64_lane_evals_s: f64,
    dual256_lane_evals_s: f64,
    superword_speedup: f64,
}

/// Static program statistics plus packed-settle throughput at both lane
/// widths: 64 lanes (`Dual64`) against the 256-lane `Dual256` superword.
/// The metric is per-lane cell evaluations per second, so the superword
/// speedup is the genuine throughput gain of the wider word.
fn bench_codegen_v2(compiled: &CompiledCircuit, program: &Program, iters: usize) -> CodegenResult {
    let n = compiled.cell_count();
    let mut rng = Rng::seed_from_u64(0xC0DE);
    let seed: Vec<bool> = (0..n).map(|_| rng.gen()).collect();

    let mut v64: Vec<Dual64> = seed
        .iter()
        .map(|&b| if b { Dual64::top() } else { Dual64::bot() })
        .collect();
    let t0 = Instant::now();
    for _ in 0..iters {
        settle_packed(program, &mut v64);
    }
    let elapsed64 = t0.elapsed().as_secs_f64();

    let mut v256: Vec<Dual256> = seed
        .iter()
        .map(|&b| if b { Dual256::top() } else { Dual256::bot() })
        .collect();
    let t0 = Instant::now();
    for _ in 0..iters {
        settle_packed(program, &mut v256);
    }
    let elapsed256 = t0.elapsed().as_secs_f64();

    // Both widths settled identical stimulus; lane 0 must agree.
    for (id, (a, b)) in v64.iter().zip(&v256).enumerate() {
        assert_eq!(
            (a.one & 1, a.zero & 1),
            (b.one[0] & 1, b.zero[0] & 1),
            "Dual64 and Dual256 settle diverged at cell {id}"
        );
    }

    let evals = (iters * compiled.order().len()) as f64;
    let dual64_lane_evals_s = evals * 64.0 / elapsed64;
    let dual256_lane_evals_s = evals * 256.0 / elapsed256;
    CodegenResult {
        instructions: program.inst_count(),
        micro_ops: program.micro_ops(),
        fused_micro_ops: program.fused_micro_ops(),
        scratch_words: program.scratch_words(),
        batches: program.batches().len(),
        dual64_lane_evals_s,
        dual256_lane_evals_s,
        superword_speedup: dual256_lane_evals_s / dual64_lane_evals_s,
    }
}

struct FaultSimResult {
    faults: usize,
    reps: usize,
    seed_patterns_s: f64,
    compiled_patterns_s: f64,
    detected: usize,
}

/// Both sides process the identical 256-pattern block per rep: the seed
/// baseline as four 64-lane sub-batches (its native width), the compiled
/// simulator as one superword batch — so patterns/s compares equal work.
fn bench_fault_sim(netlist: &Netlist, faults: &[Fault], reps: usize) -> FaultSimResult {
    let view = TestView::new(netlist).expect("acyclic benchmark circuit");
    let baseline_view = BaselineView::new(netlist);
    let n = view.assignable().len();
    let subs: Vec<Vec<u64>> = {
        let mut rng = Rng::seed_from_u64(0xFA57);
        (0..4)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect()
    };
    let wide: Vec<Packed256> = (0..n)
        .map(|i| Packed256::from_limbs([subs[0][i], subs[1][i], subs[2][i], subs[3][i]]))
        .collect();

    let mut baseline = BaselineStuckSimulator::new(&baseline_view);
    let mut seed_detected = vec![false; faults.len()];
    let t0 = Instant::now();
    for _ in 0..reps {
        seed_detected.fill(false);
        for sub in &subs {
            baseline.run_batch(sub, !0, faults, &mut seed_detected);
        }
    }
    let seed_elapsed = t0.elapsed().as_secs_f64();

    let mut sim = StuckSimulator::new(&view);
    let mut detected = vec![false; faults.len()];
    let t0 = Instant::now();
    for _ in 0..reps {
        detected.fill(false);
        sim.run_batch(&wide, Packed256::top(), faults, &mut detected);
    }
    let compiled_elapsed = t0.elapsed().as_secs_f64();

    assert_eq!(
        seed_detected, detected,
        "seed-path and compiled fault sim disagree on detection"
    );

    let patterns = (LANES as usize * reps) as f64;
    FaultSimResult {
        faults: faults.len(),
        reps,
        seed_patterns_s: patterns / seed_elapsed,
        compiled_patterns_s: patterns / compiled_elapsed,
        detected: detected.iter().filter(|&&d| d).count(),
    }
}

struct ParallelFsimResult {
    faults: usize,
    patterns: usize,
    workers: Vec<usize>,
    patterns_s: Vec<f64>,
}

/// Full-campaign stuck-at fault simulation ([`stuck_coverage_partitioned`])
/// at several pool widths. Detection maps are asserted identical across
/// widths; throughput is whatever the host actually delivers — on a
/// single-core container the wider pools gain nothing and the numbers say
/// so.
fn bench_parallel_fsim(
    netlist: &Netlist,
    faults: &[Fault],
    patterns: usize,
    workers: &[usize],
) -> ParallelFsimResult {
    let view = TestView::new(netlist).expect("acyclic benchmark circuit");
    let n = view.assignable().len();
    let pattern_set: Vec<Vec<bool>> = {
        let mut rng = Rng::seed_from_u64(0xA11E1);
        (0..patterns)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect()
    };

    let mut reference: Option<Vec<bool>> = None;
    let mut patterns_s = Vec::with_capacity(workers.len());
    for &w in workers {
        let pool = ThreadPool::new(w);
        let t0 = Instant::now();
        let detected = stuck_coverage_partitioned(&view, faults, &pattern_set, &pool);
        let elapsed = t0.elapsed().as_secs_f64();
        match &reference {
            None => reference = Some(detected),
            Some(r) => assert_eq!(&detected, r, "pooled fault sim diverged at {w} workers"),
        }
        patterns_s.push(patterns as f64 / elapsed);
    }
    ParallelFsimResult {
        faults: faults.len(),
        patterns,
        workers: workers.to_vec(),
        patterns_s,
    }
}

struct TransitionFsimResult {
    faults: usize,
    pairs: usize,
    detected: usize,
    legacy_pairs_s: f64,
    event_pairs_s: f64,
}

/// Transition-fault pattern-pair simulation: the event-driven
/// deviation-replay [`TransitionSimulator`] against the frozen full-cone
/// [`BaselineTransitionSimulator`], same fault list, same pair batches.
/// Detection maps are asserted identical before any rate is reported.
/// Both sides process the identical 256-pair block per rep: the legacy
/// full-cone baseline as four 64-lane sub-batches, the event-driven
/// simulator as one superword batch.
fn bench_transition_fsim(netlist: &Netlist, reps: usize) -> TransitionFsimResult {
    let view = TestView::new(netlist).expect("acyclic benchmark circuit");
    let faults = enumerate_transition_faults(netlist);
    let n = view.assignable().len();
    let (v1_subs, v2_subs): (Vec<Vec<u64>>, Vec<Vec<u64>>) = {
        let mut rng = Rng::seed_from_u64(0x7245);
        (0..4)
            .map(|_| {
                (
                    (0..n).map(|_| rng.gen()).collect::<Vec<u64>>(),
                    (0..n).map(|_| rng.gen()).collect::<Vec<u64>>(),
                )
            })
            .unzip()
    };
    let pack = |subs: &[Vec<u64>]| -> Vec<Packed256> {
        (0..n)
            .map(|i| Packed256::from_limbs([subs[0][i], subs[1][i], subs[2][i], subs[3][i]]))
            .collect()
    };
    let (w1, w2) = (pack(&v1_subs), pack(&v2_subs));

    let mut legacy = BaselineTransitionSimulator::new(&view);
    let mut legacy_detected = vec![false; faults.len()];
    let t0 = Instant::now();
    for _ in 0..reps {
        legacy_detected.fill(false);
        for (v1, v2) in v1_subs.iter().zip(&v2_subs) {
            legacy.run_batch(v1, v2, !0, &faults, &mut legacy_detected);
        }
    }
    let legacy_elapsed = t0.elapsed().as_secs_f64();

    let mut event = TransitionSimulator::new(&view);
    let mut detected = vec![false; faults.len()];
    let t0 = Instant::now();
    for _ in 0..reps {
        detected.fill(false);
        event.run_batch(&w1, &w2, Packed256::top(), &faults, &mut detected);
    }
    let event_elapsed = t0.elapsed().as_secs_f64();

    assert_eq!(
        legacy_detected, detected,
        "legacy and event-driven transition sim disagree on detection"
    );

    let pairs = (LANES as usize * reps) as f64;
    TransitionFsimResult {
        faults: faults.len(),
        pairs: LANES as usize * reps,
        detected: detected.iter().filter(|&&d| d).count(),
        legacy_pairs_s: pairs / legacy_elapsed,
        event_pairs_s: pairs / event_elapsed,
    }
}

struct ReplaySuperwordResult {
    stuck_faults: usize,
    transition_faults: usize,
    reps: usize,
    stuck_narrow_patterns_s: f64,
    stuck_wide_patterns_s: f64,
    transition_narrow_pairs_s: f64,
    transition_wide_pairs_s: f64,
}

impl ReplaySuperwordResult {
    fn stuck_speedup(&self) -> f64 {
        self.stuck_wide_patterns_s / self.stuck_narrow_patterns_s
    }
    fn transition_speedup(&self) -> f64 {
        self.transition_wide_pairs_s / self.transition_narrow_pairs_s
    }
}

/// The tentpole measurement: per-fault replay throughput of the 256-lane
/// superword engine against the *same generic engine* at 64-lane width
/// (`flh_bench::replay64`), over the identical pattern stream and the
/// identical level-ordered fault list, for both fault models.
///
/// The protocol matches how the committed per-fault replay numbers were
/// produced: every block replays the full fault list with fresh detection
/// flags — the steady-state cost of a campaign's undetected tail, where
/// every surviving fault is replayed against every block. (With flags
/// shared across blocks a narrow engine skips most of its work after the
/// first block because 64 random patterns already saturate detection —
/// that measures the pattern set, not the engine.) The narrow side pays
/// four fresh 64-lane blocks per 256 patterns; the wide side one superword
/// block; the narrow blocks' union must equal the wide detection word.
/// Each side's elapsed time is the best of `reps` passes, which strips
/// scheduler noise the same way `cargo bench` minimums do.
fn bench_replay_superword(
    netlist: &Netlist,
    stuck: &[Fault],
    reps: usize,
) -> ReplaySuperwordResult {
    let view = TestView::new(netlist).expect("acyclic benchmark circuit");
    let stuck = order_stuck_faults(view.compiled(), stuck);
    let transition =
        order_transition_faults(view.compiled(), &enumerate_transition_faults(netlist));
    let n = view.assignable().len();
    let mut rng = Rng::seed_from_u64(0x5057);
    let gen4 = |rng: &mut Rng| -> (Vec<Vec<u64>>, Vec<Packed256>) {
        let subs: Vec<Vec<u64>> = (0..4)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let wide = (0..n)
            .map(|i| Packed256::from_limbs([subs[0][i], subs[1][i], subs[2][i], subs[3][i]]))
            .collect();
        (subs, wide)
    };
    let (subs, wide) = gen4(&mut rng);
    let (v1_subs, w1) = gen4(&mut rng);
    let (v2_subs, w2) = gen4(&mut rng);
    let or_into = |acc: &mut [bool], d: &[bool]| {
        for (a, &b) in acc.iter_mut().zip(d) {
            *a |= b;
        }
    };

    // Stuck-at: four fresh 64-lane blocks vs one fresh 256-lane block.
    let mut narrow = StuckSimulator64::new(&view);
    let mut d_narrow = vec![false; stuck.len()];
    let mut u_narrow = vec![false; stuck.len()];
    let mut narrow_elapsed = f64::INFINITY;
    for _ in 0..reps {
        u_narrow.fill(false);
        let t0 = Instant::now();
        for sub in &subs {
            d_narrow.fill(false);
            narrow.run_batch(sub, !0, &stuck, &mut d_narrow);
            or_into(&mut u_narrow, &d_narrow);
        }
        narrow_elapsed = narrow_elapsed.min(t0.elapsed().as_secs_f64());
    }

    let mut wide_sim = StuckSimulator::new(&view);
    let mut d_wide = vec![false; stuck.len()];
    let mut wide_elapsed = f64::INFINITY;
    for _ in 0..reps {
        d_wide.fill(false);
        let t0 = Instant::now();
        wide_sim.run_batch(&wide, Packed256::top(), &stuck, &mut d_wide);
        wide_elapsed = wide_elapsed.min(t0.elapsed().as_secs_f64());
    }
    assert_eq!(
        u_narrow, d_wide,
        "64-lane and 256-lane stuck replay disagree on detection"
    );

    // Transition: same comparison on pattern pairs.
    let mut tnarrow = TransitionSimulator64::new(&view);
    let mut td_narrow = vec![false; transition.len()];
    let mut tu_narrow = vec![false; transition.len()];
    let mut tnarrow_elapsed = f64::INFINITY;
    for _ in 0..reps {
        tu_narrow.fill(false);
        let t0 = Instant::now();
        for (v1, v2) in v1_subs.iter().zip(&v2_subs) {
            td_narrow.fill(false);
            tnarrow.run_batch(v1, v2, !0, &transition, &mut td_narrow);
            or_into(&mut tu_narrow, &td_narrow);
        }
        tnarrow_elapsed = tnarrow_elapsed.min(t0.elapsed().as_secs_f64());
    }

    let mut twide = TransitionSimulator::new(&view);
    let mut td_wide = vec![false; transition.len()];
    let mut twide_elapsed = f64::INFINITY;
    for _ in 0..reps {
        td_wide.fill(false);
        let t0 = Instant::now();
        twide.run_batch(&w1, &w2, Packed256::top(), &transition, &mut td_wide);
        twide_elapsed = twide_elapsed.min(t0.elapsed().as_secs_f64());
    }
    assert_eq!(
        tu_narrow, td_wide,
        "64-lane and 256-lane transition replay disagree on detection"
    );

    let patterns = LANES as f64;
    ReplaySuperwordResult {
        stuck_faults: stuck.len(),
        transition_faults: transition.len(),
        reps,
        stuck_narrow_patterns_s: patterns / narrow_elapsed,
        stuck_wide_patterns_s: patterns / wide_elapsed,
        transition_narrow_pairs_s: patterns / tnarrow_elapsed,
        transition_wide_pairs_s: patterns / twide_elapsed,
    }
}

fn main() {
    let opts = parse_args();
    let trace = flh_obs::trace_path_from_env();
    if opts.metrics_json.is_some() || trace.is_some() {
        flh_obs::install(trace.is_some());
    }
    let profile = iscas89_profile(CIRCUIT).expect("s13207 profile present");
    let netlist = build_circuit(&profile);
    let compiled = CompiledCircuit::compile(&netlist).expect("acyclic benchmark circuit");

    let stems: Vec<Fault> = enumerate_stuck_faults(&netlist)
        .into_iter()
        .filter(|f| matches!(f.site, FaultSite::Stem(_)))
        .collect();

    let (cycles, fault_count, reps) = if opts.quick {
        (20, 400.min(stems.len()), 1)
    } else {
        (300, stems.len(), 3)
    };
    let faults = &stems[..fault_count];

    println!(
        "perf_report: {CIRCUIT} ({} cells, depth {}), {} stem faults{}",
        compiled.cell_count(),
        compiled.depth(),
        fault_count,
        if opts.quick { " [--quick]" } else { "" }
    );

    let logic = {
        let _span = flh_obs::span("perf.logic_sim");
        bench_logic_sim(&netlist, &compiled, cycles)
    };
    let logic_speedup = logic.compiled_s / logic.event_driven_s;
    println!(
        "logic sim   ({} cycles): event-driven {:>10.0} ev/s | compiled {:>10.0} ev/s | {:.2}x",
        logic.cycles, logic.event_driven_s, logic.compiled_s, logic_speedup
    );

    let program = Program::lower(&compiled);
    let codegen = {
        let _span = flh_obs::span("perf.codegen_v2");
        bench_codegen_v2(&compiled, &program, if opts.quick { 10 } else { 100 })
    };
    println!(
        "codegen_v2  ({} insts from {} micro-ops, {} fused away; {} scratch words, {} batches):",
        codegen.instructions,
        codegen.micro_ops,
        codegen.fused_micro_ops,
        codegen.scratch_words,
        codegen.batches
    );
    println!(
        "            Dual64 {:>11.0} lane-evals/s | Dual256 {:>11.0} lane-evals/s | {:.2}x",
        codegen.dual64_lane_evals_s, codegen.dual256_lane_evals_s, codegen.superword_speedup
    );

    let fault = {
        let _span = flh_obs::span("perf.fault_sim");
        bench_fault_sim(&netlist, faults, reps)
    };
    let fault_speedup = fault.compiled_patterns_s / fault.seed_patterns_s;
    println!(
        "fault sim   ({} faults x {} lanes x {} reps, {} detected):",
        fault.faults, LANES, fault.reps, fault.detected
    );
    println!(
        "            seed path {:>8.1} patterns/s | compiled {:>8.1} patterns/s | {:.2}x",
        fault.seed_patterns_s, fault.compiled_patterns_s, fault_speedup
    );
    if !opts.quick {
        println!(
            "fault-sim speedup target (>= 5x): {}",
            if fault_speedup >= 5.0 {
                "MET"
            } else {
                "NOT MET"
            }
        );
    }

    let campaign_patterns = if opts.quick { 64 } else { 512 };
    let widths = [1usize, 2, 4];
    let par = {
        let _span = flh_obs::span("perf.parallel_fsim");
        bench_parallel_fsim(&netlist, faults, campaign_patterns, &widths)
    };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel fault-sim campaign ({} faults x {} patterns, host parallelism {}):",
        par.faults, par.patterns, host_threads
    );
    for (w, pps) in par.workers.iter().zip(&par.patterns_s) {
        println!("            {w} worker(s): {pps:>8.1} patterns/s");
    }
    let par_speedup_4 = par.patterns_s[2] / par.patterns_s[0];
    println!(
        "parallel speedup at 4 workers: {:.2}x (target >= 2x: {})",
        par_speedup_4,
        if par_speedup_4 >= 2.0 {
            "MET"
        } else {
            "NOT MET"
        }
    );
    if host_threads < 4 {
        println!(
            "            note: host exposes only {host_threads} hardware thread(s); wall-clock scaling is bounded by the hardware, not the pool"
        );
    }

    // Transition-fault section: quick mode swaps in a small profile so the
    // legacy full-cone side stays affordable as a smoke test; the 5x
    // speedup target is judged on the full s13207 run only.
    let (tr_circuit, tr_reps) = if opts.quick {
        ("s1196", 1)
    } else {
        (CIRCUIT, 3)
    };
    let tr_netlist = if tr_circuit == CIRCUIT {
        netlist.clone()
    } else {
        build_circuit(&iscas89_profile(tr_circuit).expect("quick transition profile present"))
    };
    let tr = {
        let _span = flh_obs::span("perf.transition_fsim");
        bench_transition_fsim(&tr_netlist, tr_reps)
    };
    let tr_speedup = tr.event_pairs_s / tr.legacy_pairs_s;
    println!(
        "transition fault sim ({tr_circuit}: {} faults x {} pairs, {} detected):",
        tr.faults, tr.pairs, tr.detected
    );
    println!(
        "            legacy full-cone {:>8.1} pairs/s | event-driven {:>8.1} pairs/s | {:.2}x",
        tr.legacy_pairs_s, tr.event_pairs_s, tr_speedup
    );
    if !opts.quick {
        println!(
            "transition-sim speedup target (>= 5x): {}",
            if tr_speedup >= 5.0 { "MET" } else { "NOT MET" }
        );
    }

    // Superword replay: the 256-lane engines against the live 64-lane
    // instantiation of the same generic engine, both fault models.
    let rsw = {
        let _span = flh_obs::span("perf.replay_superword");
        bench_replay_superword(&netlist, faults, if opts.quick { 1 } else { 5 })
    };
    println!(
        "superword replay ({} stuck + {} transition faults x {} lanes x {} reps):",
        rsw.stuck_faults, rsw.transition_faults, LANES, rsw.reps
    );
    println!(
        "            stuck      64-lane {:>9.1} patterns/s | 256-lane {:>9.1} patterns/s | {:.2}x",
        rsw.stuck_narrow_patterns_s,
        rsw.stuck_wide_patterns_s,
        rsw.stuck_speedup()
    );
    println!(
        "            transition 64-lane {:>9.1} pairs/s    | 256-lane {:>9.1} pairs/s    | {:.2}x",
        rsw.transition_narrow_pairs_s,
        rsw.transition_wide_pairs_s,
        rsw.transition_speedup()
    );
    let rsw_met = rsw.stuck_speedup() >= 2.5 && rsw.transition_speedup() >= 2.5;
    if !opts.quick {
        println!(
            "superword replay speedup target (>= 2.5x both models): {}",
            if rsw_met { "MET" } else { "NOT MET" }
        );
    }

    // The `replay_superword` section embedded in both fault-sim reports.
    let rsw_block = format!(
        concat!(
            "  \"replay_superword\": {{\n",
            "    \"lanes_wide\": {lw},\n",
            "    \"lanes_narrow\": 64,\n",
            "    \"reps\": {reps},\n",
            "    \"stuck_faults\": {sf},\n",
            "    \"stuck_narrow_patterns_per_s\": {snp:.2},\n",
            "    \"stuck_wide_patterns_per_s\": {swp:.2},\n",
            "    \"stuck_speedup\": {ssp:.3},\n",
            "    \"transition_faults\": {tf},\n",
            "    \"transition_narrow_pairs_per_s\": {tnp:.2},\n",
            "    \"transition_wide_pairs_per_s\": {twp:.2},\n",
            "    \"transition_speedup\": {tsp:.3},\n",
            "    \"target_2_5x_met\": {met}\n",
            "  }},\n",
        ),
        lw = LANES,
        reps = rsw.reps,
        sf = rsw.stuck_faults,
        snp = rsw.stuck_narrow_patterns_s,
        swp = rsw.stuck_wide_patterns_s,
        ssp = rsw.stuck_speedup(),
        tf = rsw.transition_faults,
        tnp = rsw.transition_narrow_pairs_s,
        twp = rsw.transition_wide_pairs_s,
        tsp = rsw.transition_speedup(),
        met = rsw_met,
    );

    // All benches have run: the host and metrics blocks are final and
    // shared by every report written below.
    let host_block = host_json_block(host_threads);
    let metrics_block = metrics_json_block();

    let tr_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"transition_fsim\",\n",
            "  \"circuit\": \"{circuit}\",\n",
            "  \"quick\": {quick},\n",
            "{host}",
            "  \"faults\": {faults},\n",
            "  \"pairs\": {pairs},\n",
            "  \"detected\": {detected},\n",
            "  \"legacy_pairs_per_s\": {lpps:.2},\n",
            "  \"event_pairs_per_s\": {epps:.2},\n",
            "  \"speedup\": {sp:.3},\n",
            "  \"target_5x_met\": {met},\n",
            "{rsw}",
            "{metrics}",
            "}}\n",
        ),
        rsw = rsw_block,
        circuit = tr_circuit,
        quick = opts.quick,
        host = host_block,
        faults = tr.faults,
        pairs = tr.pairs,
        detected = tr.detected,
        lpps = tr.legacy_pairs_s,
        epps = tr.event_pairs_s,
        sp = tr_speedup,
        met = tr_speedup >= 5.0,
        metrics = metrics_block,
    );
    fs::write(&opts.out_transition, tr_json).expect("write transition report");
    println!("wrote {}", opts.out_transition);

    let par_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel_fsim\",\n",
            "  \"circuit\": \"{circuit}\",\n",
            "  \"quick\": {quick},\n",
            "{host_block}",
            "  \"available_parallelism\": {host},\n",
            "  \"faults\": {faults},\n",
            "  \"patterns\": {patterns},\n",
            "  \"workers\": [{w0}, {w1}, {w2}],\n",
            "  \"patterns_per_s\": [{p0:.2}, {p1:.2}, {p2:.2}],\n",
            "  \"speedup_4_workers\": {sp:.3},\n",
            "  \"target_2x_met\": {met},\n",
            "{rsw}",
            "{metrics}",
            "}}\n",
        ),
        rsw = rsw_block,
        circuit = CIRCUIT,
        quick = opts.quick,
        host_block = host_block,
        host = host_threads,
        faults = par.faults,
        patterns = par.patterns,
        w0 = par.workers[0],
        w1 = par.workers[1],
        w2 = par.workers[2],
        p0 = par.patterns_s[0],
        p1 = par.patterns_s[1],
        p2 = par.patterns_s[2],
        sp = par_speedup_4,
        met = par_speedup_4 >= 2.0,
        metrics = metrics_block,
    );
    fs::write(&opts.out_parallel, par_json).expect("write parallel report");
    println!("wrote {}", opts.out_parallel);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"compiled_ir\",\n",
            "  \"circuit\": \"{circuit}\",\n",
            "  \"quick\": {quick},\n",
            "{host}",
            "  \"logic_sim\": {{\n",
            "    \"cycles\": {cycles},\n",
            "    \"nominal_events\": {events},\n",
            "    \"event_driven_events_per_s\": {ev:.1},\n",
            "    \"compiled_events_per_s\": {cev:.1},\n",
            "    \"speedup\": {lsp:.3}\n",
            "  }},\n",
            "  \"codegen_v2\": {{\n",
            "    \"instructions\": {cg_insts},\n",
            "    \"micro_ops\": {cg_micro},\n",
            "    \"fused_micro_ops\": {cg_fused},\n",
            "    \"scratch_words\": {cg_scratch},\n",
            "    \"batches\": {cg_batches},\n",
            "    \"dual64_lane_evals_per_s\": {cg_d64:.1},\n",
            "    \"dual256_lane_evals_per_s\": {cg_d256:.1},\n",
            "    \"superword_speedup\": {cg_sp:.3}\n",
            "  }},\n",
            "  \"fault_sim\": {{\n",
            "    \"faults\": {faults},\n",
            "    \"lanes\": {lanes},\n",
            "    \"reps\": {reps},\n",
            "    \"detected\": {detected},\n",
            "    \"seed_patterns_per_s\": {spps:.2},\n",
            "    \"compiled_patterns_per_s\": {cpps:.2},\n",
            "    \"speedup\": {fsp:.3},\n",
            "    \"target_5x_met\": {fmet}\n",
            "  }},\n",
            "{metrics}",
            "}}\n",
        ),
        circuit = CIRCUIT,
        quick = opts.quick,
        host = host_block,
        cycles = logic.cycles,
        events = logic.nominal_events,
        ev = logic.event_driven_s,
        cev = logic.compiled_s,
        lsp = logic_speedup,
        cg_insts = codegen.instructions,
        cg_micro = codegen.micro_ops,
        cg_fused = codegen.fused_micro_ops,
        cg_scratch = codegen.scratch_words,
        cg_batches = codegen.batches,
        cg_d64 = codegen.dual64_lane_evals_s,
        cg_d256 = codegen.dual256_lane_evals_s,
        cg_sp = codegen.superword_speedup,
        faults = fault.faults,
        lanes = LANES,
        reps = fault.reps,
        detected = fault.detected,
        spps = fault.seed_patterns_s,
        cpps = fault.compiled_patterns_s,
        fsp = fault_speedup,
        fmet = fault_speedup >= 5.0,
        metrics = metrics_block,
    );
    fs::write(&opts.out, json).expect("write report");
    println!("wrote {}", opts.out);

    if let Some(path) = &opts.metrics_json {
        let snap = flh_obs::snapshot();
        fs::write(path, flh_obs::full_json(&snap)).expect("write metrics report");
        println!("wrote {path}");
    }
    if let Some(path) = &trace {
        flh_obs::write_trace(path).expect("write trace file");
        println!("wrote {path}");
    }
}
