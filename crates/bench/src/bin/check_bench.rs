//! Gates over `BENCH_*.json` reports, for `scripts/ci.sh`.
//!
//! Schema mode (default): each file argument must parse as JSON and carry
//! the required `speedup` / `target_*_met` fields (see
//! [`flh_bench::json::validate_bench_json`]). Exits non-zero naming the
//! first offending file.
//!
//! Trend mode: `check_bench --trend OLD NEW [--tol FRAC]` compares the
//! speedup leaves of two reports (committed baseline vs fresh run) and
//! fails — exit 1, one line per offender — when any leaf regressed by more
//! than the tolerance (default 0.15) or disappeared from the new report.
//! Improvements and new-only leaves pass.

use flh_bench::json::{compare_trend, validate_bench_json};

fn usage() -> ! {
    eprintln!(
        "usage: check_bench BENCH_a.json [BENCH_b.json ...]\n       \
check_bench --trend OLD.json NEW.json [--tol FRAC]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_bench: {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn run_trend(mut args: Vec<String>) -> ! {
    let tol = match args.iter().position(|a| a == "--tol") {
        None => 0.15,
        Some(pos) => {
            if pos + 1 >= args.len() {
                usage();
            }
            let value = args.remove(pos + 1);
            args.remove(pos);
            match value.parse::<f64>() {
                Ok(t) if (0.0..1.0).contains(&t) => t,
                _ => {
                    eprintln!("check_bench: --tol expects a fraction in [0, 1), got {value:?}");
                    std::process::exit(2);
                }
            }
        }
    };
    let [old_path, new_path] = args.as_slice() else {
        usage();
    };
    let report = match compare_trend(&read(old_path), &read(new_path), tol) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("check_bench: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "check_bench --trend: {old_path} -> {new_path} (tol {:.0}%)",
        tol * 100.0
    );
    for row in &report.rows {
        let verdict = if row.regressed(tol) {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:<40} {:>9.3} -> {:>9.3}  {verdict}",
            row.path, row.old, row.new
        );
    }
    for path in &report.added {
        println!("  {path:<40} (new leaf, informational)");
    }
    for path in &report.missing {
        eprintln!("check_bench: speedup leaf {path} disappeared from {new_path}");
    }
    for row in report.regressions() {
        eprintln!(
            "check_bench: {}: {:.3} -> {:.3} regressed past the {:.0}% tolerance",
            row.path,
            row.old,
            row.new,
            tol * 100.0
        );
    }
    if report.passed() {
        println!(
            "check_bench --trend: ok ({} leaves compared)",
            report.rows.len()
        );
        std::process::exit(0);
    }
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--trend") {
        args.remove(0);
        run_trend(args);
    }
    if args.is_empty() {
        usage();
    }
    let mut failed = false;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check_bench: {path}: {e}");
                failed = true;
                continue;
            }
        };
        match validate_bench_json(&text) {
            Ok(()) => println!("check_bench: {path}: ok"),
            Err(e) => {
                eprintln!("check_bench: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
