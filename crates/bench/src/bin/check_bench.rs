//! Schema smoke for `BENCH_*.json` reports: each file argument must parse
//! as JSON and carry the required `speedup` / `target_*_met` fields (see
//! [`flh_bench::json::validate_bench_json`]). Exits non-zero naming the
//! first offending file, so `scripts/ci.sh` can gate on it.

use flh_bench::json::validate_bench_json;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: check_bench BENCH_a.json [BENCH_b.json ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check_bench: {path}: {e}");
                failed = true;
                continue;
            }
        };
        match validate_bench_json(&text) {
            Ok(()) => println!("check_bench: {path}: ok"),
            Err(e) => {
                eprintln!("check_bench: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
