//! Regenerates **Table II** of the paper: percentage critical-path delay
//! increase per DFT style.
//!
//! Paper reference points: FLH has the least impact, the MUX-based method
//! the largest; the average improvement in *delay overhead* of FLH over
//! enhanced scan is ≈71%, and the deeper the logic, the smaller every
//! percentage (the paper notes its benchmarks have fairly high logic
//! depth).

use flh_bench::{cached_circuit, evaluate_profiles_engine, mean, rule, style};
use flh_core::{overhead_improvement_pct, DftStyle, EvalConfig};
use flh_netlist::{iscas89_profiles, CircuitStats};
use flh_serve::JobEngine;

fn main() {
    let config = EvalConfig::paper_default();
    println!("TABLE II: COMPARISON OF DELAY OVERHEAD");
    rule(108);
    println!(
        "{:>8} {:>10} {:>10} | {:>10} {:>8} {:>8} | {:>10} {:>10}",
        "Ckt", "levels", "base(ps)", "Enh.scan%", "MUX%", "FLH%", "impr/MUX%", "impr/Enh%"
    );
    rule(108);

    let mut enh_all = Vec::new();
    let mut mux_all = Vec::new();
    let mut flh_all = Vec::new();
    let mut impr_mux = Vec::new();
    let mut impr_enh = Vec::new();

    let profiles = iscas89_profiles();
    let engine = JobEngine::from_env();
    let rows = evaluate_profiles_engine(&profiles, &config, &engine);
    for (profile, evals) in profiles.iter().zip(&rows) {
        let entry = cached_circuit(&engine, profile);
        let stats = CircuitStats::compute(&entry.netlist).expect("generated circuit is valid");
        let base = style(&evals, DftStyle::PlainScan).base_delay_ps;
        let enh = style(&evals, DftStyle::EnhancedScan).delay_increase_pct();
        let mux = style(&evals, DftStyle::MuxHold).delay_increase_pct();
        let flh = style(&evals, DftStyle::Flh).delay_increase_pct();
        let im = overhead_improvement_pct(flh, mux);
        let ie = overhead_improvement_pct(flh, enh);
        println!(
            "{:>8} {:>10} {:>10.0} | {:>10.2} {:>8.2} {:>8.2} | {:>10.1} {:>10.1}",
            profile.name, stats.logic_depth, base, enh, mux, flh, im, ie
        );
        enh_all.push(enh);
        mux_all.push(mux);
        flh_all.push(flh);
        impr_mux.push(im);
        impr_enh.push(ie);
    }

    rule(108);
    println!(
        "{:>8} {:>10} {:>10} | {:>10.2} {:>8.2} {:>8.2} | {:>10.1} {:>10.1}",
        "avg",
        "",
        "",
        mean(&enh_all),
        mean(&mux_all),
        mean(&flh_all),
        mean(&impr_mux),
        mean(&impr_enh)
    );
    println!();
    println!(
        "paper: MUX worst, FLH least; avg improvement in delay overhead over enhanced scan = 71%"
    );
    println!(
        "measured: avg FLH improvement over enhanced scan = {:.0}%, over MUX = {:.0}%",
        mean(&impr_enh),
        mean(&impr_mux)
    );
}
