//! Path-delay testing of the structurally longest paths — the fault model
//! the paper's Section IV keeps valid under FLH ("the conventional
//! stuck-at fault model, transition and path delay fault models remain
//! valid"). Non-robust two-pattern tests need arbitrary (V1, V2) pairs,
//! i.e. exactly the application freedom enhanced scan buys expensively and
//! FLH cheaply.
//!
//! Per circuit: target both launch polarities of the 25 longest structural
//! paths, generate non-robust tests, and verify each by simulation.

use flh_atpg::{longest_sensitizable_path, path_delay_atpg, PodemConfig, TestView};
use flh_bench::{build_circuit, mean, rule};
use flh_core::{apply_style, DftStyle};
use flh_netlist::analysis::Levelization;
use flh_netlist::iscas89_profiles;

fn main() {
    const K: usize = 25;
    println!("PATH-DELAY TESTING: STRUCTURAL vs SENSITIZABLE CRITICAL PATHS");
    rule(112);
    println!(
        "{:>8} | {:>9} {:>8} {:>9} | {:>10} {:>15} | {:>14}",
        "Ckt", "struct.K", "tested", "untested", "depth", "longest true", "true tested"
    );
    rule(112);

    let mut gaps = Vec::new();
    for profile in iscas89_profiles().into_iter().filter(|p| p.gates <= 1000) {
        let circuit = build_circuit(&profile);
        let scanned = apply_style(&circuit, DftStyle::Flh).expect("flh");
        let view = TestView::new(&scanned.netlist).expect("view");
        let cfg = PodemConfig::paper_default();

        // (a) Non-robust tests for the K structurally longest paths: most
        // are false — the classic sensitization gap.
        let report = path_delay_atpg(&view, K, &cfg, 0xdee9);

        // (b) Grow the longest *sensitizable* path from a sample of
        // flip-flop sources; every one comes with a verified test.
        let mut longest_true = 0usize;
        let mut true_tested = 0usize;
        for &src in scanned.netlist.flip_flops().iter().take(8) {
            for rising in [false, true] {
                if let Some((path, _pattern)) =
                    longest_sensitizable_path(&view, src, rising, &cfg, 300)
                {
                    longest_true = longest_true.max(path.length());
                    true_tested += 1;
                }
            }
        }
        let depth = Levelization::compute(&scanned.netlist)
            .expect("acyclic")
            .depth() as usize;
        println!(
            "{:>8} | {:>9} {:>8} {:>9} | {:>10} {:>15} | {:>14}",
            profile.name,
            report.tested + report.untested + report.unsupported,
            report.tested,
            report.untested,
            depth,
            longest_true,
            true_tested
        );
        gaps.push(longest_true as f64 / depth.max(1) as f64);
    }

    rule(112);
    println!();
    println!("the structurally longest paths of random logic are almost all false; the");
    println!("sensitizable-path search finds the longest *true* paths, each with a verified");
    println!("non-robust two-pattern test — applicable only under arbitrary V1/V2 (FLH).");
    println!(
        "measured: longest true path averages {:.0}% of the structural depth",
        100.0 * mean(&gaps)
    );
}
