//! Regenerates the paper's **introduction argument**: transition-fault
//! coverage reachable under the three application styles. Broadside
//! ("can suffer from poor fault coverage") and skewed-load ("the second
//! pattern is highly correlated to the first one") are compared against
//! arbitrary two-pattern application — what enhanced scan provides
//! expensively and FLH provides cheaply.
//!
//! Equal-effort random campaigns (same pair count, same seed) quantify the
//! coverage gap per circuit.

use std::sync::Arc;

use flh_atpg::transition::enumerate_transition_faults;
use flh_atpg::{
    broadside_transition_atpg, transition_atpg, ApplicationStyle, PodemConfig, TestView,
};
use flh_bench::{cached_circuit, campaign_profiles_engine, mean, rule};
use flh_netlist::iscas89_profiles;
use flh_serve::JobEngine;

fn main() {
    const PAIRS: usize = 2048;
    const SEED: u64 = 0xc0ffee;
    const STYLES: [ApplicationStyle; 3] = [
        ApplicationStyle::ArbitraryTwoPattern,
        ApplicationStyle::Broadside,
        ApplicationStyle::SkewedLoad,
    ];

    println!("COVERAGE BY APPLICATION STYLE ({PAIRS} random pairs + deterministic ATPG ceilings)");
    rule(112);
    println!(
        "{:>8} {:>8} | {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "Ckt", "faults", "arbitrary%", "broadside%", "skewed%", "ATPG arb%", "ATPG brd%"
    );
    rule(112);

    let mut arb_all = Vec::new();
    let mut brd_all = Vec::new();
    let mut skw_all = Vec::new();
    let mut det_arb_all = Vec::new();
    let mut det_brd_all = Vec::new();

    let engine = JobEngine::from_env();
    let profiles: Vec<_> = iscas89_profiles()
        .into_iter()
        .filter(|p| p.gates <= 700)
        .collect();
    // One cached compiled entry per circuit; the campaign jobs below hit
    // these entries instead of regenerating and recompiling.
    let entries: Vec<_> = profiles
        .iter()
        .map(|p| cached_circuit(&engine, p))
        .collect();

    // Random campaigns: one engine job per circuit, one batch per style.
    let grid = campaign_profiles_engine(&profiles, &STYLES, PAIRS, SEED, &engine);
    // Deterministic ceilings: one pooled cell per circuit over the shared
    // compiled entries, each returning the arbitrary-pair and broadside
    // ATPG coverage percentages.
    let ceilings = engine.pool().run(entries.len(), |i| {
        let entry = &entries[i];
        let faults = enumerate_transition_faults(&entry.netlist);
        let view = TestView::with_program(
            &entry.netlist,
            Arc::clone(&entry.compiled),
            Arc::clone(&entry.program),
        )
        .expect("view");
        let det_arb = transition_atpg(&view, &faults, &PodemConfig::paper_default(), SEED);
        let det_brd =
            broadside_transition_atpg(&entry.netlist, &faults, &PodemConfig::paper_default(), SEED)
                .expect("broadside atpg");
        (det_arb.coverage_pct(), det_brd.coverage_pct())
    });

    for ((profile, row), ceiling) in profiles.iter().zip(&grid).zip(&ceilings) {
        let (arb, brd, skw) = (&row[0], &row[1], &row[2]);
        let (det_arb, det_brd) = *ceiling;
        println!(
            "{:>8} {:>8} | {:>12.2} {:>12.2} {:>12.2} | {:>12.2} {:>12.2}",
            profile.name,
            arb.total_faults,
            arb.coverage_pct(),
            brd.coverage_pct(),
            skw.coverage_pct(),
            det_arb,
            det_brd
        );
        arb_all.push(arb.coverage_pct());
        brd_all.push(brd.coverage_pct());
        skw_all.push(skw.coverage_pct());
        det_arb_all.push(det_arb);
        det_brd_all.push(det_brd);
    }

    rule(112);
    println!(
        "{:>8} {:>8} | {:>12.2} {:>12.2} {:>12.2} | {:>12.2} {:>12.2}",
        "avg",
        "",
        mean(&arb_all),
        mean(&brd_all),
        mean(&skw_all),
        mean(&det_arb_all),
        mean(&det_brd_all)
    );
    println!();
    println!("paper: broadside can suffer from poor coverage; skewed-load patterns are correlated; arbitrary pairs (enhanced scan / FLH) reach the best coverage");
    println!(
        "measured (random): arbitrary {:.1}% > skewed {:.1}% / broadside {:.1}%",
        mean(&arb_all),
        mean(&skw_all),
        mean(&brd_all)
    );
    println!(
        "measured (deterministic ATPG ceilings): arbitrary {:.1}% > broadside {:.1}% — the structural coverage gap holding hardware exists to close",
        mean(&det_arb_all),
        mean(&det_brd_all)
    );
}
