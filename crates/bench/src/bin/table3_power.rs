//! Regenerates **Table III** of the paper: percentage normal-mode power
//! increase per DFT style (NanoSim methodology: 100 random vectors, toggle
//! counting).
//!
//! Paper reference points: FLH power stays close to the original circuit
//! (for s13207 it even dips below, thanks to the stack-effect leakage
//! reduction of the gated first-level gates); the average reduction in
//! *power overhead* over enhanced scan is ≈90%, and ≈44% of the whole
//! enhanced-scan circuit power is saved.

use flh_bench::{evaluate_profiles_engine, mean, rule, style};
use flh_core::{overhead_improvement_pct, DftStyle, EvalConfig};
use flh_netlist::iscas89_profiles;
use flh_serve::JobEngine;

fn main() {
    let config = EvalConfig::paper_default();
    println!("TABLE III: COMPARISON OF POWER OVERHEAD DURING NORMAL MODE");
    rule(120);
    println!(
        "{:>8} {:>11} | {:>10} {:>8} {:>8} | {:>10} {:>10} | {:>12}",
        "Ckt", "base(uW)", "Enh.scan%", "MUX%", "FLH%", "impr/MUX%", "impr/Enh%", "overall sav%"
    );
    rule(120);

    let mut enh_all = Vec::new();
    let mut mux_all = Vec::new();
    let mut flh_all = Vec::new();
    let mut impr_mux = Vec::new();
    let mut impr_enh = Vec::new();
    let mut overall = Vec::new();

    let profiles = iscas89_profiles();
    let engine = JobEngine::from_env();
    let rows = evaluate_profiles_engine(&profiles, &config, &engine);
    for (profile, evals) in profiles.iter().zip(&rows) {
        let base = style(&evals, DftStyle::PlainScan).base_power_uw;
        let enh_eval = style(&evals, DftStyle::EnhancedScan);
        let enh = enh_eval.power_increase_pct();
        let mux = style(&evals, DftStyle::MuxHold).power_increase_pct();
        let flh_eval = style(&evals, DftStyle::Flh);
        let flh = flh_eval.power_increase_pct();
        let im = overhead_improvement_pct(flh, mux);
        let ie = overhead_improvement_pct(flh, enh);
        // Overall circuit power saved by choosing FLH instead of enhanced
        // scan (the paper's "44% overall" figure).
        let saved = 100.0 * (enh_eval.power_uw - flh_eval.power_uw) / enh_eval.power_uw;
        println!(
            "{:>8} {:>11.1} | {:>10.2} {:>8.2} {:>8.2} | {:>10.1} {:>10.1} | {:>12.1}",
            profile.name, base, enh, mux, flh, im, ie, saved
        );
        enh_all.push(enh);
        mux_all.push(mux);
        flh_all.push(flh);
        impr_mux.push(im);
        impr_enh.push(ie);
        overall.push(saved);
    }

    rule(120);
    println!(
        "{:>8} {:>11} | {:>10.2} {:>8.2} {:>8.2} | {:>10.1} {:>10.1} | {:>12.1}",
        "avg",
        "",
        mean(&enh_all),
        mean(&mux_all),
        mean(&flh_all),
        mean(&impr_mux),
        mean(&impr_enh),
        mean(&overall)
    );
    println!();
    println!("paper: FLH overhead near zero (s13207 below original); 90% avg reduction of power overhead vs enhanced scan; 44% overall power reduction");
    println!(
        "measured: avg FLH overhead = {:.2}%, overhead reduction vs enhanced scan = {:.0}%, overall power saved vs enhanced scan = {:.0}%",
        mean(&flh_all), mean(&impr_enh), mean(&overall)
    );
}
