//! Regenerates **Fig. 2** of the paper: the supply-gated first stage
//! *without* the keeper. The input switches to 1 during sleep; the floated
//! OUT1 node decays through the off gating transistors' leakage, crossing
//! 600 mV well inside the 1 µs scan window, and the second stage starts
//! drawing static short-circuit current.
//!
//! Paper reference point: "the voltage of OUT1 falls below 600mV in less
//! than 100ns", far shorter than the 1 µs scan time of a 1000-bit chain at
//! 1 GHz.

use flh_analog::{gated_chain, simulate, steady_state_initial, GatedChainConfig, TransientConfig};
use flh_tech::Technology;

fn main() {
    let tech = Technology::bptm70();
    let config = GatedChainConfig::fig2();
    let (circuit, probes) = gated_chain(&tech, &config);
    let init = steady_state_initial(&tech, &probes, &circuit);
    let window_ns = 250.0;
    let trace = simulate(&circuit, &TransientConfig::for_window_ns(window_ns), &init);

    println!("FIG. 2: SUPPLY-GATED STAGE WITHOUT KEEPER — FLOATING-NODE DECAY");
    println!("sleep asserted at 2 ns, IN switches 0->1 at 7 ns");
    println!();
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "t (ns)", "IN (V)", "OUT1", "OUT2", "OUT3", "Idd2 (A)"
    );
    let sample_times = [
        0.5, 5.0, 7.5, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 150.0, 200.0, 249.0,
    ];
    for &t in &sample_times {
        let idx = trace.sample_at(t);
        let volts = trace.snapshot(idx);
        let idd2 = circuit.device_current(probes.stage2_pmos, volts).abs();
        println!(
            "{:>10.1} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>12.3e}",
            trace.time_ns()[idx],
            volts[probes.input.index()],
            volts[probes.out1.index()],
            volts[probes.out2.index()],
            volts[probes.out3.index()],
            idd2
        );
    }

    println!();
    match trace.first_time_below(probes.out1, 0.6, 7.0) {
        Some(t) => {
            println!(
                "OUT1 crossed 600 mV at t = {:.1} ns ({:.1} ns after the input switched)",
                t,
                t - 7.0
            );
            println!(
                "paper: decay below 600 mV in < 100 ns  |  measured: {:.1} ns",
                t - 7.0
            );
        }
        None => println!("OUT1 never crossed 600 mV in {window_ns} ns — calibration drift!"),
    }
}
