//! Live 64-lane deviation-replay reference simulators.
//!
//! The production simulators ([`flh_atpg::StuckSimulator`],
//! [`flh_atpg::TransitionSimulator`]) run the shared
//! [`DeviationReplay`] engine at 256-lane [`flh_netlist::Packed256`]
//! width. This module instantiates the *same* generic engine at plain
//! `u64` width — the pre-superword configuration — for two jobs:
//!
//! * the `replay_superword_equivalence` gate proves one 256-lane replay
//!   bit-identical to four independent 64-lane replays over the same
//!   pattern stream;
//! * the `replay_superword` BENCH section measures the genuine pattern
//!   throughput gain of the wider word against a *live* (not frozen)
//!   64-lane build of the identical algorithm, so the ratio isolates the
//!   word width from unrelated engine changes.
//!
//! The batch loop bodies mirror the production `run_batch`s line for
//! line; only the lane-word type differs.

use flh_atpg::{DeviationReplay, Fault, FaultSite, TestView, TransitionFault};
use flh_netlist::CellKind;

/// 64-lane stuck-at fault simulator on the generic replay engine.
pub struct StuckSimulator64<'v, 'a> {
    view: &'v TestView<'a>,
    values: Vec<u64>,
    replay: DeviationReplay<u64>,
}

impl<'v, 'a> StuckSimulator64<'v, 'a> {
    /// Builds a simulator over a test view.
    pub fn new(view: &'v TestView<'a>) -> Self {
        StuckSimulator64 {
            view,
            values: Vec::new(),
            replay: DeviationReplay::new(view.compiled(), view.program_arc()),
        }
    }

    /// Simulates up to 64 patterns (one per bit lane of `words`) against
    /// the fault list, setting `detected` flags. Returns new detections.
    pub fn run_batch(
        &mut self,
        words: &[u64],
        active_mask: u64,
        faults: &[Fault],
        detected: &mut [bool],
    ) -> usize {
        self.view.eval_lanes_into(words, &mut self.values);
        let compiled = self.view.compiled();
        let observed = self.view.observed_drivers();
        let netlist = self.view.netlist();
        let mut new_hits = 0;
        let mut inputs: Vec<u64> = Vec::with_capacity(8);

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let driver = fault.driver(netlist);
            let line = self.values[driver.index()];
            let active = if fault.stuck.as_bool() { !line } else { line };
            let lanes = active & active_mask;
            if lanes == 0 {
                continue;
            }
            let (seed, forced) = match fault.site {
                FaultSite::Stem(cell) => {
                    let forced = if fault.stuck.as_bool() { !0 } else { 0 };
                    (cell.index() as u32, forced)
                }
                FaultSite::Branch { gate, pin } => {
                    let id = gate.index() as u32;
                    inputs.clear();
                    inputs.extend(compiled.fanin(id).iter().map(|&x| self.values[x as usize]));
                    inputs[pin] = if fault.stuck.as_bool() { !0 } else { 0 };
                    (id, CellKind::eval64(compiled.kind(id), &inputs))
                }
            };
            let miscompare =
                self.replay
                    .replay(compiled, observed, &mut self.values, seed, forced, lanes);
            if miscompare & lanes != 0 {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        new_hits
    }
}

/// Runs a whole pattern set through [`StuckSimulator64`] in 64-pattern
/// batches (partial final batch masked), returning per-fault detection
/// flags — the 64-lane counterpart of [`flh_atpg::stuck_coverage`].
pub fn stuck_coverage64(
    view: &TestView<'_>,
    faults: &[Fault],
    patterns: &[Vec<bool>],
) -> Vec<bool> {
    let mut sim = StuckSimulator64::new(view);
    let mut detected = vec![false; faults.len()];
    let n = view.assignable().len();
    let mut words = vec![0u64; n];
    for chunk in patterns.chunks(64) {
        words.fill(0);
        for (lane, p) in chunk.iter().enumerate() {
            assert_eq!(p.len(), n, "pattern length mismatch");
            for (i, &bit) in p.iter().enumerate() {
                if bit {
                    words[i] |= 1 << lane;
                }
            }
        }
        let mask = if chunk.len() == 64 {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        sim.run_batch(&words, mask, faults, &mut detected);
    }
    detected
}

/// 64-lane transition fault simulator on the generic replay engine.
pub struct TransitionSimulator64<'v, 'a> {
    view: &'v TestView<'a>,
    values2: Vec<u64>,
    values1: Vec<u64>,
    replay: DeviationReplay<u64>,
}

impl<'v, 'a> TransitionSimulator64<'v, 'a> {
    /// Builds a simulator.
    pub fn new(view: &'v TestView<'a>) -> Self {
        TransitionSimulator64 {
            view,
            values2: Vec::new(),
            values1: Vec::new(),
            replay: DeviationReplay::new(view.compiled(), view.program_arc()),
        }
    }

    /// Simulates up to 64 pattern pairs against a fault set, marking newly
    /// detected faults in `detected`. Returns the number of new detections.
    pub fn run_batch(
        &mut self,
        v1_words: &[u64],
        v2_words: &[u64],
        active_mask: u64,
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        let (view, values1, values2) = (self.view, &mut self.values1, &mut self.values2);
        view.eval_lanes_into(v1_words, values1);
        view.eval_lanes_into(v2_words, values2);
        let mut new_hits = 0;

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let site = fault.site.index();
            let init = if fault.initial_value() {
                self.values1[site]
            } else {
                !self.values1[site]
            };
            let launch = if fault.final_value() {
                self.values2[site]
            } else {
                !self.values2[site]
            };
            let lanes = init & launch & active_mask;
            if lanes == 0 {
                continue;
            }
            let seed = fault.site.index() as u32;
            let forced = if fault.stuck_equivalent().stuck.as_bool() {
                !0
            } else {
                0
            };
            let miscompare = self.replay.replay(
                self.view.compiled(),
                self.view.observed_drivers(),
                &mut self.values2,
                seed,
                forced,
                lanes,
            );
            if miscompare & lanes != 0 {
                detected[fi] = true;
                new_hits += 1;
            }
        }
        new_hits
    }
}

/// Runs a whole pair set through [`TransitionSimulator64`] in 64-pair
/// batches (partial final batch masked), returning per-fault detection
/// flags — the 64-lane counterpart of
/// [`flh_atpg::simulate_transition_patterns`].
pub fn transition_coverage64(
    view: &TestView<'_>,
    faults: &[TransitionFault],
    pairs: &[(Vec<bool>, Vec<bool>)],
) -> Vec<bool> {
    let mut sim = TransitionSimulator64::new(view);
    let mut detected = vec![false; faults.len()];
    let n = view.assignable().len();
    let mut v1_words = vec![0u64; n];
    let mut v2_words = vec![0u64; n];
    for chunk in pairs.chunks(64) {
        v1_words.fill(0);
        v2_words.fill(0);
        for (lane, (v1, v2)) in chunk.iter().enumerate() {
            for i in 0..n {
                if v1[i] {
                    v1_words[i] |= 1 << lane;
                }
                if v2[i] {
                    v2_words[i] |= 1 << lane;
                }
            }
        }
        let mask = if chunk.len() == 64 {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        sim.run_batch(&v1_words, &v2_words, mask, faults, &mut detected);
    }
    detected
}
