//! Criterion performance benchmarks of the implementation itself (the
//! table/figure *result* regeneration lives in `src/bin/`; these measure
//! that the engines scale to ISCAS89 sizes comfortably).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flh_atpg::transition::enumerate_transition_faults;
use flh_atpg::{transition_atpg, Podem, PodemConfig, TestView};
use flh_core::{apply_style, optimize_fanout, DftStyle, FanoutOptConfig};
use flh_netlist::{generate_circuit, iscas89_profile, Netlist};
use flh_power::{random_vector_power, PowerConfig};
use flh_sim::{Logic, LogicSim};
use flh_tech::{CellLibrary, Technology};
use flh_timing::{analyze, TimingConfig};

fn circuit(name: &str) -> Netlist {
    let p = iscas89_profile(name).expect("profile");
    generate_circuit(&p.generator_config()).expect("generates")
}

fn bench_logic_sim(c: &mut Criterion) {
    let n = circuit("s1423");
    let mut sim = LogicSim::new(&n).expect("sim");
    for i in 0..n.flip_flops().len() {
        sim.set_ff_by_index(i, Logic::Zero);
    }
    let vector: Vec<Logic> = (0..n.inputs().len())
        .map(|i| Logic::from_bool(i % 2 == 0))
        .collect();
    c.bench_function("logic_sim_s1423_vector", |b| {
        b.iter(|| sim.apply_vector(&vector))
    });
}

fn bench_sta(c: &mut Criterion) {
    let n = circuit("s5378");
    let lib = CellLibrary::new(Technology::bptm70());
    let cfg = TimingConfig::paper_default();
    c.bench_function("sta_s5378", |b| {
        b.iter(|| analyze(&n, &lib, &cfg, None).expect("sta"))
    });
}

fn bench_power(c: &mut Criterion) {
    let n = circuit("s1423");
    let lib = CellLibrary::new(Technology::bptm70());
    let cfg = PowerConfig::paper_default();
    c.bench_function("power_s1423_100vectors", |b| {
        b.iter(|| random_vector_power(&n, &lib, &cfg, None, 100, 1).expect("power"))
    });
}

fn bench_podem(c: &mut Criterion) {
    let n = circuit("s526");
    let scanned = apply_style(&n, DftStyle::PlainScan).expect("scan");
    let view = TestView::new(&scanned.netlist).expect("view");
    let faults = flh_atpg::enumerate_stuck_faults(&scanned.netlist);
    let podem = Podem::new(&view, PodemConfig::paper_default());
    c.bench_function("podem_s526_per_fault", |b| {
        let mut cursor = 0usize;
        b.iter(|| {
            let f = &faults[cursor % faults.len()];
            cursor += 1;
            podem.generate(f)
        })
    });
}

fn bench_transition_atpg(c: &mut Criterion) {
    let n = circuit("s298");
    let scanned = apply_style(&n, DftStyle::PlainScan).expect("scan");
    c.bench_function("transition_atpg_s298", |b| {
        b.iter_batched(
            || TestView::new(&scanned.netlist).expect("view"),
            |view| {
                let faults = enumerate_transition_faults(&scanned.netlist);
                transition_atpg(&view, &faults, &PodemConfig::paper_default(), 1)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_transforms(c: &mut Criterion) {
    let n = circuit("s5378");
    c.bench_function("apply_flh_s5378", |b| {
        b.iter(|| apply_style(&n, DftStyle::Flh).expect("flh"))
    });
    let flh = apply_style(&n, DftStyle::Flh).expect("flh");
    c.bench_function("fanout_opt_s5378", |b| {
        b.iter(|| optimize_fanout(&flh, &FanoutOptConfig::paper_default()).expect("opt"))
    });
}

fn bench_analog(c: &mut Criterion) {
    use flh_analog::{gated_chain, simulate, steady_state_initial, GatedChainConfig, TransientConfig};
    let tech = Technology::bptm70();
    let cfg = GatedChainConfig::fig4(20);
    let (circuit, probes) = gated_chain(&tech, &cfg);
    let init = steady_state_initial(&tech, &probes, &circuit);
    c.bench_function("analog_fig4_20ns", |b| {
        b.iter(|| simulate(&circuit, &TransientConfig::for_window_ns(20.0), &init))
    });
}


fn bench_bist(c: &mut Criterion) {
    let n = circuit("s526");
    let flh = apply_style(&n, DftStyle::Flh).expect("flh");
    let mech = flh.hold_mechanism();
    let cfg = flh_bist::BistConfig::with_patterns(32);
    c.bench_function("bist_s526_32patterns", |b| {
        b.iter(|| flh_bist::controller::run_test_per_scan(&flh, &mech, &cfg).expect("session"))
    });
}

fn bench_path_search(c: &mut Criterion) {
    let n = circuit("s298");
    let scanned = apply_style(&n, DftStyle::PlainScan).expect("scan");
    let view = TestView::new(&scanned.netlist).expect("view");
    let src = scanned.netlist.flip_flops()[0];
    c.bench_function("sensitizable_path_s298", |b| {
        b.iter(|| {
            flh_atpg::longest_sensitizable_path(
                &view,
                src,
                true,
                &PodemConfig::paper_default(),
                200,
            )
        })
    });
}

criterion_group! {

    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_logic_sim, bench_sta, bench_power, bench_podem,
              bench_transition_atpg, bench_transforms, bench_analog,
              bench_bist, bench_path_search
}
criterion_main!(benches);
