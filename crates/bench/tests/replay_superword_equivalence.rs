//! Bit-for-bit equivalence of the 256-lane superword replay engines
//! against four independent 64-lane replays of the same generic engine
//! (`flh_bench::replay64`), across all eleven ISCAS89 profiles and the
//! paper's three holding styles, for both fault models.
//!
//! The superword rebuild changes only the lane-word type threaded through
//! [`flh_atpg::DeviationReplay`] — activation, seeding, undo, detection
//! and early exit are the same code. These tests pin that: a pattern set
//! simulated in 256-lane blocks must detect exactly the faults the same
//! set detects in 64-lane batches (including a masked partial final
//! block), and the 256-lane early exit must neither invent nor lose
//! miscompares nor leave the good machine dirty.

use flh_atpg::{
    enumerate_stuck_faults, enumerate_transition_faults, simulate_transition_patterns,
    stuck_coverage, DeviationReplay, Fault, FaultSite, TestView, TransitionFault,
    TransitionPattern, PATTERN_BLOCK,
};
use flh_bench::build_circuit;
use flh_bench::replay64::{stuck_coverage64, transition_coverage64};
use flh_core::{apply_style, DftStyle};
use flh_netlist::{iscas89_profiles, LaneWord, Packed256, PatternWord};
use flh_rng::Rng;

const STYLES: [DftStyle; 3] = [DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh];
/// One full 256-lane block plus a partial tail, so every run exercises
/// the masked final block on both the 64- and 256-lane side.
const PATTERNS: usize = PATTERN_BLOCK + 33;
const MAX_FAULTS: usize = 400;

/// Every k-th element, keeping the debug-build runtime bounded while still
/// spanning the whole id range.
fn subsample<T: Clone>(items: &[T], max: usize) -> Vec<T> {
    let step = items.len().div_ceil(max).max(1);
    items.iter().step_by(step).cloned().collect()
}

#[test]
fn superword_replay_matches_four_word_replays_across_profiles_and_styles() {
    for profile in iscas89_profiles() {
        let circuit = build_circuit(&profile);
        for (si, &style) in STYLES.iter().enumerate() {
            let dft = apply_style(&circuit, style)
                .unwrap_or_else(|e| panic!("{} / {style}: {e}", profile.name));
            let n = &dft.netlist;
            let view = TestView::new(n).expect("acyclic after scan insertion");
            let na = view.assignable().len();
            let mut rng = Rng::seed_from_u64(0x256 + si as u64);

            // Stuck-at: whole-set coverage, 256-lane blocks vs 64-lane
            // batches over the identical pattern list.
            let stuck: Vec<Fault> = subsample(&enumerate_stuck_faults(n), MAX_FAULTS);
            let patterns: Vec<Vec<bool>> = (0..PATTERNS)
                .map(|_| (0..na).map(|_| rng.gen()).collect())
                .collect();
            let wide = stuck_coverage(&view, &stuck, &patterns);
            let narrow = stuck_coverage64(&view, &stuck, &patterns);
            assert_eq!(
                wide, narrow,
                "{} / {style}: stuck detection diverged between lane widths",
                profile.name
            );
            assert!(
                wide.iter().any(|&d| d),
                "{} / {style}: stuck campaign detected nothing",
                profile.name
            );

            // Transition: same comparison on pattern pairs.
            let faults: Vec<TransitionFault> =
                subsample(&enumerate_transition_faults(n), MAX_FAULTS);
            let pairs: Vec<TransitionPattern> = (0..PATTERNS)
                .map(|_| TransitionPattern {
                    v1: (0..na).map(|_| rng.gen()).collect(),
                    v2: (0..na).map(|_| rng.gen()).collect(),
                })
                .collect();
            let tuples: Vec<(Vec<bool>, Vec<bool>)> =
                pairs.iter().map(|p| (p.v1.clone(), p.v2.clone())).collect();
            let twide = simulate_transition_patterns(&view, &faults, &pairs);
            let tnarrow = transition_coverage64(&view, &faults, &tuples);
            assert_eq!(
                twide, tnarrow,
                "{} / {style}: transition detection diverged between lane widths",
                profile.name
            );
            assert!(
                twide.iter().any(|&d| d),
                "{} / {style}: transition campaign detected nothing",
                profile.name
            );
        }
    }
}

#[test]
fn superword_early_exit_is_sound_and_restores_the_good_machine() {
    // Engine-level check at 256-lane width on a mid-size scanned circuit:
    // for every stem fault, a replay allowed to stop at the first
    // stop-lane miscompare must report a subset of the full-propagation
    // miscompare that agrees on whether anything miscompared at all, and
    // both replays must leave the good machine bit-identical.
    let circuit = build_circuit(&iscas89_profiles()[7].clone()); // s1423
    let dft = apply_style(&circuit, DftStyle::Flh).expect("style applies");
    let n = &dft.netlist;
    let view = TestView::new(n).expect("acyclic after scan insertion");
    let na = view.assignable().len();
    let mut rng = Rng::seed_from_u64(0xEE);
    let words: Vec<Packed256> = (0..na)
        .map(|_| Packed256::from_limbs([rng.gen(), rng.gen(), rng.gen(), rng.gen()]))
        .collect();
    let mut values: Vec<Packed256> = Vec::new();
    view.eval_lanes_into(&words, &mut values);
    let good = values.clone();

    let mut engine: DeviationReplay<Packed256> =
        DeviationReplay::new(view.compiled(), view.program_arc());
    let observed = view.observed_drivers();
    let stems: Vec<Fault> = enumerate_stuck_faults(n)
        .into_iter()
        .filter(|f| matches!(f.site, FaultSite::Stem(_)))
        .collect();
    let mut checked = 0;
    for fault in subsample(&stems, 300) {
        let FaultSite::Stem(cell) = fault.site else {
            continue;
        };
        let seed = cell.index() as u32;
        let forced = if fault.stuck.as_bool() {
            Packed256::top()
        } else {
            Packed256::bot()
        };
        let full = engine.replay(
            view.compiled(),
            observed,
            &mut values,
            seed,
            forced,
            Packed256::bot(),
        );
        assert_eq!(values, good, "{fault:?}: full replay left state dirty");
        let stopped = engine.replay(
            view.compiled(),
            observed,
            &mut values,
            seed,
            forced,
            Packed256::top(),
        );
        assert_eq!(
            values, good,
            "{fault:?}: early-exit replay left state dirty"
        );
        assert!(
            !stopped.and(full.not()).any(),
            "{fault:?}: early exit invented a miscompare"
        );
        assert_eq!(
            stopped.any(),
            full.any(),
            "{fault:?}: early exit changed the detection verdict"
        );
        checked += 1;
    }
    assert!(checked > 200, "too few faults checked: {checked}");
}
