//! Bit-for-bit equivalence of the compiled levelized simulator against the
//! event-driven reference, across the full ISCAS89 profile set and every
//! holding style of the paper (enhanced scan, MUX-based, FLH).
//!
//! For each circuit × style the two simulators are driven with an
//! identical stimulus — random vectors with injected unknowns, plus
//! periodic hold (holding-cell styles) or sleep (FLH supply gating)
//! phases — and must agree on every cell value after every settle, on
//! primary outputs and flip-flop state after every capture, and on the
//! complete per-cell toggle statistics at the end of the run.

use flh_bench::build_circuit;
use flh_core::{apply_style, DftStyle};
use flh_netlist::{iscas89_profiles, CellId, CompiledCircuit};
use flh_rng::Rng;
use flh_sim::{CompiledSim, Logic, LogicSim};

const STYLES: [DftStyle; 3] = [DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh];

/// Random vector with a 1-in-8 chance of an unknown per input, so X
/// propagation is exercised on every circuit.
fn random_vector(rng: &mut Rng, width: usize) -> Vec<Logic> {
    (0..width)
        .map(|_| match rng.gen::<u64>() % 8 {
            0 => Logic::X,
            r if r % 2 == 0 => Logic::Zero,
            _ => Logic::One,
        })
        .collect()
}

#[test]
fn compiled_sim_matches_event_driven_on_all_profiles_and_styles() {
    for (pi, profile) in iscas89_profiles().iter().enumerate() {
        let circuit = build_circuit(profile);
        // Keep the debug-build runtime bounded on the two largest circuits.
        let cycles = if profile.gates > 3000 { 5 } else { 12 };
        for (si, &style) in STYLES.iter().enumerate() {
            let dft = apply_style(&circuit, style).unwrap_or_else(|e| {
                panic!("{} / {style}: style application failed: {e}", profile.name)
            });
            let n = &dft.netlist;
            let compiled = CompiledCircuit::compile(n)
                .unwrap_or_else(|e| panic!("{} / {style}: compile failed: {e}", profile.name));

            let mut event = LogicSim::new(n).expect("acyclic after scan insertion");
            let mut fast = CompiledSim::new(&compiled);
            if style == DftStyle::Flh {
                event.set_gated_cells(&dft.gated);
                fast.set_gated_cells(&dft.gated);
            }

            let mut rng = Rng::seed_from_u64(0x1500 + (pi * 8 + si) as u64);
            for cycle in 0..cycles {
                let v = random_vector(&mut rng, n.inputs().len());
                event.set_inputs(&v);
                fast.set_inputs(&v);
                // Engage the style's freeze mechanism on a couple of
                // cycles mid-run, releasing it afterwards.
                let freeze = cycle % 5 == 3;
                match style {
                    DftStyle::EnhancedScan | DftStyle::MuxHold => {
                        event.set_hold(freeze);
                        fast.set_hold(freeze);
                    }
                    DftStyle::Flh => {
                        event.set_sleep(freeze);
                        fast.set_sleep(freeze);
                    }
                    DftStyle::PlainScan => {}
                }
                event.settle();
                fast.settle();
                for i in 0..n.cell_count() {
                    let id = CellId::from_index(i);
                    assert_eq!(
                        event.value(id),
                        fast.value(id),
                        "{} / {style} cycle {cycle}: cell {i} diverged after settle",
                        profile.name
                    );
                }
                event.clock_capture();
                fast.clock_capture();
                assert_eq!(
                    event.outputs(),
                    fast.outputs(),
                    "{} / {style} cycle {cycle}: outputs diverged",
                    profile.name
                );
                assert_eq!(
                    event.ff_state(),
                    fast.ff_state(),
                    "{} / {style} cycle {cycle}: flip-flop state diverged",
                    profile.name
                );
            }

            assert_eq!(
                event.activity().cycles(),
                fast.activity().cycles(),
                "{} / {style}: cycle counts diverged",
                profile.name
            );
            for i in 0..n.cell_count() {
                let id = CellId::from_index(i);
                assert_eq!(
                    event.activity().toggles(id),
                    fast.activity().toggles(id),
                    "{} / {style}: toggle count diverged at cell {i}",
                    profile.name
                );
            }
        }
    }
}
