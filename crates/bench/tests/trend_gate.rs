//! The trend gate against the *committed* `BENCH_*.json` baselines: each
//! report compared to itself passes at zero tolerance, and a synthetically
//! degraded copy — every speedup leaf scaled down past the tolerance —
//! fails. This is the committed negative test for `check_bench --trend`:
//! the gate in `scripts/ci.sh` is only trustworthy if a regression is
//! proven to trip it.

use flh_bench::json::{compare_trend, speedup_leaves, Json};

const REPORTS: [&str; 3] = [
    "BENCH_compiled_ir.json",
    "BENCH_parallel_fsim.json",
    "BENCH_transition_fsim.json",
];

fn committed(name: &str) -> String {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Scales every numeric leaf whose key contains `speedup` by `factor` —
/// the programmatic stand-in for a perf regression.
fn degrade(value: &Json, key: &str, factor: f64) -> Json {
    match value {
        Json::Object(map) => Json::Object(
            map.iter()
                .map(|(k, v)| (k.clone(), degrade(v, k, factor)))
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(|v| degrade(v, key, factor)).collect()),
        Json::Number(n) if key.contains("speedup") => Json::Number(n * factor),
        other => other.clone(),
    }
}

#[test]
fn committed_baselines_pass_self_trend_and_fail_degraded() {
    for name in REPORTS {
        let text = committed(name);
        let leaves = speedup_leaves(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !leaves.is_empty(),
            "{name}: no speedup leaves — the trend gate would be vacuous"
        );

        // Self comparison: identical values hold at zero tolerance.
        let same = compare_trend(&text, &text, 0.0).unwrap();
        assert!(same.passed(), "{name}: self-trend failed: {same:?}");
        assert_eq!(same.rows.len(), leaves.len());
        assert!(same.missing.is_empty() && same.added.is_empty());

        // A 50% across-the-board slowdown must trip a 15% tolerance, and
        // every leaf must be implicated.
        let parsed = flh_bench::json::parse_json(&text).unwrap();
        let degraded = flh_bench::json::render(&degrade(&parsed, "", 0.5));
        let report = compare_trend(&text, &degraded, 0.15).unwrap();
        assert!(!report.passed(), "{name}: degraded copy passed the gate");
        assert_eq!(
            report.regressions().len(),
            leaves.len(),
            "{name}: every speedup leaf should regress in the degraded copy"
        );

        // The same degraded copy *passes* at a generous-enough tolerance:
        // the knob is real, not decorative.
        assert!(compare_trend(&text, &degraded, 0.6).unwrap().passed());
    }
}
