//! Bit-for-bit equivalence of the pooled campaign engine against the
//! serial path, on the two largest ISCAS89 profiles across every holding
//! style of the paper (enhanced scan, MUX-based, FLH).
//!
//! The `flh-exec` determinism contract says a campaign's result is a
//! function of its inputs only — never of the worker count. This test
//! holds the contract to its word on all three batch surfaces:
//!
//! * stuck-at detection maps and per-fault stats
//!   ([`flh_atpg::stuck_coverage_partitioned`] /
//!   [`StuckSimulator::simulate_partitioned`]);
//! * transition-fault coverage
//!   ([`flh_atpg::simulate_transition_patterns_partitioned`]);
//! * power toggle counts ([`flh_power::random_activity_sharded`]);
//!
//! each at pool sizes 1, 2, 4 and 8, compared with `assert_eq` — toggle
//! counts are integers and detection maps are booleans, so "identical"
//! means identical, not approximately equal.

use flh_atpg::transition::{enumerate_transition_faults, TransitionPattern};
use flh_atpg::{
    enumerate_stuck_faults, simulate_transition_patterns_partitioned, stuck_coverage_partitioned,
    StuckSimulator, TestView, TransitionSimulator,
};
use flh_bench::build_circuit;
use flh_core::{apply_style, DftStyle};
use flh_exec::ThreadPool;
use flh_netlist::{iscas89_profile, CompiledCircuit};
use flh_power::random_activity_sharded;
use flh_rng::Rng;

const CIRCUITS: [&str; 2] = ["s9234", "s13207"];
const STYLES: [DftStyle; 3] = [DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh];
const POOLS: [usize; 4] = [1, 2, 4, 8];
const PATTERNS: usize = 96;
const MAX_FAULTS: usize = 1200;

/// Every k-th element, keeping the debug-build runtime bounded while still
/// spanning the whole id range (and thus every partition boundary).
fn subsample<T: Clone>(items: &[T], max: usize) -> Vec<T> {
    let step = items.len().div_ceil(max).max(1);
    items.iter().step_by(step).cloned().collect()
}

#[test]
fn pooled_campaigns_match_serial_on_large_circuits_and_all_styles() {
    for circuit_name in CIRCUITS {
        let profile = iscas89_profile(circuit_name).expect("profile present");
        let circuit = build_circuit(&profile);
        for (si, &style) in STYLES.iter().enumerate() {
            let dft = apply_style(&circuit, style)
                .unwrap_or_else(|e| panic!("{circuit_name} / {style}: {e}"));
            let n = &dft.netlist;
            let view = TestView::new(n).expect("acyclic after scan insertion");
            let na = view.assignable().len();
            let mut rng = Rng::seed_from_u64(0xE9 + si as u64);

            // Stuck-at detection maps and per-fault stats.
            let stuck = subsample(&enumerate_stuck_faults(n), MAX_FAULTS);
            let patterns: Vec<Vec<bool>> = (0..PATTERNS)
                .map(|_| (0..na).map(|_| rng.gen()).collect())
                .collect();
            let stuck_serial =
                stuck_coverage_partitioned(&view, &stuck, &patterns, &ThreadPool::serial());
            let stats_serial = StuckSimulator::simulate_partitioned(
                &view,
                &stuck,
                &patterns,
                &ThreadPool::serial(),
            );
            for &workers in &POOLS {
                let pool = ThreadPool::new(workers);
                assert_eq!(
                    stuck_coverage_partitioned(&view, &stuck, &patterns, &pool),
                    stuck_serial,
                    "{circuit_name} / {style}: stuck detection map diverged at {workers} workers"
                );
                assert_eq!(
                    StuckSimulator::simulate_partitioned(&view, &stuck, &patterns, &pool),
                    stats_serial,
                    "{circuit_name} / {style}: stuck fault stats diverged at {workers} workers"
                );
            }

            // Transition-fault coverage over random pattern pairs.
            let transition = subsample(&enumerate_transition_faults(n), MAX_FAULTS);
            let pairs: Vec<TransitionPattern> = (0..PATTERNS)
                .map(|_| TransitionPattern {
                    v1: (0..na).map(|_| rng.gen()).collect(),
                    v2: (0..na).map(|_| rng.gen()).collect(),
                })
                .collect();
            let transition_serial = simulate_transition_patterns_partitioned(
                &view,
                &transition,
                &pairs,
                &ThreadPool::serial(),
            );
            let transition_stats = TransitionSimulator::simulate_partitioned(
                &view,
                &transition,
                &pairs,
                &ThreadPool::serial(),
            );
            for &workers in &POOLS {
                let pool = ThreadPool::new(workers);
                assert_eq!(
                    simulate_transition_patterns_partitioned(&view, &transition, &pairs, &pool),
                    transition_serial,
                    "{circuit_name} / {style}: transition coverage diverged at {workers} workers"
                );
                assert_eq!(
                    TransitionSimulator::simulate_partitioned(&view, &transition, &pairs, &pool),
                    transition_stats,
                    "{circuit_name} / {style}: transition stats diverged at {workers} workers"
                );
            }

            // Power toggle counts under sharded activity collection; FLH
            // gates the first level exactly as the power flow does.
            let compiled = CompiledCircuit::compile_shared(n).expect("compiles");
            let gated = (style == DftStyle::Flh).then_some(dft.gated.as_slice());
            let activity_serial = random_activity_sharded(
                &compiled,
                gated,
                PATTERNS,
                0x70661e + si as u64,
                32,
                &ThreadPool::serial(),
            );
            for &workers in &POOLS {
                let activity = random_activity_sharded(
                    &compiled,
                    gated,
                    PATTERNS,
                    0x70661e + si as u64,
                    32,
                    &ThreadPool::new(workers),
                );
                assert_eq!(
                    activity, activity_serial,
                    "{circuit_name} / {style}: toggle counts diverged at {workers} workers"
                );
            }
        }
    }
}
