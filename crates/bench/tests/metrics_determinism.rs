//! Pool-width invariance of the flh-obs deterministic metrics.
//!
//! The observability layer promises that every counter in the
//! *deterministic* section of the report — replay events, dedup hits,
//! early exits, undo-log writes, drop-mask merges, detections — is
//! byte-identical at any `FLH_THREADS` width: per-fault work depends only
//! on the fault and the pair batches, never on how the fault list was
//! sharded. This test runs the same pooled transition campaign (s9234,
//! the paper's three application styles) at widths 1, 2 and 4 and diffs
//! the rendered deterministic-metrics document. Wall-clock spans must
//! stay out of that document entirely — they live in the separate
//! nondeterministic section.
//!
//! One `#[test]` only: the flh-obs registry is process-global and this
//! file is its own test process.

use flh_atpg::{random_transition_campaign_pooled, ApplicationStyle, CampaignResult};
use flh_bench::build_circuit;
use flh_exec::ThreadPool;
use flh_netlist::iscas89_profile;

const PAIRS: usize = 192;
const SEED: u64 = 7;

#[test]
fn deterministic_metrics_are_pool_width_invariant() {
    flh_obs::install(false);
    let profile = iscas89_profile("s9234").expect("s9234 profile present");
    let netlist = build_circuit(&profile);
    let styles = [
        ApplicationStyle::ArbitraryTwoPattern,
        ApplicationStyle::Broadside,
        ApplicationStyle::SkewedLoad,
    ];

    let mut reference: Option<(String, Vec<CampaignResult>)> = None;
    for width in [1usize, 2, 4] {
        flh_obs::reset();
        let pool = ThreadPool::new(width);
        let results: Vec<CampaignResult> = styles
            .iter()
            .map(|&style| {
                random_transition_campaign_pooled(&netlist, style, PAIRS, SEED, &pool)
                    .expect("acyclic benchmark circuit")
            })
            .collect();

        let snap = flh_obs::snapshot();

        // The campaign actually drove the instrumented paths.
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert!(
            counter("replay.calls") > 0,
            "width {width}: no replay calls"
        );
        assert!(
            counter("replay.events") > 0,
            "width {width}: no replay events"
        );
        assert!(
            counter("fsim.transition.detections") > 0,
            "width {width}: no detections"
        );
        assert_eq!(
            counter("drops.faults_dropped"),
            results.iter().map(|r| r.detected as u64).sum::<u64>(),
            "width {width}: drop-mask merges disagree with campaign totals"
        );

        // Spans are wall clock: never in the deterministic document, always
        // in the nondeterministic section (the pool span fired above).
        let det = flh_obs::det_document(&snap);
        assert!(
            !det.contains("\"spans\"") && !det.contains("total_ms"),
            "width {width}: timing leaked into the deterministic document"
        );
        assert!(!snap.spans.is_empty(), "width {width}: no spans recorded");
        assert!(
            flh_obs::nondeterministic_json(&snap).contains("\"spans\""),
            "width {width}: spans missing from the nondeterministic section"
        );

        match &reference {
            None => reference = Some((det, results)),
            Some((ref_det, ref_results)) => {
                assert_eq!(
                    ref_results, &results,
                    "campaign results changed at width {width}"
                );
                assert_eq!(
                    ref_det, &det,
                    "deterministic metrics changed at width {width}"
                );
            }
        }
    }
}
