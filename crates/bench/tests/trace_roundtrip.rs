//! Chrome trace-event round trip: emit a trace with `flh_obs`, re-parse
//! the file with the in-house JSON parser ([`flh_bench::json`]), and check
//! that the events are well-formed complete events (`ph: "X"`, numeric
//! `ts`/`dur`) whose interval nesting reproduces the span nesting that
//! produced them — truncating start and end to microseconds independently
//! must never push a child outside its parent. A second part runs a gated
//! `flh serve` session and checks the executor thread's `serve.job.exec`
//! spans: sequential, one per job, and nested correctly per thread.
//!
//! One `#[test]` only: the flh-obs registry is process-global and this
//! file is its own test process.

use std::time::Duration;

use flh_bench::json::{parse_json, Json};

/// Pulls one required member out of a parsed object.
fn member<'j>(event: &'j Json, key: &str) -> &'j Json {
    let Json::Object(map) = event else {
        panic!("trace event is not an object")
    };
    map.get(key)
        .unwrap_or_else(|| panic!("trace event lacks {key:?}"))
}

fn number(event: &Json, key: &str) -> f64 {
    let Json::Number(n) = member(event, key) else {
        panic!("{key:?} is not a number")
    };
    *n
}

fn string<'j>(event: &'j Json, key: &str) -> &'j str {
    let Json::String(s) = member(event, key) else {
        panic!("{key:?} is not a string")
    };
    s
}

/// `a` contains `b` as a closed interval.
fn contains(a: &Json, b: &Json) -> bool {
    let (a0, b0) = (number(a, "ts"), number(b, "ts"));
    a0 <= b0 && b0 + number(b, "dur") <= a0 + number(a, "dur")
}

#[test]
fn trace_events_roundtrip_and_nest_like_spans() {
    flh_obs::install(true);
    flh_obs::reset();

    // outer > (middle > inner), sibling — drop order: inner, middle,
    // sibling, outer. The sleeps keep every interval comfortably wider
    // than the microsecond truncation of the exporter.
    {
        let _outer = flh_obs::span("outer");
        std::thread::sleep(Duration::from_millis(2));
        {
            let _middle = flh_obs::span("middle");
            std::thread::sleep(Duration::from_millis(2));
            let _inner = flh_obs::span("inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        let _sibling = flh_obs::span("sibling");
        std::thread::sleep(Duration::from_millis(2));
    }

    let path = std::env::temp_dir().join("flh_trace_roundtrip.json");
    flh_obs::write_trace(&path).expect("write trace file");
    let text = std::fs::read_to_string(&path).expect("read trace file back");

    let doc = parse_json(&text).expect("trace file parses with the in-house parser");
    assert_eq!(string(&doc, "displayTimeUnit"), "ms");
    let Json::Array(events) = member(&doc, "traceEvents") else {
        panic!("traceEvents is not an array")
    };
    assert_eq!(events.len(), 4, "one complete event per closed span");

    // Well-formed complete events, in span-close order.
    let names: Vec<&str> = events.iter().map(|e| string(e, "name")).collect();
    assert_eq!(names, ["inner", "middle", "sibling", "outer"]);
    for event in events {
        assert_eq!(string(event, "ph"), "X");
        assert_eq!(string(event, "cat"), "flh");
        assert_eq!(number(event, "pid"), 1.0);
        assert!(number(event, "tid") >= 1.0);
        assert!(number(event, "ts") >= 0.0);
        assert!(number(event, "dur") >= 0.0);
        let Json::Number(_) = member(member(event, "args"), "depth") else {
            panic!("args.depth is not a number")
        };
    }

    // Interval nesting reproduces the span nesting.
    let (inner, middle, sibling, outer) = (&events[0], &events[1], &events[2], &events[3]);
    assert_eq!(number(member(outer, "args"), "depth"), 0.0);
    assert_eq!(number(member(middle, "args"), "depth"), 1.0);
    assert_eq!(number(member(sibling, "args"), "depth"), 1.0);
    assert_eq!(number(member(inner, "args"), "depth"), 2.0);
    assert!(contains(outer, middle), "middle must nest inside outer");
    assert!(contains(outer, sibling), "sibling must nest inside outer");
    assert!(contains(outer, inner), "inner must nest inside outer");
    assert!(contains(middle, inner), "inner must nest inside middle");
    assert!(
        !contains(middle, sibling) && !contains(sibling, middle),
        "siblings must not nest"
    );

    // Part two — the same exporter under an `flh serve` session: the
    // gated executor thread runs jobs inside `serve.job.exec` spans, and
    // the exported intervals must nest correctly *per thread* (one
    // executor thread plus whatever the pool workers record).
    flh_obs::reset();
    {
        use std::sync::Arc;
        let engine = Arc::new(flh_serve::JobEngine::new(flh_exec::ThreadPool::new(2), 4));
        let mut session = flh_serve::JobSession::new(
            engine,
            flh_serve::SessionConfig {
                queue_capacity: 8,
                autostart: false,
            },
        );
        let profile = flh_netlist::iscas89_profile("s298").expect("builtin profile");
        let spec = flh_serve::JobSpec::campaign(flh_serve::CircuitSource::profile(profile))
            .with_pairs(8)
            .with_seed(3);
        session.submit(spec.clone()).expect("submit 1");
        session.submit(spec).expect("submit 2");
        let summary = session.shutdown(&mut |_| {});
        assert_eq!(summary.completed, 2);
    }
    let serve_path = std::env::temp_dir().join("flh_trace_serve_roundtrip.json");
    flh_obs::write_trace(&serve_path).expect("write serve trace file");
    let text = std::fs::read_to_string(&serve_path).expect("read serve trace back");
    let doc = parse_json(&text).expect("serve trace parses");
    let Json::Array(events) = member(&doc, "traceEvents") else {
        panic!("traceEvents is not an array")
    };

    // Two jobs -> two executor spans, both on the same (executor) thread,
    // run strictly one after the other.
    let exec: Vec<&Json> = events
        .iter()
        .filter(|e| string(e, "name") == "serve.job.exec")
        .collect();
    assert_eq!(exec.len(), 2, "one serve.job.exec span per job");
    assert_eq!(number(exec[0], "tid"), number(exec[1], "tid"));
    let (a, b) = (exec[0], exec[1]);
    let (a_end, b_end) = (
        number(a, "ts") + number(a, "dur"),
        number(b, "ts") + number(b, "dur"),
    );
    assert!(
        a_end <= number(b, "ts") || b_end <= number(a, "ts"),
        "gated jobs execute sequentially, never overlapping"
    );

    // Per-thread nesting: every depth-d event (d > 0) sits inside some
    // same-thread event one level shallower.
    assert!(!events.is_empty());
    for event in events {
        let depth = number(member(event, "args"), "depth");
        if depth == 0.0 {
            continue;
        }
        let parent = events.iter().any(|p| {
            number(p, "tid") == number(event, "tid")
                && number(member(p, "args"), "depth") == depth - 1.0
                && contains(p, event)
        });
        assert!(
            parent,
            "depth-{depth} span {:?} on tid {} has no enclosing parent",
            string(event, "name"),
            number(event, "tid")
        );
    }
}
