//! Bytecode-vs-reference equivalence for the codegen v2 stack, across the
//! full ISCAS89 profile set and the paper's three DFT styles.
//!
//! The lowered [`Program`] replaced the CSR interpreter in three engines —
//! the scalar/packed logic settles, the stuck-at deviation replay and the
//! transition-fault replay. Each test drives one engine over every
//! `circuit × style` combination and holds it against an implementation
//! that never touches the bytecode:
//!
//! * packed settles ([`Dual64`] and the [`Dual256`] superword) against the
//!   event-driven [`LogicSim`], lane by lane, with injected unknowns;
//! * [`StuckSimulator`] batches against the brute-force two-evaluation
//!   [`stuck_detects_reference`];
//! * [`TransitionSimulator`] batches against
//!   [`transition_detects_reference`];
//! * plus structural invariants of every lowered program (fixed-stride
//!   stream, full cell coverage, batch tiling, fusion accounting).

use flh_atpg::{
    enumerate_stuck_faults, enumerate_transition_faults, stuck_detects_reference,
    transition_detects_reference, StuckSimulator, TestView, TransitionSimulator,
};
use flh_bench::build_circuit;
use flh_core::{apply_style, DftStyle};
use flh_netlist::bytecode::INST_WORDS;
use flh_netlist::{
    iscas89_profiles, CompiledCircuit, Dual256, Dual64, Netlist, Packed256, PatternWord, Program,
};
use flh_rng::Rng;
use flh_sim::{
    lane_to_logic, logic_to_lane, logic_to_superlane, settle_packed, superlane_to_logic, Logic,
    LogicSim,
};

const STYLES: [DftStyle; 3] = [DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh];

/// Lanes checked against the scalar reference (spanning both superword
/// limb boundaries when scaled by 3).
const CHECK_LANES: [u32; 3] = [0, 17, 63];

/// Every k-th element, bounding debug-build runtime while spanning the
/// whole fault-id range.
fn subsample<T: Clone>(items: &[T], max: usize) -> Vec<T> {
    let step = items.len().div_ceil(max).max(1);
    items.iter().step_by(step).cloned().collect()
}

fn random_logic(rng: &mut Rng) -> Logic {
    match rng.gen::<u64>() % 8 {
        0 => Logic::X,
        r if r % 2 == 0 => Logic::Zero,
        _ => Logic::One,
    }
}

fn styled(netlist: &Netlist, style: DftStyle, name: &str) -> Netlist {
    apply_style(netlist, style)
        .unwrap_or_else(|e| panic!("{name} / {style}: style application failed: {e}"))
        .netlist
}

#[test]
fn packed_bytecode_settle_matches_event_driven_on_all_profiles_and_styles() {
    for (pi, profile) in iscas89_profiles().iter().enumerate() {
        let circuit = build_circuit(profile);
        for (si, &style) in STYLES.iter().enumerate() {
            let n = styled(&circuit, style, &profile.name);
            let c = CompiledCircuit::compile(&n)
                .unwrap_or_else(|e| panic!("{} / {style}: compile failed: {e}", profile.name));
            let p = Program::lower(&c);
            let mut rng = Rng::seed_from_u64(0xCE11 + (pi * 8 + si) as u64);

            // One independent stimulus per checked lane, mirrored into the
            // 64-lane word (lane k) and the superword (lane 3k — crosses
            // limb boundaries for the high lanes).
            let mut packed = vec![Dual64::all_x(); c.cell_count()];
            let mut superpacked = vec![Dual256::all_x(); c.cell_count()];
            let mut scalars: Vec<Vec<Logic>> = Vec::new();
            for &lane in &CHECK_LANES {
                let mut scalar = vec![Logic::X; c.cell_count()];
                for &src in c.inputs().iter().chain(c.flip_flops()) {
                    let v = random_logic(&mut rng);
                    scalar[src as usize] = v;
                    let d = logic_to_lane(v, lane);
                    packed[src as usize].one |= d.one;
                    packed[src as usize].zero |= d.zero;
                    let s = logic_to_superlane(v, 3 * lane);
                    for limb in 0..4 {
                        superpacked[src as usize].one[limb] |= s.one[limb];
                        superpacked[src as usize].zero[limb] |= s.zero[limb];
                    }
                }
                scalars.push(scalar);
            }
            settle_packed(&p, &mut packed);
            settle_packed(&p, &mut superpacked);

            for (&lane, scalar) in CHECK_LANES.iter().zip(&scalars) {
                let mut reference = LogicSim::new(&n).expect("acyclic after scan insertion");
                for (i, &pin) in c.inputs().iter().enumerate() {
                    reference.set_input(i, scalar[pin as usize]);
                }
                for (i, &ff) in c.flip_flops().iter().enumerate() {
                    reference.set_ff_by_index(i, scalar[ff as usize]);
                }
                reference.settle();
                for (id, _) in n.iter() {
                    let want = reference.value(id);
                    assert_eq!(
                        lane_to_logic(packed[id.index()], lane),
                        want,
                        "{} / {style}: lane {lane} {id:?}",
                        profile.name
                    );
                    assert_eq!(
                        superlane_to_logic(superpacked[id.index()], 3 * lane),
                        want,
                        "{} / {style}: superword lane {} {id:?}",
                        profile.name,
                        3 * lane
                    );
                }
            }
        }
    }
}

#[test]
fn bytecode_stuck_replay_matches_brute_force_on_all_profiles_and_styles() {
    for (pi, profile) in iscas89_profiles().iter().enumerate() {
        let circuit = build_circuit(profile);
        for (si, &style) in STYLES.iter().enumerate() {
            let n = styled(&circuit, style, &profile.name);
            let faults = subsample(&enumerate_stuck_faults(&n), 24);
            let view = TestView::new(&n).expect("acyclic after scan insertion");
            let mut rng = Rng::seed_from_u64(0x57CC + (pi * 8 + si) as u64);
            let words: Vec<u64> = (0..view.assignable().len()).map(|_| rng.gen()).collect();

            let mut sim = StuckSimulator::new(&view);
            let mut detected = vec![false; faults.len()];
            let wide: Vec<Packed256> = words.iter().map(|&w| Packed256::from_word(w)).collect();
            sim.run_batch(&wide, Packed256::mask_lanes(64), &faults, &mut detected);

            for (f, &got) in faults.iter().zip(&detected) {
                let want = stuck_detects_reference(&view, f, &words, !0) != 0;
                assert_eq!(got, want, "{} / {style}: {f:?}", profile.name);
            }
        }
    }
}

#[test]
fn bytecode_transition_replay_matches_brute_force_on_all_profiles_and_styles() {
    for (pi, profile) in iscas89_profiles().iter().enumerate() {
        let circuit = build_circuit(profile);
        for (si, &style) in STYLES.iter().enumerate() {
            let n = styled(&circuit, style, &profile.name);
            let faults = subsample(&enumerate_transition_faults(&n), 24);
            let view = TestView::new(&n).expect("acyclic after scan insertion");
            let mut rng = Rng::seed_from_u64(0x7247 + (pi * 8 + si) as u64);
            let nv = view.assignable().len();
            let v1_words: Vec<u64> = (0..nv).map(|_| rng.gen()).collect();
            let v2_words: Vec<u64> = (0..nv).map(|_| rng.gen()).collect();

            let mut sim = TransitionSimulator::new(&view);
            let mut detected = vec![false; faults.len()];
            let w1: Vec<Packed256> = v1_words.iter().map(|&w| Packed256::from_word(w)).collect();
            let w2: Vec<Packed256> = v2_words.iter().map(|&w| Packed256::from_word(w)).collect();
            sim.run_batch(&w1, &w2, Packed256::mask_lanes(64), &faults, &mut detected);

            for (f, &got) in faults.iter().zip(&detected) {
                let want = transition_detects_reference(&view, f, &v1_words, &v2_words, !0) != 0;
                assert_eq!(got, want, "{} / {style}: {f:?}", profile.name);
            }
        }
    }
}

#[test]
fn lowered_programs_are_well_formed_on_all_profiles_and_styles() {
    for profile in iscas89_profiles() {
        let circuit = build_circuit(&profile);
        for &style in &STYLES {
            let n = styled(&circuit, style, &profile.name);
            let c = CompiledCircuit::compile(&n)
                .unwrap_or_else(|e| panic!("{} / {style}: compile failed: {e}", profile.name));
            let p = Program::lower(&c);

            assert_eq!(p.cell_words(), c.cell_count());
            assert_eq!(
                p.code_words(),
                p.inst_count() * INST_WORDS,
                "{} / {style}: fixed-stride stream",
                profile.name
            );
            assert!(
                p.micro_ops() >= p.inst_count() as u64,
                "{} / {style}: fusion can only shrink the stream",
                profile.name
            );

            // Every non-source cell owns a chain; sources own none. The
            // chains tile the instruction stream exactly.
            let mut chained = 0usize;
            for id in 0..c.cell_count() as u32 {
                let len = p.chain_len(id);
                if c.level_of(id) == 0 {
                    assert_eq!(len, 0, "{} / {style}: source {id}", profile.name);
                } else {
                    assert!(len >= 1, "{} / {style}: cell {id} unlowered", profile.name);
                }
                chained += len;
            }
            assert_eq!(chained, p.inst_count(), "{} / {style}", profile.name);

            // Batches tile the stream in level-major order.
            let mut covered = 0u32;
            let mut last_level = 0u32;
            for b in p.batches() {
                assert_eq!(b.start, covered, "{} / {style}", profile.name);
                assert!(b.level >= last_level && b.level as usize <= c.levels());
                covered = b.end;
                last_level = b.level;
            }
            assert_eq!(
                covered as usize,
                p.code_words(),
                "{} / {style}",
                profile.name
            );
        }
    }
}
