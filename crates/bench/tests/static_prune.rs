//! Soundness of the static testability filter across the ISCAS89 profile
//! set and the paper's three holding styles.
//!
//! The contract under test (`flh_atpg::prune`): a fault the filter
//! classifies as statically untestable must **never** be detected by fault
//! simulation, and threading the filter through ATPG / campaigns must leave
//! every result bit-identical — the filter only removes work, never answers.
//!
//! Three layers:
//!
//! * the bytecode verifier is clean on every profile × style (the compiled
//!   form all simulators execute satisfies the emission contract);
//! * statically-untestable ∩ simulated-detected = ∅, checked with random
//!   stuck-at patterns and random two-pattern transition tests, plus a
//!   hand-built redundant circuit where the untestable set is *non-empty*
//!   (the profile generator emits irredundant logic, so profiles alone
//!   would make this check vacuous);
//! * pruned vs. unpruned equivalence: `transition_atpg` (filter on by
//!   default) against `transition_atpg_with_filter(.., None)`, and the
//!   campaign twins, pattern-for-pattern and count-for-count.

use flh_atpg::{
    enumerate_stuck_faults, enumerate_transition_faults, order_stuck_faults,
    order_stuck_faults_pruned, simulate_transition_patterns, stuck_coverage, transition_atpg,
    transition_atpg_with_filter, transition_campaign_filtered, transition_campaign_with_view,
    ApplicationStyle, PodemConfig, StaticFilter, TestView, TransitionPattern,
};
use flh_bench::build_circuit;
use flh_core::{apply_style, DftStyle};
use flh_exec::ThreadPool;
use flh_netlist::static_analysis::verify_program;
use flh_netlist::{iscas89_profiles, CellKind, CompiledCircuit, Netlist, Program};
use flh_rng::Rng;

const STYLES: [DftStyle; 3] = [DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh];
const MAX_FAULTS: usize = 600;
const STUCK_PATTERNS: usize = 64;
const PAIRS: usize = 32;

/// Every k-th element: bounds debug-build runtime while spanning the full
/// fault-id range.
fn subsample<T: Clone>(items: &[T], max: usize) -> Vec<T> {
    let step = items.len().div_ceil(max).max(1);
    items.iter().step_by(step).cloned().collect()
}

fn random_vectors(rng: &mut Rng, width: usize, count: usize) -> Vec<Vec<bool>> {
    (0..count)
        .map(|_| (0..width).map(|_| rng.gen()).collect())
        .collect()
}

fn random_pairs(rng: &mut Rng, width: usize, count: usize) -> Vec<TransitionPattern> {
    (0..count)
        .map(|_| TransitionPattern {
            v1: (0..width).map(|_| rng.gen()).collect(),
            v2: (0..width).map(|_| rng.gen()).collect(),
        })
        .collect()
}

/// Statically-untestable ∩ simulated-detected must be empty on `netlist`.
fn assert_prune_sound(netlist: &Netlist, label: &str) {
    let view = TestView::new(netlist).expect("test view");
    let filter = StaticFilter::from_view(&view);
    let width = view.assignable().len();
    let mut rng = Rng::seed_from_u64(0x51AB);

    let stuck = subsample(&enumerate_stuck_faults(netlist), MAX_FAULTS);
    let patterns = random_vectors(&mut rng, width, STUCK_PATTERNS);
    let detected = stuck_coverage(&view, &stuck, &patterns);
    for (f, &d) in stuck.iter().zip(&detected) {
        assert!(
            !(d && filter.stuck_untestable(f)),
            "{label}: statically-untestable stuck fault {f:?} detected by simulation"
        );
    }

    let trans = subsample(&enumerate_transition_faults(netlist), MAX_FAULTS);
    let pairs = random_pairs(&mut rng, width, PAIRS);
    let tdetected = simulate_transition_patterns(&view, &trans, &pairs);
    for (f, &d) in trans.iter().zip(&tdetected) {
        assert!(
            !(d && filter.transition_untestable(f)),
            "{label}: statically-untestable transition fault {f:?} detected by simulation"
        );
    }
}

#[test]
fn verifier_is_clean_on_every_profile_and_style() {
    for profile in iscas89_profiles() {
        let base = build_circuit(&profile);
        let mut targets = vec![(base.clone(), "bare")];
        for style in STYLES {
            let dft = apply_style(&base, style).expect("style applies");
            targets.push((dft.netlist, style.label()));
        }
        for (netlist, label) in targets {
            let compiled = CompiledCircuit::compile(&netlist).expect("compiles");
            let program = Program::lower(&compiled);
            let report = verify_program(&compiled, &program);
            assert!(
                report.is_clean(),
                "{} / {label}: {:?}",
                profile.name,
                report.violations
            );
            assert!(report.checks > 0);
        }
    }
}

#[test]
fn static_untestability_is_sound_on_every_profile_and_style() {
    for profile in iscas89_profiles() {
        let base = build_circuit(&profile);
        assert_prune_sound(&base, profile.name);
        for style in STYLES {
            let dft = apply_style(&base, style).expect("style applies");
            assert_prune_sound(&dft.netlist, &format!("{}/{}", profile.name, style.label()));
        }
    }
}

/// Redundant logic the profile generator never emits: gates tied to
/// constants and a gate whose output is masked on every path. Here the
/// untestable set is non-empty, so the soundness check actually bites.
fn redundant_circuit() -> Netlist {
    let mut n = Netlist::new("redundant");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let f1 = n.add_cell("f1", CellKind::Dff, vec![a]);
    let tie0 = n.add_cell("tie0", CellKind::Const0, Vec::new());
    let tie1 = n.add_cell("tie1", CellKind::Const1, Vec::new());
    // gz is constant 0: its slow-to-rise / stuck-at-0 faults are untestable.
    let gz = n.add_cell("gz", CellKind::And2, vec![f1, tie0]);
    // go is constant 1 through the OR with tie1.
    let go = n.add_cell("go", CellKind::Or2, vec![b, tie1]);
    let g1 = n.add_cell("g1", CellKind::And2, vec![gz, go]);
    let g2 = n.add_cell("g2", CellKind::Xor2, vec![f1, b]);
    let g3 = n.add_cell("g3", CellKind::Or2, vec![g1, g2]);
    n.add_output("y", g3);
    n
}

#[test]
fn redundant_circuit_has_nonempty_untestable_set_and_stays_sound() {
    let netlist = redundant_circuit();
    let view = TestView::new(&netlist).expect("test view");
    let filter = StaticFilter::from_view(&view);
    let stuck = enumerate_stuck_faults(&netlist);
    let trans = enumerate_transition_faults(&netlist);
    let stuck_untestable = stuck.iter().filter(|f| filter.stuck_untestable(f)).count();
    let trans_untestable = trans
        .iter()
        .filter(|f| filter.transition_untestable(f))
        .count();
    assert!(stuck_untestable > 0, "constant cone must be untestable");
    assert!(trans_untestable > 0, "no transitions at constant nets");
    assert_prune_sound(&netlist, "redundant");
}

#[test]
fn pruned_stuck_ordering_preserves_coverage() {
    for name in ["s298", "s641", "s1423"] {
        let profile = iscas89_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("profile exists");
        let netlist = build_circuit(&profile);
        let view = TestView::new(&netlist).expect("test view");
        let filter = StaticFilter::from_view(&view);
        let faults = enumerate_stuck_faults(&netlist);
        let baseline = order_stuck_faults(view.compiled(), &faults);
        let (pruned, dropped) = order_stuck_faults_pruned(&filter, view.compiled(), &faults);
        assert_eq!(pruned.len() + dropped, baseline.len());

        let mut rng = Rng::seed_from_u64(0xC0DE);
        let patterns = random_vectors(&mut rng, view.assignable().len(), STUCK_PATTERNS);
        let full: usize = stuck_coverage(&view, &baseline, &patterns)
            .iter()
            .filter(|&&d| d)
            .count();
        let kept: usize = stuck_coverage(&view, &pruned, &patterns)
            .iter()
            .filter(|&&d| d)
            .count();
        assert_eq!(full, kept, "{name}: pruning changed stuck coverage");
    }
}

#[test]
fn pruned_transition_atpg_is_bit_identical_to_unpruned() {
    for name in ["s298", "s420"] {
        let profile = iscas89_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("profile exists");
        let netlist = build_circuit(&profile);
        let view = TestView::new(&netlist).expect("test view");
        let filter = StaticFilter::from_view(&view);
        let faults = subsample(&enumerate_transition_faults(&netlist), 200);
        let config = PodemConfig::paper_default();
        let with = transition_atpg_with_filter(&view, &faults, &config, 0xF1, Some(&filter));
        let without = transition_atpg_with_filter(&view, &faults, &config, 0xF1, None);
        let default_path = transition_atpg(&view, &faults, &config, 0xF1);
        assert_eq!(with.patterns, without.patterns, "{name}: pattern drift");
        assert_eq!(with.detected, without.detected, "{name}: detection drift");
        assert_eq!(
            with.untestable, without.untestable,
            "{name}: untestable drift"
        );
        assert_eq!(default_path.patterns, with.patterns);
        assert_eq!(default_path.detected, with.detected);
    }
}

#[test]
fn pruned_campaign_is_identical_to_unpruned() {
    let pool = ThreadPool::serial();
    for name in ["s298", "s526"] {
        let profile = iscas89_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("profile exists");
        let netlist = build_circuit(&profile);
        let view = TestView::new(&netlist).expect("test view");
        let filter = StaticFilter::from_view(&view);
        let faults = enumerate_transition_faults(&netlist);
        for style in [
            ApplicationStyle::ArbitraryTwoPattern,
            ApplicationStyle::Broadside,
        ] {
            let unfiltered =
                transition_campaign_filtered(&view, &faults, style, PAIRS, 7, &pool, None);
            let filtered =
                transition_campaign_filtered(&view, &faults, style, PAIRS, 7, &pool, Some(&filter));
            let default_path =
                transition_campaign_with_view(&view, &faults, style, PAIRS, 7, &pool);
            assert_eq!(unfiltered, filtered, "{name}/{style:?}");
            assert_eq!(default_path, filtered, "{name}/{style:?}");
        }
    }
}
