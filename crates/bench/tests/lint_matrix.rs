//! The CI lint gate in test form: every generated ISCAS89 profile under
//! every holding style must lint error-free, and the matrix must exercise
//! a healthy share of the diagnostic vocabulary (dead-cone warnings are the
//! expected residue of the calibrated generator).

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use flh_core::DftStyle;
use flh_exec::ThreadPool;
use flh_lint::{lint_profile_grid, reports_to_json, LintCode, Severity};
use flh_netlist::iscas89_profiles;

const HOLDING_STYLES: [DftStyle; 3] = [DftStyle::EnhancedScan, DftStyle::MuxHold, DftStyle::Flh];

#[test]
fn full_profile_grid_lints_error_free() {
    let profiles = iscas89_profiles();
    assert_eq!(profiles.len(), 11);
    let pool = ThreadPool::from_env();
    let reports = lint_profile_grid(&pool, &profiles, &HOLDING_STYLES);
    assert_eq!(reports.len(), 33);
    for report in &reports {
        assert_eq!(
            report.error_count(),
            0,
            "{} must lint clean:\n{}",
            report.label(),
            report.render_text()
        );
        assert!(
            report.skipped_passes.is_empty(),
            "{}: no pass may be skipped on a generated circuit",
            report.label()
        );
        for d in &report.diagnostics {
            assert_ne!(d.severity, Severity::Error);
        }
    }
    // The only tolerated residue on generated circuits: dead-cone warnings
    // (the calibrated generator leaves unobserved spare logic; the fault
    // tools skip those cones).
    let codes: BTreeSet<LintCode> = reports.iter().flat_map(|r| r.codes()).collect();
    for code in &codes {
        assert_eq!(
            *code,
            LintCode::UnreachableGate,
            "unexpected diagnostic family on clean circuits: {code}"
        );
    }
    // And the machine-readable summary agrees.
    let json = reports_to_json(&reports);
    assert!(
        json.contains("\"total_errors\":0"),
        "JSON gate must be clean"
    );
}

#[test]
fn grid_is_deterministic_across_pool_widths() {
    let profiles: Vec<_> = iscas89_profiles().into_iter().take(3).collect();
    let serial = lint_profile_grid(&ThreadPool::new(1), &profiles, &HOLDING_STYLES);
    let wide = lint_profile_grid(&ThreadPool::new(8), &profiles, &HOLDING_STYLES);
    assert_eq!(serial, wide);
    assert_eq!(reports_to_json(&serial), reports_to_json(&wide));
}
